#!/usr/bin/env bash
# smoke_shard.sh — end-to-end smoke test for distributed campaigns,
# exercised through the real binaries the way an operator would:
#
#   1. build ftsimd + ftsimc
#   2. control: one plain daemon runs a fault-injecting campaign to
#      completion; its aggregate stats are the reference bytes
#   3. cluster: two token-locked worker daemons plus a coordinator
#      daemon (-coordinator -worker-urls ...); the same submission is
#      sharded across the fleet, and one worker is SIGKILLed mid-grid
#   4. the coordinator must redispatch the dead worker's shard to the
#      survivor and finish; the merged stats must be byte-identical to
#      the single-daemon control, and the coordinator's /metrics must
#      record the redispatch
#
# Run from the repository root: scripts/smoke_shard.sh
set -euo pipefail

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

say() { echo "smoke-shard: $*"; }
die() { echo "smoke-shard: FAIL: $*" >&2; exit 1; }

token="smoke-shard-secret"

# start_daemon <name> <extra flags...> — launches ftsimd on a random
# port; sets $addr and appends the pid to $pids.
start_daemon() {
  local name=$1; shift
  "$work/ftsimd" -addr 127.0.0.1:0 "$@" \
    > "$work/$name.addr" 2>> "$work/$name.log" &
  pids+=($!)
  eval "${name}_pid=$!"
  local a=""
  for _ in $(seq 1 100); do
    a=$(head -1 "$work/$name.addr" 2>/dev/null || true)
    [ -n "$a" ] && break
    sleep 0.1
  done
  [ -n "$a" ] || die "$name never printed its address"
  addr="http://$a"
  eval "${name}_addr=$addr"
}

# wait_for <base-url> <job-id> <grep-pattern> — polls ftsimc status
# until the summary line matches.
wait_for() {
  for _ in $(seq 1 600); do
    if "$work/ftsimc" -addr "$1" status "$2" | grep -qE "$3"; then
      return 0
    fi
    sleep 0.1
  done
  die "job $2 never matched '$3'; last: $("$work/ftsimc" -addr "$1" status "$2")"
}

say "building ftsimd and ftsimc"
go build -o "$work" ./cmd/ftsimd ./cmd/ftsimc

# The campaign: six slow trials with live fault injection, so the
# per-trial seed derivation — the thing sharding must not disturb —
# actually shapes the numbers.
cat > "$work/req.json" <<'EOF'
{"name":"smoke-shard","seed":11,"workers":1,"trials":[
EOF
for i in 0 1 2 3 4 5; do
  comma=$([ "$i" = 5 ] && echo "" || echo ",")
  cat >> "$work/req.json" <<EOF
 {"label":"t$i","asm":"li r1, 400000\nloop: addi r1, r1, -1\n bne r1, r0, loop\n halt\n","config":{"r":2,"max_insts":99000000,"max_cycles":990000000,"fault":{"rate":0.000005,"targets":["result","address","resident","branch"]}}}$comma
EOF
done
echo ']}' >> "$work/req.json"

# ---------------------------------------------------------------- 1.
# Control: the whole grid on one ordinary daemon.
say "control: unsharded run on a single daemon"
start_daemon control
id=$("$work/ftsimc" -addr "$control_addr" submit "$work/req.json")
"$work/ftsimc" -addr "$control_addr" watch "$id" > /dev/null
"$work/ftsimc" -addr "$control_addr" status -stats "$id" > "$work/control.json"
[ -s "$work/control.json" ] || die "control run produced no stats"

# ---------------------------------------------------------------- 2.
# Cluster: two token-locked workers, one coordinator in front.
say "cluster: 2 workers + coordinator"
start_daemon worker1 -auth-token "$token"
start_daemon worker2 -auth-token "$token"
start_daemon coord -coordinator \
  -worker-urls "$worker1_addr,$worker2_addr" \
  -worker-auth-token "$token" -shards 2

# A worker must refuse unauthenticated campaign requests.
code=$(curl -s -o /dev/null -w '%{http_code}' "$worker1_addr/v1/campaigns")
[ "$code" = 401 ] || die "token-locked worker answered $code to an unauthenticated request, want 401"

id=$("$work/ftsimc" -addr "$coord_addr" submit "$work/req.json")
say "submitted $id to the coordinator; waiting for a mid-grid snapshot"
# With 2 shards of 3 trials, <=2 done means neither shard has finished:
# whichever worker dies now leaves an unfinished shard behind.
wait_for "$coord_addr" "$id" ' [1-2]/6 trials'
say "killing worker 2 mid-grid (SIGKILL)"
kill -9 "$worker2_pid" 2>/dev/null || true
wait "$worker2_pid" 2>/dev/null || true

wait_for "$coord_addr" "$id" '  done  '
"$work/ftsimc" -addr "$coord_addr" status -stats "$id" > "$work/sharded.json"

# ---------------------------------------------------------------- 3.
# The merge must be invisible: same bytes as the single-daemon run.
if ! cmp -s "$work/sharded.json" "$work/control.json"; then
  diff "$work/sharded.json" "$work/control.json" | head -40 >&2 || true
  die "merged shard stats differ from the single-daemon control"
fi
say "merged stats are byte-identical to the unsharded control"

# The coordinator's /metrics must record the recovery.
curl -fsS "$coord_addr/metrics" > "$work/metrics.txt" || die "GET /metrics failed"
metric_ge() {
  local line
  line=$(grep -E "^$1 " "$work/metrics.txt" | head -1)
  [ -n "$line" ] || die "metrics: no line matching '$1'"
  awk -v min="$2" '{ exit ($NF >= min) ? 0 : 1 }' <<< "$line" \
    || die "metrics: '$line' below expected minimum $2"
}
metric_ge 'ftsimd_coord_shards_dispatched_total' 3
metric_ge 'ftsimd_coord_shard_redispatches_total' 1
metric_ge 'ftsimd_coord_shards_total\{state="done"\}' 2
metric_ge 'ftsimd_jobs_total\{state="done"\}' 1
say "coordinator metrics record the redispatch"
say "OK"
