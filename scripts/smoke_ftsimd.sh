#!/usr/bin/env bash
# smoke_ftsimd.sh — end-to-end smoke test for the ftsimd campaign
# service, exercised through the real binaries the way an operator
# would:
#
#   1. build ftsimd + ftsimc
#   2. start a daemon on a random port, submit a tiny campaign from a
#      ftsim/testdata golden config, stream its SSE feed to completion
#   3. durability: submit a slow multi-trial campaign, SIGKILL the
#      daemon mid-grid, restart it on the same data directory, and
#      assert the resumed run's aggregate stats are byte-identical to
#      an uninterrupted control run of the same submission
#   4. observability: scrape GET /metrics on the restarted daemon and
#      assert the documented core families carry sane values (a resumed
#      job must show up in ftsim_trials_resumed_total), plus /healthz
#      readiness and ftsimc -o json output
#
# Run from the repository root: scripts/smoke_ftsimd.sh
set -euo pipefail

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

say() { echo "smoke: $*"; }
die() { echo "smoke: FAIL: $*" >&2; exit 1; }

# start_daemon <data-dir> — launches ftsimd on a random port; sets
# $addr and $daemon_pid.
start_daemon() {
  "$work/ftsimd" -addr 127.0.0.1:0 -data-dir "$1" -flush-every 1 \
    > "$work/addr.txt" 2>> "$work/daemon.log" &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    addr=$(head -1 "$work/addr.txt" 2>/dev/null || true)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || die "daemon never printed its address"
  addr="http://$addr"
}

stop_daemon_hard() {
  kill -9 "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
}

# wait_for <job-id> <grep-pattern> — polls ftsimc status until the
# summary line matches.
wait_for() {
  for _ in $(seq 1 600); do
    if "$work/ftsimc" -addr "$addr" status "$1" | grep -qE "$2"; then
      return 0
    fi
    sleep 0.1
  done
  die "job $1 never matched '$2'; last: $("$work/ftsimc" -addr "$addr" status "$1")"
}

say "building ftsimd and ftsimc"
go build -o "$work" ./cmd/ftsimd ./cmd/ftsimc

# ---------------------------------------------------------------- 1.
# Tiny campaign from a golden config, SSE streamed to completion.
say "phase 1: golden-config campaign over HTTP"
start_daemon "$work/data1"
config=$(ls ftsim/testdata/*.json | head -1)
id=$("$work/ftsimc" -addr "$addr" submit -max-insts 5000 "$config")
say "submitted $id from $config"
"$work/ftsimc" -addr "$addr" watch "$id" > "$work/watch1.log"
grep -q "state: running" "$work/watch1.log" || die "SSE stream carried no running state"
grep -qE "  done  " <<< "$("$work/ftsimc" -addr "$addr" status "$id")" \
  || die "phase-1 job did not finish: $("$work/ftsimc" -addr "$addr" status "$id")"
"$work/ftsimc" -addr "$addr" status -stats "$id" > /dev/null || die "no stats on finished job"
stop_daemon_hard

# ---------------------------------------------------------------- 2.
# Durability: kill the daemon mid-campaign, restart, compare against
# an uninterrupted control run.
say "phase 2: SIGKILL mid-campaign, restart, compare aggregates"
cat > "$work/req.json" <<'EOF'
{"name":"smoke-durability","seed":7,"workers":1,"trials":[
EOF
for i in 0 1 2 3 4 5; do
  comma=$([ "$i" = 5 ] && echo "" || echo ",")
  cat >> "$work/req.json" <<EOF
 {"label":"t$i","asm":"li r1, 400000\nloop: addi r1, r1, -1\n bne r1, r0, loop\n halt\n","config":{"max_insts":99000000,"max_cycles":990000000}}$comma
EOF
done
echo ']}' >> "$work/req.json"

start_daemon "$work/data2"
id=$("$work/ftsimc" -addr "$addr" submit "$work/req.json")
say "submitted $id; waiting for a mid-grid snapshot"
wait_for "$id" ' [1-5]/6 trials'
say "killing daemon mid-campaign (SIGKILL)"
stop_daemon_hard
[ -s "$work/data2/$id.ckpt" ] || die "killed daemon left no checkpoint journal"
[ ! -e "$work/data2/$id.done.json" ] || die "job finished before the kill; slow the trials down"

say "restarting daemon on the same data dir"
start_daemon "$work/data2"
wait_for "$id" '  done  '
"$work/ftsimc" -addr "$addr" status "$id" | grep -q 'resumed' \
  || die "restarted job resumed nothing: $("$work/ftsimc" -addr "$addr" status "$id")"
"$work/ftsimc" -addr "$addr" status -stats "$id" > "$work/resumed.json"

# ---------------------------------------------------------------- 3.
# Observability: the restarted daemon's /metrics must document what
# just happened — a recovered job, resumed trials, checkpoint fsyncs —
# and /healthz must report ready.
say "phase 3: scraping /metrics on the restarted daemon"
curl -fsS "$addr/metrics" > "$work/metrics.txt" || die "GET /metrics failed"

# metric_ge <regex> <min> — asserts one exposition line matches and its
# value is >= min.
metric_ge() {
  local line
  line=$(grep -E "^$1 " "$work/metrics.txt" | head -1)
  [ -n "$line" ] || die "metrics: no line matching '$1'"
  awk -v min="$2" '{ exit ($NF >= min) ? 0 : 1 }' <<< "$line" \
    || die "metrics: '$line' below expected minimum $2"
}
metric_ge 'ftsimd_http_requests_total\{route="GET /v1/campaigns/\{id\}",code="200"\}' 1
metric_ge 'ftsimd_jobs_total\{state="done"\}' 1
metric_ge 'ftsimd_jobs_running' 0
metric_ge 'ftsimd_queue_wait_seconds_count' 1
metric_ge 'ftsim_trials_total\{outcome="ok"\}' 1
metric_ge 'ftsim_trials_resumed_total' 1
metric_ge 'ftsim_checkpoint_syncs_total' 1
grep -q '^ftsim_trial_seconds_bucket' "$work/metrics.txt" \
  || die "metrics: no ftsim_trial_seconds histogram buckets"
grep -qE '^ftsimd_queue_depth 0$' "$work/metrics.txt" \
  || die "metrics: queue depth of an idle daemon is not 0"
say "core metric families present with sane values"

health_code=$(curl -s -o "$work/health.json" -w '%{http_code}' "$addr/healthz")
[ "$health_code" = 200 ] || die "healthz returned $health_code: $(cat "$work/health.json")"
grep -q '"status": "ok"' "$work/health.json" || die "healthz not ok: $(cat "$work/health.json")"

"$work/ftsimc" -addr "$addr" status -o json "$id" | grep -q '"state": "done"' \
  || die "ftsimc status -o json did not report the done job"
"$work/ftsimc" -addr "$addr" list -o json | grep -q "\"id\": \"$id\"" \
  || die "ftsimc list -o json did not include $id"
say "healthz ready, ftsimc -o json OK"
stop_daemon_hard

say "control: uninterrupted run of the same submission"
start_daemon "$work/data3"
id2=$("$work/ftsimc" -addr "$addr" submit "$work/req.json")
"$work/ftsimc" -addr "$addr" watch "$id2" > /dev/null
"$work/ftsimc" -addr "$addr" status -stats "$id2" > "$work/control.json"
stop_daemon_hard

if ! cmp -s "$work/resumed.json" "$work/control.json"; then
  diff "$work/resumed.json" "$work/control.json" | head -40 >&2 || true
  die "resumed aggregate stats differ from the uninterrupted run"
fi
say "resumed aggregate is byte-identical to the uninterrupted run"
say "OK"
