#!/usr/bin/env bash
# Run the simulator's tracking benchmarks and record them in
# BENCH_PR2.json under a label (default "after"), so the performance
# trajectory is visible from PR 2 onward.
#
# Usage:
#   scripts/bench.sh [label] [out.json]
#
# Environment:
#   BENCH_TIME      go test -benchtime value (default 2s; CI uses 1x)
#   BENCH_PATTERN   benchmark regexp (default Campaign|PipelineHot|SimulatorThroughput)
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-after}"
out="${2:-BENCH_PR2.json}"
benchtime="${BENCH_TIME:-2s}"
pattern="${BENCH_PATTERN:-Campaign|PipelineHot|SimulatorThroughput}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench="$pattern" -benchmem -benchtime="$benchtime" . | tee "$tmp"
go run ./cmd/benchparse -label "$label" -out "$out" < "$tmp"
