#!/usr/bin/env bash
# Run the simulator's tracking benchmarks and record them in the bench
# trajectory file (BENCH_PR9.json and predecessors) under a label
# (default "after"), optionally gating the fresh numbers against a
# recorded baseline.
#
# Usage:
#   scripts/bench.sh [label] [out.json]
#
# Environment:
#   BENCH_TIME             go test -benchtime value (default 2s; CI uses 1x)
#   BENCH_PATTERN          benchmark regexp (default Campaign|PipelineHot|SimulatorThroughput)
#   BENCH_GATE             baseline JSON to gate against (empty = no gate)
#   BENCH_GATE_LABEL       label inside the baseline file (default after)
#   BENCH_ALLOC_THRESHOLD  max fractional allocs/op growth (default 0.10)
#   BENCH_SPEED_THRESHOLD  max fractional */s-metric drop (default 0.10;
#                          CI uses a looser value — wall-clock throughput
#                          varies with runner hardware, allocation counts
#                          do not)
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-after}"
out="${2:-BENCH_PR9.json}"
benchtime="${BENCH_TIME:-2s}"
pattern="${BENCH_PATTERN:-Campaign|PipelineHot|SimulatorThroughput}"

gate_args=()
if [ -n "${BENCH_GATE:-}" ]; then
  gate_args=(-gate "$BENCH_GATE"
             -gate-label "${BENCH_GATE_LABEL:-after}"
             -alloc-threshold "${BENCH_ALLOC_THRESHOLD:-0.10}"
             -speed-threshold "${BENCH_SPEED_THRESHOLD:-0.10}")
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench="$pattern" -benchmem -benchtime="$benchtime" . | tee "$tmp"
go run ./cmd/benchparse -label "$label" -out "$out" "${gate_args[@]}" < "$tmp"
