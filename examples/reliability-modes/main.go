// Reliability-modes: the paper's motivating scenario — one die, many
// operating points. The same datapath runs unprotected for maximum
// single-thread performance, or trades throughput for coverage by
// switching on 2-way or 3-way redundant execution, with or without
// majority election.
//
// The table sweeps machine modes against fault rates and reports
// throughput plus whether corrupted state ever committed.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	profile, _ := workload.ByName("equake")
	program, err := profile.Build(1 << 32)
	if err != nil {
		log.Fatal(err)
	}

	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"SS-1 (fast, unprotected)", core.SS1()},
		{"SS-2 (detect + rewind)", core.SS2()},
		{"SS-3 (majority election)", core.SS3()},
		{"SS-3 (rewind only)", core.SS3Rewind()},
	}
	rates := []float64{0, 1e-5, 1e-3}

	t := stats.NewTable("One datapath, four reliability operating points (equake)",
		"mode", "fault rate", "IPC", "slowdown", "recoveries", "clean state")
	var base float64
	for _, m := range modes {
		for _, rate := range rates {
			cfg := m.cfg
			cfg.Fault = fault.Config{Rate: rate, Seed: 11, Targets: fault.AllTargets}
			cfg.Oracle = true
			cfg.MaxInsts = 60_000
			cfg.MaxCycles = 20_000_000
			st, err := core.Run(program, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if m.cfg.R == 1 && rate == 0 {
				base = st.IPC()
			}
			clean := "yes"
			if st.EscapedFaults > 0 {
				clean = fmt.Sprintf("NO (%d escapes)", st.EscapedFaults)
			}
			slow := "-"
			if base > 0 {
				slow = stats.Pct(1 - st.IPC()/base)
			}
			rateStr := "0"
			if rate > 0 {
				rateStr = fmt.Sprintf("%.0e", rate)
			}
			t.Add(m.name, rateStr, stats.F(st.IPC(), 3), slow,
				fmt.Sprintf("%d", st.FaultRewinds), clean)
		}
	}
	t.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Reading the table: redundancy costs throughput up front, but only the")
	fmt.Println("protected modes keep committed state clean once faults appear; majority")
	fmt.Println("election additionally avoids most rewinds at triple cost.")
}
