// Reliability-modes: the paper's motivating scenario — one die, many
// operating points. The same datapath runs unprotected for maximum
// single-thread performance, or trades throughput for coverage by
// switching on 2-way or 3-way redundant execution, with or without
// majority election.
//
// The table sweeps machine modes against fault rates and reports
// throughput plus whether corrupted state ever committed. Machine
// descriptions are serializable ftsim configs, so any row's exact
// machine could be persisted with cfg.JSON() and replayed elsewhere.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/ftsim"
)

func main() {
	program, err := ftsim.Benchmark("equake")
	if err != nil {
		log.Fatal(err)
	}

	modes := []struct {
		name  string
		model ftsim.Option
	}{
		{"SS-1 (fast, unprotected)", ftsim.SS1()},
		{"SS-2 (detect + rewind)", ftsim.SS2()},
		{"SS-3 (majority election)", ftsim.SS3()},
		{"SS-3 (rewind only)", ftsim.SS3Rewind()},
	}
	rates := []float64{0, 1e-5, 1e-3}

	ctx := context.Background()
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Println("One datapath, four reliability operating points (equake)")
	fmt.Fprintln(w, "mode\tfault rate\tIPC\tslowdown\trecoveries\tclean state")
	var base float64
	for _, mode := range modes {
		for _, rate := range rates {
			m, err := ftsim.New(mode.model,
				ftsim.WithFaultRate(rate),
				ftsim.WithFaultSeed(11),
				ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
				ftsim.WithOracle(),
				ftsim.WithMaxInsts(60_000),
				ftsim.WithMaxCycles(20_000_000))
			if err != nil {
				log.Fatal(err)
			}
			st, err := m.Run(ctx, program)
			if err != nil {
				log.Fatal(err)
			}
			cfg := m.Config()
			if cfg.R == 1 && rate == 0 {
				base = st.IPC()
			}
			clean := "yes"
			if st.EscapedFaults > 0 {
				clean = fmt.Sprintf("NO (%d escapes)", st.EscapedFaults)
			}
			slow := "-"
			if base > 0 {
				slow = fmt.Sprintf("%.1f%%", 100*(1-st.IPC()/base))
			}
			rateStr := "0"
			if rate > 0 {
				rateStr = fmt.Sprintf("%.0e", rate)
			}
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%s\t%d\t%s\n",
				mode.name, rateStr, st.IPC(), slow, st.FaultRewinds, clean)
		}
	}
	w.Flush()
	fmt.Println()
	fmt.Println("Reading the table: redundancy costs throughput up front, but only the")
	fmt.Println("protected modes keep committed state clean once faults appear; majority")
	fmt.Println("election additionally avoids most rewinds at triple cost.")
}
