// Quickstart: assemble a small SRISC program, run it on the unprotected
// baseline (SS-1) and on the 2-way redundant fault-tolerant design
// (SS-2), and compare throughput — the basic "performance cost of
// reliability" measurement of the paper, written entirely against the
// public ftsim API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/ftsim"
)

// A loop with eight independent add chains: enough instruction-level
// parallelism that redundant execution has spare capacity to use.
const src = `
        li   r1, 20000          ; iterations
        li   r2, 2107           ; chain seeds: r*1047+13
        li   r3, 3154
        li   r4, 4201
        li   r5, 5248
        li   r6, 6295
        li   r7, 7342
        li   r8, 8389
        li   r9, 9436
loop:   add  r2, r2, r1
        add  r3, r3, r1
        add  r4, r4, r1
        add  r5, r5, r1
        add  r6, r6, r1
        add  r7, r7, r1
        add  r8, r8, r1
        add  r9, r9, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        li   r11, 0             ; fold the chains into a checksum
        xor  r11, r11, r2
        xor  r11, r11, r3
        xor  r11, r11, r4
        xor  r11, r11, r5
        xor  r11, r11, r6
        xor  r11, r11, r7
        xor  r11, r11, r8
        xor  r11, r11, r9
        out  r11
        halt
`

func main() {
	program, err := ftsim.Assemble("quickstart.s", src)
	if err != nil {
		log.Fatal(err)
	}

	run := func(model ftsim.Option) {
		m, err := ftsim.New(model, ftsim.WithOracle())
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run(context.Background(), program)
		if err != nil {
			log.Fatal(err)
		}
		cfg := m.Config()
		fmt.Printf("%-8s R=%d  cycles=%-8d IPC=%.3f  checksum=%#x  escaped-faults=%d\n",
			cfg.Name, cfg.R, st.Cycles, st.IPC(), st.Output[0], st.EscapedFaults)
	}

	fmt.Println("quickstart: identical program, identical results, different protection")
	run(ftsim.SS1())
	run(ftsim.SS2())
	fmt.Println()
	fmt.Println("SS-2 executes every instruction twice and cross-checks at commit,")
	fmt.Println("so its IPC is lower — that gap is the price of fault detection.")
}
