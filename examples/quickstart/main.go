// Quickstart: build a small SRISC program, run it on the unprotected
// baseline (SS-1) and on the 2-way redundant fault-tolerant design
// (SS-2), and compare throughput — the basic "performance cost of
// reliability" measurement of the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
)

func main() {
	// A loop with eight independent add chains: enough instruction-level
	// parallelism that redundant execution has spare capacity to use.
	b := prog.NewBuilder("quickstart")
	b.Li(1, 20_000) // iterations
	for r := uint8(2); r < 10; r++ {
		b.Li(r, int64(r)*1047+13)
	}
	b.Label("loop")
	for r := uint8(2); r < 10; r++ {
		b.R(isa.OpAdd, r, r, 1)
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Li(11, 0)
	for r := uint8(2); r < 10; r++ {
		b.R(isa.OpXor, 11, 11, r)
	}
	b.Out(11) // checksum
	b.Halt()
	program := b.MustBuild()

	run := func(cfg core.Config) {
		cfg.Oracle = true
		st, err := core.Run(program, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s R=%d  cycles=%-8d IPC=%.3f  checksum=%#x  escaped-faults=%d\n",
			cfg.CPU.Name, cfg.R, st.Cycles, st.IPC(), st.Output[0], st.EscapedFaults)
	}

	fmt.Println("quickstart: identical program, identical results, different protection")
	run(core.SS1())
	run(core.SS2())
	fmt.Println()
	fmt.Println("SS-2 executes every instruction twice and cross-checks at commit,")
	fmt.Println("so its IPC is lower — that gap is the price of fault detection.")
}
