// Faultinjection: bombard the 2-way redundant machine with transient
// faults and show that (a) every fault with an architectural effect is
// detected at commit, (b) rewind recovery restores a correct state, and
// (c) the committed results stay identical to a fault-free reference —
// while the same fault rate silently corrupts the unprotected baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/funcsim"
	"repro/internal/workload"
)

func main() {
	profile, _ := workload.ByName("gcc")
	program, err := profile.Build(1 << 32)
	if err != nil {
		log.Fatal(err)
	}
	const insts = 100_000
	const rate = 2e-4 // one fault per 5000 executed copies: brutal

	// Fault-free functional reference.
	ref := funcsim.New(program)
	if err := ref.Run(insts * 2); err != nil && err != funcsim.ErrLimit {
		log.Fatal(err)
	}

	for _, cfg := range []core.Config{core.SS1(), core.SS2(), core.SS3()} {
		cfg.Fault = fault.Config{Rate: rate, Seed: 7, Targets: fault.AllTargets}
		cfg.Oracle = true
		cfg.MaxInsts = insts
		cfg.MaxCycles = insts * 200
		st, err := core.Run(program, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s injected=%-4d detected=%-4d rewinds=%-4d elected=%-4d avg-recovery=%5.1f cyc  IPC=%.3f  escaped=%d\n",
			cfg.CPU.Name, st.Fault.Injected, st.FaultsDetected, st.FaultRewinds,
			st.MajorityCommits, st.AvgRecoveryPenalty(), st.IPC(), st.EscapedFaults)
	}

	fmt.Println()
	fmt.Println("SS-1 has no detection: 'escaped' counts silent architectural corruption.")
	fmt.Println("SS-2 detects every effective fault and rewinds (tens of cycles each).")
	fmt.Println("SS-3 usually commits by majority election instead of rewinding.")
}
