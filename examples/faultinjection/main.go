// Faultinjection: bombard the 2-way redundant machine with transient
// faults and show that (a) every fault with an architectural effect is
// detected at commit, (b) rewind recovery restores a correct state, and
// (c) the committed results stay identical to a fault-free reference —
// while the same fault rate silently corrupts the unprotected baseline.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/ftsim"
)

func main() {
	program, err := ftsim.Benchmark("gcc")
	if err != nil {
		log.Fatal(err)
	}
	const insts = 100_000
	const rate = 2e-4 // one fault per 5000 executed copies: brutal

	// Fault-free functional reference.
	if _, err := program.Reference(insts * 2); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	for _, model := range []ftsim.Option{ftsim.SS1(), ftsim.SS2(), ftsim.SS3()} {
		m, err := ftsim.New(model,
			ftsim.WithFaultRate(rate),
			ftsim.WithFaultSeed(7),
			ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
			ftsim.WithOracle(),
			ftsim.WithMaxInsts(insts),
			ftsim.WithMaxCycles(insts*200))
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run(ctx, program)
		if err != nil {
			log.Fatal(err)
		}
		clean := "committed state clean"
		if err := ftsim.CheckEscapes(st); err != nil {
			if !errors.Is(err, ftsim.ErrFaultEscape) {
				log.Fatal(err)
			}
			clean = err.Error()
		}
		fmt.Printf("%-8s injected=%-4d detected=%-4d rewinds=%-4d elected=%-4d avg-recovery=%5.1f cyc  IPC=%.3f  %s\n",
			m.Config().Name, st.Fault.Injected, st.FaultsDetected, st.FaultRewinds,
			st.MajorityCommits, st.AvgRecoveryPenalty(), st.IPC(), clean)
	}

	fmt.Println()
	fmt.Println("SS-1 has no detection: its escape audit fails with silent corruption.")
	fmt.Println("SS-2 detects every effective fault and rewinds (tens of cycles each).")
	fmt.Println("SS-3 usually commits by majority election instead of rewinding.")
}
