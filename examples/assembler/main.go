// Assembler: write a real kernel — 16x16 integer matrix multiply — in
// SRISC text assembly, assemble it, and run it on both the functional
// reference simulator and the out-of-order pipeline, checking the
// result against a Go-computed reference.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/ftsim"
)

const n = 16

const matmulSrc = `
; C = A * B for 16x16 int64 matrices.
; r1=i r2=j r3=k r4=&A[i][k] r5=&B[k][j] r6=acc r7..r9 scratch
.data
a:      .space 2048         ; 16*16*8
b:      .space 2048
c:      .space 2048
.text
        ; initialise A[i][j] = i+j, B[i][j] = i-j+3
        li   r1, 0          ; i
initi:  li   r2, 0          ; j
initj:  slli r7, r1, 7      ; i*16*8
        slli r8, r2, 3      ; j*8
        add  r7, r7, r8     ; offset
        la   r9, a
        add  r9, r9, r7
        add  r10, r1, r2    ; i+j
        sd   r10, 0(r9)
        la   r9, b
        add  r9, r9, r7
        sub  r10, r1, r2
        addi r10, r10, 3    ; i-j+3
        sd   r10, 0(r9)
        addi r2, r2, 1
        slti r11, r2, 16
        bne  r11, r0, initj
        addi r1, r1, 1
        slti r11, r1, 16
        bne  r11, r0, initi

        ; triple loop
        li   r1, 0          ; i
loopi:  li   r2, 0          ; j
loopj:  li   r3, 0          ; k
        li   r6, 0          ; acc
loopk:  slli r7, r1, 7
        slli r8, r3, 3
        add  r7, r7, r8
        la   r4, a
        add  r4, r4, r7     ; &A[i][k]
        slli r7, r3, 7
        slli r8, r2, 3
        add  r7, r7, r8
        la   r5, b
        add  r5, r5, r7     ; &B[k][j]
        ld   r9, 0(r4)
        ld   r10, 0(r5)
        mul  r9, r9, r10
        add  r6, r6, r9
        addi r3, r3, 1
        slti r11, r3, 16
        bne  r11, r0, loopk
        slli r7, r1, 7
        slli r8, r2, 3
        add  r7, r7, r8
        la   r5, c
        add  r5, r5, r7
        sd   r6, 0(r5)      ; C[i][j] = acc
        addi r2, r2, 1
        slti r11, r2, 16
        bne  r11, r0, loopj
        addi r1, r1, 1
        slti r11, r1, 16
        bne  r11, r0, loopi

        ; emit the trace: C[0][0], C[7][9], C[15][15]
        la   r5, c
        ld   r9, 0(r5)
        out  r9
        ld   r9, 968(r5)    ; (7*16+9)*8
        out  r9
        ld   r9, 2040(r5)   ; (15*16+15)*8
        out  r9
        halt
`

func reference() (c [n][n]int64) {
	var a, b [n][n]int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = int64(i + j)
			b[i][j] = int64(i - j + 3)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += a[i][k] * b[k][j]
			}
			c[i][j] = acc
		}
	}
	return c
}

func main() {
	program, err := ftsim.Assemble("matmul", matmulSrc)
	if err != nil {
		log.Fatal(err)
	}
	want := reference()
	expect := []int64{want[0][0], want[7][9], want[15][15]}

	// Functional reference simulator.
	ref, err := program.Reference(10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional: %d instructions, C[0][0]=%d C[7][9]=%d C[15][15]=%d\n",
		ref.Insts, int64(ref.Output[0]), int64(ref.Output[1]), int64(ref.Output[2]))

	// Out-of-order pipeline, fault-tolerant mode, with the oracle on.
	m, err := ftsim.New(ftsim.SS2(), ftsim.WithOracle())
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(context.Background(), program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SS-2:       %d cycles, IPC %.3f, escaped faults %d\n",
		st.Cycles, st.IPC(), st.EscapedFaults)

	for i, got := range st.Output {
		if int64(got) != expect[i] {
			log.Fatalf("C mismatch at sample %d: got %d, want %d", i, int64(got), expect[i])
		}
	}
	fmt.Println("matmul results match the Go reference on both simulators.")
}
