package ftsim_test

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/ftsim"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestConfigGoldens pins the serialized form of the four paper machine
// models: the golden JSON must both match what the presets marshal to
// and parse back into the identical configuration. Run with -update to
// regenerate after an intentional schema change.
func TestConfigGoldens(t *testing.T) {
	for _, model := range []ftsim.Model{ftsim.ModelSS1, ftsim.ModelSS2, ftsim.ModelSS3, ftsim.ModelStatic2} {
		t.Run(string(model), func(t *testing.T) {
			cfg := model.Config()
			data, err := cfg.JSON()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", string(model)+".json")
			if *update {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./ftsim -update` to create)", err)
			}
			if !bytes.Equal(data, want) {
				t.Errorf("%s: serialized config differs from golden file\ngot:\n%s\nwant:\n%s", model, data, want)
			}

			parsed, err := ftsim.ParseConfig(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(parsed, cfg) {
				t.Errorf("%s: round-trip mismatch\nparsed: %+v\npreset: %+v", model, parsed, cfg)
			}
		})
	}
}

// TestParseConfigDefaults: a minimal hand-written description gets
// Table 1 defaults for everything omitted.
func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ftsim.ParseConfig([]byte(`{"model": "ss2", "r": 2, "max_insts": 1000}`))
	if err != nil {
		t.Fatal(err)
	}
	ss2 := ftsim.ModelSS2.Config()
	if cfg.Pipeline != ss2.Pipeline {
		t.Errorf("pipeline defaults not applied: %+v", cfg.Pipeline)
	}
	if cfg.Memory != ss2.Memory {
		t.Errorf("memory defaults not applied: %+v", cfg.Memory)
	}
	if cfg.MaxInsts != 1000 {
		t.Errorf("explicit field lost: MaxInsts = %d", cfg.MaxInsts)
	}
	if cfg.Name != "SS-2" {
		t.Errorf("display name = %q", cfg.Name)
	}
}

// TestParseConfigRejectsUnknownFields: typos in a persisted machine
// description must fail loudly, not silently default.
func TestParseConfigRejectsUnknownFields(t *testing.T) {
	_, err := ftsim.ParseConfig([]byte(`{"model": "ss2", "r": 2, "fualt": {"rate": 0.1}}`))
	if !errors.Is(err, ftsim.ErrInvalidConfig) {
		t.Fatalf("unknown field accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "fualt") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
}

// TestValidationErrors covers the required failure cases: R < 1, zero
// widths, bad fault rates — plus the model/threshold/geometry checks.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ftsim.Config)
		field  string
		// normalizes marks defects Normalized legitimately repairs (an
		// omitted field taking its default), so only raw Validate — not
		// machine construction — rejects them.
		normalizes bool
	}{
		{"R zero", func(c *ftsim.Config) { c.R = 0 }, "r", true},
		{"R negative", func(c *ftsim.Config) { c.R = -2 }, "r", false},
		{"zero commit width", func(c *ftsim.Config) { c.Pipeline.CommitWidth = 0 }, "pipeline", false},
		{"zero fetch width", func(c *ftsim.Config) { c.Pipeline.FetchWidth = 0 }, "pipeline", false},
		{"zero RUU", func(c *ftsim.Config) { c.Pipeline.RUUSize = 0 }, "pipeline.ruu_size", false},
		{"zero LSQ", func(c *ftsim.Config) { c.Pipeline.LSQSize = 0 }, "pipeline.lsq_size", false},
		{"no int ALU", func(c *ftsim.Config) { c.Pipeline.IntALU = 0 }, "pipeline", false},
		{"fault rate negative", func(c *ftsim.Config) { c.Fault.Rate = -0.5 }, "fault.rate", false},
		{"fault rate above one", func(c *ftsim.Config) { c.Fault.Rate = 1.5 }, "fault.rate", false},
		{"bad fault target", func(c *ftsim.Config) { c.Fault.Targets = []ftsim.FaultTarget{"cosmic"} }, "fault.targets", false},
		{"majority needs R3", func(c *ftsim.Config) { c.R = 2; c.Majority = true }, "majority", false},
		{"threshold above R", func(c *ftsim.Config) { c.MajorityThreshold = 9 }, "majority_threshold", false},
		{"commit narrower than R", func(c *ftsim.Config) { c.R = 3; c.Pipeline.CommitWidth = 2 }, "pipeline", false},
		{"fetch queue under width", func(c *ftsim.Config) { c.Pipeline.FetchQueue = 1 }, "pipeline.fetch_queue", false},
		{"bad cache geometry", func(c *ftsim.Config) { c.Memory.DL1.Ways = 7 }, "memory.dl1", false},
		{"bad predictor kind", func(c *ftsim.Config) { c.BranchPred.Kind = "psychic" }, "branch_pred.kind", false},
		{"bad persistent pool", func(c *ftsim.Config) { c.Persistent = &ftsim.PersistentFault{Pool: "gpu"} }, "persistent.pool", false},
		{"unknown model", func(c *ftsim.Config) { c.Model = "ss9" }, "model", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ftsim.ModelSS2.Config()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, ftsim.ErrInvalidConfig) {
				t.Fatalf("Validate() = %v, want ErrInvalidConfig", err)
			}
			var ce *ftsim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("no *ConfigError in %v", err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not name field %q", err, tc.field)
			}
			// The same bad config must be rejected at machine build,
			// unless normalization legitimately repairs it.
			if _, err := ftsim.NewFromConfig(cfg); err == nil && !tc.normalizes {
				t.Error("NewFromConfig accepted the invalid config")
			}
		})
	}

	if err := ftsim.ModelSS3.Config().Validate(); err != nil {
		t.Errorf("valid preset rejected: %v", err)
	}
}

// TestValidationJoinsAllProblems: multiple defects are all reported.
func TestValidationJoinsAllProblems(t *testing.T) {
	cfg := ftsim.ModelSS2.Config()
	cfg.R = 0
	cfg.Fault.Rate = 2
	cfg.Pipeline.LSQSize = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("no error")
	}
	for _, want := range []string{"r:", "fault.rate", "pipeline.lsq_size"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestConfigCloneIsolation: the config returned by Machine.Config must
// not alias the machine's internal state.
func TestConfigCloneIsolation(t *testing.T) {
	m, err := ftsim.New(ftsim.SS2(),
		ftsim.WithFaultRate(0.001),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithPersistentFault(ftsim.PersistentFault{Pool: "int-alu", Unit: 0, Bit: 5}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	cfg.Fault.Targets[0] = "cosmic"
	cfg.Persistent.Bit = 63
	cfg2 := m.Config()
	if cfg2.Fault.Targets[0] == "cosmic" || cfg2.Persistent.Bit == 63 {
		t.Error("Machine.Config aliases internal state")
	}
}

// TestModelsListed: every listed model has a valid, runnable preset.
func TestModelsListed(t *testing.T) {
	for _, m := range ftsim.Models() {
		cfg := m.Config()
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
	if len(ftsim.Models()) != 5 {
		t.Errorf("Models() = %v", ftsim.Models())
	}
}
