package ftsim_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/ftsim"
	"repro/internal/testenv"
)

// faultMachine builds the standard test machine: the given model with
// fault injection on all targets.
func faultMachine(t *testing.T, model ftsim.Model, insts uint64, rate float64, seed int64) *ftsim.Machine {
	t.Helper()
	m, err := ftsim.New(
		ftsim.WithModel(model),
		ftsim.WithFaultRate(rate),
		ftsim.WithFaultSeed(seed),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithMaxInsts(insts),
		ftsim.WithMaxCycles(insts*100))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// dirtyPool returns a pool whose machines have seen real action: a
// completed Static-2 run on one program and a cancelled SS-3 run on
// another, so every subsequent checkout recycles a machine with stale
// caches, predictor state, in-flight window entries and injector RNG
// position. With GOMAXPROCS=1 the underlying sync.Pool hands the most
// recently returned machine straight back, so the recycled path — not
// the fresh-build fallback — is what the equivalence sweep exercises.
func dirtyPool(t *testing.T) *ftsim.MachinePool {
	t.Helper()
	pool := new(ftsim.MachinePool)
	p1, err := ftsim.Benchmark("vortex")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ftsim.New(ftsim.Static2(), ftsim.WithMaxInsts(3_000), ftsim.WithMaxCycles(300_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.RunPooled(context.Background(), pool, p1); err != nil {
		t.Fatal(err)
	}
	p2, err := ftsim.Benchmark("ammp")
	if err != nil {
		t.Fatal(err)
	}
	m2 := faultMachine(t, ftsim.ModelSS3, 0, 1e-3, 77) // no limits: only cancellation stops it
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m2.RunPooled(ctx, pool, p2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pooled run returned %v", err)
	}
	return pool
}

// TestPooledMatchesFresh is the pooled-vs-fresh equivalence gate the
// pool's documentation promises: across the Table 2 benchmarks, R in
// {1,2,3} and fault injection, a run on a deliberately dirtied pool
// must produce Stats deeply equal to the same run on a fresh machine.
func TestPooledMatchesFresh(t *testing.T) {
	benches := ftsim.Benchmarks()
	if testing.Short() {
		benches = benches[:3]
	}
	models := []ftsim.Model{ftsim.ModelSS1, ftsim.ModelSS2, ftsim.ModelSS3}
	const insts = 10_000
	const rate = 1e-4

	pool := dirtyPool(t)
	for _, bench := range benches {
		for i, model := range models {
			seed := int64(37*i) + int64(len(bench))
			t.Run(bench+"/"+string(model), func(t *testing.T) {
				p, err := ftsim.Benchmark(bench)
				if err != nil {
					t.Fatal(err)
				}
				m := faultMachine(t, model, insts, rate, seed)
				want, err := m.Run(context.Background(), p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.RunPooled(context.Background(), pool, p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("pooled run diverges from fresh\nfresh:  %s\npooled: %s",
						want.Summary(), got.Summary())
				}
			})
		}
	}
}

// TestPooledObserver: session features (observers, trace buffers) work
// identically on pooled machines — same final Stats as an unobserved
// fresh run, and a live interval stream.
func TestPooledObserver(t *testing.T) {
	p, err := ftsim.Benchmark("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	want, err := faultMachine(t, ftsim.ModelSS2, 10_000, 1e-4, 5).Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	var ivs []ftsim.Interval
	m, err := ftsim.New(ftsim.SS2(),
		ftsim.WithFaultRate(1e-4),
		ftsim.WithFaultSeed(5),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithMaxInsts(10_000),
		ftsim.WithMaxCycles(1_000_000),
		ftsim.WithObserver(ftsim.ObserverFunc(func(iv ftsim.Interval) { ivs = append(ivs, iv) })),
		ftsim.WithObserveEvery(1000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.RunPooled(context.Background(), dirtyPool(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("observed pooled run diverges:\nfresh:  %s\npooled: %s", want.Summary(), got.Summary())
	}
	if len(ivs) < 2 || !ivs[len(ivs)-1].Final {
		t.Errorf("observer stream broken on pooled run: %d intervals", len(ivs))
	}
}

// TestRunPooledAllocBudget pins the pooled campaign trial's allocation
// ceiling: once the pool is warm, one complete trial — checkout, reset,
// full simulation, stats snapshot, return — must stay within a fixed
// budget, two orders of magnitude under the old build-per-trial cost.
func TestRunPooledAllocBudget(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const ceiling = 64
	p, err := ftsim.Benchmark("gcc")
	if err != nil {
		t.Fatal(err)
	}
	m := faultMachine(t, ftsim.ModelSS2, 5_000, 1e-4, 3)
	pool := new(ftsim.MachinePool)
	run := func() {
		if _, err := m.RunPooled(context.Background(), pool, p); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: first checkout builds the machine
	run() // second: slabs past their growth tail
	got := testing.AllocsPerRun(5, run)
	t.Logf("%.1f allocs per warm pooled trial", got)
	if got > ceiling {
		t.Errorf("warm pooled trial allocates %.1f/run, budget %d", got, ceiling)
	}
}

// TestMachinePoolRace hammers one shared pool from many goroutines with
// heterogeneous configurations and mid-run cancellation — the campaign
// engine's worst case. Run under -race (CI does); beyond race-freedom
// it asserts that every completed run matches its fresh-machine
// reference regardless of which goroutine's cast-offs it recycled.
func TestMachinePoolRace(t *testing.T) {
	const insts = 2_000
	benches := []string{"gcc", "swim", "bzip"}
	models := []ftsim.Model{ftsim.ModelSS1, ftsim.ModelSS2, ftsim.ModelSS3}

	type point struct {
		bench string
		model ftsim.Model
		seed  int64
	}
	var pts []point
	want := map[point]*ftsim.Stats{}
	for i, b := range benches {
		for j, mo := range models {
			pt := point{b, mo, int64(10*i + j + 1)}
			p, err := ftsim.Benchmark(b)
			if err != nil {
				t.Fatal(err)
			}
			st, err := faultMachine(t, mo, insts, 1e-4, pt.seed).Run(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			pts = append(pts, pt)
			want[pt] = st
		}
	}

	pool := new(ftsim.MachinePool)
	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pt := pts[(w*rounds+r)%len(pts)]
				p, err := ftsim.Benchmark(pt.bench)
				if err != nil {
					errs <- err
					return
				}
				// Odd rounds first poison the pool with a cancelled run.
				if r%2 == 1 {
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					mc := faultMachine(t, pt.model, 0, 1e-3, pt.seed)
					if _, err := mc.RunPooled(ctx, pool, p); !errors.Is(err, context.Canceled) {
						errs <- fmt.Errorf("worker %d: cancelled run returned %v", w, err)
						return
					}
				}
				m := faultMachine(t, pt.model, insts, 1e-4, pt.seed)
				got, err := m.RunPooled(context.Background(), pool, p)
				if err != nil {
					errs <- fmt.Errorf("worker %d %s/%s: %v", w, pt.bench, pt.model, err)
					return
				}
				if !reflect.DeepEqual(want[pt], got) {
					errs <- fmt.Errorf("worker %d %s/%s: pooled run diverged", w, pt.bench, pt.model)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
