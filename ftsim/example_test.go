package ftsim_test

import (
	"context"
	"fmt"
	"log"

	"repro/ftsim"
)

// A tiny SRISC kernel: four independent accumulator chains folded into
// a checksum, enough instruction-level parallelism for redundant
// execution to exploit.
const exampleSrc = `
        li   r1, 2000           ; iterations
        li   r2, 11
        li   r3, 22
        li   r4, 33
        li   r5, 44
loop:   add  r2, r2, r1
        add  r3, r3, r1
        add  r4, r4, r1
        add  r5, r5, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        xor  r2, r2, r3
        xor  r2, r2, r4
        xor  r2, r2, r5
        out  r2
        halt
`

// Example builds the same program twice — once on the unprotected SS-1
// baseline, once on the 2-way redundant SS-2 design — and shows that
// protection changes throughput, never results.
func Example() {
	program, err := ftsim.Assemble("quickstart.s", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	for _, model := range []ftsim.Option{ftsim.SS1(), ftsim.SS2()} {
		m, err := ftsim.New(model)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run(context.Background(), program)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d instructions committed, checksum %#x\n",
			m.Config().Name, st.Committed, st.Output[0])
	}
	// Output:
	// SS-1: 12010 instructions committed, checksum 0x10
	// SS-2: 12010 instructions committed, checksum 0x10
}

// Example_faultInjection bombards the 2-way redundant design with
// transient faults: every fault with an architectural effect is caught
// by the commit-stage cross-check and repaired by rewind, so the
// oracle co-simulation sees no corruption escape.
func Example_faultInjection() {
	m, err := ftsim.New(ftsim.SS2(),
		ftsim.WithFaultRate(1e-3),
		ftsim.WithFaultSeed(7),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithOracle(),
		ftsim.WithMaxInsts(20_000))
	if err != nil {
		log.Fatal(err)
	}
	program, err := ftsim.Benchmark("go")
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(context.Background(), program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faults detected: %d\n", st.FaultsDetected)
	fmt.Printf("rewind recoveries: %d\n", st.FaultRewinds)
	fmt.Printf("state clean: %v\n", ftsim.CheckEscapes(st) == nil)
	// Output:
	// faults detected: 38
	// rewind recoveries: 38
	// state clean: true
}

// Example_majorityElection runs the triple-redundant design under the
// same fault storm: with three copies of every instruction, a corrupted
// minority is outvoted and the group commits without paying for a
// rewind — most recoveries become elections.
func Example_majorityElection() {
	m, err := ftsim.New(ftsim.SS3(),
		ftsim.WithFaultRate(1e-3),
		ftsim.WithFaultSeed(7),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithOracle(),
		ftsim.WithMaxInsts(20_000))
	if err != nil {
		log.Fatal(err)
	}
	program, err := ftsim.Benchmark("go")
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run(context.Background(), program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faults detected: %d\n", st.FaultsDetected)
	fmt.Printf("majority elections: %d\n", st.MajorityCommits)
	fmt.Printf("rewind recoveries: %d\n", st.FaultRewinds)
	fmt.Printf("state clean: %v\n", ftsim.CheckEscapes(st) == nil)
	// Output:
	// faults detected: 101
	// majority elections: 93
	// rewind recoveries: 8
	// state clean: true
}
