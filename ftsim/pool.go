package ftsim

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/trace"
)

// MachinePool recycles the internal simulator machines that back runs,
// so a campaign of thousands of short trials stops paying the full
// machine construction cost (entry slabs, cache line arrays, predictor
// tables, memory pages, injector RNG state) per trial. The zero value
// is ready to use. A pool is safe for concurrent use by any number of
// goroutines; it may hold machines of different configurations — a
// checked-out machine is reset to the requesting run's configuration,
// reusing whatever of its storage still fits.
//
// Pooling is invisible in the results: a run on a recycled machine is
// bit-identical to the same run on a fresh one (the pooled-vs-fresh
// equivalence suite asserts full Stats equality). Sessions created by
// Load never touch a pool, so the single-use Session semantics are
// unchanged.
type MachinePool struct {
	pool sync.Pool // holds *cpu.Machine
}

func (p *MachinePool) get() *cpu.Machine {
	if v := p.pool.Get(); v != nil {
		return v.(*cpu.Machine)
	}
	return nil
}

func (p *MachinePool) put(m *cpu.Machine) {
	if m != nil {
		p.pool.Put(m)
	}
}

// RunPooled is Run backed by a machine pool: the simulation runs on a
// recycled machine when one is available (resetting it in place) and on
// a fresh one otherwise, and the machine is returned to the pool
// afterwards — including after cancellation or simulation errors, since
// reset fully sanitises in-flight state. The returned Stats is a
// snapshot owned by the caller, never aliased to pooled machine state.
func (m *Machine) RunPooled(ctx context.Context, pool *MachinePool, p *Program) (*Stats, error) {
	coreCfg, err := m.cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	coreCfg.StrictOracle = m.strict
	s := &Session{name: m.cfg.Name, obs: m.obs}
	if m.obs != nil {
		every := m.every
		if every == 0 {
			every = DefaultObserveEvery
		}
		coreCfg.CPU.Observe = s.tap
		coreCfg.CPU.ObserveEvery = every
	}
	if m.traceCap > 0 {
		s.trace = trace.NewBuffer(m.traceCap)
		coreCfg.CPU.Tracer = s.trace
	}
	recycled := pool.get()
	cm, err := coreCfg.Rebuild(recycled, p.p)
	if err != nil {
		// Rebuild validates before mutating, so the recycled machine is
		// still intact; keep it pooled.
		pool.put(recycled)
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	s.cm = cm
	st, err := s.Run(ctx)
	out := *st
	pool.put(cm)
	return &out, err
}
