package ftsim_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/ftsim"
)

// benchProgram builds a named benchmark or fails the test.
func benchProgram(t *testing.T, name string) *ftsim.Program {
	t.Helper()
	p, err := ftsim.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSnapshotRestoreResumesRun snapshots a budget-limited session and
// resumes it on a fresh machine under a larger budget: the resumed run
// must finish the workload with the same architectural results as an
// uninterrupted run. (Cycle counts may differ by the cost of the
// quiesce rewind; committed state may not.)
func TestSnapshotRestoreResumesRun(t *testing.T) {
	program, err := ftsim.Assemble("roundtrip.s", `
        li   r1, 3000           ; iterations
        li   r2, 11
        li   r3, 22
loop:   add  r2, r2, r1
        xor  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r3
        halt
`)
	if err != nil {
		t.Fatal(err)
	}

	cfg := ftsim.Model("ss2").Config()
	cfg.MaxInsts = 4_000 // well short of the ~12k-instruction workload
	cfg.MaxCycles = 1_000_000

	m1, err := ftsim.NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m1.Load(program)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := s1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st1.Halted {
		t.Fatal("donor run halted inside its budget; snapshot would not be mid-run")
	}
	blob := s1.Snapshot()

	full := cfg
	full.MaxInsts = 0 // run limits are exempt from the snapshot fingerprint

	m2, err := ftsim.NewFromConfig(full)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m3, err := ftsim.NewFromConfig(full)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m3.Run(context.Background(), program)
	if err != nil {
		t.Fatal(err)
	}

	if !got.Halted {
		t.Error("resumed run did not reach halt")
	}
	if got.Committed != want.Committed {
		t.Errorf("committed instructions: resumed %d, uninterrupted %d", got.Committed, want.Committed)
	}
	if !reflect.DeepEqual(got.Output, want.Output) {
		t.Errorf("program output: resumed %v, uninterrupted %v", got.Output, want.Output)
	}
	if got.Cycles <= st1.Cycles {
		t.Errorf("resumed run's cycle count %d did not advance past the snapshot's %d", got.Cycles, st1.Cycles)
	}
}

// TestRestoreRejectsWrongMachine: a snapshot only restores onto an
// equivalent machine configuration.
func TestRestoreRejectsWrongMachine(t *testing.T) {
	cfg := ftsim.Model("ss2").Config()
	cfg.MaxInsts = 1_000
	m, err := ftsim.NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Load(benchProgram(t, "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob := s.Snapshot()

	other, err := ftsim.New(ftsim.SS3())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Restore(blob); !errors.Is(err, ftsim.ErrSnapshotMismatch) {
		t.Fatalf("restoring an SS-2 snapshot on SS-3 gave %v, want ErrSnapshotMismatch", err)
	}

	// Same machine: damaged blobs are rejected before touching state.
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)-7] },
		"bit-flipped": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 0x40; return c },
	} {
		m2, err := ftsim.NewFromConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Restore(mangle(blob)); !errors.Is(err, ftsim.ErrSnapshotCorrupt) {
			t.Errorf("%s blob: got %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

// campaignGrid builds a small but non-trivial grid: two benchmarks
// across two fault rates on the 2-way redundant design.
func campaignGrid(t *testing.T) []ftsim.Trial {
	t.Helper()
	var trials []ftsim.Trial
	for _, bench := range []string{"gcc", "swim"} {
		p := benchProgram(t, bench)
		for _, rate := range []float64{0, 1e-4} {
			cfg := ftsim.Model("ss2").Config()
			cfg.MaxInsts = 2_000
			cfg.MaxCycles = 1_000_000
			cfg.Fault.Rate = rate
			if rate > 0 {
				cfg.Fault.Targets = ftsim.AllFaultTargets()
			}
			trials = append(trials, ftsim.Trial{
				Label:   fmt.Sprintf("%s/rate=%g", bench, rate),
				Config:  cfg,
				Program: p,
			})
		}
	}
	return trials
}

// TestRunCampaignDeterministicAcrossWorkers: any worker count produces
// identical statistics.
func TestRunCampaignDeterministicAcrossWorkers(t *testing.T) {
	trials := campaignGrid(t)
	var stats [][]*ftsim.Stats
	for _, workers := range []int{1, 4} {
		rep, err := ftsim.RunCampaign(context.Background(), "det", trials,
			ftsim.WithWorkers(workers), ftsim.WithCampaignSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		st, err := ftsim.CollectStats(rep)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	if !reflect.DeepEqual(stats[0], stats[1]) {
		t.Error("campaign statistics differ between 1 and 4 workers")
	}
}

// TestRunCampaignTrialSeedOffset: a sub-range of a grid run with
// WithTrialSeedOffset produces exactly the statistics the full run
// produced at those indices — the invariant that makes sharded
// campaigns merge byte-identical to unsharded ones. Fault injection is
// enabled on half the grid, so a wrong seed would change the numbers.
func TestRunCampaignTrialSeedOffset(t *testing.T) {
	trials := campaignGrid(t)
	full, err := ftsim.RunCampaign(context.Background(), "offset", trials,
		ftsim.WithCampaignSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ftsim.CollectStats(full)
	if err != nil {
		t.Fatal(err)
	}

	// Split the grid at every boundary, including the degenerate ones.
	for cut := 0; cut <= len(trials); cut++ {
		var got []*ftsim.Stats
		for _, part := range []struct{ lo, hi int }{{0, cut}, {cut, len(trials)}} {
			if part.lo == part.hi {
				continue
			}
			rep, err := ftsim.RunCampaign(context.Background(), "offset", trials[part.lo:part.hi],
				ftsim.WithCampaignSeed(5), ftsim.WithTrialSeedOffset(part.lo))
			if err != nil {
				t.Fatal(err)
			}
			st, err := ftsim.CollectStats(rep)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, st...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("split at %d: sharded statistics differ from the full run's", cut)
		}
	}

	// Negative control: at a fault rate high enough that every seed
	// injects many faults, shifting the offset must change the numbers —
	// otherwise the invariance above proves nothing about seeds.
	hot := ftsim.Model("ss2").Config()
	hot.MaxInsts = 2_000
	hot.MaxCycles = 1_000_000
	hot.Fault.Rate = 1e-2
	hot.Fault.Targets = ftsim.AllFaultTargets()
	hotTrial := []ftsim.Trial{{Label: "hot", Config: hot, Program: benchProgram(t, "gcc")}}
	var hotStats []*ftsim.Stats
	for _, off := range []int{0, 1} {
		rep, err := ftsim.RunCampaign(context.Background(), "offset", hotTrial,
			ftsim.WithCampaignSeed(5), ftsim.WithTrialSeedOffset(off))
		if err != nil {
			t.Fatal(err)
		}
		st, err := ftsim.CollectStats(rep)
		if err != nil {
			t.Fatal(err)
		}
		hotStats = append(hotStats, st...)
	}
	if reflect.DeepEqual(hotStats[0], hotStats[1]) {
		t.Error("seed offsets 0 and 1 produced identical fault statistics; offsets are not reaching seed derivation")
	}
}

// TestRunCampaignTimeoutManifest: with containment (the default), trials
// that exceed the per-trial deadline land in the error manifest as
// ErrTrialTimeout without aborting the campaign run.
func TestRunCampaignTimeoutManifest(t *testing.T) {
	trials := campaignGrid(t)
	rep, err := ftsim.RunCampaign(context.Background(), "slow", trials,
		ftsim.WithWorkers(2), ftsim.WithTrialTimeout(time.Nanosecond))
	if err == nil {
		t.Fatal("campaign full of timed-out trials reported success")
	}
	if !errors.Is(err, ftsim.ErrTrialTimeout) {
		t.Fatalf("campaign error %v does not unwrap to ErrTrialTimeout", err)
	}
	fails := rep.Failures()
	if len(fails) != len(trials) {
		t.Fatalf("manifest has %d failures, want %d", len(fails), len(trials))
	}
	for _, f := range fails {
		if !errors.Is(f.Err, ftsim.ErrTrialTimeout) {
			t.Errorf("trial %d (%s): %v, want ErrTrialTimeout", f.Index, f.Label, f.Err)
		}
	}
	if _, err := ftsim.CollectStats(rep); err == nil {
		t.Error("CollectStats over a failed grid reported success")
	}
}

// TestRunCampaignCheckpointResume kills a campaign (via context cancel)
// after two completed trials and resumes it from the journal: only the
// unfinished trials re-run, and the final statistics are identical to
// an uninterrupted campaign's.
func TestRunCampaignCheckpointResume(t *testing.T) {
	trials := campaignGrid(t)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	completed := 0
	_, err := ftsim.RunCampaign(ctx, "resume", trials,
		ftsim.WithWorkers(1), // sequential, so exactly two trials finish
		ftsim.WithCheckpoint(path),
		ftsim.WithCampaignProgress(func(done, total int, r ftsim.TrialResult) {
			if completed++; completed == 2 {
				cancel()
			}
		}))
	if err == nil {
		t.Fatal("cancelled campaign reported success")
	}

	rep, err := ftsim.RunCampaign(context.Background(), "resume", trials,
		ftsim.WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 2 {
		t.Errorf("resumed %d trials from the journal, want 2", rep.Resumed)
	}
	got, err := ftsim.CollectStats(rep)
	if err != nil {
		t.Fatal(err)
	}

	clean, err := ftsim.RunCampaign(context.Background(), "resume", trials)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ftsim.CollectStats(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed campaign statistics differ from an uninterrupted run's")
	}

	// A third run over the now-complete journal executes nothing.
	rep, err = ftsim.RunCampaign(context.Background(), "resume", trials,
		ftsim.WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != len(trials) {
		t.Errorf("complete journal resumed %d trials, want all %d", rep.Resumed, len(trials))
	}
}

// TestRunCampaignCheckpointRejectsChangedGrid: editing a trial's machine
// configuration invalidates the journal instead of silently mixing
// results from two different campaigns.
func TestRunCampaignCheckpointRejectsChangedGrid(t *testing.T) {
	trials := campaignGrid(t)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	if _, err := ftsim.RunCampaign(context.Background(), "grid", trials,
		ftsim.WithCheckpoint(path)); err != nil {
		t.Fatal(err)
	}

	changed := append([]ftsim.Trial(nil), trials...)
	changed[1].Config.Fault.Rate = 5e-4
	_, err := ftsim.RunCampaign(context.Background(), "grid", changed,
		ftsim.WithCheckpoint(path))
	if !errors.Is(err, ftsim.ErrCheckpointMismatch) {
		t.Fatalf("changed grid resumed with %v, want ErrCheckpointMismatch", err)
	}
}
