package ftsim

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
)

// The package's error taxonomy. Every error returned by ftsim either is
// one of these sentinels, wraps one (test with errors.Is), or is a
// context error propagated from Session.Run.
var (
	// ErrInvalidConfig is the root of all configuration validation
	// failures; the concrete errors are *ConfigError values naming the
	// offending field.
	ErrInvalidConfig = errors.New("ftsim: invalid configuration")

	// ErrUnknownModel reports a Model label that names none of the
	// paper's machine designs.
	ErrUnknownModel = errors.New("ftsim: unknown machine model")

	// ErrUnknownBenchmark reports a benchmark name outside the Table 2
	// suite; Benchmarks lists the valid names.
	ErrUnknownBenchmark = errors.New("ftsim: unknown benchmark")

	// ErrDeadlock reports that the pipeline stopped committing
	// instructions — a simulator invariant violation, not a program
	// property.
	ErrDeadlock = cpu.ErrDeadlock

	// ErrOracleMismatch reports that the in-order oracle co-simulation
	// diverged from the pipeline's committed state: corruption escaped
	// the commit-stage checks. Returned (as a wrapping *OracleError)
	// only by sessions built with WithStrictOracle.
	ErrOracleMismatch = cpu.ErrOracleMismatch

	// ErrFaultEscape is the post-run form of the same condition,
	// reported by CheckEscapes when a completed run counted escaped
	// faults.
	ErrFaultEscape = errors.New("ftsim: faults escaped detection (corrupted state committed)")
)

// OracleError carries the first divergence of a strict-oracle run: the
// cycle and program counter of the diverging commit and which
// architectural effect disagreed. It unwraps to ErrOracleMismatch.
type OracleError = cpu.OracleError

// ConfigError is one configuration validation failure. Validate returns
// an errors.Join of every failure it finds, each a *ConfigError.
type ConfigError struct {
	// Field is the offending field in JSON path form, e.g. "fault.rate".
	Field string
	// Reason says what is wrong with the value.
	Reason string

	// cause, when non-nil, is a more specific sentinel (e.g.
	// ErrUnknownModel) surfaced through Unwrap.
	cause error
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("%v: %s: %s", ErrInvalidConfig, e.Field, e.Reason)
}

// Is makes errors.Is(err, ErrInvalidConfig) hold for every ConfigError.
func (e *ConfigError) Is(target error) bool { return target == ErrInvalidConfig }

// Unwrap exposes the more specific sentinel when there is one.
func (e *ConfigError) Unwrap() error { return e.cause }

// EscapeError reports that a run committed corrupted state: the oracle
// observed Escaped divergences. It unwraps to ErrFaultEscape.
type EscapeError struct {
	Escaped uint64
}

func (e *EscapeError) Error() string {
	return fmt.Sprintf("%v: %d escaped fault(s)", ErrFaultEscape, e.Escaped)
}

// Unwrap makes errors.Is(err, ErrFaultEscape) hold.
func (e *EscapeError) Unwrap() error { return ErrFaultEscape }

// CheckEscapes audits a completed run: it returns a *EscapeError when
// the oracle co-simulation counted committed corruption, and nil
// otherwise (including when the run had no oracle to count with).
func CheckEscapes(st *Stats) error {
	if st != nil && st.EscapedFaults > 0 {
		return &EscapeError{Escaped: st.EscapedFaults}
	}
	return nil
}
