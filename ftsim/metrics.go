package ftsim

import (
	"net/http"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Metrics instrumentation, re-exported from the engine (the same
// aliasing pattern as CampaignReport): embedders tap the identical
// metric stream the ftsimd daemon exposes on /metrics, without the
// facade adding a translation layer.
type (
	// MetricsRegistry holds metric families and renders them in the
	// Prometheus text format (WritePrometheus, Handler). One registry
	// may back any number of campaigns; instruments are atomic.
	MetricsRegistry = obs.Registry
	// CampaignMetrics is the campaign engine's instrument set: trial
	// duration histograms by outcome, trial/retry/resume counters, and
	// checkpoint-journal fsync counts and bytes. Pass it to RunCampaign
	// with WithMetricsSink; serve its registry to expose the values.
	CampaignMetrics = campaign.Metrics
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewCampaignMetrics registers the campaign instrument set on r
// (idempotent: two calls on one registry share series) and returns the
// handle WithMetricsSink takes.
func NewCampaignMetrics(r *MetricsRegistry) *CampaignMetrics { return campaign.NewMetrics(r) }

// MetricsHandler serves r as GET /metrics content (Prometheus text
// format) — convenience for embedders exposing their own HTTP surface.
func MetricsHandler(r *MetricsRegistry) http.Handler { return r.Handler() }

// WithMetricsSink streams campaign instrumentation into m: per-trial
// duration histograms labelled by outcome, trial completion / retry /
// resume counters, and checkpoint-journal fsync counts and bytes.
//
// The sink is a pure tap, like an Observer: campaign results and
// aggregate statistics are byte-identical with and without it (the
// equivalence tests assert exactly that). One CampaignMetrics may be
// shared across concurrent campaigns; updates are atomic.
func WithMetricsSink(m *CampaignMetrics) CampaignOption {
	return func(o *campaignOpts) { o.metrics = m }
}
