package ftsim_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/ftsim"
)

// TestMetricsSinkDoesNotPerturb: the observability tap must be exactly
// that — a campaign run with WithMetricsSink produces byte-identical
// aggregate statistics to a run without it (the same invariant
// TestObserverDoesNotPerturb asserts for interval observers). The
// instrumented run goes through the full surface — checkpoint journal,
// observer, metrics — to tap every instrumented path at once.
func TestMetricsSinkDoesNotPerturb(t *testing.T) {
	trials := campaignGrid(t)

	plain, err := ftsim.RunCampaign(context.Background(), "tap", trials,
		ftsim.WithWorkers(2), ftsim.WithCampaignSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ftsim.CollectStats(plain)
	if err != nil {
		t.Fatal(err)
	}

	reg := ftsim.NewMetricsRegistry()
	m := ftsim.NewCampaignMetrics(reg)
	tapped, err := ftsim.RunCampaign(context.Background(), "tap", trials,
		ftsim.WithWorkers(2), ftsim.WithCampaignSeed(5),
		ftsim.WithMetricsSink(m),
		ftsim.WithCheckpoint(filepath.Join(t.TempDir(), "tap.ckpt")),
		ftsim.WithCampaignObserveEvery(500),
		ftsim.WithCampaignObserver(func(int, string, ftsim.Interval) {}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ftsim.CollectStats(tapped)
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical, in the same JSON codec the daemon persists and
	// serves: any drift at all is a perturbation.
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("metrics tap perturbed campaign statistics:\nwith:    %s\nwithout: %s",
			gotJSON, wantJSON)
	}

	// And the tap did record: every trial completed ok, durations
	// observed, journal synced.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantLines := []string{
		`ftsim_trials_total{outcome="ok"} 4`,
		`ftsim_trial_seconds_count{outcome="ok"} 4`,
	}
	for _, line := range wantLines {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("metrics exposition missing %q:\n%s", line, out)
		}
	}
	if !strings.Contains(out, "ftsim_checkpoint_syncs_total ") {
		t.Errorf("metrics exposition missing checkpoint sync counter:\n%s", out)
	}
}
