// Package client is a small Go client for the ftsimd campaign service:
// submit campaign grids, poll status, stream live events, cancel.
// It speaks the wire types in repro/ftsim/api and depends on nothing
// beyond the standard library.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/ftsim/api"
)

// Client talks to one ftsimd daemon. The zero value is not usable;
// set BaseURL (e.g. "http://127.0.0.1:8080").
type Client struct {
	// BaseURL is the daemon's root URL, without a trailing slash.
	BaseURL string
	// Token identifies this client for quota accounting (the
	// X-FTSim-Client header). Empty means the shared default identity.
	Token string
	// AuthToken is the daemon's shared bearer token (the -auth-token it
	// was started with), sent as "Authorization: Bearer <token>". Empty
	// sends no credential, which open daemons accept.
	AuthToken string
	// Retries is the number of additional attempts for transiently
	// failed requests: transport errors (connection refused, reset) and
	// 5xx responses. 0 disables retrying. 4xx responses other than 429
	// are never retried — the request itself is wrong. Note a transport
	// error leaves unknown whether the daemon acted on the request;
	// retried Submits can in principle double-submit on a half-open
	// connection, so idempotency-sensitive callers (the coordinator)
	// reconcile by listing.
	Retries int
	// RetryBackoff is the wait before the first retry, doubled each
	// further attempt and capped at 2s. <= 0 means 100ms.
	RetryBackoff time.Duration
	// HTTPClient overrides http.DefaultClient when set. Watch streams
	// indefinitely; a client with a global Timeout will cut streams off.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// setHeaders attaches the client identity and credential.
func (c *Client) setHeaders(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("X-FTSim-Client", c.Token)
	}
	if c.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.AuthToken)
	}
}

// maxRetryBackoff caps the exponential retry wait.
const maxRetryBackoff = 2 * time.Second

// transientError reports whether a do() failure is worth retrying:
// the request never got a verdict (transport error) or the daemon
// itself was the problem (5xx) or explicitly asked for later (429).
// Other 4xx responses are caller errors; retrying cannot fix them.
func transientError(err error) bool {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500 || apiErr.StatusCode == http.StatusTooManyRequests
	}
	var urlErr *url.Error
	return errors.As(err, &urlErr)
}

// do issues a request and decodes the JSON response into out,
// retrying transient failures up to Retries extra times with capped
// exponential backoff. Error responses decode the service's JSON error
// body into the returned error.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil || attempt >= c.Retries || !transientError(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.setHeaders(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return decodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns an HTTP error response into an *api.Error.
func decodeError(code int, body []byte) error {
	e := &api.Error{StatusCode: code}
	if err := json.Unmarshal(body, e); err != nil || e.Message == "" {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = http.StatusText(code)
		}
	}
	return e
}

// Submit sends a campaign request and returns the queued job.
func (c *Client) Submit(ctx context.Context, req *api.CampaignRequest) (*api.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.SubmitRaw(ctx, body)
}

// SubmitRaw sends a raw JSON submission body — either a full
// api.CampaignRequest or a bare ftsim.Config document (the
// ftsim/testdata golden files are valid bodies as-is).
func (c *Client) SubmitRaw(ctx context.Context, body []byte) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches one job.
func (c *Client) Status(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches all jobs in submission order.
func (c *Client) List(ctx context.Context) ([]*api.JobStatus, error) {
	var out []*api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests cancellation and returns the job's state at that
// moment (a running job finishes cancelling asynchronously).
func (c *Client) Cancel(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health fetches the daemon's liveness + readiness summary. A
// not-ready daemon (draining, degraded) answers 503 with a valid
// Health body; that body is returned with a nil error — readiness
// lives in Health.Status, a non-nil error means the daemon could not
// be asked at all.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	c.setHeaders(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var h api.Health
	if jerr := json.Unmarshal(data, &h); jerr != nil || h.Status == "" {
		return nil, decodeError(resp.StatusCode, data)
	}
	return &h, nil
}

// Version fetches the daemon's build metadata.
func (c *Client) Version(ctx context.Context) (*api.Version, error) {
	var v api.Version
	if err := c.do(ctx, http.MethodGet, "/version", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// ErrWatchStopped is returned (wrapped) by Watch when the callback
// asks to stop; callers that stop early can errors.Is for it.
var ErrWatchStopped = errors.New("watch stopped by callback")

// Watch streams a job's events to fn, starting after lastEventID
// (0 replays everything retained), until the job reaches a terminal
// state (nil), the context ends, the stream drops (io error), or fn
// returns an error. A callback error of ErrWatchStopped stops cleanly.
//
// The final event before a nil return is always the done event
// carrying the terminal api.JobStatus. On a dropped stream, callers
// can reconnect with the last Seq they saw.
func (c *Client) Watch(ctx context.Context, id string, lastEventID int64, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return err
	}
	c.setHeaders(req)
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return decodeError(resp.StatusCode, data)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // id:/event: framing and keepalive comments
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			return fmt.Errorf("client: bad event payload: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, ErrWatchStopped) {
				return nil
			}
			return err
		}
		if ev.Type == api.EventDone {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("client: event stream: %w", err)
	}
	return fmt.Errorf("client: event stream for %s ended before the job finished", id)
}
