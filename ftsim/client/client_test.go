package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/ftsim"
	"repro/ftsim/api"
	"repro/ftsim/client"
	"repro/internal/server"
)

// tWriter adapts t.Logf into an io.Writer for a slog handler.
type tWriter struct{ t *testing.T }

func (w tWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// startDaemon runs an in-process ftsimd and returns a client bound to
// it.
func startDaemon(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(tWriter{t}, nil))
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return &client.Client{BaseURL: ts.URL}
}

func loopTrial(label string, iters int) api.TrialSpec {
	cfg := ftsim.ModelSS2.Config()
	cfg.MaxInsts = 30_000
	cfg.MaxCycles = 1_000_000
	return api.TrialSpec{
		Label: label,
		Asm: `
        li   r1, ` + itoa(iters) + `
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
`,
		Config: cfg,
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestClientEndToEnd exercises the whole client surface against a live
// in-process daemon: submit, watch to completion, status, list,
// health, version.
func TestClientEndToEnd(t *testing.T) {
	c := startDaemon(t, server.Config{ObserveEvery: 500})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, &api.CampaignRequest{
		Name:   "e2e",
		Seed:   5,
		Trials: []api.TrialSpec{loopTrial("a", 2000), loopTrial("b", 2000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateQueued || st.Trials != 2 {
		t.Fatalf("submit: %+v", st)
	}

	var trials int
	var final *api.JobStatus
	err = c.Watch(ctx, st.ID, 0, func(ev api.Event) error {
		switch ev.Type {
		case api.EventTrial:
			trials++
		case api.EventDone:
			final = ev.Status
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if trials != 2 || final == nil || final.State != api.StateDone {
		t.Fatalf("watch saw %d trials, final %+v", trials, final)
	}

	got, err := c.Status(ctx, st.ID)
	if err != nil || got.State != api.StateDone || len(got.Stats) == 0 {
		t.Fatalf("status: %+v, %v", got, err)
	}
	list, err := c.List(ctx)
	if err != nil || len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v, %v", list, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Jobs != 1 {
		t.Fatalf("health: %+v, %v", h, err)
	}
	v, err := c.Version(ctx)
	if err != nil || v.GoVersion == "" {
		t.Fatalf("version: %+v, %v", v, err)
	}
}

// TestClientCancelAndWatchStop: cancelling a running job lands it in
// cancelled, and a Watch callback can stop the stream early.
func TestClientCancelAndWatchStop(t *testing.T) {
	c := startDaemon(t, server.Config{Concurrency: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	blocker := ftsim.ModelSS2.Config()
	blocker.MaxInsts = 1 << 50
	blocker.MaxCycles = 1 << 52
	st, err := c.Submit(ctx, &api.CampaignRequest{
		Name: "spin",
		Trials: []api.TrialSpec{{
			Label:  "spin",
			Asm:    "loop: addi r1, r1, 1\n bne r1, r0, loop\n halt\n",
			Config: blocker,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stop the watch as soon as the job reports running.
	err = c.Watch(ctx, st.ID, 0, func(ev api.Event) error {
		if ev.Type == api.EventState && ev.State == api.StateRunning {
			return client.ErrWatchStopped
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == api.StateCancelled {
			break
		}
		if got.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("state %s, want cancelled", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientErrors: service errors surface as *api.Error with the
// status code and the server's message.
func TestClientErrors(t *testing.T) {
	c := startDaemon(t, server.Config{})
	ctx := context.Background()

	_, err := c.SubmitRaw(ctx, []byte(`{"trials": []}`))
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submission: %v", err)
	}
	if apiErr.Message == "" {
		t.Error("error carries no message")
	}

	_, err = c.Status(ctx, "nope")
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v", err)
	}
}
