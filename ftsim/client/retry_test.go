package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/ftsim/api"
	"repro/ftsim/client"
	"repro/internal/server"
)

// flakyHandler answers the first fail requests with the given status
// and an api.Error body, then serves a JobStatus.
func flakyHandler(fail int, status int, hits *atomic.Int32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if int(n) <= fail {
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error": "induced failure %d"}`, n)
			return
		}
		fmt.Fprint(w, `{"id": "c123", "name": "ok", "state": "done", "trials": 1, "done": 1, "submitted": "2026-01-01T00:00:00Z"}`)
	})
}

// TestClientRetries5xx: a daemon that 503s twice and then answers is
// survived by a client with Retries >= 2 — and the server really was
// hit three times.
func TestClientRetries5xx(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(flakyHandler(2, http.StatusServiceUnavailable, &hits))
	defer ts.Close()

	c := &client.Client{BaseURL: ts.URL, Retries: 3, RetryBackoff: time.Millisecond}
	st, err := c.Status(context.Background(), "c123")
	if err != nil {
		t.Fatalf("status after two 503s: %v", err)
	}
	if st.ID != "c123" || hits.Load() != 3 {
		t.Errorf("got %+v after %d hits, want c123 after 3", st, hits.Load())
	}
}

// TestClientRetryExhaustion: when every attempt fails, the last error
// surfaces as the *api.Error and the attempt count is Retries+1.
func TestClientRetryExhaustion(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(flakyHandler(1<<30, http.StatusBadGateway, &hits))
	defer ts.Close()

	c := &client.Client{BaseURL: ts.URL, Retries: 2, RetryBackoff: time.Millisecond}
	_, err := c.Status(context.Background(), "c123")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadGateway {
		t.Fatalf("exhausted retries: %v, want 502 api.Error", err)
	}
	if hits.Load() != 3 {
		t.Errorf("server hit %d times, want Retries+1 = 3", hits.Load())
	}
}

// TestClientNoRetryOn4xx: client errors are final — one attempt, no
// matter the retry budget.
func TestClientNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(flakyHandler(1<<30, http.StatusBadRequest, &hits))
	defer ts.Close()

	c := &client.Client{BaseURL: ts.URL, Retries: 5, RetryBackoff: time.Millisecond}
	_, err := c.Status(context.Background(), "c123")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("got %v, want 400 api.Error", err)
	}
	if hits.Load() != 1 {
		t.Errorf("400 was attempted %d times, want exactly 1", hits.Load())
	}
}

// TestClientRetriesDeadConnections: the first connections are accepted
// and slammed shut before any HTTP exchange — the shape of a daemon
// mid-restart — and the retry loop rides it out until real responses
// flow.
func TestClientRetriesDeadConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var hits atomic.Int32
	srv := &http.Server{Handler: flakyHandler(0, 0, &hits)}
	defer srv.Close()
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close() // refuse service at the transport layer
		}
		srv.Serve(ln)
	}()

	c := &client.Client{
		BaseURL: "http://" + ln.Addr().String(),
		Retries: 4, RetryBackoff: time.Millisecond,
		// Fresh connections per attempt: a pooled dead keep-alive conn
		// would shadow the recovery.
		HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	}
	st, err := c.Status(context.Background(), "c123")
	if err != nil {
		t.Fatalf("status after two dead connections: %v", err)
	}
	if st.ID != "c123" || hits.Load() != 1 {
		t.Errorf("got %+v with %d served requests, want c123 and exactly 1", st, hits.Load())
	}
}

// TestClientRetryHonoursContext: an expiring context stops the retry
// loop instead of sleeping through the whole backoff schedule.
func TestClientRetryHonoursContext(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(flakyHandler(1<<30, http.StatusServiceUnavailable, &hits))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &client.Client{BaseURL: ts.URL, Retries: 1000, RetryBackoff: 30 * time.Millisecond}
	start := time.Now()
	_, err := c.Status(ctx, "c123")
	if err == nil {
		t.Fatal("retry loop returned success from an always-503 server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop ran %v past its context", elapsed)
	}
}

// TestClientAuthToken: against a token-locked daemon, a client without
// the credential gets a non-retried 401 and one with it works.
func TestClientAuthToken(t *testing.T) {
	const token = "swordfish"
	c := startDaemon(t, server.Config{AuthToken: token})
	ctx := context.Background()

	bare := &client.Client{BaseURL: c.BaseURL, Retries: 3, RetryBackoff: time.Millisecond}
	_, err := bare.List(ctx)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated list: %v, want 401 api.Error", err)
	}

	authed := &client.Client{BaseURL: c.BaseURL, AuthToken: token}
	if _, err := authed.List(ctx); err != nil {
		t.Fatalf("authenticated list: %v", err)
	}
	if _, err := authed.Health(ctx); err != nil {
		t.Fatalf("health with token: %v", err)
	}
}
