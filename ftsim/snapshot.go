package ftsim

import (
	"repro/internal/cpu"
	"repro/internal/snap"
	"repro/internal/trace"
)

// Snapshot and restore make long simulations durable: a session's
// complete simulation state — architectural registers and memory,
// fetch front-end, branch predictor and cache contents, fault-injector
// RNG position, and every statistics counter — serialises to a
// versioned, checksummed blob, and a machine of an equivalent
// configuration can later resume the run from exactly that point.
// A restored run's results are bit-identical to the donor continuing
// uninterrupted (the snapshot equivalence suite is the referee).

var (
	// ErrSnapshotMismatch reports a snapshot taken under a machine
	// configuration incompatible with the one restoring it. Run limits
	// (MaxInsts, MaxCycles) are exempt, so a snapshotted workload can
	// resume under a larger budget.
	ErrSnapshotMismatch = cpu.ErrSnapshotMismatch

	// ErrSnapshotCorrupt reports a snapshot blob that is torn,
	// bit-flipped, truncated, or otherwise structurally damaged; the
	// restore rejects it before touching any machine state.
	ErrSnapshotCorrupt = snap.ErrCorrupt
)

// Snapshot serialises the session's simulation state. It may be taken
// at any point — before Run, or after Run returned (including a
// cancelled Run, which is how a checkpoint of an in-flight workload is
// made: cancel, Snapshot, persist). It must not be called while Run is
// executing on another goroutine. Taking a snapshot quiesces the
// pipeline by discarding in-flight speculative work (the same
// ECC-protected rewind the paper's fault recovery uses), which is
// results-invisible: the discarded work replays after restore exactly
// as it would have re-executed after a fault.
func (s *Session) Snapshot() []byte { return s.cm.Snapshot() }

// Restore builds a session that resumes a snapshotted run on this
// machine. The machine's configuration must be equivalent to the
// donor's (same datapath, redundancy, fault model — run limits may
// differ); otherwise ErrSnapshotMismatch. Damaged blobs fail with
// ErrSnapshotCorrupt. The restored session is fresh: its Run executes
// the remainder of the workload, streaming observer samples relative
// to the snapshot point.
func (m *Machine) Restore(data []byte) (*Session, error) {
	coreCfg, err := m.cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	coreCfg.StrictOracle = m.strict
	s := &Session{name: m.cfg.Name, obs: m.obs}
	if m.obs != nil {
		every := m.every
		if every == 0 {
			every = DefaultObserveEvery
		}
		coreCfg.CPU.Observe = s.tap
		coreCfg.CPU.ObserveEvery = every
	}
	if m.traceCap > 0 {
		s.trace = trace.NewBuffer(m.traceCap)
		coreCfg.CPU.Tracer = s.trace
	}
	cm, err := coreCfg.Restore(nil, data)
	if err != nil {
		return nil, err
	}
	s.cm = cm
	// Seed the observer's interval baseline from the restored counters
	// so the first sample reports progress since the snapshot, not a
	// bogus jump from zero.
	st := cm.Stats()
	s.prevCycles, s.prevCommitted = st.Cycles, st.Committed
	s.prevDetected, s.prevRewinds = st.FaultsDetected, st.FaultRewinds
	return s, nil
}
