package ftsim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/isa"
)

// Model names one of the paper's four evaluated machine designs (plus
// the R=3 rewind-only ablation). A Config's Model is a label: the
// explicit fields fully describe the machine, so a deserialized Config
// replays the exact design it was saved from even if the preset
// definitions later change.
type Model string

const (
	// ModelSS1 is the unprotected Table 1 baseline superscalar.
	ModelSS1 Model = "ss1"
	// ModelSS2 is the 2-way dynamic-redundant design: instruction
	// injection, commit-stage checking, rewind recovery.
	ModelSS2 Model = "ss2"
	// ModelSS3 is the 3-way redundant design with majority election.
	ModelSS3 Model = "ss3"
	// ModelSS3Rewind is the 3-way design that always rewinds on any
	// mismatch (majority election disabled), for ablation.
	ModelSS3Rewind Model = "ss3rewind"
	// ModelStatic2 is one pipeline of the statically partitioned
	// two-pipeline lock-step processor of Section 5.1.2.
	ModelStatic2 Model = "static2"
)

// Models lists the machine models in the paper's order.
func Models() []Model {
	return []Model{ModelSS1, ModelSS2, ModelSS3, ModelSS3Rewind, ModelStatic2}
}

// PipelineConfig sizes the out-of-order datapath: front end, window and
// the Table 1 functional-unit mix. Widths that count RUU entries
// (dispatch, issue, commit) are shared by the R redundant copies of each
// instruction.
type PipelineConfig struct {
	FetchWidth      int `json:"fetch_width"`
	FetchQueue      int `json:"fetch_queue"`
	RedirectPenalty int `json:"redirect_penalty"`
	DispatchWidth   int `json:"dispatch_width"`
	IssueWidth      int `json:"issue_width"`
	CommitWidth     int `json:"commit_width"`
	RUUSize         int `json:"ruu_size"`
	LSQSize         int `json:"lsq_size"`
	IntALU          int `json:"int_alu"`
	IntMult         int `json:"int_mult"`
	FPAdd           int `json:"fp_add"`
	FPMult          int `json:"fp_mult"`
	MemPorts        int `json:"mem_ports"`
}

// CacheConfig is one cache level's geometry and hit latency.
type CacheConfig struct {
	SizeBytes  int `json:"size_bytes"`
	Ways       int `json:"ways"`
	LineBytes  int `json:"line_bytes"`
	HitLatency int `json:"hit_latency"`
}

// String renders the geometry, e.g. "64KB 2-way 32B-line (1-cycle hit)".
func (c CacheConfig) String() string {
	return fmt.Sprintf("%dKB %d-way %dB-line (%d-cycle hit)",
		c.SizeBytes/1024, c.Ways, c.LineBytes, c.HitLatency)
}

// MemoryConfig is the Table 1 cache hierarchy: split L1s over a unified
// L2 over flat-latency main memory.
type MemoryConfig struct {
	IL1     CacheConfig `json:"il1"`
	DL1     CacheConfig `json:"dl1"`
	L2      CacheConfig `json:"l2"`
	Latency int         `json:"latency"` // main-memory access cycles
}

// BranchPredConfig describes the branch predictor. A zero value takes
// the Table 1 combined predictor.
type BranchPredConfig struct {
	Kind        string `json:"kind,omitempty"` // comb|bimodal|twolevel|taken|nottaken
	BimodalSize int    `json:"bimodal_size,omitempty"`
	L1Size      int    `json:"l1_size,omitempty"`
	HistBits    int    `json:"hist_bits,omitempty"`
	L2Size      int    `json:"l2_size,omitempty"`
	XOR         bool   `json:"xor,omitempty"`
	MetaSize    int    `json:"meta_size,omitempty"`
	BTBSets     int    `json:"btb_sets,omitempty"`
	BTBWays     int    `json:"btb_ways,omitempty"`
	RASSize     int    `json:"ras_size,omitempty"`
}

// String renders the predictor description.
func (b BranchPredConfig) String() string { return b.toBpred().String() }

// FaultTarget selects which speculative value transient faults corrupt.
type FaultTarget string

const (
	FaultResult   FaultTarget = "result"   // computed result at writeback
	FaultAddress  FaultTarget = "address"  // memory effective address
	FaultResident FaultTarget = "resident" // completed result waiting in the ROB
	FaultBranch   FaultTarget = "branch"   // control-flow outcome (next-PC)
)

// AllFaultTargets lists every injection point.
func AllFaultTargets() []FaultTarget {
	return []FaultTarget{FaultResult, FaultAddress, FaultResident, FaultBranch}
}

// FaultConfig parameterises transient-fault injection.
type FaultConfig struct {
	// Rate is the probability that one executed instruction copy is
	// corrupted; zero disables injection.
	Rate float64 `json:"rate,omitempty"`
	// Seed makes the fault stream reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Targets are the enabled injection points; empty means result-only.
	Targets []FaultTarget `json:"targets,omitempty"`
}

// Enabled reports whether the configuration injects any faults.
func (f FaultConfig) Enabled() bool { return f.Rate > 0 }

// PersistentFault models a hard stuck-at-1 bit in the bitwise-logic
// slice of one physical functional unit (Section 2.2).
type PersistentFault struct {
	Pool string `json:"pool"` // int-alu|int-mult|fp-add|fp-mult|mem-port
	Unit int    `json:"unit"`
	Bit  uint   `json:"bit"`
}

// Config is a complete, JSON-serializable description of one
// fault-tolerant machine plus its run limits. Marshal it to persist the
// exact machine a campaign ran; ParseConfig restores it. The zero value
// is not runnable — start from a preset (Model.Config or New with a
// model option) or call Normalized to fill Table 1 defaults.
type Config struct {
	// Name labels the machine in output ("SS-2"); presets fill it.
	Name string `json:"name,omitempty"`
	// Model records which paper design this config started from.
	Model Model `json:"model,omitempty"`

	// R is the degree of redundancy (1 = unprotected baseline).
	R int `json:"r"`
	// Majority enables majority election for R >= 3.
	Majority bool `json:"majority,omitempty"`
	// MajorityThreshold is the election acceptance threshold; zero
	// means a simple majority, R/2+1.
	MajorityThreshold int `json:"majority_threshold,omitempty"`
	// CoSchedule places redundant copies on distinct physical
	// functional units (Section 3.5).
	CoSchedule bool `json:"co_schedule,omitempty"`
	// TransformOperands rotates redundant copies' bitwise operands
	// (the Section 2.2 defence against persistent-fault masking).
	TransformOperands bool `json:"transform_operands,omitempty"`
	// RecoveryPenalty adds fixed cycles to each fault recovery;
	// 0 = the paper's fine-grain rewind.
	RecoveryPenalty int `json:"recovery_penalty,omitempty"`
	// Oracle enables the in-order co-simulation check of Section 5.1.1.
	Oracle bool `json:"oracle,omitempty"`

	// Fault configures transient-fault injection; Persistent models a
	// hard stuck bit in one functional unit (nil disables it).
	Fault      FaultConfig      `json:"fault,omitzero"`
	Persistent *PersistentFault `json:"persistent,omitempty"`

	// Run limits (zero = unlimited).
	MaxInsts  uint64 `json:"max_insts,omitempty"`
	MaxCycles uint64 `json:"max_cycles,omitempty"`

	Pipeline   PipelineConfig   `json:"pipeline"`
	Memory     MemoryConfig     `json:"memory"`
	BranchPred BranchPredConfig `json:"branch_pred,omitzero"`
}

// Config returns the named paper machine's full configuration, with
// every field explicit. Unknown models yield a config that fails
// Validate with ErrUnknownModel.
func (m Model) Config() Config {
	var c core.Config
	switch m {
	case ModelSS1:
		c = core.SS1()
	case ModelSS2:
		c = core.SS2()
	case ModelSS3:
		c = core.SS3()
	case ModelSS3Rewind:
		c = core.SS3Rewind()
	case ModelStatic2:
		c = core.Static2()
	default:
		return Config{Model: m}
	}
	cfg := fromCore(c)
	cfg.Model = m
	return cfg.Normalized()
}

// Normalized returns a copy with omitted sections filled in: a zero
// Pipeline, Memory or BranchPred takes the config's model preset (or
// the Table 1 baseline), R defaults to 1, a majority design gets its
// simple-majority threshold, and enabled fault injection with no
// targets becomes result-only. Normalization never changes an
// explicitly set field, so a persisted config replays exactly.
func (c Config) Normalized() Config {
	if c.R == 0 {
		c.R = 1
	}
	if c.Pipeline == (PipelineConfig{}) || c.Memory == (MemoryConfig{}) {
		base := cpu.Baseline()
		if c.Model == ModelStatic2 {
			base = cpu.Halved()
		}
		ref := fromCore(core.Config{CPU: base})
		if c.Pipeline == (PipelineConfig{}) {
			c.Pipeline = ref.Pipeline
		}
		if c.Memory == (MemoryConfig{}) {
			c.Memory = ref.Memory
		}
	}
	if c.BranchPred == (BranchPredConfig{}) {
		c.BranchPred = fromBpred(bpred.Default())
	}
	if c.Majority && c.MajorityThreshold == 0 {
		c.MajorityThreshold = c.R/2 + 1
	}
	if c.Fault.Enabled() && len(c.Fault.Targets) == 0 {
		c.Fault.Targets = []FaultTarget{FaultResult}
	}
	if c.Name == "" {
		c.Name = modelDisplayName(c.Model, c.R)
	}
	return c
}

func modelDisplayName(m Model, r int) string {
	switch m {
	case ModelSS1:
		return "SS-1"
	case ModelSS2:
		return "SS-2"
	case ModelSS3:
		return "SS-3"
	case ModelSS3Rewind:
		return "SS-3-rewind"
	case ModelStatic2:
		return "Static-2"
	}
	return fmt.Sprintf("custom-R%d", r)
}

// Validate checks the configuration and returns nil or an errors.Join
// of one *ConfigError per problem (each satisfying
// errors.Is(err, ErrInvalidConfig)).
func (c Config) Validate() error {
	var errs []error
	bad := func(field, reason string, cause error) {
		errs = append(errs, &ConfigError{Field: field, Reason: reason, cause: cause})
	}

	if c.Model != "" {
		if _, ok := map[Model]bool{ModelSS1: true, ModelSS2: true, ModelSS3: true,
			ModelSS3Rewind: true, ModelStatic2: true}[c.Model]; !ok {
			bad("model", fmt.Sprintf("%q is not a known machine model", c.Model), ErrUnknownModel)
		}
	}
	if c.R < 1 {
		bad("r", fmt.Sprintf("redundancy %d < 1", c.R), nil)
	}
	if c.Majority && c.R < 3 {
		bad("majority", fmt.Sprintf("majority election needs R >= 3, have R=%d", c.R), nil)
	}
	if c.MajorityThreshold < 0 || c.MajorityThreshold > c.R {
		bad("majority_threshold", fmt.Sprintf("threshold %d outside [0, R=%d]", c.MajorityThreshold, c.R), nil)
	}
	if c.RecoveryPenalty < 0 {
		bad("recovery_penalty", "must be >= 0", nil)
	}

	if c.Fault.Rate < 0 || c.Fault.Rate > 1 {
		bad("fault.rate", fmt.Sprintf("rate %g is not a probability in [0, 1]", c.Fault.Rate), nil)
	}
	for _, t := range c.Fault.Targets {
		if _, err := t.target(); err != nil {
			bad("fault.targets", err.Error(), nil)
		}
	}
	if c.Persistent != nil {
		if _, err := poolByName(c.Persistent.Pool); err != nil {
			bad("persistent.pool", err.Error(), nil)
		}
		if c.Persistent.Bit > 63 {
			bad("persistent.bit", fmt.Sprintf("bit %d outside [0, 63]", c.Persistent.Bit), nil)
		}
	}

	p := c.Pipeline
	if p.FetchWidth < 1 || p.DispatchWidth < 1 || p.IssueWidth < 1 || p.CommitWidth < 1 {
		bad("pipeline", fmt.Sprintf("widths must all be >= 1 (fetch=%d dispatch=%d issue=%d commit=%d)",
			p.FetchWidth, p.DispatchWidth, p.IssueWidth, p.CommitWidth), nil)
	}
	if c.R >= 1 && (p.DispatchWidth < c.R || p.CommitWidth < c.R) {
		bad("pipeline", fmt.Sprintf("dispatch/commit width must be >= R=%d to make progress", c.R), nil)
	}
	if p.RUUSize < c.R || p.RUUSize < 1 {
		bad("pipeline.ruu_size", fmt.Sprintf("RUU size %d cannot hold one R=%d group", p.RUUSize, c.R), nil)
	}
	if p.LSQSize < 1 {
		bad("pipeline.lsq_size", fmt.Sprintf("LSQ size %d < 1", p.LSQSize), nil)
	}
	if p.FetchQueue < p.FetchWidth {
		bad("pipeline.fetch_queue", fmt.Sprintf("fetch queue %d smaller than fetch width %d", p.FetchQueue, p.FetchWidth), nil)
	}
	if p.RedirectPenalty < 0 {
		bad("pipeline.redirect_penalty", "must be >= 0", nil)
	}
	if p.IntALU < 1 || p.IntMult < 1 || p.FPAdd < 1 || p.FPMult < 1 || p.MemPorts < 1 {
		bad("pipeline", "every functional unit pool needs at least one unit", nil)
	}

	caches := []struct {
		name string
		c    CacheConfig
	}{{"memory.il1", c.Memory.IL1}, {"memory.dl1", c.Memory.DL1}, {"memory.l2", c.Memory.L2}}
	for _, lv := range caches {
		g := lv.c
		// The way*line product is computed guardedly: naive int
		// multiplication of two huge (but individually legal-looking)
		// values can overflow to zero and panic the divisibility check.
		setBytes := 0
		if g.Ways >= 1 && g.LineBytes >= 1 && g.Ways <= g.SizeBytes/g.LineBytes {
			setBytes = g.Ways * g.LineBytes
		}
		if g.SizeBytes < 1 || g.Ways < 1 || g.LineBytes < 1 ||
			setBytes < 1 || g.SizeBytes%setBytes != 0 {
			bad(lv.name, fmt.Sprintf("bad geometry: %d bytes / %d ways / %d-byte lines", g.SizeBytes, g.Ways, g.LineBytes), nil)
		}
		if g.HitLatency < 1 {
			bad(lv.name+".hit_latency", "must be >= 1 cycle", nil)
		}
	}
	if c.Memory.Latency < 1 {
		bad("memory.latency", "must be >= 1 cycle", nil)
	}

	switch bpred.Kind(c.BranchPred.Kind) {
	case "", bpred.KindCombined, bpred.KindBimodal, bpred.KindTwoLevel, bpred.KindTaken, bpred.KindNotTaken:
	default:
		bad("branch_pred.kind", fmt.Sprintf("unknown predictor kind %q", c.BranchPred.Kind), nil)
	}

	return errors.Join(errs...)
}

// ParseConfig deserializes a Config from JSON, rejecting unknown fields
// (a typo in a persisted machine description must not silently fall
// back to a default), then normalizes and validates it.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	c = c.Normalized()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// JSON serializes the configuration, indented, with a trailing newline —
// the exact bytes ParseConfig accepts and the golden files under
// testdata/ pin for the paper's machine models.
func (c Config) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ---------------------------------------------------------------------
// Conversions between the public serializable types and the internal
// implementation configuration.

func (t FaultTarget) target() (fault.Target, error) {
	switch t {
	case FaultResult:
		return fault.TargetResult, nil
	case FaultAddress:
		return fault.TargetAddress, nil
	case FaultResident:
		return fault.TargetResident, nil
	case FaultBranch:
		return fault.TargetBranch, nil
	}
	return 0, fmt.Errorf("unknown fault target %q", string(t))
}

func fromTarget(t fault.Target) FaultTarget {
	switch t {
	case fault.TargetResult:
		return FaultResult
	case fault.TargetAddress:
		return FaultAddress
	case fault.TargetResident:
		return FaultResident
	case fault.TargetBranch:
		return FaultBranch
	}
	return FaultTarget(t.String())
}

func poolByName(name string) (isa.Pool, error) {
	switch name {
	case "int-alu":
		return isa.PoolIntALU, nil
	case "int-mult":
		return isa.PoolIntMult, nil
	case "fp-add":
		return isa.PoolFPAdd, nil
	case "fp-mult":
		return isa.PoolFPMult, nil
	case "mem-port":
		return isa.PoolMemPort, nil
	}
	return isa.PoolNone, fmt.Errorf("unknown functional-unit pool %q", name)
}

func poolName(p isa.Pool) string {
	switch p {
	case isa.PoolIntALU:
		return "int-alu"
	case isa.PoolIntMult:
		return "int-mult"
	case isa.PoolFPAdd:
		return "fp-add"
	case isa.PoolFPMult:
		return "fp-mult"
	case isa.PoolMemPort:
		return "mem-port"
	}
	return p.String()
}

func fromCache(c cache.Config) CacheConfig {
	return CacheConfig{SizeBytes: c.SizeBytes, Ways: c.Ways, LineBytes: c.LineBytes, HitLatency: c.HitLatency}
}

func (c CacheConfig) toCache(name string) cache.Config {
	return cache.Config{Name: name, SizeBytes: c.SizeBytes, Ways: c.Ways, LineBytes: c.LineBytes, HitLatency: c.HitLatency}
}

func fromBpred(b bpred.Config) BranchPredConfig {
	return BranchPredConfig{
		Kind: string(b.Kind), BimodalSize: b.BimodalSize, L1Size: b.L1Size,
		HistBits: b.HistBits, L2Size: b.L2Size, XOR: b.XOR, MetaSize: b.MetaSize,
		BTBSets: b.BTBSets, BTBWays: b.BTBWays, RASSize: b.RASSize,
	}
}

func (b BranchPredConfig) toBpred() bpred.Config {
	return bpred.Config{
		Kind: bpred.Kind(b.Kind), BimodalSize: b.BimodalSize, L1Size: b.L1Size,
		HistBits: b.HistBits, L2Size: b.L2Size, XOR: b.XOR, MetaSize: b.MetaSize,
		BTBSets: b.BTBSets, BTBWays: b.BTBWays, RASSize: b.RASSize,
	}
}

// fromCore translates an implementation-layer configuration into the
// public serializable form.
func fromCore(c core.Config) Config {
	cfg := Config{
		Name:              c.CPU.Name,
		R:                 c.R,
		Majority:          c.Majority,
		MajorityThreshold: c.MajorityThreshold,
		CoSchedule:        c.CoSchedule,
		TransformOperands: c.TransformOperands,
		RecoveryPenalty:   c.RecoveryPenalty,
		Oracle:            c.Oracle,
		MaxInsts:          c.MaxInsts,
		MaxCycles:         c.MaxCycles,
		Pipeline: PipelineConfig{
			FetchWidth:      c.CPU.FetchWidth,
			FetchQueue:      c.CPU.FetchQueue,
			RedirectPenalty: c.CPU.RedirectPenalty,
			DispatchWidth:   c.CPU.DispatchWidth,
			IssueWidth:      c.CPU.IssueWidth,
			CommitWidth:     c.CPU.CommitWidth,
			RUUSize:         c.CPU.RUUSize,
			LSQSize:         c.CPU.LSQSize,
			IntALU:          c.CPU.IntALU,
			IntMult:         c.CPU.IntMult,
			FPAdd:           c.CPU.FPAdd,
			FPMult:          c.CPU.FPMult,
			MemPorts:        c.CPU.MemPorts,
		},
		Memory: MemoryConfig{
			IL1:     fromCache(c.CPU.Hierarchy.IL1),
			DL1:     fromCache(c.CPU.Hierarchy.DL1),
			L2:      fromCache(c.CPU.Hierarchy.L2),
			Latency: c.CPU.Hierarchy.MemLatency,
		},
		BranchPred: fromBpred(c.CPU.Bpred),
	}
	if c.Fault.Rate != 0 || c.Fault.Seed != 0 || len(c.Fault.Targets) != 0 {
		cfg.Fault = FaultConfig{Rate: c.Fault.Rate, Seed: c.Fault.Seed}
		for _, t := range c.Fault.Targets {
			cfg.Fault.Targets = append(cfg.Fault.Targets, fromTarget(t))
		}
	}
	if c.Persistent != nil {
		cfg.Persistent = &PersistentFault{Pool: poolName(c.Persistent.Pool), Unit: c.Persistent.Unit, Bit: c.Persistent.Bit}
	}
	return cfg
}

// coreConfig translates the public configuration into the
// implementation layer's core.Config. The caller must have validated c.
func (c Config) coreConfig() (core.Config, error) {
	out := core.Config{
		R:                 c.R,
		Majority:          c.Majority,
		MajorityThreshold: c.MajorityThreshold,
		CoSchedule:        c.CoSchedule,
		TransformOperands: c.TransformOperands,
		RecoveryPenalty:   c.RecoveryPenalty,
		Oracle:            c.Oracle,
		MaxInsts:          c.MaxInsts,
		MaxCycles:         c.MaxCycles,
	}
	out.CPU.Name = c.Name
	p := c.Pipeline
	out.CPU.FetchWidth = p.FetchWidth
	out.CPU.FetchQueue = p.FetchQueue
	out.CPU.RedirectPenalty = p.RedirectPenalty
	out.CPU.DispatchWidth = p.DispatchWidth
	out.CPU.IssueWidth = p.IssueWidth
	out.CPU.CommitWidth = p.CommitWidth
	out.CPU.RUUSize = p.RUUSize
	out.CPU.LSQSize = p.LSQSize
	out.CPU.IntALU = p.IntALU
	out.CPU.IntMult = p.IntMult
	out.CPU.FPAdd = p.FPAdd
	out.CPU.FPMult = p.FPMult
	out.CPU.MemPorts = p.MemPorts
	out.CPU.Hierarchy = cache.HierarchyConfig{
		IL1:        c.Memory.IL1.toCache("il1"),
		DL1:        c.Memory.DL1.toCache("dl1"),
		L2:         c.Memory.L2.toCache("ul2"),
		MemLatency: c.Memory.Latency,
	}
	out.CPU.Bpred = c.BranchPred.toBpred()

	out.Fault = fault.Config{Rate: c.Fault.Rate, Seed: c.Fault.Seed}
	for _, t := range c.Fault.Targets {
		ft, err := t.target()
		if err != nil {
			return core.Config{}, &ConfigError{Field: "fault.targets", Reason: err.Error()}
		}
		out.Fault.Targets = append(out.Fault.Targets, ft)
	}
	if c.Persistent != nil {
		pool, err := poolByName(c.Persistent.Pool)
		if err != nil {
			return core.Config{}, &ConfigError{Field: "persistent.pool", Reason: err.Error()}
		}
		out.Persistent = &fault.Persistent{Pool: pool, Unit: c.Persistent.Unit, Bit: c.Persistent.Bit}
	}
	return out, nil
}
