package ftsim

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/funcsim"
	"repro/internal/prog"
	"repro/internal/workload"
)

// Program is an executable SRISC program image: text, data and entry
// point. Obtain one from Benchmark (the paper's Table 2 suite) or
// Assemble (SRISC text assembly); the same Program can be loaded into
// any number of sessions, including concurrently — machines clone the
// image into their own memory.
type Program struct {
	p *prog.Program
}

// Name returns the program's name.
func (p *Program) Name() string { return p.p.Name }

// Insts returns the static instruction count of the program text.
func (p *Program) Insts() int { return len(p.p.Text) }

// benchmarkIters is the loop bound baked into generated benchmarks;
// runs are always cut off by the machine's MaxInsts first.
const benchmarkIters = int64(1) << 32

// Benchmarks lists the built-in benchmark names in Table 2 order.
func Benchmarks() []string { return workload.Names() }

// Benchmark builds one of the 11 synthetic Table 2 benchmarks.
func Benchmark(name string) (*Program, error) {
	profile, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownBenchmark, name, workload.Names())
	}
	built, err := profile.Build(benchmarkIters)
	if err != nil {
		return nil, err
	}
	return &Program{p: built}, nil
}

// Assemble builds a program from SRISC text assembly. filename is used
// in error positions only.
func Assemble(filename, src string) (*Program, error) {
	built, err := asm.Assemble(filename, src)
	if err != nil {
		return nil, err
	}
	return &Program{p: built}, nil
}

// AssembleFile reads and assembles an SRISC assembly file.
func AssembleFile(path string) (*Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Assemble(path, string(src))
}

// Reference is the result of running a program on the in-order
// functional reference simulator: the ground truth the pipeline's
// committed state is measured against.
type Reference struct {
	// Insts is the number of instructions executed.
	Insts uint64
	// Output collects the values written by the out instruction, in
	// program order.
	Output []uint64
	// Halted reports whether the program reached its halt instruction
	// within the instruction budget.
	Halted bool
}

// Reference executes the program on the fault-free in-order functional
// simulator for at most maxInsts instructions (0 means a generous
// default) and returns its architectural outputs.
func (p *Program) Reference(maxInsts uint64) (*Reference, error) {
	if maxInsts == 0 {
		maxInsts = 100_000_000
	}
	m := funcsim.New(p.p)
	err := m.Run(maxInsts)
	halted := err == nil
	if err != nil && !errors.Is(err, funcsim.ErrLimit) {
		return nil, err
	}
	return &Reference{Insts: m.Insts, Output: append([]uint64(nil), m.Output...), Halted: halted}, nil
}
