package ftsim_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/ftsim"
)

// TestCampaignObserverStreamsEveryTrial: WithCampaignObserver delivers
// interval samples tagged with the right trial index and label, exactly
// one Final sample per trial, and — observation being a pure tap —
// identical campaign statistics to an unobserved run.
func TestCampaignObserverStreamsEveryTrial(t *testing.T) {
	trials := campaignGrid(t)

	var mu sync.Mutex
	finals := make(map[int]int)       // trial index -> Final sample count
	samples := make(map[int]int)      // trial index -> total samples
	labels := make(map[int]string)    // trial index -> observed label
	committed := make(map[int]uint64) // trial index -> last cumulative Committed
	rep, err := ftsim.RunCampaign(context.Background(), "observed", trials,
		ftsim.WithWorkers(2),
		ftsim.WithCampaignObserveEvery(500), // several samples per 2k-inst trial
		ftsim.WithCampaignObserver(func(trial int, label string, iv ftsim.Interval) {
			mu.Lock()
			defer mu.Unlock()
			samples[trial]++
			labels[trial] = label
			committed[trial] = iv.Committed
			if iv.Final {
				finals[trial]++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ftsim.CollectStats(rep)
	if err != nil {
		t.Fatal(err)
	}

	for i, tr := range trials {
		if finals[i] != 1 {
			t.Errorf("trial %d: %d Final samples, want exactly 1", i, finals[i])
		}
		if samples[i] < 2 {
			t.Errorf("trial %d: only %d samples; want periodic intervals plus the Final one", i, samples[i])
		}
		if labels[i] != tr.Label {
			t.Errorf("trial %d: observed label %q, want %q", i, labels[i], tr.Label)
		}
		if committed[i] != got[i].Committed {
			t.Errorf("trial %d: final observed Committed %d != stats %d", i, committed[i], got[i].Committed)
		}
	}

	plain, err := ftsim.RunCampaign(context.Background(), "observed", trials,
		ftsim.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ftsim.CollectStats(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("observed campaign statistics differ from an unobserved run's")
	}
}
