// Package api defines the wire format of the ftsimd campaign service:
// the JSON request and status envelopes of the /v1/campaigns endpoints
// and the event records of its SSE streams. Both the server
// (internal/server) and the client (ftsim/client, cmd/ftsimc) speak
// these types, so the one definition is the protocol.
//
// Machine descriptions on the wire are ftsim.Config verbatim — the
// golden files under ftsim/testdata are valid submission payloads: a
// body that is a bare machine config is accepted as a one-trial
// campaign (ParseSubmission).
package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/ftsim"
)

// TrialSpec is one point of a submitted campaign grid: a machine
// description plus the workload it simulates.
type TrialSpec struct {
	// Label names the trial in status and event reports; empty labels
	// default to "<index>/<workload>".
	Label string `json:"label,omitempty"`
	// Benchmark names a built-in Table 2 workload (ftsim.Benchmarks).
	// Empty selects the server's default benchmark — unless Asm is set.
	Benchmark string `json:"benchmark,omitempty"`
	// Asm, when non-empty, is SRISC assembly source assembled as the
	// trial's workload instead of a built-in benchmark.
	Asm string `json:"asm,omitempty"`
	// Config is the machine description, in the ftsim.Config wire
	// format. Run limits of zero take the server's default instruction
	// budget, so golden configs terminate.
	Config ftsim.Config `json:"config"`
}

// CampaignRequest is the POST /v1/campaigns submission body.
type CampaignRequest struct {
	// Name labels the campaign in listings; empty defaults to the
	// first trial's workload name.
	Name string `json:"name,omitempty"`
	// Seed is the campaign master seed every per-trial fault seed
	// derives from; 0 means 1.
	Seed int64 `json:"seed,omitempty"`
	// Workers overrides the server's per-job worker-pool size for this
	// campaign (0 keeps the server default). Results are identical for
	// any value.
	Workers int `json:"workers,omitempty"`
	// Shards asks a coordinator daemon to split the grid into this many
	// trial-range shards across its worker daemons (0 picks one shard
	// per configured worker). Results are identical for any value — a
	// shard's per-trial seeds derive from parent-grid indices, never
	// from the partition. Worker daemons ignore the field.
	Shards int `json:"shards,omitempty"`
	// Shard marks this request as one shard of a larger campaign grid:
	// trial i of this request is trial Shard.Offset+i of the parent
	// grid, and its fault seed derives from that parent index, so a
	// sharded run's statistics are byte-identical to an unsharded
	// run's. Coordinators set it on the sub-campaigns they dispatch;
	// plain clients normally leave it nil.
	Shard *ShardRange `json:"shard,omitempty"`
	// Trials is the grid, run in order-independent parallel with
	// deterministic per-trial seeds.
	Trials []TrialSpec `json:"trials"`
}

// ShardRange locates a shard's trials inside its parent campaign grid.
type ShardRange struct {
	// Offset is the parent-grid index of this request's first trial.
	Offset int `json:"offset"`
	// Total is the parent grid's trial count; the shard's trials must
	// fit inside [Offset, Total).
	Total int `json:"total"`
}

// validateShard checks a request's shard range against its own trial
// count: the range [Offset, Offset+len(Trials)) must sit inside
// [0, Total). Comparisons are arranged to be overflow-proof — a Total
// of math.MaxInt64 with a near-max Offset must be rejected, not wrap.
func (r *CampaignRequest) validateShard() error {
	s := r.Shard
	if s == nil {
		return nil
	}
	switch {
	case s.Offset < 0:
		return fmt.Errorf("shard: negative offset %d", s.Offset)
	case s.Total < 1:
		return fmt.Errorf("shard: total %d is not a positive trial count", s.Total)
	case s.Offset >= s.Total:
		return fmt.Errorf("shard: offset %d is outside the parent grid of %d trials", s.Offset, s.Total)
	case len(r.Trials) > s.Total-s.Offset:
		return fmt.Errorf("shard: %d trials at offset %d overflow the parent grid of %d trials",
			len(r.Trials), s.Offset, s.Total)
	}
	return nil
}

// MaxTrialsPerRequest bounds one submission's grid. It exists to make
// trial-count arithmetic overflow-proof everywhere downstream (quota
// sums, shard partitioning) and is far above any campaign the service
// is sized for; per-client quotas bite long before it does.
const MaxTrialsPerRequest = 10_000_000

// ParseSubmission decodes a POST /v1/campaigns body. Two shapes are
// accepted: a full CampaignRequest (the top level has a "trials" key),
// and a bare ftsim.Config — e.g. a ftsim/testdata golden file — which
// becomes a one-trial campaign on the server's default workload.
// Unknown fields are rejected in both shapes: a typo in a submitted
// machine description must not silently fall back to a default. The
// request-shape invariants every daemon mode relies on are enforced
// here: at least one trial, a bounded trial count, a non-negative
// shard-count hint, and a shard range that stays inside its parent
// grid.
func ParseSubmission(data []byte) (*CampaignRequest, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("body is not a JSON object: %w", err)
	}
	if _, ok := probe["trials"]; !ok {
		cfg, err := ftsim.ParseConfig(data)
		if err != nil {
			return nil, err
		}
		return &CampaignRequest{Trials: []TrialSpec{{Config: cfg}}}, nil
	}
	var req CampaignRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	if len(req.Trials) == 0 {
		return nil, errors.New("campaign has no trials")
	}
	if len(req.Trials) > MaxTrialsPerRequest {
		return nil, fmt.Errorf("campaign has %d trials (limit %d per request)",
			len(req.Trials), MaxTrialsPerRequest)
	}
	if req.Shards < 0 {
		return nil, fmt.Errorf("negative shard count %d", req.Shards)
	}
	if err := req.validateShard(); err != nil {
		return nil, err
	}
	return &req, nil
}

// JobState is one station of the campaign lifecycle state machine:
//
//	queued → running → done
//	   │        ├────→ failed
//	   └────────┴────→ cancelled
//
// A daemon restart re-queues interrupted running jobs; their completed
// trials resume from the checkpoint journal instead of re-running.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the GET /v1/campaigns/{id} response: the lifecycle
// position and progress of one submitted campaign.
type JobStatus struct {
	ID    string   `json:"id"`
	Name  string   `json:"name"`
	State JobState `json:"state"`
	// Owner is the client token the job was submitted under.
	Owner string `json:"owner,omitempty"`

	// Trials is the grid size; Done counts completed trials (including
	// resumed ones), Failed the entries of the error manifest, Resumed
	// the trials restored from the checkpoint journal after a restart.
	Trials  int `json:"trials"`
	Done    int `json:"done"`
	Failed  int `json:"failed,omitempty"`
	Resumed int `json:"resumed,omitempty"`

	// Shard progress, reported by coordinator daemons only: the number
	// of trial-range shards the grid was split into and how many have
	// completed on their workers.
	Shards     int `json:"shards,omitempty"`
	ShardsDone int `json:"shards_done,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// Error is the campaign failure summary of failed jobs.
	Error string `json:"error,omitempty"`

	// Stats, present once the job is done, is the per-trial statistics
	// in grid order — []*ftsim.Stats in the same JSON stats codec the
	// checkpoint journal uses, so a resumed job's aggregate is
	// byte-identical to an uninterrupted run's.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// EventType discriminates SSE stream events.
type EventType string

const (
	// EventState reports a lifecycle transition.
	EventState EventType = "state"
	// EventInterval is a per-interval Observer sample of one running
	// trial.
	EventInterval EventType = "interval"
	// EventTrial reports one trial's completion.
	EventTrial EventType = "trial"
	// EventDone closes the stream: the job reached a terminal state.
	// Its Status carries the final JobStatus, including Stats.
	EventDone EventType = "done"
)

// Event is one record of the GET /v1/campaigns/{id}/events SSE stream.
// Seq numbers events per job from 1; reconnecting with Last-Event-ID
// replays everything after that sequence number.
type Event struct {
	Type EventType `json:"type"`
	Seq  int64     `json:"seq"`
	Job  string    `json:"job"`

	// State accompanies state transitions (EventState, EventDone).
	State JobState `json:"state,omitempty"`

	// Trial fields (EventInterval, EventTrial).
	Trial int    `json:"trial,omitempty"`
	Label string `json:"label,omitempty"`

	// Interval is the Observer sample of EventInterval events.
	Interval *ftsim.Interval `json:"interval,omitempty"`

	// Trial-completion fields (EventTrial): progress counts, the
	// trial's wall time, and its error, if it failed.
	Done    int     `json:"done,omitempty"`
	Total   int     `json:"total,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	Err     string  `json:"err,omitempty"`

	// Status is the final JobStatus of EventDone events.
	Status *JobStatus `json:"status,omitempty"`
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	// StatusCode is the HTTP status of the response (not serialized;
	// the transport carries it).
	StatusCode int `json:"-"`
	// Message says what was wrong with the request.
	Message string `json:"error"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("ftsimd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Health is the GET /healthz response body: liveness (the daemon
// answered) plus readiness. Status is "ok", "degraded" (data dir not
// writable) or "draining"; the latter two arrive with HTTP 503 so load
// balancers rotate clients away before submissions start failing.
type Health struct {
	Status  string `json:"status"`
	Jobs    int    `json:"jobs"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`

	// Slots is the configured job concurrency; SlotsInUse the slots
	// currently occupied by running jobs.
	Slots      int `json:"slots,omitempty"`
	SlotsInUse int `json:"slots_in_use"`
	// Draining reports a shutdown in progress: admission is closed,
	// running jobs are flushing their journals.
	Draining bool `json:"draining,omitempty"`
	// DataDir and DataDirWritable report the persistence root and
	// whether the daemon can still create files there (nil when the
	// daemon is ephemeral).
	DataDir         string `json:"data_dir,omitempty"`
	DataDirWritable *bool  `json:"data_dir_writable,omitempty"`
}

// Version is the GET /version response body.
type Version struct {
	Version   string `json:"version"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
	GoVersion string `json:"go"`
}
