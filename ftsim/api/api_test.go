package api

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/ftsim"
)

// TestParseSubmissionGoldenConfigs: every ftsim/testdata golden machine
// config is a valid submission body, wrapped as a one-trial campaign.
func TestParseSubmissionGoldenConfigs(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "testdata", "*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no golden configs found (err=%v)", err)
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		req, err := ParseSubmission(data)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if len(req.Trials) != 1 {
			t.Errorf("%s: wrapped into %d trials, want 1", filepath.Base(path), len(req.Trials))
			continue
		}
		if err := req.Trials[0].Config.Validate(); err != nil {
			t.Errorf("%s: wrapped config invalid: %v", filepath.Base(path), err)
		}
	}
}

// TestParseSubmissionRequestRoundTrip: a full CampaignRequest survives
// marshal → ParseSubmission.
func TestParseSubmissionRequestRoundTrip(t *testing.T) {
	in := &CampaignRequest{
		Name: "sweep",
		Seed: 7,
		Trials: []TrialSpec{
			{Label: "a", Benchmark: "gcc", Config: ftsim.ModelSS2.Config()},
			{Label: "b", Benchmark: "swim", Config: ftsim.ModelSS3.Config()},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSubmission(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Seed != in.Seed || len(out.Trials) != 2 ||
		out.Trials[1].Benchmark != "swim" {
		t.Errorf("round trip mangled the request: %+v", out)
	}
}

// TestParseSubmissionRejects: typos and invalid configs fail loudly.
func TestParseSubmissionRejects(t *testing.T) {
	for name, body := range map[string]string{
		"not json":            `[]`,
		"unknown field":       `{"trials": [], "trails": 1}`,
		"config typo":         `{"r": 1, "pipelin": {}}`,
		"invalid bare config": `{"r": -4}`,
	} {
		if _, err := ParseSubmission([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
	// Bare-config validation errors keep the ftsim taxonomy.
	_, err := ParseSubmission([]byte(`{"r": -4}`))
	if !errors.Is(err, ftsim.ErrInvalidConfig) {
		t.Errorf("bare invalid config: got %v, want ErrInvalidConfig", err)
	}
}

// TestParseSubmissionTrialBounds: the grid-size invariants every daemon
// mode relies on — at least one trial, at most MaxTrialsPerRequest.
func TestParseSubmissionTrialBounds(t *testing.T) {
	for name, body := range map[string]string{
		"zero trials":  `{"trials": []}`,
		"null trials":  `{"trials": null}`,
		"named, empty": `{"name": "sweep", "seed": 3, "trials": []}`,
	} {
		if _, err := ParseSubmission([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}

	// One real trial passes the same gate.
	one, err := json.Marshal(&CampaignRequest{
		Trials: []TrialSpec{{Config: ftsim.ModelSS2.Config()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSubmission(one); err != nil {
		t.Errorf("one-trial campaign rejected: %v", err)
	}
}

// TestParseSubmissionShardRange: shard ranges outside the parent grid —
// including arithmetic chosen to overflow naive offset+count sums — are
// rejected at the door.
func TestParseSubmissionShardRange(t *testing.T) {
	mk := func(trials int, shard *ShardRange, shards int) []byte {
		req := &CampaignRequest{Shard: shard, Shards: shards}
		for i := 0; i < trials; i++ {
			req.Trials = append(req.Trials, TrialSpec{Config: ftsim.ModelSS2.Config()})
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	accepted := map[string][]byte{
		"no shard":           mk(2, nil, 0),
		"shard hint only":    mk(2, nil, 7),
		"first shard":        mk(2, &ShardRange{Offset: 0, Total: 5}, 0),
		"last shard":         mk(2, &ShardRange{Offset: 3, Total: 5}, 0),
		"whole grid as one":  mk(2, &ShardRange{Offset: 0, Total: 2}, 0),
		"single-trial shard": mk(1, &ShardRange{Offset: 4, Total: 5}, 0),
	}
	for name, body := range accepted {
		if _, err := ParseSubmission(body); err != nil {
			t.Errorf("%s: rejected: %v", name, err)
		}
	}

	rejected := map[string][]byte{
		"negative offset":  mk(1, &ShardRange{Offset: -1, Total: 5}, 0),
		"zero total":       mk(1, &ShardRange{Offset: 0, Total: 0}, 0),
		"negative total":   mk(1, &ShardRange{Offset: 0, Total: -3}, 0),
		"offset past grid": mk(1, &ShardRange{Offset: 5, Total: 5}, 0),
		"range past grid":  mk(2, &ShardRange{Offset: 4, Total: 5}, 0),
		"negative hint":    mk(1, nil, -1),
		"offset+len overflow": mk(2, &ShardRange{
			// Offset+len(Trials) overflows int if summed naively; the
			// validator must reject by comparison, not wrap to a small
			// positive number and accept.
			Offset: math.MaxInt - 1, Total: math.MaxInt,
		}, 0),
	}
	for name, body := range rejected {
		if _, err := ParseSubmission(body); err == nil {
			t.Errorf("%s: accepted out-of-bounds shard range", name)
		}
	}
}

// TestJobStateTerminal pins the lifecycle's terminal states.
func TestJobStateTerminal(t *testing.T) {
	for state, terminal := range map[JobState]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if state.Terminal() != terminal {
			t.Errorf("%s.Terminal() = %v, want %v", state, !terminal, terminal)
		}
	}
}
