package api

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/ftsim"
)

// TestParseSubmissionGoldenConfigs: every ftsim/testdata golden machine
// config is a valid submission body, wrapped as a one-trial campaign.
func TestParseSubmissionGoldenConfigs(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "testdata", "*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no golden configs found (err=%v)", err)
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		req, err := ParseSubmission(data)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if len(req.Trials) != 1 {
			t.Errorf("%s: wrapped into %d trials, want 1", filepath.Base(path), len(req.Trials))
			continue
		}
		if err := req.Trials[0].Config.Validate(); err != nil {
			t.Errorf("%s: wrapped config invalid: %v", filepath.Base(path), err)
		}
	}
}

// TestParseSubmissionRequestRoundTrip: a full CampaignRequest survives
// marshal → ParseSubmission.
func TestParseSubmissionRequestRoundTrip(t *testing.T) {
	in := &CampaignRequest{
		Name: "sweep",
		Seed: 7,
		Trials: []TrialSpec{
			{Label: "a", Benchmark: "gcc", Config: ftsim.ModelSS2.Config()},
			{Label: "b", Benchmark: "swim", Config: ftsim.ModelSS3.Config()},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSubmission(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Seed != in.Seed || len(out.Trials) != 2 ||
		out.Trials[1].Benchmark != "swim" {
		t.Errorf("round trip mangled the request: %+v", out)
	}
}

// TestParseSubmissionRejects: typos and invalid configs fail loudly.
func TestParseSubmissionRejects(t *testing.T) {
	for name, body := range map[string]string{
		"not json":            `[]`,
		"unknown field":       `{"trials": [], "trails": 1}`,
		"config typo":         `{"r": 1, "pipelin": {}}`,
		"invalid bare config": `{"r": -4}`,
	} {
		if _, err := ParseSubmission([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
	// Bare-config validation errors keep the ftsim taxonomy.
	_, err := ParseSubmission([]byte(`{"r": -4}`))
	if !errors.Is(err, ftsim.ErrInvalidConfig) {
		t.Errorf("bare invalid config: got %v, want ErrInvalidConfig", err)
	}
}

// TestJobStateTerminal pins the lifecycle's terminal states.
func TestJobStateTerminal(t *testing.T) {
	for state, terminal := range map[JobState]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if state.Terminal() != terminal {
			t.Errorf("%s.Terminal() = %v, want %v", state, !terminal, terminal)
		}
	}
}
