package ftsim_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/ftsim"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

// legacyConfig builds the pre-facade core.Config for one model exactly
// the way the old consumers did.
func legacyConfig(t *testing.T, model ftsim.Model) core.Config {
	t.Helper()
	switch model {
	case ftsim.ModelSS1:
		return core.SS1()
	case ftsim.ModelSS2:
		return core.SS2()
	case ftsim.ModelSS3:
		return core.SS3()
	case ftsim.ModelSS3Rewind:
		return core.SS3Rewind()
	case ftsim.ModelStatic2:
		return core.Static2()
	}
	t.Fatalf("no legacy config for %q", model)
	return core.Config{}
}

// TestFacadeMatchesCore is the acceptance gate of the API redesign: the
// public facade must produce byte-identical Stats to the legacy
// core.Run path, across the Table 2 workloads and R in {1,2,3}, with
// fault injection on.
func TestFacadeMatchesCore(t *testing.T) {
	benches := ftsim.Benchmarks()
	if testing.Short() {
		benches = benches[:3]
	}
	models := []ftsim.Model{ftsim.ModelSS1, ftsim.ModelSS2, ftsim.ModelSS3}
	const insts = 10_000
	const rate = 1e-4

	for _, bench := range benches {
		for i, model := range models {
			seed := int64(100*i) + int64(len(bench)) // arbitrary but deterministic
			t.Run(bench+"/"+string(model), func(t *testing.T) {
				// Legacy path: internal core.Config literals, core.Run.
				profile, ok := workload.ByName(bench)
				if !ok {
					t.Fatal("unknown benchmark")
				}
				program, err := profile.Build(1 << 32)
				if err != nil {
					t.Fatal(err)
				}
				legacy := legacyConfig(t, model)
				legacy.Fault = fault.Config{Rate: rate, Seed: seed, Targets: fault.AllTargets}
				legacy.MaxInsts = insts
				legacy.MaxCycles = insts * 100
				want, err := core.Run(program, legacy)
				if err != nil {
					t.Fatal(err)
				}

				// Facade path: public options and session.
				m, err := ftsim.New(
					ftsim.WithModel(model),
					ftsim.WithFaultRate(rate),
					ftsim.WithFaultSeed(seed),
					ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
					ftsim.WithMaxInsts(insts),
					ftsim.WithMaxCycles(insts*100))
				if err != nil {
					t.Fatal(err)
				}
				fp, err := ftsim.Benchmark(bench)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Run(context.Background(), fp)
				if err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(want, got) {
					t.Errorf("facade stats diverge from core.Run\nlegacy: %s\nfacade: %s",
						want.Summary(), got.Summary())
				}
			})
		}
	}
}

// TestSerializedConfigMatchesCore closes the persistence loop: a config
// marshalled to JSON and restored with ParseConfig must drive the
// simulator to the identical Stats.
func TestSerializedConfigMatchesCore(t *testing.T) {
	m, err := ftsim.New(ftsim.SS2(),
		ftsim.WithFaultRate(1e-4),
		ftsim.WithFaultSeed(42),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithMaxInsts(8_000),
		ftsim.WithMaxCycles(800_000))
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Config().JSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ftsim.ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ftsim.NewFromConfig(restored)
	if err != nil {
		t.Fatal(err)
	}

	p, err := ftsim.Benchmark("fpppp")
	if err != nil {
		t.Fatal(err)
	}
	st1, err := m.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m2.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("restored config diverges:\noriginal: %s\nrestored: %s", st1.Summary(), st2.Summary())
	}
}

// TestRunContextCancel: cancelling mid-simulation returns promptly with
// context.Canceled and partial statistics.
func TestRunContextCancel(t *testing.T) {
	m, err := ftsim.New(ftsim.SS2(), ftsim.WithMaxInsts(0), ftsim.WithMaxCycles(0))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ftsim.Benchmark("gcc")
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Load(p)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st, err := s.Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	// The run had no limits: only the cancellation can have stopped it,
	// and it must do so promptly (the loop polls every 1024 cycles).
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if st == nil || st.Cycles == 0 {
		t.Error("cancelled run returned no partial statistics")
	}
	if st.Halted {
		t.Error("cancelled run claims to have halted")
	}
}

// TestRunContextDeadline: a deadline behaves like cancellation with
// context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	m, err := ftsim.New(ftsim.SS1(), ftsim.WithMaxInsts(0), ftsim.WithMaxCycles(0))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ftsim.Benchmark("swim")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = m.Run(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestObserverDoesNotPerturb: an instrumented run must produce the
// identical Stats as an unobserved one, and the interval stream must be
// monotonic and end with exactly one Final sample.
func TestObserverDoesNotPerturb(t *testing.T) {
	build := func(obs ftsim.Observer) *ftsim.Machine {
		opts := []ftsim.Option{ftsim.SS2(),
			ftsim.WithFaultRate(1e-4),
			ftsim.WithFaultSeed(9),
			ftsim.WithMaxInsts(20_000),
			ftsim.WithMaxCycles(2_000_000)}
		if obs != nil {
			opts = append(opts, ftsim.WithObserver(obs), ftsim.WithObserveEvery(1000))
		}
		m, err := ftsim.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	p, err := ftsim.Benchmark("vortex")
	if err != nil {
		t.Fatal(err)
	}

	plain, err := build(nil).Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	var ivs []ftsim.Interval
	observed, err := build(ftsim.ObserverFunc(func(iv ftsim.Interval) {
		ivs = append(ivs, iv)
	})).Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observation perturbed the simulation:\nplain:    %s\nobserved: %s",
			plain.Summary(), observed.Summary())
	}
	if len(ivs) < 2 {
		t.Fatalf("got %d interval samples, want a stream", len(ivs))
	}
	finals := 0
	for i, iv := range ivs {
		if iv.Final {
			finals++
			if i != len(ivs)-1 {
				t.Error("Final interval not last")
			}
		}
		if i > 0 {
			prev := ivs[i-1]
			if iv.Cycles < prev.Cycles || iv.Committed < prev.Committed {
				t.Errorf("interval %d went backwards: %+v -> %+v", i, prev, iv)
			}
			if iv.DeltaCommitted != iv.Committed-prev.Committed {
				t.Errorf("interval %d delta mismatch", i)
			}
		}
	}
	if finals != 1 {
		t.Errorf("got %d Final samples, want 1", finals)
	}
	last := ivs[len(ivs)-1]
	if last.Cycles != observed.Cycles || last.Committed != observed.Committed {
		t.Errorf("final interval (%d cycles, %d insts) != final stats (%d, %d)",
			last.Cycles, last.Committed, observed.Cycles, observed.Committed)
	}
}

// TestConcurrentSessions: one Machine, many concurrent sessions — the
// pattern a service would use — must race cleanly (run under -race) and
// produce identical results on every goroutine.
func TestConcurrentSessions(t *testing.T) {
	m, err := ftsim.New(ftsim.SS2(),
		ftsim.WithFaultRate(2e-4),
		ftsim.WithFaultSeed(5),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithMaxInsts(5_000),
		ftsim.WithMaxCycles(500_000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ftsim.Benchmark("ijpeg")
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]*ftsim.Stats, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = m.Run(context.Background(), p)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("session %d diverged from session 0", i)
		}
	}
}

// TestSessionSingleUse: a session cannot be run twice.
func TestSessionSingleUse(t *testing.T) {
	m, err := ftsim.New(ftsim.SS1(), ftsim.WithMaxInsts(1_000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ftsim.Benchmark("go")
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); !errors.Is(err, ftsim.ErrSessionUsed) {
		t.Fatalf("second Run returned %v, want ErrSessionUsed", err)
	}
}

// TestStrictOracle: under WithStrictOracle an unprotected machine
// bombarded with faults aborts with the typed oracle-mismatch error.
func TestStrictOracle(t *testing.T) {
	m, err := ftsim.New(ftsim.SS1(),
		ftsim.WithFaultRate(1e-2),
		ftsim.WithFaultSeed(3),
		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
		ftsim.WithStrictOracle(),
		ftsim.WithMaxInsts(50_000),
		ftsim.WithMaxCycles(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ftsim.Benchmark("gcc")
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(context.Background(), p)
	if !errors.Is(err, ftsim.ErrOracleMismatch) {
		t.Fatalf("strict run returned %v, want ErrOracleMismatch", err)
	}
	var oe *ftsim.OracleError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an *OracleError", err)
	}
	if oe.Cycle == 0 || oe.Diff == "" {
		t.Errorf("divergence detail missing: %+v", oe)
	}
	if st == nil || st.EscapedFaults == 0 {
		t.Error("escaped fault not counted alongside the error")
	}
	if err := ftsim.CheckEscapes(st); !errors.Is(err, ftsim.ErrFaultEscape) {
		t.Errorf("CheckEscapes = %v, want ErrFaultEscape", err)
	}

	// The protected design under the same storm detects instead of
	// escaping: strict mode stays silent and the audit passes.
	m2, err := ftsim.New(ftsim.SS2(),
		ftsim.WithFaultRate(1e-3),
		ftsim.WithFaultSeed(3),
		ftsim.WithStrictOracle(),
		ftsim.WithMaxInsts(20_000),
		ftsim.WithMaxCycles(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m2.Run(context.Background(), p)
	if err != nil {
		t.Fatalf("protected strict run failed: %v", err)
	}
	if st2.FaultsDetected == 0 {
		t.Error("no faults detected at rate 1e-3")
	}
	if err := ftsim.CheckEscapes(st2); err != nil {
		t.Errorf("protected run audit failed: %v", err)
	}
}

// TestUnknownNames: the name-lookup sentinels.
func TestUnknownNames(t *testing.T) {
	if _, err := ftsim.Benchmark("nope"); !errors.Is(err, ftsim.ErrUnknownBenchmark) {
		t.Errorf("Benchmark(nope) = %v, want ErrUnknownBenchmark", err)
	}
	_, err := ftsim.New(ftsim.WithModel("ss99"))
	if !errors.Is(err, ftsim.ErrUnknownModel) {
		t.Errorf("New(ss99) = %v, want ErrUnknownModel", err)
	}
	if !errors.Is(err, ftsim.ErrInvalidConfig) {
		t.Errorf("New(ss99) = %v, want ErrInvalidConfig too", err)
	}
}
