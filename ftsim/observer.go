package ftsim

// Interval is one progress sample of a running session, streamed to the
// session's Observer every observation period instead of only as a
// final Stats blob. Cumulative counters cover the whole run so far;
// the Delta* fields cover just this interval.
type Interval struct {
	// Cycles and Committed are cumulative simulated cycles and
	// architectural instructions.
	Cycles    uint64
	Committed uint64
	// IPC is the cumulative instructions-per-cycle; IntervalIPC is the
	// throughput over this interval alone, which is what a live
	// dashboard wants to plot.
	IPC         float64
	IntervalIPC float64

	// Fault-tolerance progress, cumulative.
	FaultsDetected  uint64
	FaultRewinds    uint64
	MajorityCommits uint64
	BranchRewinds   uint64
	EscapedFaults   uint64

	// Interval deltas of the same counters.
	DeltaCommitted      uint64
	DeltaFaultsDetected uint64
	DeltaFaultRewinds   uint64

	// Final marks the closing sample, emitted when the run ends (for
	// any reason, including cancellation). Exactly one Final interval
	// is delivered per run, and it reflects the complete statistics.
	Final bool
}

// Observer receives interval samples from a running session.
//
// Observe is called synchronously from the simulation loop: it must not
// block for long, and it must not call back into the session. A session
// is single-goroutine, so Observe never runs concurrently with itself
// for one session; distinct sessions sharing one Observer must make it
// safe for concurrent use. Observation is a pure tap — enabling it
// never changes simulation results.
type Observer interface {
	Observe(Interval)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Interval)

// Observe calls f.
func (f ObserverFunc) Observe(iv Interval) { f(iv) }

// DefaultObserveEvery is the observation period, in simulated cycles,
// used when an Observer is installed without WithObserveEvery.
const DefaultObserveEvery = 50_000
