package ftsim

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"repro/internal/campaign"
)

// Trial is one point of a RunCampaign grid: a machine description
// paired with the workload it simulates.
type Trial struct {
	// Label names the trial in progress reports and the error manifest.
	Label string
	// Config is the machine description the trial simulates. When fault
	// injection is enabled, its seed is overwritten with the trial's
	// derived campaign seed.
	Config Config
	// Program is the workload; the same *Program may back any number of
	// trials.
	Program *Program
}

// Campaign result types, re-exported from the engine (the same
// pattern as Stats): the facade adds no translation layer.
type (
	// CampaignReport is a completed campaign: per-trial results in grid
	// order, wall-time aggregates, the resumed-trial count, and the
	// error manifest via Failures.
	CampaignReport = campaign.Report
	// TrialResult is the outcome of one trial.
	TrialResult = campaign.Result
	// TrialFailure is one entry of the campaign error manifest.
	TrialFailure = campaign.TrialFailure
	// CampaignProgress observes trial completions as they happen.
	CampaignProgress = campaign.Progress
)

// Campaign error taxonomy, re-exported for errors.Is tests.
var (
	// ErrTrialPanic: a trial panicked; the panic was contained to that
	// trial and converted to this error.
	ErrTrialPanic = campaign.ErrTrialPanic
	// ErrTrialTimeout: a trial exceeded the WithTrialTimeout deadline.
	ErrTrialTimeout = campaign.ErrTrialTimeout
	// ErrCheckpointMismatch: a checkpoint journal belongs to a
	// different campaign (name, seed, grid, or configuration changed)
	// and cannot be resumed.
	ErrCheckpointMismatch = campaign.ErrCheckpointMismatch
	// ErrTransient marks a trial error as retryable under WithRetry.
	ErrTransient = campaign.ErrTransient
)

// CampaignOption configures RunCampaign.
type CampaignOption func(*campaignOpts)

type campaignOpts struct {
	workers      int
	seed         int64
	progress     campaign.Progress
	observer     TrialObserver
	observeEvery uint64
	checkpoint   string
	flushEvery   int
	trialTimeout time.Duration
	retries      int
	backoff      time.Duration
	failFast     bool
	metrics      *campaign.Metrics
	seedOffset   int
}

// WithWorkers sets the worker-pool size (0 = GOMAXPROCS, 1 = serial).
// Results are identical for any value.
func WithWorkers(n int) CampaignOption {
	return func(o *campaignOpts) { o.workers = n }
}

// WithCampaignSeed sets the campaign master seed every per-trial fault
// seed derives from; the default is 1.
func WithCampaignSeed(seed int64) CampaignOption {
	return func(o *campaignOpts) { o.seed = seed }
}

// WithTrialSeedOffset shifts seed derivation: trial i draws the seed of
// parent-grid index offset+i. It is how a shard of a larger campaign
// keeps per-trial seeds identical to the unsharded run — a coordinator
// dispatches trials [offset, offset+n) of the parent grid as a
// shard-local grid [0, n) with this option, and the merged statistics
// come out byte-identical to one daemon running the whole range.
func WithTrialSeedOffset(offset int) CampaignOption {
	return func(o *campaignOpts) { o.seedOffset = offset }
}

// WithCampaignProgress streams trial completions to fn (serialised, in
// completion order).
func WithCampaignProgress(fn CampaignProgress) CampaignOption {
	return func(o *campaignOpts) { o.progress = fn }
}

// TrialObserver receives the Interval samples of every running trial of
// a campaign, tagged with the trial's grid index and label. Distinct
// trials run on distinct workers concurrently, so the observer must be
// safe for concurrent use; like a session Observer it is a pure tap —
// observation never changes results — and must not block for long.
type TrialObserver func(trial int, label string, iv Interval)

// WithCampaignObserver streams per-interval progress of every trial to
// fn while the campaign runs — the live feed a dashboard or a campaign
// service forwards to clients. Samples arrive at the WithObserveEvery
// period of each trial (DefaultObserveEvery unless
// WithCampaignObserveEvery overrides it), plus one Final sample per
// trial.
func WithCampaignObserver(fn TrialObserver) CampaignOption {
	return func(o *campaignOpts) { o.observer = fn }
}

// WithCampaignObserveEvery sets the observation period, in simulated
// cycles, of the WithCampaignObserver stream.
func WithCampaignObserveEvery(cycles uint64) CampaignOption {
	return func(o *campaignOpts) { o.observeEvery = cycles }
}

// WithCheckpoint journals completed trials to the file at path and
// resumes from it when it already holds a matching campaign's records.
// A journal written by a different campaign fails with
// ErrCheckpointMismatch rather than silently mixing grids.
func WithCheckpoint(path string) CampaignOption {
	return func(o *campaignOpts) { o.checkpoint = path }
}

// WithCheckpointFlushEvery sets the journal's fsync batch size: the
// checkpoint is synced to stable storage after every n completed
// trials (default 32). 1 makes every trial durable the moment it
// completes — what a long-lived campaign service wants — at the cost
// of one fsync per trial.
func WithCheckpointFlushEvery(n int) CampaignOption {
	return func(o *campaignOpts) { o.flushEvery = n }
}

// WithTrialTimeout bounds each trial attempt with a per-trial deadline
// (delivered through the trial's context into the pipeline loop); an
// attempt exceeding it fails with ErrTrialTimeout.
func WithTrialTimeout(d time.Duration) CampaignOption {
	return func(o *campaignOpts) { o.trialTimeout = d }
}

// WithRetry re-attempts retryable trial failures (ErrTransient,
// ErrTrialTimeout) up to retries additional times, waiting backoff
// before the first retry and doubling it for each subsequent one
// (backoff <= 0 selects a 50ms default).
func WithRetry(retries int, backoff time.Duration) CampaignOption {
	return func(o *campaignOpts) { o.retries = retries; o.backoff = backoff }
}

// WithFailFast disables fault containment: the first trial failure
// cancels the rest of the grid, as a quick-look sweep wants. Without
// it, every trial runs and failures accumulate in the error manifest.
func WithFailFast() CampaignOption {
	return func(o *campaignOpts) { o.failFast = true }
}

// RunCampaign executes a grid of independent simulation trials across
// a worker pool, with the durability and fault-containment guarantees
// of the campaign engine:
//
//   - results are deterministic: per-trial fault seeds derive from the
//     campaign seed and trial index, never from scheduling, so any
//     worker count produces identical statistics;
//   - trial failures are contained by default: a panicking or failing
//     trial is recorded in the report's error manifest
//     (CampaignReport.Failures) while the rest of the grid completes
//     (WithFailFast restores abort-on-first-failure); and
//   - with WithCheckpoint, completed trials are journaled to disk and
//     a re-run over the same journal resumes, skipping finished
//     trials — a campaign killed mid-grid loses at most one fsync
//     batch of results, and its resumed aggregate statistics are
//     identical to an uninterrupted run's.
//
// Machines are pooled per worker, so trial cost is dominated by
// simulation, not construction. The returned error summarises trial
// failures (the report still carries every completed result — partial
// results are the point of containment) or reports a campaign-level
// failure (cancellation, checkpoint mismatch, journal I/O). Extract
// per-trial statistics in grid order with CollectStats.
func RunCampaign(ctx context.Context, name string, trials []Trial, opts ...CampaignOption) (*CampaignReport, error) {
	o := campaignOpts{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	specTrials := make([]campaign.Trial, len(trials))
	for i := range trials {
		t := trials[i]
		if t.Program == nil {
			return nil, fmt.Errorf("%w: trial %d (%s): nil program", ErrInvalidConfig, i, t.Label)
		}
		m, err := NewFromConfig(t.Config)
		if err != nil {
			return nil, fmt.Errorf("trial %d (%s): %w", i, t.Label, err)
		}
		idx := i
		specTrials[i] = campaign.Trial{
			Label: t.Label,
			RunW: func(ctx context.Context, ws *campaign.Workspace, seed int64) (any, error) {
				run := *m // the seed override must not leak across trials
				if run.cfg.Fault.Enabled() {
					run.cfg.Fault.Seed = seed
				}
				if o.observer != nil {
					run.obs = ObserverFunc(func(iv Interval) { o.observer(idx, t.Label, iv) })
					run.every = o.observeEvery
				}
				return run.RunPooled(ctx, campaignPool(ws), t.Program)
			},
		}
	}
	runner := campaign.Runner{
		Workers:      o.workers,
		Progress:     o.progress,
		Contain:      !o.failFast,
		TrialTimeout: o.trialTimeout,
		Retries:      o.retries,
		RetryBackoff: o.backoff,
		Metrics:      o.metrics,
	}
	if o.checkpoint != "" {
		hash, err := campaignHash(trials)
		if err != nil {
			return nil, err
		}
		runner.Checkpoint = &campaign.Checkpoint{
			Path:       o.checkpoint,
			Hash:       hash,
			Encode:     encodeStatsValue,
			Decode:     decodeStatsValue,
			FlushEvery: o.flushEvery,
		}
	}
	spec := campaign.Spec{Name: name, Seed: o.seed, Trials: specTrials}
	if off := o.seedOffset; off != 0 {
		spec.SeedIndex = func(i int) int { return off + i }
	}
	return runner.Run(ctx, spec)
}

// CollectStats extracts the per-trial statistics in grid order. Trials
// that failed (or never ran) yield an error naming the first offender;
// use the report's Results and Failures directly when partial results
// are wanted.
func CollectStats(rep *CampaignReport) ([]*Stats, error) {
	return campaign.Collect[*Stats](rep)
}

// campaignHash fingerprints everything that changes trial outcomes —
// labels, full normalized machine configurations, workload identities —
// so a checkpoint journal can refuse to resume a changed campaign.
func campaignHash(trials []Trial) (uint64, error) {
	h := fnv.New64a()
	for _, t := range trials {
		io.WriteString(h, t.Label)
		h.Write([]byte{0})
		io.WriteString(h, t.Program.Name())
		h.Write([]byte{0})
		js, err := t.Config.Normalized().JSON()
		if err != nil {
			return 0, err
		}
		h.Write(js)
		h.Write([]byte{0})
	}
	return h.Sum64(), nil
}

// encodeStatsValue / decodeStatsValue are the checkpoint codec for
// trial values: Stats is flat counters (uint64s, float64s and a uint64
// slice), all of which encoding/json round-trips exactly, so resumed
// aggregates stay bit-identical to an uninterrupted run's.
func encodeStatsValue(v any) ([]byte, error) {
	st, ok := v.(*Stats)
	if !ok {
		return nil, fmt.Errorf("ftsim: campaign checkpoint: trial value is %T, want *Stats", v)
	}
	return json.Marshal(st)
}

func decodeStatsValue(data []byte) (any, error) {
	st := new(Stats)
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("ftsim: campaign checkpoint: %w", err)
	}
	return st, nil
}

// campaignPoolKey indexes the per-worker machine pool in a Workspace.
type campaignPoolKey struct{}

// campaignPool returns the worker's machine pool, creating it on first
// use.
func campaignPool(ws *campaign.Workspace) *MachinePool {
	if v := ws.Value(campaignPoolKey{}); v != nil {
		return v.(*MachinePool)
	}
	p := new(MachinePool)
	ws.Set(campaignPoolKey{}, p)
	return p
}
