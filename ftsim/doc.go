// Package ftsim is the public, embeddable API of the fault-tolerant
// superscalar reproduction ("Dual Use of Superscalar Datapath for
// Transient-Fault Detection and Recovery", Ray, Hoe, Falsafi; MICRO
// 2001). It is the one supported way to build and run the paper's
// machines — the CLIs, the experiment drivers and the examples are all
// thin layers over it.
//
// # Building a machine
//
// A Machine is assembled from functional options over a serializable
// Config. Model options pick one of the paper's designs; field options
// refine it:
//
//	m, err := ftsim.New(ftsim.SS2(),
//		ftsim.WithFaultRate(1e-4),
//		ftsim.WithFaultTargets(ftsim.AllFaultTargets()...),
//		ftsim.WithOracle(),
//		ftsim.WithMaxInsts(1_000_000))
//
// The assembled Config round-trips through JSON (Config.JSON /
// ParseConfig) with validation and Table 1 defaults, so campaigns and
// services can persist and replay exact machine descriptions.
//
// # Running
//
// Programs come from the built-in Table 2 benchmark suite (Benchmark)
// or the SRISC assembler (Assemble). A Session is one simulation; its
// Run takes a context that is honoured mid-simulation:
//
//	p, _ := ftsim.Benchmark("fpppp")
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	st, err := m.Run(ctx, p) // or m.Load(p) then session.Run(ctx)
//	fmt.Println(st.IPC(), st.FaultsDetected, st.FaultRewinds)
//
// Progress streams through an Observer instead of arriving only as the
// final Stats: install one with WithObserver to receive per-interval
// IPC, fault-detection and recovery counts.
//
// # Errors
//
// Failures are typed: configuration problems satisfy errors.Is(err,
// ErrInvalidConfig) (with *ConfigError naming the field), unknown names
// ErrUnknownModel / ErrUnknownBenchmark, pipeline lockup ErrDeadlock,
// and committed corruption ErrOracleMismatch (strict sessions) or
// ErrFaultEscape (post-run audit via CheckEscapes). Cancellation
// surfaces as the context's own error.
//
// The facade delegates to the internal implementation packages without
// translation; its results are byte-identical to the legacy internal
// path, which the package's equivalence tests prove across the Table 2
// workloads.
package ftsim
