package ftsim

// Option configures a Machine under construction. Options apply in
// order; model options (SS1..Static2, WithModel, WithConfig) replace
// the whole machine description and therefore come first.
type Option func(*Machine)

// ---------------------------------------------------------------------
// Model options.

// WithModel resets the machine description to the named paper design's
// preset. Unknown models surface as ErrUnknownModel from New.
func WithModel(model Model) Option {
	return func(m *Machine) { m.cfg = model.Config() }
}

// WithConfig resets the machine description to a complete
// configuration, e.g. one restored by ParseConfig.
func WithConfig(cfg Config) Option {
	return func(m *Machine) { m.cfg = cfg.clone() }
}

// SS1 selects the unprotected Table 1 baseline superscalar.
func SS1() Option { return WithModel(ModelSS1) }

// SS2 selects the paper's 2-way dynamic-redundant design: instruction
// injection, commit-stage cross-checking, rewind recovery.
func SS2() Option { return WithModel(ModelSS2) }

// SS3 selects the 3-way redundant design with majority election.
func SS3() Option { return WithModel(ModelSS3) }

// SS3Rewind selects the 3-way design that always rewinds on mismatch
// (majority election disabled), for ablation.
func SS3Rewind() Option { return WithModel(ModelSS3Rewind) }

// Static2 selects one pipeline of the statically partitioned two-
// pipeline lock-step processor of Section 5.1.2.
func Static2() Option { return WithModel(ModelStatic2) }

// ---------------------------------------------------------------------
// Field options.

// WithName sets the display name used in output.
func WithName(name string) Option {
	return func(m *Machine) { m.cfg.Name = name }
}

// WithR sets the degree of redundancy (1 disables replication). The
// checker follows the majority setting, as in the paper's designs.
func WithR(r int) Option {
	return func(m *Machine) { m.cfg.R = r }
}

// WithMajority enables majority election (requires R >= 3) with the
// simple-majority threshold R/2+1.
func WithMajority() Option {
	return func(m *Machine) { m.cfg.Majority = true }
}

// WithMajorityThreshold sets the election acceptance threshold.
func WithMajorityThreshold(n int) Option {
	return func(m *Machine) {
		m.cfg.Majority = true
		m.cfg.MajorityThreshold = n
	}
}

// WithCoSchedule asks issue to place redundant copies on distinct
// physical functional units (Section 3.5).
func WithCoSchedule() Option {
	return func(m *Machine) { m.cfg.CoSchedule = true }
}

// WithTransformOperands rotates redundant copies' bitwise operands,
// the Section 2.2 defence against persistent-fault error masking.
func WithTransformOperands() Option {
	return func(m *Machine) { m.cfg.TransformOperands = true }
}

// WithRecoveryPenalty adds fixed cycles to each fault recovery,
// modelling coarse-grain (checkpoint-style) schemes.
func WithRecoveryPenalty(cycles int) Option {
	return func(m *Machine) { m.cfg.RecoveryPenalty = cycles }
}

// WithOracle co-simulates the in-order oracle of Section 5.1.1 and
// counts divergences as escaped faults in Stats.
func WithOracle() Option {
	return func(m *Machine) { m.cfg.Oracle = true }
}

// WithStrictOracle enables the oracle and additionally makes the first
// divergence abort the run with an *OracleError (errors.Is
// ErrOracleMismatch), instead of only counting an escaped fault.
func WithStrictOracle() Option {
	return func(m *Machine) {
		m.cfg.Oracle = true
		m.strict = true
	}
}

// WithFaultRate sets the transient-fault injection probability per
// executed instruction copy (0 disables injection).
func WithFaultRate(rate float64) Option {
	return func(m *Machine) { m.cfg.Fault.Rate = rate }
}

// WithFaultSeed seeds the fault injector for reproducible streams.
func WithFaultSeed(seed int64) Option {
	return func(m *Machine) { m.cfg.Fault.Seed = seed }
}

// WithFaultTargets selects which speculative values faults corrupt;
// without it, enabled injection corrupts results only.
func WithFaultTargets(targets ...FaultTarget) Option {
	return func(m *Machine) {
		m.cfg.Fault.Targets = append([]FaultTarget(nil), targets...)
	}
}

// WithPersistentFault installs a hard stuck-at-1 bit in one physical
// functional unit (Section 2.2).
func WithPersistentFault(pf PersistentFault) Option {
	return func(m *Machine) { m.cfg.Persistent = &pf }
}

// WithMaxInsts caps the run at n committed architectural instructions
// (0 = unlimited).
func WithMaxInsts(n uint64) Option {
	return func(m *Machine) { m.cfg.MaxInsts = n }
}

// WithMaxCycles caps the run at n simulated cycles (0 = unlimited).
func WithMaxCycles(n uint64) Option {
	return func(m *Machine) { m.cfg.MaxCycles = n }
}

// WithPipeline applies an arbitrary tweak to the datapath sizing — the
// escape hatch sweeps use to scale widths, window or functional units:
//
//	ftsim.New(ftsim.SS2(), ftsim.WithPipeline(func(p *ftsim.PipelineConfig) {
//		p.CommitWidth = 16
//	}))
func WithPipeline(tweak func(*PipelineConfig)) Option {
	return func(m *Machine) { tweak(&m.cfg.Pipeline) }
}

// WithMemory applies an arbitrary tweak to the cache hierarchy.
func WithMemory(tweak func(*MemoryConfig)) Option {
	return func(m *Machine) { tweak(&m.cfg.Memory) }
}

// ---------------------------------------------------------------------
// Runtime options (not part of the serializable Config).

// WithObserver streams Interval samples to obs while sessions run, at
// the DefaultObserveEvery period unless WithObserveEvery overrides it.
func WithObserver(obs Observer) Option {
	return func(m *Machine) { m.obs = obs }
}

// WithObserveEvery sets the observation period in simulated cycles.
func WithObserveEvery(cycles uint64) Option {
	return func(m *Machine) { m.every = cycles }
}

// WithTraceBuffer records the last capacity per-copy pipeline events
// (dispatch, issue, complete, commit, squash) of each session; render
// them after the run with Session.WriteTimeline. Each instruction copy
// generates up to four events.
func WithTraceBuffer(capacity int) Option {
	return func(m *Machine) { m.traceCap = capacity }
}
