package ftsim_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/ftsim"
)

// FuzzConfigRoundTrip fuzzes the config persistence loop. For any input
// that ParseConfig accepts, three invariants must hold:
//
//  1. the parsed config validates (ParseConfig returns only
//     ready-to-run configs);
//  2. Normalized is idempotent on it (parsing already normalizes, so a
//     second pass must be a fixed point); and
//  3. JSON marshalling round-trips exactly — ParseConfig(c.JSON())
//     yields a config whose JSON is byte-identical, so persisted
//     machine descriptions replay stably forever.
//
// Inputs ParseConfig rejects are fine — the property under test is that
// it rejects them with an error instead of panicking (overflowed cache
// geometry, absurd sizes, unknown fields or enum values).
//
// The committed seed corpus lives in
// testdata/fuzz/FuzzConfigRoundTrip/; `go test -fuzz=FuzzConfigRoundTrip ./ftsim`
// explores from there.
func FuzzConfigRoundTrip(f *testing.F) {
	for _, m := range ftsim.Models() {
		data, err := m.Config().JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"r":2,"fault":{"rate":0.001,"seed":7,"targets":["result","branch"]}}`))
	f.Add([]byte(`{"model":"ss3","majority":true,"persistent":{"pool":"int-alu","unit":1,"bit":12}}`))
	f.Add([]byte(`{"r":1,"memory":{"il1":{"size_bytes":9007199254740993,"ways":3037000500,"line_bytes":3037000499,"hit_latency":1}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ftsim.ParseConfig(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("ParseConfig returned an invalid config: %v", err)
		}
		if n := c.Normalized(); !reflect.DeepEqual(c, n) {
			t.Fatalf("Normalized not idempotent:\nparsed:     %+v\nnormalized: %+v", c, n)
		}
		js, err := c.JSON()
		if err != nil {
			t.Fatalf("JSON marshal of a valid config failed: %v", err)
		}
		c2, err := ftsim.ParseConfig(js)
		if err != nil {
			t.Fatalf("re-parse of emitted JSON failed: %v\n%s", err, js)
		}
		js2, err := c2.JSON()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(js, js2) {
			t.Fatalf("JSON round-trip is not a fixed point:\nfirst:  %s\nsecond: %s", js, js2)
		}
	})
}
