package ftsim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/trace"
)

// Stats is the complete statistics of one simulation run — cycle and
// instruction counts, stall accounting, branch/cache behaviour, and the
// paper's fault-tolerance counters (faults detected, rewinds, majority
// elections, escaped faults). It is the same structure the internal
// simulator gathers, re-exported: the facade adds no translation layer,
// which is what makes its results provably byte-identical to the
// legacy internal path.
type Stats = cpu.Stats

// ErrSessionUsed reports a second Run on a session; sessions are
// single-use because a run consumes the machine's architectural state.
var ErrSessionUsed = errors.New("ftsim: session already run; Load a new one")

// Machine is a validated, immutable machine description plus the
// runtime hooks (observer, strictness) sessions inherit. Build one with
// New or NewFromConfig; it is safe for concurrent use — every Load
// creates an independent simulation.
type Machine struct {
	cfg      Config
	obs      Observer
	every    uint64
	strict   bool
	traceCap int
}

// New builds a machine from functional options, starting from the
// unprotected SS-1 baseline:
//
//	m, err := ftsim.New(ftsim.SS2(),
//		ftsim.WithFaultRate(1e-4),
//		ftsim.WithCoSchedule(),
//		ftsim.WithMaxInsts(1_000_000))
//
// Model options (SS1, SS2, SS3, SS3Rewind, Static2, WithModel,
// WithConfig) reset the whole machine description, so they must come
// before field options. The assembled configuration is normalized and
// validated; errors satisfy errors.Is(err, ErrInvalidConfig).
func New(opts ...Option) (*Machine, error) {
	m := &Machine{cfg: ModelSS1.Config()}
	for _, o := range opts {
		o(m)
	}
	m.cfg = m.cfg.Normalized()
	if err := m.cfg.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewFromConfig builds a machine from a complete configuration (e.g.
// one restored by ParseConfig), then applies any further options.
func NewFromConfig(cfg Config, opts ...Option) (*Machine, error) {
	return New(append([]Option{WithConfig(cfg)}, opts...)...)
}

// Config returns a copy of the machine's normalized configuration,
// ready to serialize with Config.JSON.
func (m *Machine) Config() Config { return m.cfg.clone() }

// clone deep-copies the config's reference-typed fields so callers
// cannot alias the machine's description.
func (c Config) clone() Config {
	c.Fault.Targets = append([]FaultTarget(nil), c.Fault.Targets...)
	if c.Persistent != nil {
		p := *c.Persistent
		c.Persistent = &p
	}
	return c
}

// Load instantiates one simulation of the program on this machine: the
// image is cloned into fresh memory, the fault injector is seeded from
// the config, and the session is ready to Run. Sessions are
// independent; any number may run concurrently.
func (m *Machine) Load(p *Program) (*Session, error) {
	coreCfg, err := m.cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	coreCfg.StrictOracle = m.strict
	s := &Session{name: m.cfg.Name, obs: m.obs}
	if m.obs != nil {
		every := m.every
		if every == 0 {
			every = DefaultObserveEvery
		}
		coreCfg.CPU.Observe = s.tap
		coreCfg.CPU.ObserveEvery = every
	}
	if m.traceCap > 0 {
		s.trace = trace.NewBuffer(m.traceCap)
		coreCfg.CPU.Tracer = s.trace
	}
	cm, err := coreCfg.Build(p.p)
	if err != nil {
		// The facade validates ahead of time, so reaching here means a
		// constraint only the implementation layer checks; fold it into
		// the same taxonomy.
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	s.cm = cm
	return s, nil
}

// Run is the one-shot convenience: Load the program and Run the session
// under ctx.
func (m *Machine) Run(ctx context.Context, p *Program) (*Stats, error) {
	s, err := m.Load(p)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx)
}

// Session is one in-flight simulation: a machine instance loaded with a
// program. It is single-use and confined to one goroutine.
type Session struct {
	cm    *cpu.Machine
	name  string
	obs   Observer
	trace *trace.Buffer
	ran   bool

	// Previous-sample counters for interval deltas.
	prevCycles, prevCommitted, prevDetected, prevRewinds uint64
}

// Name returns the machine name the session runs on ("SS-2").
func (s *Session) Name() string { return s.name }

// Run simulates until the program halts or a run limit is reached,
// streaming Interval samples to the machine's Observer along the way,
// and returns the final statistics.
//
// The context is plumbed into the pipeline loop: cancellation or a
// deadline stops the simulation promptly and returns ctx.Err()
// alongside the statistics gathered so far. Other errors are the typed
// taxonomy: ErrDeadlock, and under WithStrictOracle an *OracleError
// (errors.Is ErrOracleMismatch).
func (s *Session) Run(ctx context.Context) (*Stats, error) {
	if s.ran {
		return nil, ErrSessionUsed
	}
	s.ran = true
	st, err := s.cm.RunContext(ctx)
	if s.obs != nil {
		s.emit(st, true)
	}
	return st, err
}

// Stats returns the statistics gathered so far. It must not be called
// while Run is executing on another goroutine.
func (s *Session) Stats() *Stats { return s.cm.Stats() }

// WriteTimeline renders the pipeline-event timeline recorded by
// WithTraceBuffer. Without the option it writes nothing.
func (s *Session) WriteTimeline(w io.Writer) {
	if s.trace != nil {
		s.trace.Timeline(w)
	}
}

// tap is the cpu-layer observation hook for periodic samples.
func (s *Session) tap(st *cpu.Stats) { s.emit(st, false) }

// emit converts a live Stats snapshot into an Interval sample.
func (s *Session) emit(st *cpu.Stats, final bool) {
	iv := Interval{
		Cycles:          st.Cycles,
		Committed:       st.Committed,
		FaultsDetected:  st.FaultsDetected,
		FaultRewinds:    st.FaultRewinds,
		MajorityCommits: st.MajorityCommits,
		BranchRewinds:   st.BranchRewinds,
		EscapedFaults:   st.EscapedFaults,
		Final:           final,
	}
	if st.Cycles > 0 {
		iv.IPC = float64(st.Committed) / float64(st.Cycles)
	}
	iv.DeltaCommitted = st.Committed - s.prevCommitted
	iv.DeltaFaultsDetected = st.FaultsDetected - s.prevDetected
	iv.DeltaFaultRewinds = st.FaultRewinds - s.prevRewinds
	if dc := st.Cycles - s.prevCycles; dc > 0 {
		iv.IntervalIPC = float64(iv.DeltaCommitted) / float64(dc)
	}
	s.prevCycles, s.prevCommitted = st.Cycles, st.Committed
	s.prevDetected, s.prevRewinds = st.FaultsDetected, st.FaultRewinds
	s.obs.Observe(iv)
}
