// Package buildinfo reports the binary's module version and VCS state,
// shared by every command's -version flag.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the identifying build metadata of the running binary.
type Info struct {
	// Version is the module version ("v1.2.3", or "(devel)" for a
	// source build).
	Version string
	// Revision is the VCS commit the binary was built from, when the
	// toolchain stamped one.
	Revision string
	// Dirty reports uncommitted modifications at build time.
	Dirty bool
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// Get extracts build metadata via runtime/debug.ReadBuildInfo. It
// degrades gracefully: binaries built without module or VCS metadata
// (go run, test binaries) report "unknown" fields rather than failing.
func Get() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders "v1.2.3 (abc1234, dirty, go1.24.0)"-style output.
func (i Info) String() string {
	s := i.Version
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		s += " (" + rev
		if i.Dirty {
			s += ", dirty"
		}
		s += ")"
	}
	return s + " " + i.GoVersion
}

// Print writes "cmd version ..." for a command's -version flag.
func Print(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s version %s\n", cmd, Get())
}
