package buildinfo

import (
	"strings"
	"testing"
)

func TestGetNeverEmpty(t *testing.T) {
	info := Get()
	if info.Version == "" {
		t.Error("Version empty; want a version or \"unknown\"")
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("GoVersion = %q", info.GoVersion)
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		in   Info
		want string
	}{
		{Info{Version: "v1.2.3", GoVersion: "go1.24.0"}, "v1.2.3 go1.24.0"},
		{Info{Version: "(devel)", Revision: "abcdef1234567890", Dirty: true, GoVersion: "go1.24.0"},
			"(devel) (abcdef123456, dirty) go1.24.0"},
		{Info{Version: "unknown", Revision: "abc", GoVersion: "go1.24.0"}, "unknown (abc) go1.24.0"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPrint(t *testing.T) {
	var sb strings.Builder
	Print(&sb, "ftsim")
	if !strings.HasPrefix(sb.String(), "ftsim version ") {
		t.Errorf("Print wrote %q", sb.String())
	}
}
