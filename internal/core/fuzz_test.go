package core

import (
	"context"
	"testing"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/fault"
)

const fuzzSrc = `
        li   r1, 2000
        li   r2, 11
        li   r3, 22
loop:   add  r2, r2, r1
        xor  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r3
        halt
`

// snapshotFuzzMachine builds a deliberately small SS-2 machine — tiny
// caches and predictor tables so snapshots stay a few KB — runs it into
// the middle of a loop, and returns the config plus a mid-run snapshot.
// The committed corpus under testdata/fuzz/FuzzSnapshotDecode/ was
// produced from exactly this machine, so the fuzzer mutates from a
// structurally valid blob that the test config actually accepts.
func snapshotFuzzMachine(tb testing.TB) (Config, []byte) {
	tb.Helper()
	program, err := asm.Assemble("fuzz.s", fuzzSrc)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := SS2()
	cfg.CPU.Hierarchy = cache.HierarchyConfig{
		IL1:        cache.Config{Name: "il1", SizeBytes: 1024, Ways: 1, LineBytes: 32, HitLatency: 1},
		DL1:        cache.Config{Name: "dl1", SizeBytes: 1024, Ways: 1, LineBytes: 32, HitLatency: 1},
		L2:         cache.Config{Name: "ul2", SizeBytes: 4096, Ways: 1, LineBytes: 64, HitLatency: 6},
		MemLatency: 40,
	}
	cfg.CPU.Bpred = bpred.Config{
		Kind:        bpred.KindCombined,
		BimodalSize: 64,
		L1Size:      2,
		HistBits:    6,
		L2Size:      64,
		XOR:         true,
		MetaSize:    64,
		BTBSets:     16,
		BTBWays:     2,
		RASSize:     8,
	}
	cfg.Fault = fault.Config{Rate: 5e-4, Seed: 11, Targets: fault.AllTargets}
	cfg.MaxInsts = 1_000
	cfg.MaxCycles = 100_000
	m, err := cfg.Build(program)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := m.RunContext(context.Background()); err != nil {
		tb.Fatal(err)
	}
	return cfg, m.Snapshot()
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot restore
// path. The decoder's contract: for any input it either restores a
// coherent, runnable machine or rejects the blob with an error — it
// never panics, never over-allocates from hostile length fields, and
// never leaves the machine half-restored in a way that crashes a
// subsequent run. Seeds include a real mid-run snapshot (so the
// fuzzer mutates from a structurally valid starting point) and a few
// degenerate shapes.
//
// The committed seed corpus lives in testdata/fuzz/FuzzSnapshotDecode/;
// `go test -fuzz=FuzzSnapshotDecode ./internal/core` explores from
// there.
func FuzzSnapshotDecode(f *testing.F) {
	cfg, blob := snapshotFuzzMachine(f)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:16])
	f.Add([]byte{})
	f.Add([]byte("FTSN"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rm, err := cfg.Restore(nil, data)
		if err != nil {
			return // rejected without panicking: fine
		}
		// An accepted blob must yield a machine that runs (or finishes)
		// cleanly under its budget.
		if _, err := rm.RunContext(context.Background()); err != nil {
			t.Fatalf("restored machine failed to run: %v", err)
		}
	})
}
