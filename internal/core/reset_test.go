package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/testenv"
	"repro/internal/workload"
)

// resetCases are the (name, config) points the reset-equivalence suite
// sweeps: every machine model, fault injection on and off, the oracle
// co-simulator, a recovery penalty, and a window geometry that differs
// from the baseline (so reuse across the cases exercises both the
// slab-reuse and the slab-rebuild paths of Machine.Reset).
func resetCases() []struct {
	name string
	cfg  Config
} {
	withFault := func(c Config, rate float64, seed int64) Config {
		c.Fault = fault.Config{Rate: rate, Seed: seed, Targets: fault.AllTargets}
		return c
	}
	bigWindow := SS2()
	bigWindow.CPU.RUUSize = 256
	bigWindow.CPU.LSQSize = 128
	oracle := SS2()
	oracle.Oracle = true
	penalty := SS3Rewind()
	penalty.RecoveryPenalty = 500
	return []struct {
		name string
		cfg  Config
	}{
		{"SS1", SS1()},
		{"SS2", SS2()},
		{"SS2/fault", withFault(SS2(), 1e-4, 7)},
		{"SS3/fault", withFault(SS3(), 1e-4, 11)},
		{"SS3rewind/penalty/fault", withFault(penalty, 1e-4, 13)},
		{"Static2", Static2()},
		{"SS2/RUU256", bigWindow},
		{"SS2/oracle/fault", withFault(oracle, 1e-4, 17)},
	}
}

// TestRebuildMatchesFresh is the tentpole referee: a machine recycled
// through Config.Rebuild must produce Stats deeply equal to a fresh
// Config.Build, no matter what the machine ran before — a different
// model, a different program, a different window geometry, or a run
// that was cancelled mid-flight and abandoned with in-flight state.
func TestRebuildMatchesFresh(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	swim, _ := workload.ByName("swim")
	progA, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := swim.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}

	const insts = 8_000
	limit := func(c Config) Config {
		c.MaxInsts = insts
		c.MaxCycles = insts * 100
		return c
	}

	cases := resetCases()
	// dirty returns a machine left in a deliberately nasty state: it
	// just ran (or was interrupted running) some other configuration.
	dirty := make([]func(t *testing.T) *cpu.Machine, 0, 3)
	dirty = append(dirty,
		func(t *testing.T) *cpu.Machine {
			// Completed run of a different model on a different program.
			m, err := limit(SS3()).Build(progB)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.RunContext(context.Background()); err != nil {
				t.Fatal(err)
			}
			return m
		},
		func(t *testing.T) *cpu.Machine {
			// Cancelled mid-run: RUU/LSQ, waitlists, calendar and fetch
			// queue are all abandoned with live entries.
			m, err := limit(SS2()).Build(progA)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := m.RunContext(ctx); err != context.Canceled {
				t.Fatalf("cancelled run returned %v", err)
			}
			return m
		},
		func(t *testing.T) *cpu.Machine {
			// Different window geometry + fault injector state.
			c := limit(SS2())
			c.CPU.RUUSize = 256
			c.CPU.LSQSize = 128
			c.Fault = fault.Config{Rate: 1e-3, Seed: 99, Targets: fault.AllTargets}
			m, err := c.Build(progB)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.RunContext(context.Background()); err != nil {
				t.Fatal(err)
			}
			return m
		})

	for _, tc := range cases {
		cfg := limit(tc.cfg)
		t.Run(tc.name, func(t *testing.T) {
			freshM, err := cfg.Build(progA)
			if err != nil {
				t.Fatal(err)
			}
			want, err := freshM.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for i, mk := range dirty {
				t.Run(fmt.Sprintf("dirty%d", i), func(t *testing.T) {
					m, err := cfg.Rebuild(mk(t), progA)
					if err != nil {
						t.Fatal(err)
					}
					got, err := m.RunContext(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("recycled machine diverges from fresh build\nfresh:    %+v\nrecycled: %+v", want, got)
					}
				})
			}
		})
	}
}

// TestRebuildTwiceMatchesFresh recycles the same machine through every
// case back to back — the pool's actual usage pattern — and checks each
// run against its fresh reference.
func TestRebuildTwiceMatchesFresh(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	const insts = 6_000
	var m *cpu.Machine
	for _, tc := range resetCases() {
		cfg := tc.cfg
		cfg.MaxInsts = insts
		cfg.MaxCycles = insts * 100
		want, err := Run(program, cfg)
		if err != nil {
			t.Fatalf("%s: fresh: %v", tc.name, err)
		}
		m, err = cfg.Rebuild(m, program)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", tc.name, err)
		}
		got, err := m.RunContext(context.Background())
		if err != nil {
			t.Fatalf("%s: recycled run: %v", tc.name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: recycled machine diverges\nfresh:    %+v\nrecycled: %+v", tc.name, want, got)
		}
	}
}

// TestRebuildInvalidConfigLeavesMachineUsable: Rebuild with a broken
// configuration must fail without corrupting the machine, which stays
// recyclable (this is what lets the pool keep a machine after a
// rejected checkout).
func TestRebuildInvalidConfigLeavesMachineUsable(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SS2()
	cfg.MaxInsts = 4_000
	cfg.MaxCycles = 400_000
	want, err := Run(program, cfg)
	if err != nil {
		t.Fatal(err)
	}

	m, err := cfg.Build(program)
	if err != nil {
		t.Fatal(err)
	}
	broken := cfg
	broken.CPU.RUUSize = 0
	if _, err := broken.Rebuild(m, program); err == nil {
		t.Fatal("Rebuild accepted an invalid config")
	}
	m2, err := cfg.Rebuild(m, program)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("machine unusable after rejected Rebuild")
	}
}

// TestSteadyStateAllocBudget pins the tentpole's allocation win: once a
// machine is warm, a full rebuild-and-run cycle of the pipeline hot
// loop must stay under a hard allocation ceiling. The seed code spent
// ~17k allocations per such run; the pooled steady state spends a few
// dozen (checker/injector assembly and scheduler-slab growth tails).
// The ceiling has headroom over the measured value but fails loudly if
// per-trial allocation regresses toward the old per-run construction
// cost.
func TestSteadyStateAllocBudget(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	const insts = 5_000
	for _, tc := range []struct {
		name    string
		cfg     func() Config
		ceiling float64
	}{
		{"SS1", SS1, 100},
		{"SS2/fault", func() Config {
			c := SS2()
			c.Fault = fault.Config{Rate: 1e-4, Seed: 3, Targets: fault.AllTargets}
			return c
		}, 100},
		{"SS3/fault", func() Config {
			c := SS3() // majority election: exercises the checker scratch
			c.Fault = fault.Config{Rate: 1e-4, Seed: 5, Targets: fault.AllTargets}
			return c
		}, 100},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.MaxInsts = insts
			cfg.MaxCycles = insts * 100
			m, err := cfg.Build(program)
			if err != nil {
				t.Fatal(err)
			}
			run := func() {
				var err error
				m, err = cfg.Rebuild(m, program)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.RunContext(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the slabs past their growth tail
			got := testing.AllocsPerRun(5, run)
			t.Logf("%s: %.1f allocs per warm rebuild+run", tc.name, got)
			if got > tc.ceiling {
				t.Errorf("warm rebuild+run allocates %.1f/run, budget %.0f", got, tc.ceiling)
			}
		})
	}
}
