package core

import (
	"repro/internal/cpu"
	"repro/internal/isa"
)

// signature is the set of fields the commit stage corroborates between
// redundant copies of one instruction (Section 3.2: "If any fields of the
// entries disagree, then an error has occurred"). Fields that an
// instruction class does not produce are zero in every copy and compare
// equal trivially.
type signature struct {
	result   uint64
	ea       uint64
	storeVal uint64
	nextPC   uint64
	taken    bool
}

func signatureOf(e *cpu.Entry) signature {
	s := signature{nextPC: e.NextPC}
	oi := e.Inst.Info()
	switch {
	case oi.IsStore:
		s.ea, s.storeVal = e.EA, e.StoreVal
	case oi.IsLoad:
		s.ea, s.result = e.EA, e.Result
	case oi.IsCtrl():
		s.taken = e.Taken
		if oi.WritesRd {
			s.result = e.Result // link value
		}
	case oi.WritesRd:
		s.result = e.Result
	case e.Inst.Op == isa.OpOut:
		s.result = e.Result
	}
	return s
}

// RewindChecker is the base detection policy: all copies must agree on
// every checked field, otherwise the group is rejected and the machine
// rewinds. This is the paper's R=2 design.
type RewindChecker struct{}

// CheckerFingerprint identifies the policy for snapshot
// compatibility checks (see cpu.Config.Fingerprint): a snapshot is
// only restorable under a checker that commits and rewinds
// identically. The rewind policy is stateless, so a constant tag is
// its whole identity.
func (RewindChecker) CheckerFingerprint() uint64 { return 0x726577696e6431 } // "rewind1"

// Check compares all copies against copy 0.
func (RewindChecker) Check(group []*cpu.Entry) cpu.Verdict {
	ref := signatureOf(group[0])
	for _, e := range group[1:] {
		if signatureOf(e) != ref {
			return cpu.Verdict{OK: false, Mismatch: true}
		}
	}
	return cpu.Verdict{OK: true}
}

// MajorityChecker implements the R >= 3 policy of Section 3.2: if at
// least Threshold copies agree on every checked field, the group commits
// with the majority's values even though a discrepancy was detected;
// otherwise a complete rewind is invoked.
type MajorityChecker struct {
	R         int
	Threshold int

	// sigs is per-call scratch, reused across Check calls so the commit
	// hot loop stays allocation-free. A checker belongs to exactly one
	// machine and Check runs on the machine's goroutine, so no locking.
	sigs []signature
}

// CheckerFingerprint identifies the election policy and its
// parameters — the scratch buffer is implementation detail, R and
// Threshold are behaviour.
func (c *MajorityChecker) CheckerFingerprint() uint64 {
	return 0x6d616a00<<32 | uint64(uint32(c.R))<<16 | uint64(uint16(c.Threshold))
}

// Check elects a majority among the copies' signatures.
func (c *MajorityChecker) Check(group []*cpu.Entry) cpu.Verdict {
	// Fast path: unanimous agreement.
	unanimous := true
	ref := signatureOf(group[0])
	if cap(c.sigs) < len(group) {
		c.sigs = make([]signature, len(group))
	}
	sigs := c.sigs[:len(group)]
	sigs[0] = ref
	for i, e := range group[1:] {
		sigs[i+1] = signatureOf(e)
		if sigs[i+1] != ref {
			unanimous = false
		}
	}
	if unanimous {
		return cpu.Verdict{OK: true}
	}
	// Count agreement classes; R is tiny (2..4), so O(R^2) is fine.
	bestCopy, bestCount := -1, 0
	for i := range sigs {
		count := 0
		for j := range sigs {
			if sigs[j] == sigs[i] {
				count++
			}
		}
		if count > bestCount {
			bestCopy, bestCount = i, count
		}
	}
	if bestCount < c.Threshold {
		return cpu.Verdict{OK: false, Mismatch: true}
	}
	// Memory operations are special: the datapath performs one access
	// per group through copy 0's LSQ entry (Section 5.1.2 — addresses
	// are computed redundantly but only one memory access is performed).
	// If copy 0 is the corrupted minority, the side effects that already
	// happened through the LSQ (the load's single fetch, or the store's
	// forwarding address/data seen by younger loads) used corrupt values
	// that no election can repair, so recovery must rewind.
	if group[0].Inst.Info().IsMem() && sigs[0] != sigs[bestCopy] {
		return cpu.Verdict{OK: false, Mismatch: true}
	}
	return cpu.Verdict{OK: true, Copy: bestCopy, Mismatch: true, Majority: true}
}
