package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/snap"
	"repro/internal/workload"
)

// interruptRun runs m until the given cycle count (observed at the
// machine's own observation points, so the interruption cycle is
// deterministic) and returns with the run cancelled mid-flight.
func interruptRun(t *testing.T, m *cpu.Machine) {
	t.Helper()
	_, err := m.RunContext(interruptCtx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v (run too short to interrupt?)", err)
	}
}

// interruptCtx is pre-cancelled by the Observe hook installed by
// withInterrupt; see below.
var interruptCtx context.Context

// withInterrupt arms cfg to cancel its own run at the first
// observation at or after the given cycle. The cancellation lands on
// the run loop's next poll, so the interrupted machine state is a
// deterministic function of (config, program, cycle).
func withInterrupt(cfg Config, atCycle uint64) Config {
	ctx, cancel := context.WithCancel(context.Background())
	interruptCtx = ctx
	cfg.CPU.ObserveEvery = 256
	cfg.CPU.Observe = func(s *cpu.Stats) {
		if s.Cycles >= atCycle {
			cancel()
		}
	}
	return cfg
}

// assertSameArchState compares the committed architectural state of
// two machines: registers, memory image, and halt status.
func assertSameArchState(t *testing.T, a, b *cpu.Machine) {
	t.Helper()
	for r := uint8(0); r < isa.NumRegs; r++ {
		if a.Reg(r) != b.Reg(r) {
			t.Errorf("register %s differs: %#x vs %#x", isa.RegName(r), a.Reg(r), b.Reg(r))
		}
	}
	if !mem.Equal(a.Memory(), b.Memory()) {
		addr, _ := mem.FirstDiff(a.Memory(), b.Memory())
		t.Errorf("memory differs, first at %#x", addr)
	}
	if a.Halted() != b.Halted() {
		t.Errorf("halted %v vs %v", a.Halted(), b.Halted())
	}
}

// TestSnapshotRestoreContinuesIdentically is the tentpole referee: a
// machine interrupted mid-run, snapshotted, and restored onto a fresh
// machine must continue byte-identically to the donor machine
// continuing in place — same Stats down to the last counter, same
// architectural state. The sweep reuses the reset-equivalence cases:
// every model, fault injection, the oracle, a recovery penalty, and a
// non-baseline window geometry.
func TestSnapshotRestoreContinuesIdentically(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	const insts = 8_000
	for _, tc := range resetCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.MaxInsts = insts
			cfg.MaxCycles = insts * 100

			donor, err := withInterrupt(cfg, 2_000).Build(program)
			if err != nil {
				t.Fatal(err)
			}
			interruptRun(t, donor)
			blob := donor.Snapshot()

			restored, err := cfg.Restore(nil, blob)
			if err != nil {
				t.Fatal(err)
			}

			donorStats, err := donor.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			restoredStats, err := restored.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(donorStats, restoredStats) {
				t.Errorf("restored run diverges from donor continuation\ndonor:    %+v\nrestored: %+v",
					donorStats, restoredStats)
			}
			assertSameArchState(t, donor, restored)
		})
	}
}

// TestSnapshotTable2Sweep covers the satellite matrix: every Table 2
// benchmark × R ∈ {1,2,3} × fault injection. Donor continuation and
// restore must agree byte-identically, and (because detection and
// recovery keep the committed state clean — EscapedFaults stays 0 for
// R >= 2) the architectural results must equal an uninterrupted run's.
func TestSnapshotTable2Sweep(t *testing.T) {
	models := []struct {
		r   int
		cfg func() Config
	}{
		{1, SS1},
		{2, SS2},
		{3, SS3},
	}
	benches := workload.Table2()
	if testing.Short() {
		benches = benches[:3]
	}
	for _, wl := range benches {
		program, err := wl.Build(1 << 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			t.Run(fmt.Sprintf("%s/R%d", wl.Name, m.r), func(t *testing.T) {
				cfg := m.cfg()
				cfg.MaxInsts = 5_000
				cfg.MaxCycles = 2_000_000
				if m.r > 1 {
					cfg.Fault = fault.Config{Rate: 5e-4, Seed: int64(31 + m.r), Targets: fault.AllTargets}
				}

				donor, err := withInterrupt(cfg, 1_000).Build(program)
				if err != nil {
					t.Fatal(err)
				}
				interruptRun(t, donor)
				restored, err := cfg.Restore(nil, donor.Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				donorStats, err := donor.RunContext(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				restoredStats, err := restored.RunContext(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(donorStats, restoredStats) {
					t.Fatalf("restored run diverges from donor continuation\ndonor:    %+v\nrestored: %+v",
						donorStats, restoredStats)
				}
				assertSameArchState(t, donor, restored)

				// The snapshot quiesce perturbs microarchitectural timing
				// (it squashes in-flight work, like the paper's recovery
				// does), so cycle counts legitimately differ from an
				// uninterrupted run — but the committed results must not.
				uncut, err := cfg.Build(program)
				if err != nil {
					t.Fatal(err)
				}
				uncutStats, err := uncut.RunContext(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if donorStats.EscapedFaults == 0 && uncutStats.EscapedFaults == 0 {
					if !reflect.DeepEqual(donorStats.Output, uncutStats.Output) ||
						donorStats.Halted != uncutStats.Halted ||
						donorStats.Committed != uncutStats.Committed {
						t.Errorf("interrupted run's architectural results differ from uninterrupted:\ninterrupted:   committed=%d halted=%v out=%v\nuninterrupted: committed=%d halted=%v out=%v",
							donorStats.Committed, donorStats.Halted, donorStats.Output,
							uncutStats.Committed, uncutStats.Halted, uncutStats.Output)
					}
					assertSameArchState(t, donor, uncut)
				}
			})
		}
	}
}

// TestSnapshotOfFreshMachine: snapshotting a machine that has not run
// a cycle and restoring it must reproduce a full run exactly.
func TestSnapshotOfFreshMachine(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SS2()
	cfg.Fault = fault.Config{Rate: 1e-4, Seed: 7, Targets: fault.AllTargets}
	cfg.MaxInsts = 4_000
	cfg.MaxCycles = 400_000

	donor, err := cfg.Build(program)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := cfg.Restore(nil, donor.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want, err := donor.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fresh-snapshot restore diverges:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestRestoreIntoRecycledMachine: Restore must fully overwrite a
// machine that previously ran something else entirely, exactly like
// Rebuild does.
func TestRestoreIntoRecycledMachine(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	swim, _ := workload.ByName("swim")
	progA, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := swim.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SS2()
	cfg.Fault = fault.Config{Rate: 1e-4, Seed: 5, Targets: fault.AllTargets}
	cfg.MaxInsts = 6_000
	cfg.MaxCycles = 600_000

	donor, err := withInterrupt(cfg, 1_500).Build(progA)
	if err != nil {
		t.Fatal(err)
	}
	interruptRun(t, donor)
	blob := donor.Snapshot()

	// The recycled victim: a different model, different program, run to
	// completion.
	other := SS3()
	other.MaxInsts = 3_000
	other.MaxCycles = 300_000
	victim, err := other.Build(progB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	restored, err := cfg.Restore(victim, blob)
	if err != nil {
		t.Fatal(err)
	}
	donorStats, err := donor.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	restoredStats, err := restored.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(donorStats, restoredStats) {
		t.Errorf("restore into recycled machine diverges\ndonor:    %+v\nrecycled: %+v", donorStats, restoredStats)
	}
}

// TestRestoreUnderLargerBudget: run limits are excluded from the
// fingerprint, so a workload snapshotted under one instruction budget
// resumes under a larger one — the checkpoint/resume use case for
// long workloads.
func TestRestoreUnderLargerBudget(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	small := SS2()
	small.MaxInsts = 2_000
	small.MaxCycles = 200_000
	donor, err := small.Build(program)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob := donor.Snapshot()

	big := small
	big.MaxInsts = 4_000
	big.MaxCycles = 400_000
	resumed, err := big.Restore(nil, blob)
	if err != nil {
		t.Fatal(err)
	}
	st, err := resumed.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 4_000 {
		t.Errorf("resumed run committed %d instructions, want 4000", st.Committed)
	}

	// Reference: one uninterrupted-except-snapshot run at the large
	// budget whose snapshot fires at the same committed count.
	ref, err := big.Build(program)
	if err != nil {
		t.Fatal(err)
	}
	refHalf := big
	refHalf.MaxInsts = 2_000
	refM, err := refHalf.Build(program)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refM.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	refResumed, err := big.Restore(ref, refM.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want, err := refResumed.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := st
	if !reflect.DeepEqual(want, got) {
		t.Errorf("budget-raised resume diverges from reference:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestRestoreRejectsMismatch: a snapshot must only restore under a
// configuration with the same fingerprint.
func TestRestoreRejectsMismatch(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SS2()
	cfg.MaxInsts = 1_000
	cfg.MaxCycles = 100_000
	donor, err := cfg.Build(program)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob := donor.Snapshot()

	for _, alt := range []struct {
		name string
		cfg  Config
	}{
		{"different model", func() Config { c := SS3(); c.MaxInsts = 1_000; return c }()},
		{"different geometry", func() Config {
			c := SS2()
			c.CPU.RUUSize = 256
			c.MaxInsts = 1_000
			return c
		}()},
		{"different fault seed", func() Config {
			c := SS2()
			c.Fault = fault.Config{Rate: 1e-4, Seed: 3}
			c.MaxInsts = 1_000
			return c
		}()},
	} {
		if _, err := alt.cfg.Restore(nil, blob); !errors.Is(err, cpu.ErrSnapshotMismatch) {
			t.Errorf("%s: Restore returned %v, want ErrSnapshotMismatch", alt.name, err)
		}
	}

	// Same fingerprint, different run limits: accepted.
	bigger := cfg
	bigger.MaxInsts = 2_000
	if _, err := bigger.Restore(nil, blob); err != nil {
		t.Errorf("run-limit change rejected: %v", err)
	}
}

// TestRestoreRejectsCorruption: every truncation and any bit flip of
// a valid snapshot must be rejected with a typed error, never
// misapplied or panicking.
func TestRestoreRejectsCorruption(t *testing.T) {
	gcc, _ := workload.ByName("gcc")
	program, err := gcc.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SS2()
	cfg.Fault = fault.Config{Rate: 1e-3, Seed: 2, Targets: fault.AllTargets}
	cfg.MaxInsts = 1_000
	cfg.MaxCycles = 100_000
	donor, err := cfg.Build(program)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob := donor.Snapshot()

	// Restoring the pristine blob works.
	if _, err := cfg.Restore(nil, blob); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Bit flips anywhere are caught by the checksum.
	for _, pos := range []int{0, 7, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0x40
		if _, err := cfg.Restore(nil, bad); !errors.Is(err, snap.ErrCorrupt) {
			t.Errorf("bit flip at %d: Restore returned %v, want ErrCorrupt", pos, err)
		}
	}
	// Truncations at a sample of lengths.
	for n := 0; n < len(blob); n += 97 {
		if _, err := cfg.Restore(nil, blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
