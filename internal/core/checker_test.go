package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func entryFor(op isa.Op, result, ea, storeVal, nextPC uint64, taken bool) *cpu.Entry {
	in := isa.Inst{Op: op}
	switch {
	case op == isa.OpSd:
		in = isa.Inst{Op: op, Rs1: 1, Rs2: 2}
	case op == isa.OpLd:
		in = isa.Inst{Op: op, Rd: 3, Rs1: 1}
	case op == isa.OpBeq:
		in = isa.Inst{Op: op, Rs1: 1, Rs2: 2}
	default:
		in = isa.Inst{Op: op, Rd: 3, Rs1: 1, Rs2: 2}
	}
	return &cpu.Entry{
		Valid:    true,
		Inst:     in,
		Result:   result,
		EA:       ea,
		StoreVal: storeVal,
		NextPC:   nextPC,
		Taken:    taken,
	}
}

func group(op isa.Op, n int) []*cpu.Entry {
	g := make([]*cpu.Entry, n)
	for i := range g {
		g[i] = entryFor(op, 100, 0x2000, 7, 0x1008, false)
	}
	return g
}

func TestRewindCheckerAgreement(t *testing.T) {
	var c RewindChecker
	v := c.Check(group(isa.OpAdd, 2))
	if !v.OK || v.Mismatch {
		t.Errorf("agreeing group rejected: %+v", v)
	}
}

func TestRewindCheckerFieldMismatches(t *testing.T) {
	var c RewindChecker
	cases := []struct {
		name   string
		op     isa.Op
		mutate func(e *cpu.Entry)
	}{
		{"result", isa.OpAdd, func(e *cpu.Entry) { e.Result ^= 4 }},
		{"load ea", isa.OpLd, func(e *cpu.Entry) { e.EA ^= 8 }},
		{"load value", isa.OpLd, func(e *cpu.Entry) { e.Result ^= 1 }},
		{"store ea", isa.OpSd, func(e *cpu.Entry) { e.EA ^= 16 }},
		{"store data", isa.OpSd, func(e *cpu.Entry) { e.StoreVal ^= 2 }},
		{"branch target", isa.OpBeq, func(e *cpu.Entry) { e.NextPC ^= 64 }},
		{"branch direction", isa.OpBeq, func(e *cpu.Entry) { e.Taken = !e.Taken }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := group(tc.op, 2)
			tc.mutate(g[1])
			v := c.Check(g)
			if v.OK || !v.Mismatch {
				t.Errorf("corruption not detected: %+v", v)
			}
		})
	}
}

// TestRewindCheckerIgnoresUncheckedFields: fields an instruction class
// does not produce must not cause false detections (e.g. stale EA on an
// ALU op's entry).
func TestRewindCheckerIgnoresUncheckedFields(t *testing.T) {
	var c RewindChecker
	g := group(isa.OpAdd, 2)
	g[1].EA = 0xDEAD // not part of an ALU signature
	g[1].StoreVal = 99
	g[1].Taken = true
	if v := c.Check(g); !v.OK {
		t.Errorf("false positive on unchecked fields: %+v", v)
	}
}

func TestMajorityCheckerElects(t *testing.T) {
	c := &MajorityChecker{R: 3, Threshold: 2}
	// Copy 2 corrupted: majority {0,1} commits copy 0.
	g := group(isa.OpAdd, 3)
	g[2].Result ^= 1
	v := c.Check(g)
	if !v.OK || !v.Majority || !v.Mismatch {
		t.Fatalf("majority not elected: %+v", v)
	}
	if v.Copy == 2 {
		t.Error("elected the corrupted copy")
	}

	// Copy 0 corrupted on an ALU op: majority {1,2} still commits.
	g = group(isa.OpAdd, 3)
	g[0].Result ^= 2
	v = c.Check(g)
	if !v.OK || v.Copy == 0 {
		t.Fatalf("copy-0 ALU corruption not outvoted: %+v", v)
	}

	// All three disagree: below threshold, rewind.
	g = group(isa.OpAdd, 3)
	g[1].Result ^= 4
	g[2].Result ^= 8
	if v = c.Check(g); v.OK {
		t.Fatalf("three-way disagreement accepted: %+v", v)
	}
}

func TestMajorityCheckerUnanimousFastPath(t *testing.T) {
	c := &MajorityChecker{R: 3, Threshold: 2}
	v := c.Check(group(isa.OpSd, 3))
	if !v.OK || v.Mismatch || v.Majority {
		t.Errorf("unanimous group flagged: %+v", v)
	}
}

// TestMajorityCheckerMemCopy0Rule: for memory operations the single
// access went through copy 0, so if copy 0 is the minority the group must
// rewind even though a majority exists.
func TestMajorityCheckerMemCopy0Rule(t *testing.T) {
	c := &MajorityChecker{R: 3, Threshold: 2}
	for _, op := range []isa.Op{isa.OpLd, isa.OpSd} {
		g := group(op, 3)
		g[0].EA ^= 32 // copy 0's address was corrupt: the access is tainted
		if v := c.Check(g); v.OK {
			t.Errorf("%v: tainted copy-0 access elected: %+v", op, v)
		}
		// But a corrupted non-performing copy is electable.
		g = group(op, 3)
		g[2].EA ^= 32
		if v := c.Check(g); !v.OK || !v.Majority {
			t.Errorf("%v: clean copy-0 group not elected: %+v", op, v)
		}
	}
}

func TestMajorityThresholdStrict(t *testing.T) {
	// Threshold 3 of 3: any single corruption forces a rewind.
	c := &MajorityChecker{R: 3, Threshold: 3}
	g := group(isa.OpAdd, 3)
	g[1].Result ^= 1
	if v := c.Check(g); v.OK {
		t.Errorf("strict threshold elected 2/3: %+v", v)
	}
}

func TestMajorityCheckerR5(t *testing.T) {
	// 5 copies, threshold 3: two different corruptions still leave a
	// 3-copy clean majority.
	c := &MajorityChecker{R: 5, Threshold: 3}
	g := group(isa.OpAdd, 5)
	g[1].Result ^= 1
	g[3].Result ^= 2
	v := c.Check(g)
	if !v.OK || !v.Majority {
		t.Fatalf("5-way election failed: %+v", v)
	}
	if v.Copy == 1 || v.Copy == 3 {
		t.Error("elected a corrupted copy")
	}
}
