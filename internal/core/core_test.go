package core

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/prog"
)

// mixedProgram builds a loop exercising ALU ops, multiplies, memory
// traffic, data-dependent branches and calls — enough surface for fault
// injection to hit every instruction class.
func mixedProgram(iters int64) *prog.Program {
	b := prog.NewBuilder("mixed")
	buf := b.Alloc(256)
	b.Li(1, iters)
	b.Li(2, 0xACE1) // LCG state
	b.Li(9, int64(buf))
	b.Li(10, 0) // checksum
	b.Label("loop")
	b.Li(3, 1103515245)
	b.R(isa.OpMul, 2, 2, 3)
	b.I(isa.OpAddi, 2, 2, 12345)
	b.I(isa.OpSrli, 4, 2, 13)
	b.I(isa.OpAndi, 4, 4, 31)  // index 0..31
	b.I(isa.OpSlli, 5, 4, 3)   // byte offset
	b.R(isa.OpAdd, 5, 5, 9)    // address
	b.Store(isa.OpSd, 2, 5, 0) // store state
	b.Load(isa.OpLd, 6, 5, 0)  // reload (often forwarded)
	b.R(isa.OpXor, 10, 10, 6)  // fold into checksum
	b.I(isa.OpAndi, 7, 2, 1)
	b.Branch(isa.OpBeq, 7, 0, "even")
	b.I(isa.OpAddi, 10, 10, 7)
	b.Label("even")
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(10)
	b.Halt()
	return b.MustBuild()
}

// reference runs the program on the functional simulator.
func reference(t *testing.T, p *prog.Program) []uint64 {
	t.Helper()
	m := funcsim.New(p)
	if err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return m.Output
}

func runCfg(t *testing.T, p *prog.Program, c Config) *cpu.Stats {
	t.Helper()
	c.Oracle = true
	if c.MaxCycles == 0 {
		c.MaxCycles = 20_000_000
	}
	st, err := Run(p, c)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFaultFreeModesAgree(t *testing.T) {
	p := mixedProgram(400)
	want := reference(t, p)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"SS-1", SS1()},
		{"SS-2", SS2()},
		{"SS-3", SS3()},
		{"SS-3-rewind", SS3Rewind()},
		{"Static-2", Static2()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := runCfg(t, p, tc.cfg)
			if !st.Halted {
				t.Fatalf("did not halt: %s", st.Summary())
			}
			if st.EscapedFaults != 0 {
				t.Fatalf("oracle divergence: %s", st.Summary())
			}
			if len(st.Output) != len(want) || st.Output[0] != want[0] {
				t.Fatalf("output %v, want %v", st.Output, want)
			}
			if st.FaultsDetected != 0 || st.FaultRewinds != 0 {
				t.Errorf("spurious detections without injection: %s", st.Summary())
			}
		})
	}
}

func TestRedundancyCostsThroughput(t *testing.T) {
	p := mixedProgram(600)
	ss1 := runCfg(t, p, SS1())
	ss2 := runCfg(t, p, SS2())
	ss3 := runCfg(t, p, SS3())
	if ss2.IPC() >= ss1.IPC() {
		t.Errorf("SS-2 IPC %.3f >= SS-1 IPC %.3f", ss2.IPC(), ss1.IPC())
	}
	if ss3.IPC() >= ss2.IPC() {
		t.Errorf("SS-3 IPC %.3f >= SS-2 IPC %.3f", ss3.IPC(), ss2.IPC())
	}
	// The paper's Section 4 bound: IPC_R >= IPC_1/R (redundant threads
	// reuse idle capacity, never less than a 1/R share).
	if ss2.IPC() < ss1.IPC()/2*0.9 {
		t.Errorf("SS-2 IPC %.3f below IPC_1/2 = %.3f", ss2.IPC(), ss1.IPC()/2)
	}
}

// TestFaultInjectionSS2 is the core claim: with 2-way redundancy, every
// injected fault is either masked (no architectural effect) or detected
// and recovered; committed state never diverges from the oracle.
func TestFaultInjectionSS2(t *testing.T) {
	p := mixedProgram(400)
	want := reference(t, p)
	for _, rate := range []float64{1e-4, 1e-3, 5e-3} {
		cfg := SS2()
		cfg.Fault = fault.Config{Rate: rate, Seed: 42, Targets: fault.AllTargets}
		st := runCfg(t, p, cfg)
		if !st.Halted {
			t.Fatalf("rate %g: did not halt: %s", rate, st.Summary())
		}
		if st.EscapedFaults != 0 {
			t.Fatalf("rate %g: %d faults escaped detection: %s", rate, st.EscapedFaults, st.Summary())
		}
		if st.Output[0] != want[0] {
			t.Fatalf("rate %g: corrupted output %#x, want %#x", rate, st.Output[0], want[0])
		}
		if st.Fault.Injected == 0 {
			t.Fatalf("rate %g: no faults injected", rate)
		}
		if rate >= 1e-3 && st.FaultsDetected == 0 {
			t.Errorf("rate %g: injected %d faults but detected none", rate, st.Fault.Injected)
		}
	}
}

// TestFaultInjectionSS3Majority: with majority election, most single-copy
// faults commit without a rewind.
func TestFaultInjectionSS3Majority(t *testing.T) {
	p := mixedProgram(400)
	want := reference(t, p)
	cfg := SS3()
	cfg.Fault = fault.Config{Rate: 2e-3, Seed: 7, Targets: fault.AllTargets}
	st := runCfg(t, p, cfg)
	if st.EscapedFaults != 0 {
		t.Fatalf("escapes under majority election: %s", st.Summary())
	}
	if st.Output[0] != want[0] {
		t.Fatalf("output %#x, want %#x", st.Output[0], want[0])
	}
	if st.MajorityCommits == 0 {
		t.Error("no majority commits at this rate")
	}
	// Rewinds should be much rarer than detections: only multi-copy
	// corruption of one group forces a rewind.
	if st.FaultRewinds > st.FaultsDetected/2 {
		t.Errorf("majority design rewound %d/%d detections", st.FaultRewinds, st.FaultsDetected)
	}

	// The rewind-only R=3 design recovers everything too, but by rewinding.
	cfgR := SS3Rewind()
	cfgR.Fault = fault.Config{Rate: 2e-3, Seed: 7, Targets: fault.AllTargets}
	stR := runCfg(t, p, cfgR)
	if stR.EscapedFaults != 0 || stR.Output[0] != want[0] {
		t.Fatalf("SS-3-rewind corrupted state: %s", stR.Summary())
	}
	if stR.MajorityCommits != 0 {
		t.Error("rewind-only design reported majority commits")
	}
}

// TestUnprotectedBaselineEscapes: SS-1 has no detection, so injected
// faults corrupt architectural state (observed via the oracle).
func TestUnprotectedBaselineEscapes(t *testing.T) {
	p := mixedProgram(400)
	cfg := SS1()
	cfg.Fault = fault.Config{Rate: 5e-3, Seed: 11}
	// A corrupted branch can strand execution on a nop sled, so bound the
	// run; the escape is observed long before the limit.
	cfg.MaxCycles = 300_000
	st := runCfg(t, p, cfg)
	if st.EscapedFaults == 0 {
		t.Errorf("SS-1 absorbed %d faults without architectural damage", st.Fault.Injected)
	}
}

// TestPerTargetDetection injects each fault class alone and requires
// detection plus full recovery.
func TestPerTargetDetection(t *testing.T) {
	p := mixedProgram(300)
	want := reference(t, p)
	for _, tgt := range fault.AllTargets {
		t.Run(tgt.String(), func(t *testing.T) {
			cfg := SS2()
			cfg.Fault = fault.Config{Rate: 2e-3, Seed: 5, Targets: []fault.Target{tgt}}
			st := runCfg(t, p, cfg)
			if st.EscapedFaults != 0 {
				t.Fatalf("target %v escaped: %s", tgt, st.Summary())
			}
			if st.Output[0] != want[0] {
				t.Fatalf("target %v corrupted output", tgt)
			}
			if st.Fault.Injected > 3 && st.FaultsDetected == 0 && tgt != fault.TargetBranch {
				t.Errorf("target %v: injected %d, detected none", tgt, st.Fault.Injected)
			}
		})
	}
}

// TestRecoveryPenaltyMagnitude: the paper reports rewind recovery costs
// on the order of tens of cycles (about 30 for fpppp).
func TestRecoveryPenaltyMagnitude(t *testing.T) {
	p := mixedProgram(2000)
	cfg := SS2()
	cfg.Fault = fault.Config{Rate: 1e-3, Seed: 3, Targets: fault.AllTargets}
	st := runCfg(t, p, cfg)
	if st.FaultRewinds < 5 {
		t.Skipf("only %d rewinds observed", st.FaultRewinds)
	}
	pen := st.AvgRecoveryPenalty()
	if pen < 3 || pen > 200 {
		t.Errorf("average recovery penalty %.1f cycles, expected tens", pen)
	}
}

func TestCoScheduleStillCorrect(t *testing.T) {
	p := mixedProgram(300)
	want := reference(t, p)
	cfg := SS2()
	cfg.CoSchedule = true
	st := runCfg(t, p, cfg)
	if st.Output[0] != want[0] || st.EscapedFaults != 0 {
		t.Fatalf("co-scheduled run corrupted: %s", st.Summary())
	}
}

func TestMajorityThresholdFour(t *testing.T) {
	// R=4 with a strict threshold of 4 behaves like rewind-on-any-
	// mismatch; with threshold 3 it can elect.
	p := mixedProgram(200)
	want := reference(t, p)
	cfg := Config{CPU: SS1().CPU, R: 4, Majority: true, MajorityThreshold: 3}
	cfg.Fault = fault.Config{Rate: 1e-3, Seed: 9, Targets: fault.AllTargets}
	st := runCfg(t, p, cfg)
	if st.EscapedFaults != 0 || st.Output[0] != want[0] {
		t.Fatalf("R=4 corrupted: %s", st.Summary())
	}
}

func TestPresetNames(t *testing.T) {
	cases := map[string]Config{
		"SS-1": SS1(), "SS-2": SS2(), "SS-3": SS3(), "Static-2": Static2(),
	}
	for want, cfg := range cases {
		if cfg.CPU.Name != want {
			t.Errorf("preset name %q, want %q", cfg.CPU.Name, want)
		}
	}
	if SS2().R != 2 || SS3().R != 3 || !SS3().Majority {
		t.Error("preset redundancy misconfigured")
	}
	if Static2().CPU.RUUSize != 64 || Static2().CPU.FPMult != 1 {
		t.Error("Static-2 resources misconfigured")
	}
}

// TestPersistentFaultMasking reproduces the Section 2.2 discussion: a
// hard stuck-bit fault in a shared functional unit corrupts redundant
// copies identically, so plain replication cannot see it — but rotating
// the copies' operands (the cited Patel & Fung transform) makes the
// corruption land on different result bits and the commit check exposes
// it.
func TestPersistentFaultMasking(t *testing.T) {
	// A XOR-heavy loop so the damaged logic slice is exercised densely.
	b := prog.NewBuilder("stuck")
	b.Li(1, 5000)
	b.Li(2, 0x0123_4567_89AB_CDEF)
	b.Li(3, 0x1111_2222_3333_4444)
	b.Label("loop")
	b.R(isa.OpXor, 2, 2, 3)
	b.R(isa.OpXor, 3, 3, 2)
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(2)
	b.Halt()
	p := b.MustBuild()

	run := func(transform bool) *cpu.Stats {
		cfg := SS2()
		cfg.CPU.IntALU = 1 // force both copies through the damaged unit
		cfg.Persistent = &fault.Persistent{Pool: isa.PoolIntALU, Unit: 0, Bit: 17}
		cfg.TransformOperands = transform
		cfg.Oracle = true
		cfg.MaxCycles = 400_000
		st, err := Run(p, cfg)
		// A permanent fault under detect-and-rewind livelocks at the
		// first affected instruction: rewinding re-executes into the
		// same damage. The simulator reports that as a deadlock, which
		// is the honest outcome — detection worked, recovery cannot.
		if err != nil && !errors.Is(err, cpu.ErrDeadlock) {
			t.Fatal(err)
		}
		return st
	}

	// Without the transform the two copies corrupt identically: the
	// cross-check passes and wrong values commit (silent corruption).
	plain := run(false)
	if plain.EscapedFaults == 0 {
		t.Errorf("identical persistent corruption was somehow detected: %s", plain.Summary())
	}

	// With rotated operands the corruption is exposed at commit. The
	// fault is permanent, so recovery cannot make progress past the first
	// affected instruction — but nothing corrupt ever commits.
	hardened := run(true)
	if hardened.FaultsDetected == 0 {
		t.Errorf("transform failed to expose the stuck bit: %s", hardened.Summary())
	}
	if hardened.EscapedFaults != 0 {
		t.Errorf("corrupt state committed despite detection: %s", hardened.Summary())
	}
}

// TestPersistentFaultCleanUnit: a stuck bit in a unit the copies avoid
// (co-scheduling on a 4-ALU machine) is survivable for R=2 because the
// damaged copy always disagrees with the clean one and rewind re-executes
// — the same detect-and-retry loop, but with forward progress whenever
// the copies land on clean units.
func TestPersistentTransformCleanRun(t *testing.T) {
	p := mixedProgram(100)
	want := reference(t, p)
	// No persistent fault: the transform must be semantically invisible.
	cfg := SS2()
	cfg.TransformOperands = true
	st := runCfg(t, p, cfg)
	if st.EscapedFaults != 0 || st.FaultsDetected != 0 {
		t.Fatalf("transform alone caused detections: %s", st.Summary())
	}
	if st.Output[0] != want[0] {
		t.Fatalf("transform changed results: %#x vs %#x", st.Output[0], want[0])
	}
}
