package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/workload"
)

// TestAllWorkloadsOracleClean runs every Table 2 benchmark on SS-2 with
// the in-order oracle enabled: the committed stream must match the
// functional semantics instruction for instruction, with and without
// fault injection. This is the broadest end-to-end invariant in the
// suite — it exercises renaming, the LSQ, FP pipelines, divides, branch
// rewinds and the checker on all eleven instruction mixes.
func TestAllWorkloadsOracleClean(t *testing.T) {
	for _, p := range workload.Table2() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			program, err := p.Build(1 << 32)
			if err != nil {
				t.Fatal(err)
			}
			for _, faulty := range []bool{false, true} {
				cfg := SS2()
				cfg.Oracle = true
				cfg.MaxInsts = 8_000
				cfg.MaxCycles = 4_000_000
				if faulty {
					cfg.Fault = fault.Config{Rate: 5e-4, Seed: 21, Targets: fault.AllTargets}
				}
				st, err := Run(program, cfg)
				if err != nil {
					t.Fatalf("faulty=%v: %v", faulty, err)
				}
				if st.EscapedFaults != 0 {
					t.Fatalf("faulty=%v: oracle divergence: %s", faulty, st.Summary())
				}
				if !faulty && st.FaultsDetected != 0 {
					t.Fatalf("spurious detections: %s", st.Summary())
				}
			}
		})
	}
}

// TestStatic2OracleClean: the halved pipeline is a different machine
// shape (narrow widths, single memory port); run the memory-heavy and
// FP-heavy benchmarks through it with the oracle.
func TestStatic2OracleClean(t *testing.T) {
	for _, name := range []string{"gcc", "fpppp", "swim"} {
		p, _ := workload.ByName(name)
		program, err := p.Build(1 << 32)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Static2()
		cfg.Oracle = true
		cfg.MaxInsts = 8_000
		cfg.MaxCycles = 4_000_000
		st, err := Run(program, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.EscapedFaults != 0 {
			t.Fatalf("%s: oracle divergence: %s", name, st.Summary())
		}
	}
}

// TestStallAccounting: a machine starved of window space reports
// dispatch stalls; one starved of LSQ space reports LSQ stalls.
func TestStallAccounting(t *testing.T) {
	p, _ := workload.ByName("swim") // long FP latencies + memory traffic
	program, err := p.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}

	tiny := SS1()
	tiny.CPU.RUUSize = 8
	tiny.CPU.LSQSize = 8
	tiny.MaxInsts = 5_000
	tiny.MaxCycles = 2_000_000
	st, err := Run(program, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.DispatchRUUFull == 0 {
		t.Errorf("8-entry window reported no RUU-full stalls: %s", st.Summary())
	}

	tinyLSQ := SS1()
	tinyLSQ.CPU.LSQSize = 2
	tinyLSQ.MaxInsts = 5_000
	tinyLSQ.MaxCycles = 2_000_000
	st2, err := Run(program, tinyLSQ)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DispatchLSQFull == 0 {
		t.Errorf("2-entry LSQ reported no LSQ-full stalls: %s", st2.Summary())
	}
	// Starved configurations are slower.
	full, err := Run(program, func() Config { c := SS1(); c.MaxInsts = 5_000; c.MaxCycles = 2_000_000; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() >= full.IPC() {
		t.Errorf("8-entry window IPC %.3f >= full machine %.3f", st.IPC(), full.IPC())
	}
}
