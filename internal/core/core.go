// Package core implements the paper's contribution: the transient-fault
// tolerant superscalar. It wires the out-of-order datapath (package cpu)
// into the three mechanisms of Section 3.2 —
//
//  1. instruction injection: each instruction dispatches as R redundant,
//     data-independent copies through offset renaming;
//  2. fault detection: the commit stage cross-checks the R copies' result
//     values, memory addresses, store data and branch outcomes, plus the
//     PC-continuity check against the ECC-protected committed next-PC; and
//  3. recovery: any disagreement rewinds the whole ROB and refetches from
//     the committed next-PC — or, for R >= 3, a majority election commits
//     the agreed value without a rewind.
//
// The package exposes the four machine models evaluated in Section 5
// (SS-1, SS-2, Static-2, and the R=3 majority design) and a Run facade.
package core

import (
	"context"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/prog"
)

// Config describes a fault-tolerant superscalar run.
type Config struct {
	// CPU is the base datapath (widths, window, functional units,
	// caches, branch predictor). Its R/Checker/Injector fields are
	// overwritten by Build.
	CPU cpu.Config

	// R is the degree of redundancy (1 = unprotected baseline).
	R int
	// Majority enables majority election for R >= 3: a group whose
	// copies disagree still commits if at least MajorityThreshold copies
	// agree on every checked field.
	Majority bool
	// MajorityThreshold is the correctness acceptance threshold
	// (Section 3.2, "Recovery"); zero means a simple majority, R/2+1.
	MajorityThreshold int
	// CoSchedule asks the issue stage to place redundant copies on
	// distinct physical functional units (Section 3.5).
	CoSchedule bool

	// Fault configures transient-fault injection.
	Fault fault.Config
	// Persistent models a hard stuck-bit fault in one functional unit
	// (see fault.Persistent); nil disables it.
	Persistent *fault.Persistent
	// TransformOperands rotates redundant copies' bitwise operands
	// (Section 2.2's defence against persistent-fault error masking).
	TransformOperands bool
	// RecoveryPenalty adds fixed cycles to each fault recovery,
	// modelling coarse-grain (checkpoint-style) schemes; 0 = the paper's
	// fine-grain rewind.
	RecoveryPenalty int
	// Oracle enables the in-order co-simulation check of Section 5.1.1.
	Oracle bool
	// StrictOracle aborts the run with a *cpu.OracleError on the first
	// oracle divergence instead of only counting an escaped fault.
	StrictOracle bool

	// Run limits (zero = unlimited).
	MaxInsts  uint64
	MaxCycles uint64
}

// SS1 returns the unprotected Table 1 baseline (the stock superscalar).
func SS1() Config {
	return Config{CPU: cpu.Baseline(), R: 1}
}

// SS2 returns the paper's 2-way dynamic-redundant design: same hardware
// as SS-1, with instruction injection, commit-stage checking and
// rewind-based recovery.
func SS2() Config {
	c := Config{CPU: cpu.Baseline(), R: 2}
	c.CPU.Name = "SS-2"
	return c
}

// SS3 returns the 3-way redundant design with majority election, as
// simulated in Section 5.3.
func SS3() Config {
	c := Config{CPU: cpu.Baseline(), R: 3, Majority: true}
	c.CPU.Name = "SS-3"
	return c
}

// SS3Rewind returns a 3-way design that always rewinds on any mismatch
// (majority election disabled), for ablation.
func SS3Rewind() Config {
	c := Config{CPU: cpu.Baseline(), R: 3}
	c.CPU.Name = "SS-3-rewind"
	return c
}

// Static2 returns one pipeline of the statically partitioned two-pipeline
// lock-step processor of Section 5.1.2 (half of every resource except
// caches and branch prediction). Running the whole program on it yields
// the Static-2 system's throughput.
func Static2() Config {
	return Config{CPU: cpu.Halved(), R: 1}
}

// assemble lowers the core configuration into the cpu layer's, reusing
// prev as the fault injector's RNG storage when non-nil (see
// fault.Renew; the reseeded stream is identical to a fresh one).
func (c Config) assemble(prev *fault.Injector) cpu.Config {
	cfg := c.CPU
	cfg.R = c.R
	if c.R > 1 && cfg.RUUSize%c.R != 0 {
		// Section 3.2 requires the ROB size to be a multiple of R so the
		// copy-k-at-index-≡k alignment holds; round down (e.g. 128 -> 126
		// for R=3), mirroring how a real design would provision the ROB.
		cfg.RUUSize -= cfg.RUUSize % c.R
	}
	cfg.CoSchedule = c.CoSchedule
	cfg.Checker = nil
	if c.R > 1 {
		if c.Majority {
			thr := c.MajorityThreshold
			if thr == 0 {
				thr = c.R/2 + 1
			}
			cfg.Checker = &MajorityChecker{R: c.R, Threshold: thr}
		} else {
			cfg.Checker = &RewindChecker{}
		}
	}
	cfg.Injector = fault.Renew(prev, c.Fault)
	cfg.Persistent = c.Persistent
	cfg.TransformOperands = c.TransformOperands
	cfg.RecoveryPenalty = c.RecoveryPenalty
	cfg.Oracle = c.Oracle
	cfg.StrictOracle = c.StrictOracle
	cfg.MaxInsts = c.MaxInsts
	cfg.MaxCycles = c.MaxCycles
	return cfg
}

// Build assembles a runnable machine for program p.
func (c Config) Build(p *prog.Program) (*cpu.Machine, error) {
	return cpu.New(c.assemble(nil), p)
}

// Rebuild resets a previously built machine in place for a new run of
// program p under this configuration, reusing its allocated state
// (entry slabs, cache lines, predictor tables, memory pages, injector
// RNG) where the geometry allows. A nil m builds fresh, so Rebuild is a
// drop-in Build for machine pools. The reset machine's behaviour is
// bit-identical to a fresh Build's — the pooled-vs-fresh equivalence
// tests are the referee.
func (c Config) Rebuild(m *cpu.Machine, p *prog.Program) (*cpu.Machine, error) {
	if m == nil {
		return c.Build(p)
	}
	if err := m.Reset(c.assemble(m.Injector()), p); err != nil {
		return nil, err
	}
	return m, nil
}

// Restore re-initialises machine m in place from a snapshot
// previously produced by cpu.Machine.Snapshot under an equivalent
// configuration (equal cpu.Config.Fingerprint — run limits may
// differ, so a snapshotted workload can resume under a larger
// budget). A nil m allocates a fresh machine. On error the machine is
// not usable until Rebuild or a successful Restore.
func (c Config) Restore(m *cpu.Machine, data []byte) (*cpu.Machine, error) {
	var prev *fault.Injector
	if m == nil {
		m = &cpu.Machine{}
	} else {
		prev = m.Injector()
	}
	if err := m.Restore(c.assemble(prev), data); err != nil {
		return nil, err
	}
	return m, nil
}

// Run builds and runs the machine to completion (program halt or run
// limits) and returns its statistics.
func Run(p *prog.Program, c Config) (*cpu.Stats, error) {
	return RunContext(context.Background(), p, c)
}

// RunContext is Run with cooperative cancellation plumbed into the
// pipeline loop: when ctx fires mid-simulation the run stops promptly
// and returns ctx.Err() with the statistics gathered so far.
func RunContext(ctx context.Context, p *prog.Program, c Config) (*cpu.Stats, error) {
	m, err := c.Build(p)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}
