// Package bpred implements the branch prediction hardware of the
// simulated machine: a bimodal predictor, a two-level adaptive predictor,
// and the combined (tournament) predictor from the paper's Table 1
// ("combined predictor that selects between a 2K bimodal and a 2-level
// predictor; the 2-level predictor consists of a 2-entry L1 (10-bit
// history), a 1024-entry L2, and 1-bit xor"), plus a branch target buffer
// and a return-address stack.
//
// Direct branch and jump targets are computed exactly by the front end
// (fetch decodes the instruction word), so the BTB is consulted only for
// indirect jumps; direction prediction dominates the misprediction rate,
// as in SimpleScalar.
package bpred

import (
	"fmt"

	"repro/internal/isa"
)

// Kind selects the direction predictor.
type Kind string

const (
	KindNotTaken Kind = "nottaken" // static not-taken
	KindTaken    Kind = "taken"    // static taken
	KindBimodal  Kind = "bimodal"
	KindTwoLevel Kind = "twolevel"
	KindCombined Kind = "comb"
)

// Config describes the predictor; the zero value of any field takes the
// Table 1 default.
type Config struct {
	Kind Kind

	BimodalSize int // 2-bit counters (default 2048)
	L1Size      int // history registers (default 2)
	HistBits    int // history length (default 10)
	L2Size      int // pattern counters (default 1024)
	XOR         bool
	MetaSize    int // tournament selector counters (default 2048)

	BTBSets int // default 128
	BTBWays int // default 4
	RASSize int // default 8
}

// Default returns the Table 1 predictor configuration.
func Default() Config {
	return Config{
		Kind:        KindCombined,
		BimodalSize: 2048,
		L1Size:      2,
		HistBits:    10,
		L2Size:      1024,
		XOR:         true,
		MetaSize:    2048,
		BTBSets:     128,
		BTBWays:     4,
		RASSize:     8,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Kind == "" {
		c.Kind = d.Kind
	}
	if c.BimodalSize == 0 {
		c.BimodalSize = d.BimodalSize
	}
	if c.L1Size == 0 {
		c.L1Size = d.L1Size
	}
	if c.HistBits == 0 {
		c.HistBits = d.HistBits
	}
	if c.L2Size == 0 {
		c.L2Size = d.L2Size
	}
	if c.MetaSize == 0 {
		c.MetaSize = d.MetaSize
	}
	if c.BTBSets == 0 {
		c.BTBSets = d.BTBSets
	}
	if c.BTBWays == 0 {
		c.BTBWays = d.BTBWays
	}
	if c.RASSize == 0 {
		c.RASSize = d.RASSize
	}
	return c
}

// Prediction is the front end's guess for one control-flow instruction,
// along with the component state needed to update the predictor when the
// branch retires.
type Prediction struct {
	NextPC uint64
	Taken  bool

	bimodalTaken  bool
	twoLevelTaken bool
	usedTwoLevel  bool
	usedRAS       bool
	fromBTB       bool
}

// Stats counts predictor events. Direction statistics cover conditional
// branches only; target statistics cover indirect jumps.
type Stats struct {
	CondLookups    uint64
	CondMispredict uint64
	IndirLookups   uint64
	IndirMispred   uint64
	RASPushes      uint64
	RASPops        uint64
	BTBHits        uint64
	BTBMisses      uint64
}

// MispredictRate returns the conditional-branch misprediction rate.
func (s Stats) MispredictRate() float64 {
	if s.CondLookups == 0 {
		return 0
	}
	return float64(s.CondMispredict) / float64(s.CondLookups)
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// Predictor is the complete branch prediction unit. It is not safe for
// concurrent use; each simulated core owns one.
type Predictor struct {
	cfg Config

	bimodal []uint8 // 2-bit saturating counters
	l1      []uint64
	l2      []uint8
	meta    []uint8 // 2-bit: >=2 prefers the two-level component

	// btb is the branch target buffer as one flat set-major slab
	// (BTBSets * BTBWays entries), so building a predictor costs one
	// allocation for it instead of one per set.
	btb    []btbEntry
	btbAge uint64

	ras    []uint64
	rasTop int // number of valid entries

	Stats Stats
}

// New builds a predictor from cfg (zero fields defaulted).
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	p := &Predictor{cfg: cfg}
	p.bimodal = make([]uint8, cfg.BimodalSize)
	p.meta = make([]uint8, cfg.MetaSize)
	p.l1 = make([]uint64, cfg.L1Size)
	p.l2 = make([]uint8, cfg.L2Size)
	p.btb = make([]btbEntry, cfg.BTBSets*cfg.BTBWays)
	p.ras = make([]uint64, cfg.RASSize)
	p.Reset()
	return p
}

// Renew returns a predictor for cfg, reusing p's table storage when the
// (defaulted) configuration matches; otherwise it builds fresh. Either
// way the result is indistinguishable from New(cfg).
func Renew(p *Predictor, cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	if p == nil || p.cfg != cfg {
		return New(cfg)
	}
	p.Reset()
	return p
}

// Reset restores the just-built predictor state in place: all direction
// counters weakly not-taken, history registers, BTB, RAS and statistics
// cleared.
func (p *Predictor) Reset() {
	initCounters(p.bimodal)
	initCounters(p.meta)
	initCounters(p.l2)
	clear(p.l1)
	clear(p.btb)
	clear(p.ras)
	p.rasTop = 0
	p.btbAge = 0
	p.Stats = Stats{}
}

func initCounters(c []uint8) {
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
}

// Predict returns the front end's next-PC guess for the control-flow
// instruction in at address pc. It speculatively updates the return
// address stack (pushes on calls, pops on returns), as a real fetch
// engine does.
func (p *Predictor) Predict(pc uint64, in isa.Inst) Prediction {
	oi := in.Info()
	fall := pc + isa.InstBytes
	switch {
	case in.Op == isa.OpJ:
		return Prediction{NextPC: pc + uint64(int64(in.Imm)), Taken: true}
	case in.Op == isa.OpJal:
		p.push(fall)
		return Prediction{NextPC: pc + uint64(int64(in.Imm)), Taken: true}
	case in.Op == isa.OpJr || in.Op == isa.OpJalr:
		pr := Prediction{Taken: true}
		if in.Rs1 == isa.RegLink && p.rasTop > 0 {
			pr.NextPC = p.pop()
			pr.usedRAS = true
		} else if target, ok := p.btbLookup(pc); ok {
			pr.NextPC = target
			pr.fromBTB = true
			p.Stats.BTBHits++
		} else {
			// No information: predict fall-through and let the rewind
			// mechanism redirect.
			pr.NextPC = fall
			p.Stats.BTBMisses++
		}
		if in.Op == isa.OpJalr {
			p.push(fall)
		}
		p.Stats.IndirLookups++
		return pr
	case oi.IsBranch:
		pr := p.predictDir(pc)
		p.Stats.CondLookups++
		if pr.Taken {
			pr.NextPC = pc + uint64(int64(in.Imm))
		} else {
			pr.NextPC = fall
		}
		return pr
	}
	return Prediction{NextPC: fall}
}

func (p *Predictor) predictDir(pc uint64) Prediction {
	var pr Prediction
	switch p.cfg.Kind {
	case KindNotTaken:
		return pr
	case KindTaken:
		pr.Taken = true
		return pr
	}
	bi := p.bimodal[p.bimodalIdx(pc)] >= 2
	tl := p.l2[p.twoLevelIdx(pc)] >= 2
	pr.bimodalTaken, pr.twoLevelTaken = bi, tl
	switch p.cfg.Kind {
	case KindBimodal:
		pr.Taken = bi
	case KindTwoLevel:
		pr.Taken = tl
	case KindCombined:
		pr.usedTwoLevel = p.meta[p.metaIdx(pc)] >= 2
		if pr.usedTwoLevel {
			pr.Taken = tl
		} else {
			pr.Taken = bi
		}
	}
	return pr
}

// Update trains the predictor with the resolved outcome of a control-flow
// instruction. The pipeline calls it at commit so wrong-path branches
// never pollute predictor state.
func (p *Predictor) Update(pc uint64, in isa.Inst, taken bool, next uint64, pr Prediction) {
	oi := in.Info()
	if oi.IsBranch {
		if pr.Taken != taken || (taken && pr.NextPC != next) {
			p.Stats.CondMispredict++
		}
		p.updateDir(pc, taken, pr)
		return
	}
	if in.Op == isa.OpJr || in.Op == isa.OpJalr {
		if pr.NextPC != next {
			p.Stats.IndirMispred++
		}
		p.btbUpdate(pc, next)
	}
}

func (p *Predictor) updateDir(pc uint64, taken bool, pr Prediction) {
	switch p.cfg.Kind {
	case KindNotTaken, KindTaken:
		return
	}
	bump(&p.bimodal[p.bimodalIdx(pc)], taken)
	// Two-level: train the pattern entry selected at prediction time,
	// then shift the history register.
	l2i := p.twoLevelIdx(pc)
	bump(&p.l2[l2i], taken)
	l1i := p.l1Idx(pc)
	p.l1[l1i] = ((p.l1[l1i] << 1) | b2u(taken)) & ((1 << p.cfg.HistBits) - 1)
	if p.cfg.Kind == KindCombined {
		// Train the selector toward the component that was right when
		// they disagreed.
		if pr.bimodalTaken != pr.twoLevelTaken {
			bump(&p.meta[p.metaIdx(pc)], pr.twoLevelTaken == taken)
		}
	}
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 3) % uint64(p.cfg.BimodalSize))
}

func (p *Predictor) metaIdx(pc uint64) int {
	return int((pc >> 3) % uint64(p.cfg.MetaSize))
}

func (p *Predictor) l1Idx(pc uint64) int {
	return int((pc >> 3) % uint64(p.cfg.L1Size))
}

func (p *Predictor) twoLevelIdx(pc uint64) int {
	hist := p.l1[p.l1Idx(pc)]
	base := pc >> 3
	var idx uint64
	if p.cfg.XOR {
		idx = hist ^ base
	} else {
		idx = (base << p.cfg.HistBits) | hist
	}
	return int(idx % uint64(p.cfg.L2Size))
}

// btbSet returns one BTB set's ways as a slice into the slab.
func (p *Predictor) btbSet(pc uint64) []btbEntry {
	i := int((pc>>3)%uint64(p.cfg.BTBSets)) * p.cfg.BTBWays
	return p.btb[i : i+p.cfg.BTBWays]
}

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	set := p.btbSet(pc)
	tag := pc >> 3
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			p.btbAge++
			set[i].lru = p.btbAge
			return set[i].target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbUpdate(pc uint64, target uint64) {
	set := p.btbSet(pc)
	tag := pc >> 3
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	p.btbAge++
	set[victim] = btbEntry{valid: true, tag: tag, target: target, lru: p.btbAge}
}

func (p *Predictor) push(addr uint64) {
	if p.rasTop < len(p.ras) {
		p.ras[p.rasTop] = addr
		p.rasTop++
	} else {
		// Overflow discards the oldest entry.
		copy(p.ras, p.ras[1:])
		p.ras[len(p.ras)-1] = addr
	}
	p.Stats.RASPushes++
}

func (p *Predictor) pop() uint64 {
	p.rasTop--
	p.Stats.RASPops++
	return p.ras[p.rasTop]
}

func bump(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// String describes the configuration.
func (c Config) String() string {
	c = c.withDefaults()
	switch c.Kind {
	case KindCombined:
		return fmt.Sprintf("comb(bimodal %d + 2lev %d/%d-bit/%d xor=%v, meta %d)",
			c.BimodalSize, c.L1Size, c.HistBits, c.L2Size, c.XOR, c.MetaSize)
	case KindTwoLevel:
		return fmt.Sprintf("2lev(%d/%d-bit/%d xor=%v)", c.L1Size, c.HistBits, c.L2Size, c.XOR)
	case KindBimodal:
		return fmt.Sprintf("bimodal(%d)", c.BimodalSize)
	default:
		return string(c.Kind)
	}
}
