package bpred

import (
	"testing"

	"repro/internal/isa"
)

func condBranch(imm int32) isa.Inst {
	return isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: imm}
}

// train resolves the same branch n times with the given outcome.
func train(p *Predictor, pc uint64, in isa.Inst, taken bool, n int) {
	_, next, _ := isa.EvalCtrl(in.Op, pc, in.Imm, 1, 0)
	if !taken {
		next = pc + isa.InstBytes
	}
	for i := 0; i < n; i++ {
		pr := p.Predict(pc, in)
		p.Update(pc, in, taken, next, pr)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := New(Config{Kind: KindBimodal})
	pc := uint64(0x1000)
	in := condBranch(-64)
	train(p, pc, in, true, 4)
	pr := p.Predict(pc, in)
	if !pr.Taken || pr.NextPC != pc-64 {
		t.Errorf("after taken training: %+v", pr)
	}
	train(p, pc, in, false, 4)
	pr = p.Predict(pc, in)
	if pr.Taken || pr.NextPC != pc+isa.InstBytes {
		t.Errorf("after not-taken training: %+v", pr)
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	p := New(Config{Kind: KindTwoLevel, L1Size: 2, HistBits: 4, L2Size: 1024})
	pc := uint64(0x2000)
	in := condBranch(32)
	// Alternating T,N,T,N... pattern: a 2-level predictor keys on the
	// history and learns it; warm up then measure.
	taken := true
	for i := 0; i < 200; i++ {
		pr := p.Predict(pc, in)
		next := pc + isa.InstBytes
		if taken {
			next = pc + 32
		}
		p.Update(pc, in, taken, next, pr)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		pr := p.Predict(pc, in)
		if pr.Taken == taken {
			correct++
		}
		next := pc + isa.InstBytes
		if taken {
			next = pc + 32
		}
		p.Update(pc, in, taken, next, pr)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("two-level got %d/100 on alternating pattern", correct)
	}
}

func TestCombinedBeatsWorstComponent(t *testing.T) {
	// The combined predictor should learn to trust the two-level
	// component on an alternating pattern, which bimodal cannot predict.
	p := New(Config{Kind: KindCombined, L1Size: 2, HistBits: 8, L2Size: 1024})
	pc := uint64(0x3000)
	in := condBranch(16)
	taken := true
	for i := 0; i < 400; i++ {
		pr := p.Predict(pc, in)
		next := pc + isa.InstBytes
		if taken {
			next = pc + 16
		}
		p.Update(pc, in, taken, next, pr)
		taken = !taken
	}
	mispred := p.Stats.CondMispredict
	total := p.Stats.CondLookups
	if rate := float64(mispred) / float64(total); rate > 0.3 {
		t.Errorf("combined mispredict rate %.2f on learnable pattern", rate)
	}
}

func TestStaticPredictors(t *testing.T) {
	pn := New(Config{Kind: KindNotTaken})
	pc := uint64(0x100)
	in := condBranch(64)
	if pr := pn.Predict(pc, in); pr.Taken {
		t.Error("not-taken predictor predicted taken")
	}
	pt := New(Config{Kind: KindTaken})
	if pr := pt.Predict(pc, in); !pr.Taken || pr.NextPC != pc+64 {
		t.Errorf("taken predictor: %+v", pr)
	}
}

func TestDirectJumpsExact(t *testing.T) {
	p := New(Default())
	pc := uint64(0x4000)
	j := isa.Inst{Op: isa.OpJ, Imm: 160}
	if pr := p.Predict(pc, j); !pr.Taken || pr.NextPC != pc+160 {
		t.Errorf("j prediction: %+v", pr)
	}
	jal := isa.Inst{Op: isa.OpJal, Rd: isa.RegLink, Imm: -32}
	if pr := p.Predict(pc, jal); pr.NextPC != pc-32 {
		t.Errorf("jal prediction: %+v", pr)
	}
}

func TestRASCallReturn(t *testing.T) {
	p := New(Default())
	callPC := uint64(0x5000)
	// jal pushes the return address...
	p.Predict(callPC, isa.Inst{Op: isa.OpJal, Rd: isa.RegLink, Imm: 0x100})
	// ...and jr ra pops it.
	ret := isa.Inst{Op: isa.OpJr, Rs1: isa.RegLink}
	pr := p.Predict(0x5100, ret)
	if pr.NextPC != callPC+isa.InstBytes {
		t.Errorf("return predicted %#x, want %#x", pr.NextPC, callPC+isa.InstBytes)
	}
	if p.Stats.RASPushes != 1 || p.Stats.RASPops != 1 {
		t.Errorf("ras stats: %+v", p.Stats)
	}
}

func TestRASNesting(t *testing.T) {
	p := New(Default())
	ret := isa.Inst{Op: isa.OpJr, Rs1: isa.RegLink}
	// Three nested calls, three returns in LIFO order.
	for i := uint64(0); i < 3; i++ {
		p.Predict(0x1000*(i+1), isa.Inst{Op: isa.OpJal, Rd: isa.RegLink, Imm: 64})
	}
	for i := uint64(3); i >= 1; i-- {
		pr := p.Predict(0x9000, ret)
		want := 0x1000*i + isa.InstBytes
		if pr.NextPC != want {
			t.Errorf("nested return %d predicted %#x, want %#x", i, pr.NextPC, want)
		}
	}
}

func TestRASOverflow(t *testing.T) {
	p := New(Config{RASSize: 2})
	ret := isa.Inst{Op: isa.OpJr, Rs1: isa.RegLink}
	for i := uint64(1); i <= 3; i++ {
		p.Predict(0x1000*i, isa.Inst{Op: isa.OpJal, Rd: isa.RegLink, Imm: 64})
	}
	// The stack holds the two most recent return addresses.
	if pr := p.Predict(0x9000, ret); pr.NextPC != 0x3000+isa.InstBytes {
		t.Errorf("overflowed ras top = %#x", pr.NextPC)
	}
	if pr := p.Predict(0x9000, ret); pr.NextPC != 0x2000+isa.InstBytes {
		t.Errorf("overflowed ras second = %#x", pr.NextPC)
	}
}

func TestIndirectViaBTB(t *testing.T) {
	p := New(Default())
	pc := uint64(0x6000)
	// jr through a non-link register: needs the BTB.
	jr := isa.Inst{Op: isa.OpJr, Rs1: 5}
	pr := p.Predict(pc, jr)
	if pr.NextPC != pc+isa.InstBytes {
		t.Errorf("cold BTB predicted %#x, want fall-through", pr.NextPC)
	}
	p.Update(pc, jr, true, 0xABC0, pr)
	if p.Stats.IndirMispred != 1 {
		t.Errorf("indirect mispredict not counted: %+v", p.Stats)
	}
	pr = p.Predict(pc, jr)
	if pr.NextPC != 0xABC0 {
		t.Errorf("warm BTB predicted %#x, want 0xabc0", pr.NextPC)
	}
}

func TestBTBEviction(t *testing.T) {
	p := New(Config{BTBSets: 1, BTBWays: 2})
	jr := isa.Inst{Op: isa.OpJr, Rs1: 5}
	for i := uint64(0); i < 3; i++ {
		pc := 0x1000 + i*8
		pr := p.Predict(pc, jr)
		p.Update(pc, jr, true, 0xA000+i, pr)
	}
	// First entry was LRU-evicted by the third.
	if pr := p.Predict(0x1000, jr); pr.NextPC == 0xA000 {
		t.Error("LRU entry not evicted")
	}
	// Most recent entries survive.
	if pr := p.Predict(0x1010, jr); pr.NextPC != 0xA002 {
		t.Errorf("recent entry evicted: %#x", pr.NextPC)
	}
}

func TestMispredictStats(t *testing.T) {
	p := New(Config{Kind: KindNotTaken})
	pc := uint64(0x100)
	in := condBranch(64)
	pr := p.Predict(pc, in)
	p.Update(pc, in, true, pc+64, pr) // actually taken: mispredict
	pr = p.Predict(pc, in)
	p.Update(pc, in, false, pc+isa.InstBytes, pr) // not taken: correct
	if p.Stats.CondMispredict != 1 || p.Stats.CondLookups != 2 {
		t.Errorf("stats = %+v", p.Stats)
	}
	if got := p.Stats.MispredictRate(); got != 0.5 {
		t.Errorf("mispredict rate = %v, want 0.5", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	if len(p.bimodal) != 2048 || len(p.l2) != 1024 || len(p.l1) != 2 || len(p.ras) != 8 {
		t.Errorf("defaults not applied: bimodal=%d l2=%d l1=%d ras=%d",
			len(p.bimodal), len(p.l2), len(p.l1), len(p.ras))
	}
	if s := Default().String(); s == "" {
		t.Error("empty config string")
	}
}
