package bpred

import "repro/internal/snap"

// Canonical returns the configuration with every zero field replaced
// by its Table 1 default — the form under which two configurations
// describe the same hardware. Snapshot fingerprints hash the
// canonical form so that Config{} and Default() (which build
// identical predictors) also fingerprint identically.
func (c Config) Canonical() Config { return c.withDefaults() }

// EncodeSnapshot appends the predictor's complete architectural state
// — direction counters, history registers, meta counters, BTB, RAS
// and statistics — to w. The table geometries are not encoded; the
// snapshot is only meaningful against a machine built from the same
// configuration, which the caller enforces via a config fingerprint.
// Lengths are still written and re-validated so a corrupt or
// mismatched blob is rejected rather than misapplied.
func (p *Predictor) EncodeSnapshot(w *snap.Writer) {
	w.Bytes(p.bimodal)
	w.U32(uint32(len(p.l1)))
	for _, v := range p.l1 {
		w.U64(v)
	}
	w.Bytes(p.l2)
	w.Bytes(p.meta)
	w.U32(uint32(len(p.btb)))
	for i := range p.btb {
		e := &p.btb[i]
		w.Bool(e.valid)
		w.U64(e.tag)
		w.U64(e.target)
		w.U64(e.lru)
	}
	w.U64(p.btbAge)
	w.U32(uint32(len(p.ras)))
	for _, v := range p.ras {
		w.U64(v)
	}
	w.U32(uint32(p.rasTop))
	s := &p.Stats
	w.U64(s.CondLookups)
	w.U64(s.CondMispredict)
	w.U64(s.IndirLookups)
	w.U64(s.IndirMispred)
	w.U64(s.RASPushes)
	w.U64(s.RASPops)
	w.U64(s.BTBHits)
	w.U64(s.BTBMisses)
}

// DecodeSnapshot restores state written by EncodeSnapshot into the
// predictor in place. Any length that disagrees with the predictor's
// geometry marks the reader corrupt and leaves remaining fields
// unread; the caller checks r.Done(). The predictor may be left
// partially overwritten on failure — restore paths discard the
// machine on error.
func (p *Predictor) DecodeSnapshot(r *snap.Reader) {
	if b := r.Bytes(); len(b) == len(p.bimodal) {
		copy(p.bimodal, b)
	} else {
		r.Corruptf("bimodal table length %d, want %d", len(b), len(p.bimodal))
	}
	if n := int(r.U32()); n == len(p.l1) {
		for i := range p.l1 {
			p.l1[i] = r.U64()
		}
	} else {
		r.Corruptf("L1 history length %d, want %d", n, len(p.l1))
	}
	if b := r.Bytes(); len(b) == len(p.l2) {
		copy(p.l2, b)
	} else {
		r.Corruptf("L2 pattern table length %d, want %d", len(b), len(p.l2))
	}
	if b := r.Bytes(); len(b) == len(p.meta) {
		copy(p.meta, b)
	} else {
		r.Corruptf("meta table length %d, want %d", len(b), len(p.meta))
	}
	if n := int(r.U32()); n == len(p.btb) {
		for i := range p.btb {
			e := &p.btb[i]
			e.valid = r.Bool()
			e.tag = r.U64()
			e.target = r.U64()
			e.lru = r.U64()
		}
	} else {
		r.Corruptf("BTB length %d, want %d", n, len(p.btb))
	}
	p.btbAge = r.U64()
	if n := int(r.U32()); n == len(p.ras) {
		for i := range p.ras {
			p.ras[i] = r.U64()
		}
	} else {
		r.Corruptf("RAS length %d, want %d", n, len(p.ras))
	}
	if top := int(r.U32()); top >= 0 && top <= len(p.ras) {
		p.rasTop = top
	} else {
		r.Corruptf("RAS top %d out of range", top)
	}
	s := &p.Stats
	s.CondLookups = r.U64()
	s.CondMispredict = r.U64()
	s.IndirLookups = r.U64()
	s.IndirMispred = r.U64()
	s.RASPushes = r.U64()
	s.RASPops = r.U64()
	s.BTBHits = r.U64()
	s.BTBMisses = r.U64()
}
