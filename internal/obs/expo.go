package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text format
// (version 0.0.4), families sorted by name and series by label tuple,
// so output is deterministic and diff-friendly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

// Handler serves the registry as GET /metrics content.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func writeFamily(w *bufio.Writer, f *family) {
	keys, vals := f.sortedSeries()
	if len(keys) == 0 {
		return // a family with no series yet exposes nothing
	}
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')
	for i, key := range keys {
		values := splitKey(key, len(f.labels))
		switch s := vals[i].(type) {
		case *Counter:
			writeSample(w, f.name, "", f.labels, values, "", "", formatUint(s.Value()))
		case *Gauge:
			writeSample(w, f.name, "", f.labels, values, "", "", strconv.FormatInt(s.Value(), 10))
		case *Histogram:
			cum := uint64(0)
			for bi, bound := range s.bounds {
				cum += s.counts[bi].Load()
				writeSample(w, f.name, "_bucket", f.labels, values,
					"le", formatFloat(bound), formatUint(cum))
			}
			cum += s.counts[len(s.bounds)].Load()
			writeSample(w, f.name, "_bucket", f.labels, values, "le", "+Inf", formatUint(cum))
			writeSample(w, f.name, "_sum", f.labels, values, "", "", formatFloat(s.Sum()))
			writeSample(w, f.name, "_count", f.labels, values, "", "", formatUint(s.Count()))
		}
	}
}

// writeSample emits one exposition line:
// name[suffix]{labels...[,extraName="extraVal"]} value
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, extraName, extraVal, sample string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(extraVal)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(sample)
	w.WriteByte('\n')
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\xff", n)
}

func formatUint(v uint64) string {
	return strconv.FormatUint(v, 10)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
