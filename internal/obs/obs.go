// Package obs is the repo's observability substrate: a dependency-free
// metrics registry — atomic counters, gauges and fixed-bucket
// histograms, all label-supporting — with a Prometheus-text-format
// exposition handler (expo.go).
//
// Design constraints, in order:
//
//   - Zero dependencies. The repo reproduces a paper with nothing but
//     the standard library; the observability layer keeps that stance.
//     The exposition format is the Prometheus text format because it is
//     a de-facto lingua franca any scraper (or grep) can read, not
//     because the client library is wanted.
//   - Hot-path safe. Every instrument update is one or two atomic
//     operations, no allocation, no locks. Label resolution (the only
//     map lookup) happens once at wiring time: callers hold *Counter /
//     *Gauge / *Histogram handles obtained via With(...), not label
//     maps they re-resolve per event.
//   - Non-perturbing. Instruments observe simulation results, they
//     never participate in them; the ftsim equivalence tests prove
//     campaign statistics are byte-identical with metrics on and off.
//
// Registration is idempotent: asking a Registry for a family that
// already exists with the same shape returns the existing one, so
// independent components can share a registry without coordination.
// Re-registering a name with a different kind, help, labels or buckets
// panics — that is a programming error, not a runtime condition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them (WritePrometheus,
// Handler). The zero value is not usable; create with NewRegistry.
// All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one named metric with its label dimensions and the series
// (one per distinct label-value tuple) it has accumulated.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label-tuple key -> *Counter | *Gauge | *Histogram
}

// register returns the family, creating it on first use and checking
// shape compatibility on every later one.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.kind != kind || f.help != help ||
			!equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// key joins label values into the series map key. \xff cannot appear in
// a UTF-8 label value, so the join is unambiguous.
func seriesKey(values []string) string {
	return strings.Join(values, "\xff")
}

// with resolves (creating on first use) the series for the given label
// values; make builds a fresh series value.
func (f *family) with(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	k := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.series[k]; s != nil {
		return s
	}
	s := make()
	f.series[k] = s
	return s
}

// sortedSeries snapshots the family's series in deterministic (sorted
// label tuple) order for exposition.
func (f *family) sortedSeries() (keys []string, vals []any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys = make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals = make([]any, len(keys))
	for i, k := range keys {
		vals[i] = f.series[k]
	}
	return keys, vals
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing count. All methods are
// allocation-free and safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	fam *family
}

// NewCounter registers (or finds) a counter family. With no labels the
// returned vec has exactly one series, reached via With().
func (r *Registry) NewCounter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once at wiring time and keep the handle; With does
// a map lookup under the family lock.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.with(labelValues, func() any { return new(Counter) }).(*Counter)
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down. All methods are
// allocation-free and safe for concurrent use.
type Gauge struct {
	n atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.n.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	fam *family
}

// NewGauge registers (or finds) a gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.with(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// ---------------------------------------------------------------------
// Histogram

// Histogram accumulates observations into fixed buckets chosen at
// registration. Observe is allocation-free: a binary search over the
// bucket bounds plus three atomic adds. The exposed _sum is a float
// accumulated by CAS; under heavy contention the CAS loop retries, but
// observation never blocks.
type Histogram struct {
	bounds []float64       // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Branchless-ish bucket pick: linear scan beats binary search for the
	// short bucket lists used here and is trivially correct.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	fam *family
}

// NewHistogram registers (or finds) a histogram family with the given
// bucket upper bounds (ascending; the +Inf bucket is implicit). nil
// buckets select DefSecondsBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.with(labelValues, func() any {
		return &Histogram{
			bounds: v.fam.buckets,
			counts: make([]atomic.Uint64, len(v.fam.buckets)+1),
		}
	}).(*Histogram)
}

// Default bucket ladders. Durations in this repo span four orders of
// magnitude — a trial is milliseconds to minutes, an HTTP request is
// sub-millisecond to seconds — so both ladders are roughly geometric
// (x2.5 per step) rather than linear: constant relative resolution,
// bounded cardinality.
var (
	// DefSecondsBuckets suits wall-clock durations from 1ms to minutes
	// (campaign trials, queue waits).
	DefSecondsBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300}
	// HTTPSecondsBuckets suits request latencies from 100µs up.
	HTTPSecondsBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10}
)
