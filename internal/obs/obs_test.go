package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics: counters accumulate, gauges move both ways,
// label tuples resolve to distinct series and With is stable.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "requests", "route")
	a, b := c.With("/a"), c.With("/b")
	a.Inc()
	a.Add(2)
	b.Inc()
	if a.Value() != 3 || b.Value() != 1 {
		t.Fatalf("counter values: a=%d b=%d, want 3, 1", a.Value(), b.Value())
	}
	if c.With("/a") != a {
		t.Fatal("With is not stable for equal label values")
	}

	g := r.NewGauge("depth", "queue depth")
	q := g.With()
	q.Inc()
	q.Inc()
	q.Dec()
	q.Add(5)
	if q.Value() != 6 {
		t.Fatalf("gauge value %d, want 6", q.Value())
	}
	q.Set(-2)
	if q.Value() != -2 {
		t.Fatalf("gauge value %d, want -2", q.Value())
	}
}

// TestRegistrationIdempotent: re-registering the same shape returns the
// same family; a different shape panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.NewCounter("x_total", "x", "l")
	c2 := r.NewCounter("x_total", "x", "l")
	c1.With("v").Inc()
	if c2.With("v").Value() != 1 {
		t.Fatal("re-registration did not return the same family")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	r.NewGauge("x_total", "x", "l")
}

// TestHistogramBuckets: observations land in the right cumulative
// buckets, sum and count track, and out-of-range values go to +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.1"} 2`, // 0.05 and 0.1 (le is inclusive)
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestExposition: full text-format rendering — HELP/TYPE headers,
// sorted families and series, label escaping, empty families omitted.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "second family", "who").With(`we "quote" \slash`).Add(7)
	r.NewGauge("a_gauge", "first family").With().Set(3)
	r.NewCounter("never_used_total", "no series") // no With: must not appear

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	want := "# HELP a_gauge first family\n" +
		"# TYPE a_gauge gauge\n" +
		"a_gauge 3\n" +
		"# HELP b_total second family\n" +
		"# TYPE b_total counter\n" +
		`b_total{who="we \"quote\" \\slash"} 7` + "\n"
	if out != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", out, want)
	}
}

// TestConcurrentUpdates: instruments under concurrent writers neither
// race (run with -race) nor lose updates.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("n_total", "n").With()
	h := r.NewHistogram("h_seconds", "h", []float64{1}).With()
	g := r.NewGauge("g", "g").With()
	var wg sync.WaitGroup
	const workers, each = 8, 10_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter lost updates: %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Errorf("gauge lost updates: %d, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each || h.Sum() != 0.5*workers*each {
		t.Errorf("histogram lost updates: count %d sum %v", h.Count(), h.Sum())
	}
}

// TestLabelArityPanics: wrong label count is a programming error.
func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("l_total", "l", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	c.With("only-one")
}
