package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/ftsim"
	"repro/ftsim/api"
	"repro/internal/sse"
)

// job is one submitted campaign moving through the lifecycle state
// machine (api.JobState). All mutable fields are guarded by the
// server's mutex; the hub has its own lock and may be used without it.
type job struct {
	id         string
	owner      string
	name       string
	req        *api.CampaignRequest
	trials     []ftsim.Trial
	seedOffset int // parent-grid index of trials[0] (shard requests)
	submitted  time.Time
	hub        *sse.Hub

	state      api.JobState
	started    time.Time
	finished   time.Time
	done       int // completed trials, including resumed ones
	failed     int
	resumed    int
	shards     int // shard counters, maintained by distributed backends
	shardsDone int
	errMsg     string
	statsJSON  []byte
	cancelRun  context.CancelFunc // set while running
	userCancel bool               // DELETE requested, vs. server drain
}

// status snapshots the job as a wire JobStatus. Caller holds s.mu.
func (j *job) status() *api.JobStatus {
	st := &api.JobStatus{
		ID:         j.id,
		Name:       j.name,
		State:      j.state,
		Owner:      j.owner,
		Trials:     len(j.trials),
		Done:       j.done,
		Failed:     j.failed,
		Resumed:    j.resumed,
		Shards:     j.shards,
		ShardsDone: j.shardsDone,
		Submitted:  j.submitted,
		Error:      j.errMsg,
		Stats:      j.statsJSON,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// buildJob validates and resolves a submission into a runnable job.
// Resolution is written back into the request — default benchmark,
// default instruction budget, normalized configs, generated labels and
// name — so the persisted envelope replays to the identical campaign
// (same checkpoint-journal hash) on a daemon restart, even if the
// server's defaults change in between.
func (s *Server) buildJob(req *api.CampaignRequest, owner string) (*job, error) {
	if len(req.Trials) == 0 {
		return nil, errors.New("campaign has no trials")
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	offset := 0
	if req.Shard != nil {
		offset = req.Shard.Offset
	}
	programs := make(map[string]*ftsim.Program)
	trials := make([]ftsim.Trial, len(req.Trials))
	for i := range req.Trials {
		ts := &req.Trials[i]
		var prog *ftsim.Program
		var err error
		if ts.Asm != "" {
			name := ts.Label
			if name == "" {
				name = fmt.Sprintf("asm-%d", i)
			}
			prog, err = ftsim.Assemble(name+".s", ts.Asm)
		} else {
			if ts.Benchmark == "" {
				ts.Benchmark = s.cfg.DefaultBenchmark
			}
			if prog = programs[ts.Benchmark]; prog == nil {
				prog, err = ftsim.Benchmark(ts.Benchmark)
				programs[ts.Benchmark] = prog
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
		cfg := ts.Config.Normalized()
		if cfg.MaxInsts == 0 && cfg.MaxCycles == 0 {
			// An unlimited run limit would let one benchmark trial hold a
			// worker for 2^32 iterations; submitted configs without a
			// budget take the server's.
			cfg.MaxInsts = s.cfg.DefaultMaxInsts
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
		ts.Config = cfg
		if ts.Label == "" {
			// Shard requests label by parent-grid index, so a sharded
			// run's streams and manifests name trials exactly as the
			// unsharded run would.
			ts.Label = fmt.Sprintf("%d/%s", offset+i, prog.Name())
		}
		trials[i] = ftsim.Trial{Label: ts.Label, Config: cfg, Program: prog}
	}
	if req.Name == "" {
		req.Name = trials[0].Program.Name()
	}
	return &job{
		owner:      owner,
		name:       req.Name,
		req:        req,
		trials:     trials,
		seedOffset: offset,
		state:      api.StateQueued,
	}, nil
}

// scheduler is one job-execution slot: it pulls queued jobs in
// submission order until the server drains.
func (s *Server) scheduler() {
	defer s.wg.Done()
	for {
		j := s.nextQueued()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// nextQueued blocks until a queued job is available (skipping jobs
// cancelled while queued) or the server is draining, in which case it
// returns nil.
func (s *Server) nextQueued() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.fifo) > 0 {
			j := s.fifo[0]
			s.fifo = s.fifo[1:]
			if j.state == api.StateQueued {
				return j
			}
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// isCancellation reports a context cancellation/deadline error.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runJob executes one campaign: queued → running, then RunCampaign
// with checkpointing, live progress and interval streaming, then the
// terminal transition. A drain cancellation re-queues the job instead
// of finishing it, so a restarted daemon resumes it from the journal.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()

	s.mu.Lock()
	if j.state != api.StateQueued || s.draining {
		s.mu.Unlock()
		return
	}
	j.state = api.StateRunning
	j.started = time.Now().UTC()
	j.cancelRun = cancel
	s.m.queueDepth.Dec()
	s.m.running.Inc()
	s.m.queueWait.Observe(j.started.Sub(j.submitted).Seconds())
	s.mu.Unlock()
	jlog := s.logger.With("job", j.id)
	ctx = withLogger(ctx, jlog)
	jlog.Info("job running", "name", j.name, "trials", len(j.trials),
		"queue_wait", j.started.Sub(j.submitted))
	j.hub.Publish(api.Event{Type: api.EventState, State: api.StateRunning})

	backend := s.cfg.Backend
	if backend == nil {
		backend = localBackend{s}
	}
	res, err := backend.Run(ctx, s.backendView(j))
	if err == nil && res == nil {
		err = errors.New("backend returned no result")
	}

	s.mu.Lock()
	j.cancelRun = nil
	s.m.running.Dec()
	if res != nil {
		j.resumed = res.Resumed
		j.failed = res.Failed
	}
	switch {
	case err == nil:
		j.done = res.Done
		j.statsJSON = res.Stats
		j.state = api.StateDone
	case j.userCancel:
		j.state = api.StateCancelled
	case s.runCtx.Err() != nil:
		// Server drain, not a client cancel: put the job back in queued
		// state and stop. Its journal was flushed on the way out
		// (fsync-on-drain), so a restarted daemon re-queues it and
		// resumes the completed trials instead of re-running them.
		j.state = api.StateQueued
		j.started = time.Time{}
		j.done, j.failed, j.resumed, j.shardsDone = 0, 0, 0, 0
		s.m.queueDepth.Inc()
		s.mu.Unlock()
		jlog.Info("job interrupted by drain; will resume on restart")
		return
	default:
		j.state = api.StateFailed
		j.errMsg = err.Error()
	}
	j.finished = time.Now().UTC()
	s.m.finished.With(string(j.state)).Inc()
	final := j.status()
	s.mu.Unlock()

	if perr := s.persistDone(j, final); perr != nil {
		jlog.Error("persisting completion failed", "err", perr)
	}
	jlog.Info("job finished", "name", j.name, "state", final.State,
		"done", final.Done, "trials", final.Trials,
		"failed", final.Failed, "resumed", final.Resumed)
	j.hub.Publish(api.Event{Type: api.EventDone, State: final.State, Status: final})
	j.hub.Close()
}

// cancelJob handles DELETE: a queued job finishes immediately as
// cancelled; a running one has its campaign context cancelled and
// finishes when RunCampaign drains (journal flushed). Terminal jobs are
// left as they are (idempotent cancel).
func (s *Server) cancelJob(j *job) *api.JobStatus {
	s.mu.Lock()
	switch j.state {
	case api.StateQueued:
		j.state = api.StateCancelled
		j.userCancel = true
		j.finished = time.Now().UTC()
		s.m.queueDepth.Dec()
		s.m.finished.With(string(j.state)).Inc()
		final := j.status()
		s.mu.Unlock()
		if perr := s.persistDone(j, final); perr != nil {
			s.logger.Error("persisting cancellation failed", "job", j.id, "err", perr)
		}
		j.hub.Publish(api.Event{Type: api.EventDone, State: final.State, Status: final})
		j.hub.Close()
		return final
	case api.StateRunning:
		j.userCancel = true
		cancel := j.cancelRun
		st := j.status()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return st
	default:
		st := j.status()
		s.mu.Unlock()
		return st
	}
}
