// Package server implements ftsimd: a campaign service over the
// embeddable ftsim API. Clients POST campaign grids as JSON (the
// ftsim.Config wire format), the server queues them onto job slots
// backed by the campaign worker pool, streams per-interval progress
// and per-trial completions over SSE, and journals completed trials to
// a data directory so a restarted daemon resumes unfinished campaigns
// where they stopped.
//
// Endpoints:
//
//	POST   /v1/campaigns             submit (api.CampaignRequest or bare ftsim.Config)
//	GET    /v1/campaigns             list jobs, submission order
//	GET    /v1/campaigns/{id}        status + aggregate stats when done
//	GET    /v1/campaigns/{id}/events SSE stream (api.Event records)
//	DELETE /v1/campaigns/{id}        cancel
//	GET    /healthz                  liveness + readiness (503 while draining)
//	GET    /metrics                  Prometheus text exposition
//	GET    /version                  build metadata
package server

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/ftsim"
	"repro/ftsim/api"
	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/sse"
)

// maxBodyBytes bounds submission bodies; a campaign grid of thousands
// of trials fits comfortably.
const maxBodyBytes = 16 << 20

// Config parameterises a Server. The zero value is usable: an
// ephemeral in-memory daemon with sane limits.
type Config struct {
	// DataDir is the persistence root (job envelopes, checkpoint
	// journals, terminal records). Empty disables persistence — jobs
	// then die with the process.
	DataDir string
	// MaxQueue bounds jobs waiting to run, across all clients
	// (submissions beyond it fail with 503). <= 0 means 64.
	MaxQueue int
	// Concurrency is the number of jobs running simultaneously; each
	// job parallelises internally over WorkersPerJob. <= 0 means 1.
	Concurrency int
	// WorkersPerJob is the default campaign worker-pool size per job
	// (0 = GOMAXPROCS); a request's Workers field overrides it.
	WorkersPerJob int
	// MaxQueuedPerClient bounds one client's queued+running jobs
	// (429 beyond it). <= 0 means 16.
	MaxQueuedPerClient int
	// MaxTrialsPerClient bounds one client's total trials across its
	// queued and running jobs (429 beyond it). <= 0 means 1_000_000.
	MaxTrialsPerClient int
	// DefaultBenchmark is the workload of trials that name none.
	// Empty means "gcc".
	DefaultBenchmark string
	// DefaultMaxInsts is the instruction budget applied to submitted
	// configs with no run limits. <= 0 means 200_000.
	DefaultMaxInsts uint64
	// ObserveEvery is the SSE interval-sample period in simulated
	// cycles. <= 0 means ftsim.DefaultObserveEvery.
	ObserveEvery uint64
	// FlushEvery is the checkpoint journal's fsync batch size. <= 0
	// means 1: every completed trial is durable immediately, which is
	// what a long-lived service wants.
	FlushEvery int
	// TrialTimeout, when positive, bounds each trial attempt.
	TrialTimeout time.Duration
	// AuthToken, when non-empty, locks the API behind a shared bearer
	// token: every request except /healthz, /metrics and /version must
	// carry "Authorization: Bearer <token>" or is refused with 401.
	// Empty leaves the daemon open (trusted-network deployments).
	AuthToken string
	// Backend executes admitted jobs. nil selects the local campaign
	// engine; a coordinator daemon installs a distributed backend that
	// shards jobs across worker daemons. Everything around execution —
	// admission, queueing, SSE, persistence — is the same either way.
	Backend Backend
	// Logger receives structured operational logs; nil discards them.
	// Request- and job-scoped loggers derive from it with "req" and
	// "job" attributes attached.
	Logger *slog.Logger
	// Registry receives the server's metric families (and the campaign
	// engine's, shared across all jobs). nil creates a private registry;
	// either way GET /metrics on the Handler serves it.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.MaxQueuedPerClient <= 0 {
		c.MaxQueuedPerClient = 16
	}
	if c.MaxTrialsPerClient <= 0 {
		c.MaxTrialsPerClient = 1_000_000
	}
	if c.DefaultBenchmark == "" {
		c.DefaultBenchmark = "gcc"
	}
	if c.DefaultMaxInsts == 0 {
		c.DefaultMaxInsts = 200_000
	}
	if c.ObserveEvery == 0 {
		c.ObserveEvery = ftsim.DefaultObserveEvery
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 1
	}
	return c
}

// Server is the campaign service: job table, bounded queue, scheduler
// slots and the HTTP surface. Create with New, serve Handler, stop
// with Drain.
type Server struct {
	cfg     Config
	logger  *slog.Logger
	m       *metrics
	runCtx  context.Context
	stopRun context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	order    []string // submission order, for listing
	fifo     []*job   // queued jobs awaiting a scheduler slot
	draining bool

	wg sync.WaitGroup // scheduler goroutines
}

// New builds a Server, recovers any persisted jobs from cfg.DataDir
// (re-queueing interrupted ones), and starts the scheduler slots.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg.withDefaults(), jobs: make(map[string]*job)}
	s.logger = s.cfg.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	reg := s.cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.m = newMetrics(reg)
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.stopRun = context.WithCancel(context.Background())
	if err := s.recover(); err != nil {
		return nil, fmt.Errorf("server: recovering %s: %w", s.cfg.DataDir, err)
	}
	for i := 0; i < s.cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.scheduler()
	}
	return s, nil
}

// Drain gracefully shuts the server down: admission stops (503s),
// queued jobs stay queued, and running campaigns are cancelled so they
// flush their checkpoint journals and return — a restarted daemon
// resumes them. Drain waits for the scheduler slots until ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.stopRun()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// newJobID mints a random, filesystem-safe job identifier.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "c" + hex.EncodeToString(b[:])
}

// owner extracts the client identity a submission is accounted to.
func owner(r *http.Request) string {
	if tok := r.Header.Get("X-FTSim-Client"); tok != "" {
		return tok
	}
	return "default"
}

// Handler returns the HTTP surface, wrapped in the request-ID and
// metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.m.reg.Handler())
	mux.HandleFunc("GET /version", s.handleVersion)
	return s.instrument(mux, s.requireAuth(mux))
}

// requireAuth gates the campaign API behind the shared bearer token
// when one is configured. Probe endpoints stay open: health checks and
// scrapers predate any token distribution, and they expose no campaign
// data or mutation. Comparison is constant-time; note the X-FTSim-Client
// header remains a self-reported accounting label, never a credential.
func (s *Server) requireAuth(next http.Handler) http.Handler {
	if s.cfg.AuthToken == "" {
		return next
	}
	want := []byte("Bearer " + s.cfg.AuthToken)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/metrics", "/version":
			next.ServeHTTP(w, r)
			return
		}
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="ftsimd"`)
			fail(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.Error{Message: fmt.Sprintf(format, args...)})
}

// handleSubmit admits a campaign: parse, validate, quota-check,
// persist, queue. 202 with the queued JobStatus on success.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		fail(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	req, err := api.ParseSubmission(body)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.buildJob(req, owner(r))
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.rejections.With("draining").Inc()
		fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	queued, ownerJobs, ownerTrials := 0, 0, 0
	for _, other := range s.jobs {
		if other.state == api.StateQueued {
			queued++
		}
		if other.owner == j.owner && !other.state.Terminal() {
			ownerJobs++
			ownerTrials += len(other.trials) - other.done
		}
	}
	if queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.m.rejections.With("queue_full").Inc()
		fail(w, http.StatusServiceUnavailable, "queue full (%d jobs queued)", queued)
		return
	}
	if ownerJobs >= s.cfg.MaxQueuedPerClient {
		s.mu.Unlock()
		s.m.rejections.With("client_jobs").Inc()
		fail(w, http.StatusTooManyRequests,
			"client %q has %d active jobs (limit %d)", j.owner, ownerJobs, s.cfg.MaxQueuedPerClient)
		return
	}
	if ownerTrials+len(j.trials) > s.cfg.MaxTrialsPerClient {
		s.mu.Unlock()
		s.m.rejections.With("client_trials").Inc()
		fail(w, http.StatusTooManyRequests,
			"client %q would have %d trials in flight (limit %d)",
			j.owner, ownerTrials+len(j.trials), s.cfg.MaxTrialsPerClient)
		return
	}

	j.id = newJobID()
	for s.jobs[j.id] != nil {
		j.id = newJobID()
	}
	j.submitted = time.Now().UTC()
	j.hub = sse.NewHub(j.id, s.m.sse)
	if err := s.persistEnvelope(j); err != nil {
		s.mu.Unlock()
		fail(w, http.StatusInternalServerError, "persisting job: %v", err)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.fifo = append(s.fifo, j)
	s.m.submitted.Inc()
	s.m.queueDepth.Inc() // gauge transitions happen under s.mu, like the states they mirror
	st := j.status()
	s.mu.Unlock()
	s.cond.Signal()

	s.log(r.Context()).Info("job queued",
		"job", j.id, "name", j.name, "trials", st.Trials, "client", j.owner)
	j.hub.Publish(api.Event{Type: api.EventState, State: api.StateQueued})
	writeJSON(w, http.StatusAccepted, st)
}

// lookup resolves {id}; nil means the response was already written.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		fail(w, http.StatusNotFound, "no campaign %q", id)
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*api.JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	st := s.cancelJob(j)
	s.log(r.Context()).Info("job cancel requested", "job", j.id, "state", st.State)
	writeJSON(w, http.StatusOK, st)
}

// handleHealth is liveness plus readiness: queue and slot occupancy,
// drain state, and a data-dir write probe. A draining daemon (no longer
// admitting jobs) and one that cannot persist submissions both answer
// 503, so load balancers rotate clients away before submissions fail.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := api.Health{
		Status:   "ok",
		Jobs:     len(s.jobs),
		Slots:    s.cfg.Concurrency,
		Draining: s.draining,
	}
	for _, j := range s.jobs {
		switch j.state {
		case api.StateQueued:
			h.Queued++
		case api.StateRunning:
			h.Running++
		}
	}
	s.mu.Unlock()
	h.SlotsInUse = h.Running

	code := http.StatusOK
	if s.cfg.DataDir != "" {
		h.DataDir = s.cfg.DataDir
		writable := probeWritable(s.cfg.DataDir)
		h.DataDirWritable = &writable
		if !writable {
			h.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	if h.Draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// probeWritable checks that the daemon can still create files in dir —
// the thing admission actually requires — by creating and removing a
// scratch file.
func probeWritable(dir string) bool {
	f, err := os.CreateTemp(dir, ".healthz*")
	if err != nil {
		return false
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return filepath.Dir(name) == filepath.Clean(dir)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	info := buildinfo.Get()
	writeJSON(w, http.StatusOK, api.Version{
		Version: info.Version, Revision: info.Revision, Dirty: info.Dirty, GoVersion: info.GoVersion,
	})
}

// handleEvents streams a job's event log as SSE: retained history
// after Last-Event-ID (all of it by default), then live events, until
// the job reaches a terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		fail(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			fail(w, http.StatusBadRequest, "bad Last-Event-ID %q", v)
			return
		}
		after = n
	}

	backlog, ch, cancel := j.hub.Subscribe(after)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	write := func(ev api.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		fl.Flush()
		return ev.Type != api.EventDone
	}
	for _, ev := range backlog {
		if !write(ev) {
			return
		}
	}
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // hub closed (terminal) or this subscriber was evicted
			}
			if !write(ev) {
				return
			}
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
