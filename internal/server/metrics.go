package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/ftsim"
	"repro/internal/obs"
	"repro/internal/sse"
)

// metrics is the daemon's instrument set, registered once per Server on
// its obs.Registry and exposed on GET /metrics. Campaign-engine
// instruments (ftsim_*) are wired into every job's RunCampaign via
// ftsim.WithMetricsSink; the ftsimd_* families below cover what the
// engine cannot see: the job queue, the SSE fan-out and HTTP serving.
type metrics struct {
	reg      *obs.Registry
	campaign *ftsim.CampaignMetrics

	// Job lifecycle.
	queueDepth *obs.Gauge     // jobs waiting for a scheduler slot
	running    *obs.Gauge     // jobs holding a scheduler slot
	queueWait  *obs.Histogram // submission-to-start latency
	submitted  *obs.Counter
	finished   *obs.CounterVec // terminal state: done|failed|cancelled
	rejections *obs.CounterVec // reason: queue_full|client_jobs|client_trials|draining

	// HTTP serving.
	httpRequests *obs.CounterVec   // route, code
	httpSeconds  *obs.HistogramVec // route

	sse *sse.Metrics
}

// queueWaitBuckets spans ms (idle daemon) to many minutes (saturated
// queue, or jobs re-queued across a restart).
var queueWaitBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300, 1800, 7200}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:      reg,
		campaign: ftsim.NewCampaignMetrics(reg),

		queueDepth: reg.NewGauge("ftsimd_queue_depth",
			"Jobs queued and waiting for a scheduler slot.").With(),
		running: reg.NewGauge("ftsimd_jobs_running",
			"Jobs currently holding a scheduler slot.").With(),
		queueWait: reg.NewHistogram("ftsimd_queue_wait_seconds",
			"Time from job submission to its campaign starting.", queueWaitBuckets).With(),
		submitted: reg.NewCounter("ftsimd_jobs_submitted_total",
			"Jobs admitted past validation and quota checks.").With(),
		finished: reg.NewCounter("ftsimd_jobs_total",
			"Jobs by terminal state.", "state"),
		rejections: reg.NewCounter("ftsimd_quota_rejections_total",
			"Submissions rejected by admission control.", "reason"),

		httpRequests: reg.NewCounter("ftsimd_http_requests_total",
			"HTTP requests by route pattern and status code.", "route", "code"),
		httpSeconds: reg.NewHistogram("ftsimd_http_request_seconds",
			"HTTP request latency by route pattern.", obs.HTTPSecondsBuckets, "route"),

		sse: sse.NewMetrics(reg, "ftsimd"),
	}
}

// ctxKeyLogger carries the request- or job-scoped logger.
type ctxKeyLogger struct{}

// withLogger attaches l to ctx; s.log retrieves it.
func withLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKeyLogger{}, l)
}

// log returns the logger scoped to ctx (request ID, job ID attached by
// the middleware / scheduler), or the server's base logger.
func (s *Server) log(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxKeyLogger{}).(*slog.Logger); ok {
		return l
	}
	return s.logger
}

// newRequestID mints a short random request identifier.
func newRequestID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "r" + hex.EncodeToString(b[:])
}

// statusWriter captures the response status and size for the HTTP
// instruments, passing streaming (Flush) through to the daemon's SSE
// handler.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps the handler chain with the serving-layer
// observability: a per-request ID propagated through the context
// logger, the route-labelled request counter and latency histogram,
// and a debug completion log line. Routes are resolved from the mux
// patterns (bounded cardinality), never raw paths, but the request is
// served through h so middleware between mux and instrument (auth) is
// still measured.
func (s *Server) instrument(mux *http.ServeMux, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		reqLog := s.logger.With("req", newRequestID())
		r = r.WithContext(withLogger(r.Context(), reqLog))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.m.httpRequests.With(route, strconv.Itoa(sw.code)).Inc()
		s.m.httpSeconds.With(route).Observe(elapsed.Seconds())
		reqLog.Debug("http request",
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", sw.code, "bytes", sw.bytes, "dur", elapsed)
	})
}
