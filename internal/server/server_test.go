package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/ftsim"
	"repro/ftsim/api"
)

// tWriter adapts t.Logf into an io.Writer for a slog handler.
type tWriter struct{ t *testing.T }

func (w tWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testLogger routes the daemon's structured logs through the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(tWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// newTestServer starts an in-process daemon over httptest and tears it
// down (drain, then close) when the test finishes.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = testLogger(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// quickTrial is a short self-halting workload: a 3000-iteration
// arithmetic loop under a comfortable budget.
func quickTrial(label string) api.TrialSpec {
	cfg := ftsim.ModelSS2.Config()
	cfg.MaxInsts = 30_000
	cfg.MaxCycles = 1_000_000
	return api.TrialSpec{
		Label: label,
		Asm: `
        li   r1, 3000
        li   r2, 11
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r2
        halt
`,
		Config: cfg,
	}
}

// blockerTrial spins effectively forever (the budget is astronomically
// larger than any test runtime); only cancellation stops it.
func blockerTrial() api.TrialSpec {
	cfg := ftsim.ModelSS2.Config()
	cfg.MaxInsts = 1 << 50
	cfg.MaxCycles = 1 << 52
	return api.TrialSpec{
		Label: "blocker",
		Asm: `
loop:   addi r1, r1, 1
        bne  r1, r0, loop
        halt
`,
		Config: cfg,
	}
}

func postJSON(t *testing.T, url, token string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-FTSim-Client", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// submit posts a campaign and decodes the accepted JobStatus.
func submit(t *testing.T, ts *httptest.Server, token string, req *api.CampaignRequest) *api.JobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, out := postJSON(t, ts.URL+"/v1/campaigns", token, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, out)
	}
	var st api.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("submit response: %v: %s", err, out)
	}
	if st.ID == "" {
		t.Fatalf("submit response has no job ID: %s", out)
	}
	return &st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) *api.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// waitState polls until the job reaches the wanted state (terminal
// states also satisfy a "has left X" style wait via the caller checking
// the returned status).
func waitState(t *testing.T, ts *httptest.Server, id string, want api.JobState) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s (want %s)", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// watchSSE streams a job's event feed from the given Last-Event-ID
// until a done event (inclusive) and returns everything received.
func watchSSE(t *testing.T, ts *httptest.Server, id string, lastEventID string) []api.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events %s: HTTP %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events %s: Content-Type %q", id, ct)
	}
	var events []api.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Type == api.EventDone {
			return events
		}
	}
	t.Fatalf("SSE stream for %s ended without a done event (%d events, read err %v)",
		id, len(events), sc.Err())
	return nil
}

// TestLifecycleSubmitRunDone drives the happy path end to end over
// HTTP: submit → queued → running → done, with interval samples and
// per-trial completions on the SSE stream and aggregate stats on the
// final status.
func TestLifecycleSubmitRunDone(t *testing.T) {
	_, ts := newTestServer(t, Config{ObserveEvery: 500})

	st := submit(t, ts, "", &api.CampaignRequest{
		Name:   "happy",
		Seed:   3,
		Trials: []api.TrialSpec{quickTrial("a"), quickTrial("b")},
	})
	if st.State != api.StateQueued || st.Trials != 2 {
		t.Fatalf("submit: got state %s trials %d", st.State, st.Trials)
	}

	events := watchSSE(t, ts, st.ID, "")
	var sawRunning bool
	var intervals, trials int
	for _, ev := range events {
		switch ev.Type {
		case api.EventState:
			if ev.State == api.StateRunning {
				sawRunning = true
			}
		case api.EventInterval:
			intervals++
			if ev.Interval == nil {
				t.Error("interval event without an Interval payload")
			}
		case api.EventTrial:
			trials++
		}
	}
	if !sawRunning {
		t.Error("SSE stream never showed the running state")
	}
	if intervals < 2 {
		t.Errorf("SSE stream carried %d interval samples, want >= 2", intervals)
	}
	if trials != 2 {
		t.Errorf("SSE stream carried %d trial completions, want 2", trials)
	}
	final := events[len(events)-1]
	if final.State != api.StateDone || final.Status == nil {
		t.Fatalf("done event: %+v", final)
	}
	if final.Status.Done != 2 || final.Status.Failed != 0 {
		t.Errorf("final status: done %d failed %d", final.Status.Done, final.Status.Failed)
	}

	got := getStatus(t, ts, st.ID)
	if got.State != api.StateDone {
		t.Fatalf("status after done event: %s", got.State)
	}
	var stats []*ftsim.Stats
	if err := json.Unmarshal(got.Stats, &stats); err != nil || len(stats) != 2 {
		t.Fatalf("aggregate stats: %v (len %d, want 2): %s", err, len(stats), got.Stats)
	}
	if stats[0].Committed == 0 {
		t.Error("trial 0 committed nothing")
	}

	// Reconnecting to a finished job replays the retained history; with
	// a Last-Event-ID it resumes mid-stream.
	replay := watchSSE(t, ts, st.ID, "")
	if len(replay) != len(events) {
		t.Errorf("full replay returned %d events, live stream had %d", len(replay), len(events))
	}
	tail := watchSSE(t, ts, st.ID, fmt.Sprint(events[len(events)-2].Seq))
	if len(tail) != 1 || tail[0].Type != api.EventDone {
		t.Errorf("Last-Event-ID replay: got %d events, want just the done event", len(tail))
	}

	// The listing includes the job.
	resp, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []*api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list: %+v", list)
	}
}

// TestCancelWhileQueuedAndRunning pins both cancellation paths: a
// queued job dies immediately; a running one has its campaign context
// cancelled and lands in cancelled once the workers drain.
func TestCancelWhileQueuedAndRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{Concurrency: 1})

	blocker := submit(t, ts, "", &api.CampaignRequest{
		Name: "blocker", Trials: []api.TrialSpec{blockerTrial()},
	})
	waitState(t, ts, blocker.ID, api.StateRunning)

	queued := submit(t, ts, "", &api.CampaignRequest{
		Name: "stuck", Trials: []api.TrialSpec{quickTrial("q")},
	})
	if got := getStatus(t, ts, queued.ID); got.State != api.StateQueued {
		t.Fatalf("second job state: %s, want queued (single slot busy)", got.State)
	}

	del := func(id string) *api.JobStatus {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: HTTP %d", id, resp.StatusCode)
		}
		var st api.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return &st
	}

	// Cancel while queued: terminal immediately.
	if st := del(queued.ID); st.State != api.StateCancelled {
		t.Errorf("cancel queued job: state %s", st.State)
	}
	events := watchSSE(t, ts, queued.ID, "")
	if got := events[len(events)-1].State; got != api.StateCancelled {
		t.Errorf("queued job done event state: %s", got)
	}

	// Cancel while running: the DELETE returns promptly (still running),
	// then the campaign context unwinds the in-flight trial.
	del(blocker.ID)
	st := waitState(t, ts, blocker.ID, api.StateCancelled)
	if st.Finished == nil {
		t.Error("cancelled job has no finish time")
	}
	// Cancel is idempotent on a terminal job.
	if st := del(blocker.ID); st.State != api.StateCancelled {
		t.Errorf("re-cancel: state %s", st.State)
	}
}

// TestQuotaAdmission pins the three admission failures: per-client job
// quota (429), per-client trial quota (429), and global queue depth
// (503) — and that another client is unaffected by the first client's
// quota.
func TestQuotaAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Concurrency:        1,
		MaxQueue:           1,
		MaxQueuedPerClient: 1,
		MaxTrialsPerClient: 2,
	})

	blocker := submit(t, ts, "alice", &api.CampaignRequest{
		Name: "blocker", Trials: []api.TrialSpec{blockerTrial()},
	})
	waitState(t, ts, blocker.ID, api.StateRunning)

	expect := func(token string, req *api.CampaignRequest, wantCode int) {
		t.Helper()
		body, _ := json.Marshal(req)
		code, out := postJSON(t, ts.URL+"/v1/campaigns", token, body)
		if code != wantCode {
			t.Fatalf("client %s: HTTP %d, want %d: %s", token, code, wantCode, out)
		}
		if wantCode >= 400 {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
				t.Errorf("client %s: error body %s", token, out)
			}
		}
	}

	// dave: 3 trials > MaxTrialsPerClient.
	expect("dave", &api.CampaignRequest{Trials: []api.TrialSpec{
		quickTrial("1"), quickTrial("2"), quickTrial("3"),
	}}, http.StatusTooManyRequests)
	// alice already has an active job: job quota.
	expect("alice", &api.CampaignRequest{Trials: []api.TrialSpec{quickTrial("x")}},
		http.StatusTooManyRequests)
	// bob is fresh: accepted, fills the global queue.
	submit(t, ts, "bob", &api.CampaignRequest{Trials: []api.TrialSpec{quickTrial("y")}})
	// carol: queue full.
	expect("carol", &api.CampaignRequest{Trials: []api.TrialSpec{quickTrial("z")}},
		http.StatusServiceUnavailable)
}

// TestSubmitBareGoldenConfig: a raw ftsim/testdata machine config is a
// complete submission body — it wraps into a one-trial campaign on the
// default benchmark under the server's instruction budget, and runs to
// completion.
func TestSubmitBareGoldenConfig(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "ftsim", "testdata", "*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no golden configs (err=%v)", err)
	}
	body, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{DefaultMaxInsts: 2_000})
	code, out := postJSON(t, ts.URL+"/v1/campaigns", "", body)
	if code != http.StatusAccepted {
		t.Fatalf("golden config %s: HTTP %d: %s", filepath.Base(matches[0]), code, out)
	}
	var st api.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.Trials != 1 {
		t.Fatalf("bare config wrapped into %d trials", st.Trials)
	}
	final := waitState(t, ts, st.ID, api.StateDone)
	if len(final.Stats) == 0 {
		t.Error("golden-config job finished without stats")
	}
}

// TestSubmitRejections: malformed and invalid submissions fail with
// 400s and JSON error bodies; unknown jobs 404.
func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for name, body := range map[string]string{
		"not json":      `[1,2]`,
		"unknown field": `{"trials": [{"benchmark": "gcc"}], "trails": 1}`,
		"no trials":     `{"trials": []}`,
		"bad benchmark": `{"trials": [{"benchmark": "no-such-workload"}]}`,
		"bad config":    `{"r": -4}`,
	} {
		code, out := postJSON(t, ts.URL+"/v1/campaigns", "", []byte(body))
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400: %s", name, code, out)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestHealthAndVersion: the liveness and build-metadata endpoints.
func TestHealthAndVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health: %+v", h)
	}

	resp2, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var v api.Version
	if err := json.NewDecoder(resp2.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Version == "" {
		t.Errorf("version: %+v", v)
	}
}
