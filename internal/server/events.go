package server

import (
	"sync"

	"repro/ftsim/api"
)

// hubHistory bounds the per-job event replay buffer. Events older than
// the window are evicted; a reconnecting client whose Last-Event-ID
// fell off the window simply replays from the oldest retained event.
const hubHistory = 4096

// subBuffer is each subscriber's channel depth. A subscriber that falls
// this far behind the live stream is evicted (its channel closes) for
// every event kind except intervals, which are droppable progress
// samples; evicted clients reconnect with Last-Event-ID and catch up
// from history.
const subBuffer = 256

// hub is one job's event fan-out: an append-only, sequence-numbered
// event log with bounded replay history and any number of live
// subscribers. Publishing never blocks on slow consumers, so the
// simulation observer tap stays cheap.
type hub struct {
	mu       sync.Mutex
	job      string
	m        *sseMetrics // shared across a server's hubs; nil disables recording
	seq      int64
	history  []api.Event
	firstSeq int64 // Seq of history[0]
	subs     map[chan api.Event]struct{}
	closed   bool
}

func newHub(job string, m *sseMetrics) *hub {
	return &hub{job: job, m: m, firstSeq: 1, subs: make(map[chan api.Event]struct{})}
}

// publish stamps the event with the job and the next sequence number,
// records it in history, and fans it out. Interval events are dropped
// for subscribers whose buffer is full; any other kind evicts such a
// subscriber instead, so lifecycle and completion events are never
// silently missing from a live stream.
func (h *hub) publish(ev api.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	ev.Job = h.job
	h.history = append(h.history, ev)
	if len(h.history) > hubHistory {
		drop := len(h.history) - hubHistory
		h.history = append(h.history[:0:0], h.history[drop:]...)
		h.firstSeq += int64(drop)
	}
	if h.m != nil {
		h.m.published.Inc()
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			if ev.Type == api.EventInterval {
				if h.m != nil {
					h.m.droppedIntervals.Inc()
				}
				continue
			}
			delete(h.subs, ch)
			close(ch)
			if h.m != nil {
				h.m.evictions.Inc()
				h.m.subscribers.Dec()
			}
		}
	}
}

// subscribe returns the retained events after sequence number `after`
// plus a live channel for what follows. The channel is closed when the
// hub closes (job reached a terminal state) or the subscriber is
// evicted; cancel detaches early and is idempotent.
func (h *hub) subscribe(after int64) (backlog []api.Event, ch chan api.Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if after < h.firstSeq-1 {
		// The subscriber asked for events that already fell off the
		// bounded history; they are gone, and the dropped-replay counter
		// is the only remaining evidence.
		if h.m != nil {
			h.m.droppedReplays.Add(uint64(h.firstSeq - 1 - after))
		}
		after = h.firstSeq - 1
	}
	if n := int(h.seq - after); n > 0 && len(h.history) >= n {
		backlog = append(backlog, h.history[len(h.history)-n:]...)
	}
	if h.m != nil {
		h.m.replayed.Add(uint64(len(backlog)))
	}
	ch = make(chan api.Event, subBuffer)
	if h.closed {
		close(ch)
		return backlog, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	if h.m != nil {
		h.m.subscribers.Inc()
	}
	return backlog, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
			if h.m != nil {
				h.m.subscribers.Dec()
			}
		}
	}
}

// close ends the stream: all subscriber channels close after the events
// already published. Further publishes are no-ops.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
		if h.m != nil {
			h.m.subscribers.Dec()
		}
	}
}
