package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/ftsim/api"
)

// scrapeMetrics fetches GET /metrics and returns the text exposition.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint drives a job through its full lifecycle and a
// quota rejection, then asserts the exposition covers every layer the
// daemon instruments: HTTP serving, admission, the job lifecycle, and
// the campaign engine underneath.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir(), MaxTrialsPerClient: 3})

	st := submit(t, ts, "", &api.CampaignRequest{
		Name:   "metrics",
		Trials: []api.TrialSpec{quickTrial("a"), quickTrial("b")},
	})
	waitState(t, ts, st.ID, api.StateDone)

	// One submission over the per-client trial quota: 2 in flight... the
	// first job is done, so the rejection needs 4 > 3 in one request.
	body, _ := json.Marshal(&api.CampaignRequest{
		Trials: []api.TrialSpec{quickTrial("a"), quickTrial("b"), quickTrial("c"), quickTrial("d")},
	})
	if code, out := postJSON(t, ts.URL+"/v1/campaigns", "", body); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d: %s", code, out)
	}

	out := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		// HTTP layer: the submit route was hit, with both outcomes.
		`ftsimd_http_requests_total{route="POST /v1/campaigns",code="202"} 1`,
		`ftsimd_http_requests_total{route="POST /v1/campaigns",code="429"} 1`,
		`ftsimd_http_request_seconds_count{route="POST /v1/campaigns"} 2`,
		// Admission and lifecycle.
		`ftsimd_quota_rejections_total{reason="client_trials"} 1`,
		`ftsimd_jobs_submitted_total 1`,
		`ftsimd_jobs_total{state="done"} 1`,
		`ftsimd_queue_depth 0`,
		`ftsimd_jobs_running 0`,
		`ftsimd_queue_wait_seconds_count 1`,
		// Campaign engine, through the shared sink.
		`ftsim_trials_total{outcome="ok"} 2`,
		`ftsim_trial_seconds_count{outcome="ok"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Checkpointing ran (the server has a data dir): at least one fsync.
	if !strings.Contains(out, "ftsim_checkpoint_syncs_total ") {
		t.Errorf("exposition missing ftsim_checkpoint_syncs_total:\n%s", out)
	}
}

// TestHealthReadiness: /healthz reports slots and data-dir writability
// with 200 while serving, then flips to 503/"draining" once a drain
// begins.
func TestHealthReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{DataDir: t.TempDir(), Concurrency: 2})

	get := func() (int, api.Health) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h api.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy daemon: HTTP %d, status %q", code, h.Status)
	}
	if h.Slots != 2 || h.SlotsInUse != 0 {
		t.Errorf("slots %d/%d in use, want 0/2", h.SlotsInUse, h.Slots)
	}
	if h.DataDirWritable == nil || !*h.DataDirWritable {
		t.Errorf("data dir not reported writable: %+v", h)
	}
	if h.Draining {
		t.Errorf("fresh daemon reports draining")
	}

	s.mu.Lock()
	s.draining = true // what Drain sets first; avoids tearing down the scheduler mid-test
	s.mu.Unlock()
	code, h = get()
	if code != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Fatalf("draining daemon: HTTP %d, status %q, draining %v", code, h.Status, h.Draining)
	}
	s.mu.Lock()
	s.draining = false // let the deferred Drain run normally
	s.mu.Unlock()
}
