package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/ftsim/api"
	"repro/internal/obs"
)

// scrapeMetrics fetches GET /metrics and returns the text exposition.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint drives a job through its full lifecycle and a
// quota rejection, then asserts the exposition covers every layer the
// daemon instruments: HTTP serving, admission, the job lifecycle, and
// the campaign engine underneath.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir(), MaxTrialsPerClient: 3})

	st := submit(t, ts, "", &api.CampaignRequest{
		Name:   "metrics",
		Trials: []api.TrialSpec{quickTrial("a"), quickTrial("b")},
	})
	waitState(t, ts, st.ID, api.StateDone)

	// One submission over the per-client trial quota: 2 in flight... the
	// first job is done, so the rejection needs 4 > 3 in one request.
	body, _ := json.Marshal(&api.CampaignRequest{
		Trials: []api.TrialSpec{quickTrial("a"), quickTrial("b"), quickTrial("c"), quickTrial("d")},
	})
	if code, out := postJSON(t, ts.URL+"/v1/campaigns", "", body); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d: %s", code, out)
	}

	out := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		// HTTP layer: the submit route was hit, with both outcomes.
		`ftsimd_http_requests_total{route="POST /v1/campaigns",code="202"} 1`,
		`ftsimd_http_requests_total{route="POST /v1/campaigns",code="429"} 1`,
		`ftsimd_http_request_seconds_count{route="POST /v1/campaigns"} 2`,
		// Admission and lifecycle.
		`ftsimd_quota_rejections_total{reason="client_trials"} 1`,
		`ftsimd_jobs_submitted_total 1`,
		`ftsimd_jobs_total{state="done"} 1`,
		`ftsimd_queue_depth 0`,
		`ftsimd_jobs_running 0`,
		`ftsimd_queue_wait_seconds_count 1`,
		// Campaign engine, through the shared sink.
		`ftsim_trials_total{outcome="ok"} 2`,
		`ftsim_trial_seconds_count{outcome="ok"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Checkpointing ran (the server has a data dir): at least one fsync.
	if !strings.Contains(out, "ftsim_checkpoint_syncs_total ") {
		t.Errorf("exposition missing ftsim_checkpoint_syncs_total:\n%s", out)
	}
}

// TestHealthReadiness: /healthz reports slots and data-dir writability
// with 200 while serving, then flips to 503/"draining" once a drain
// begins.
func TestHealthReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{DataDir: t.TempDir(), Concurrency: 2})

	get := func() (int, api.Health) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h api.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy daemon: HTTP %d, status %q", code, h.Status)
	}
	if h.Slots != 2 || h.SlotsInUse != 0 {
		t.Errorf("slots %d/%d in use, want 0/2", h.SlotsInUse, h.Slots)
	}
	if h.DataDirWritable == nil || !*h.DataDirWritable {
		t.Errorf("data dir not reported writable: %+v", h)
	}
	if h.Draining {
		t.Errorf("fresh daemon reports draining")
	}

	s.mu.Lock()
	s.draining = true // what Drain sets first; avoids tearing down the scheduler mid-test
	s.mu.Unlock()
	code, h = get()
	if code != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Fatalf("draining daemon: HTTP %d, status %q, draining %v", code, h.Status, h.Draining)
	}
	s.mu.Lock()
	s.draining = false // let the deferred Drain run normally
	s.mu.Unlock()
}

// TestHubSlowSubscriberEviction: a subscriber that lets its buffer fill
// is evicted on the next non-interval event — and the eviction counter
// says so.
func TestHubSlowSubscriberEviction(t *testing.T) {
	m := newMetrics(obs.NewRegistry())
	h := newHub("j1", &m.sse)

	_, ch, cancel := h.subscribe(0)
	defer cancel()
	if got := m.sse.subscribers.Value(); got != 1 {
		t.Fatalf("subscribers gauge %d after subscribe, want 1", got)
	}

	// Fill the buffer exactly, without reading.
	for i := 0; i < subBuffer; i++ {
		h.publish(api.Event{Type: api.EventTrial})
	}
	if got := m.sse.evictions.Value(); got != 0 {
		t.Fatalf("evicted with a merely full buffer (evictions %d)", got)
	}

	// An interval on a full buffer is dropped for this subscriber only.
	h.publish(api.Event{Type: api.EventInterval})
	if got := m.sse.droppedIntervals.Value(); got != 1 {
		t.Errorf("dropped-interval counter %d, want 1", got)
	}
	if got := m.sse.evictions.Value(); got != 0 {
		t.Fatalf("interval drop evicted the subscriber")
	}

	// A lifecycle event on a full buffer must not be dropped: evict.
	h.publish(api.Event{Type: api.EventState, State: api.StateRunning})
	if got := m.sse.evictions.Value(); got != 1 {
		t.Errorf("eviction counter %d, want 1", got)
	}
	if got := m.sse.subscribers.Value(); got != 0 {
		t.Errorf("subscribers gauge %d after eviction, want 0", got)
	}
	// The channel still drains its buffered events, then closes.
	n := 0
	for range ch {
		n++
	}
	if n != subBuffer {
		t.Errorf("evicted subscriber drained %d events, want %d", n, subBuffer)
	}
}

// TestHubDroppedReplay: reconnecting with a Last-Event-ID that has
// aged out of the bounded history replays what is retained and counts
// what is gone.
func TestHubDroppedReplay(t *testing.T) {
	const past = 25
	m := newMetrics(obs.NewRegistry())
	h := newHub("j2", &m.sse)

	for i := 0; i < hubHistory+past; i++ {
		h.publish(api.Event{Type: api.EventInterval})
	}

	backlog, _, cancel := h.subscribe(0) // asks for everything since the beginning
	defer cancel()
	if len(backlog) != hubHistory {
		t.Fatalf("backlog %d events, want the full retained window %d", len(backlog), hubHistory)
	}
	if got := m.sse.droppedReplays.Value(); got != past {
		t.Errorf("dropped-replay counter %d, want %d", got, past)
	}
	if got := m.sse.replayed.Value(); got != hubHistory {
		t.Errorf("replayed counter %d, want %d", got, hubHistory)
	}

	// A subscriber inside the window drops nothing further.
	backlog2, _, cancel2 := h.subscribe(int64(hubHistory + past - 10))
	defer cancel2()
	if len(backlog2) != 10 {
		t.Fatalf("in-window backlog %d events, want 10", len(backlog2))
	}
	if got := m.sse.droppedReplays.Value(); got != past {
		t.Errorf("in-window replay moved the dropped counter to %d", got)
	}
}
