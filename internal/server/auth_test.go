package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/ftsim/api"
)

// authedRequest performs one request with an optional bearer token and
// returns the status code plus body.
func authedRequest(t *testing.T, method, url, bearer string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if bearer != "" {
		req.Header.Set("Authorization", "Bearer "+bearer)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// TestAuthTokenGate: with an AuthToken configured, every campaign
// endpoint refuses requests without the exact bearer token, while the
// probe endpoints stay open for health checks and scrapers.
func TestAuthTokenGate(t *testing.T) {
	const token = "s3cret-shard-token"
	_, ts := newTestServer(t, Config{AuthToken: token})

	// The gate, across methods and paths, for the ways a credential is
	// commonly wrong: absent, mistyped, right value in the wrong scheme.
	deny := map[string]func() (int, []byte, http.Header){
		"no token list": func() (int, []byte, http.Header) { return authedRequest(t, "GET", ts.URL+"/v1/campaigns", "", nil) },
		"no token submit": func() (int, []byte, http.Header) {
			return authedRequest(t, "POST", ts.URL+"/v1/campaigns", "", []byte(`{}`))
		},
		"no token status": func() (int, []byte, http.Header) {
			return authedRequest(t, "GET", ts.URL+"/v1/campaigns/cdeadbeef", "", nil)
		},
		"no token events": func() (int, []byte, http.Header) {
			return authedRequest(t, "GET", ts.URL+"/v1/campaigns/cdeadbeef/events", "", nil)
		},
		"no token cancel": func() (int, []byte, http.Header) {
			return authedRequest(t, "DELETE", ts.URL+"/v1/campaigns/cdeadbeef", "", nil)
		},
		"wrong token": func() (int, []byte, http.Header) {
			return authedRequest(t, "GET", ts.URL+"/v1/campaigns", "s3cret-shard-tokeN", nil)
		},
		"truncated token": func() (int, []byte, http.Header) {
			return authedRequest(t, "GET", ts.URL+"/v1/campaigns", token[:len(token)-1], nil)
		},
		"wrong scheme": func() (int, []byte, http.Header) {
			req, err := http.NewRequest("GET", ts.URL+"/v1/campaigns", nil)
			if err != nil {
				t.Fatal(err)
			}
			req.SetBasicAuth("x", token)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp.StatusCode, nil, resp.Header
		},
	}
	for name, do := range deny {
		code, body, hdr := do()
		if code != http.StatusUnauthorized {
			t.Errorf("%s: status %d, want 401 (body %s)", name, code, body)
		}
		if got := hdr.Get("WWW-Authenticate"); got == "" {
			t.Errorf("%s: 401 without a WWW-Authenticate challenge", name)
		}
	}

	// Probe endpoints answer without credentials.
	for _, path := range []string{"/healthz", "/metrics", "/version"} {
		if code, body, _ := authedRequest(t, "GET", ts.URL+path, "", nil); code != http.StatusOK {
			t.Errorf("GET %s without token: status %d, want 200 (body %s)", path, code, body)
		}
	}

	// The real token unlocks the full lifecycle.
	body, err := json.Marshal(&api.CampaignRequest{Trials: []api.TrialSpec{quickTrial("t0")}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("X-FTSim-Client", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authenticated submit: status %d, decode err %v", resp.StatusCode, err)
	}
	if st.Owner != "alice" {
		t.Errorf("owner %q: the accounting label should still come from X-FTSim-Client", st.Owner)
	}
	if code, body, _ := authedRequest(t, "GET", ts.URL+"/v1/campaigns/"+st.ID, token, nil); code != http.StatusOK {
		t.Errorf("authenticated status: %d (body %s)", code, body)
	}
}

// TestAuthTokenDisabled: an empty AuthToken leaves the daemon open —
// the pre-auth behaviour, byte for byte.
func TestAuthTokenDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, body, _ := authedRequest(t, "GET", ts.URL+"/v1/campaigns", "", nil); code != http.StatusOK {
		t.Errorf("open daemon refused an unauthenticated list: %d (body %s)", code, body)
	}
}
