package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/ftsim/api"
	"repro/internal/sse"
)

// On-disk layout under DataDir, one triple per job:
//
//	<id>.job.json  — submission envelope, written before the job is
//	                 queued; its presence is what makes a job exist
//	                 across restarts.
//	<id>.ckpt      — the campaign checkpoint journal (internal/campaign
//	                 format), appended while the job runs.
//	<id>.done.json — terminal record (state, error, aggregate stats),
//	                 written exactly once when the job finishes.
//
// Restart recovery re-lists the directory: a job with a done record
// loads as terminal; one without is re-queued, and its journal resumes
// the completed trials instead of re-running them.

// jobEnvelope is the persisted submission.
type jobEnvelope struct {
	ID        string               `json:"id"`
	Owner     string               `json:"owner,omitempty"`
	Name      string               `json:"name"`
	Submitted time.Time            `json:"submitted"`
	Request   *api.CampaignRequest `json:"request"`
}

// doneRecord is the persisted terminal state.
type doneRecord struct {
	State    api.JobState    `json:"state"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished time.Time       `json:"finished"`
	Done     int             `json:"done"`
	Failed   int             `json:"failed,omitempty"`
	Resumed  int             `json:"resumed,omitempty"`
	Error    string          `json:"error,omitempty"`
	Stats    json.RawMessage `json:"stats,omitempty"`
}

func (s *Server) envelopePath(id string) string {
	return filepath.Join(s.cfg.DataDir, id+".job.json")
}
func (s *Server) journalPath(id string) string {
	return filepath.Join(s.cfg.DataDir, id+".ckpt")
}
func (s *Server) donePath(id string) string {
	return filepath.Join(s.cfg.DataDir, id+".done.json")
}

// writeFileAtomic writes data durably: temp file in the same
// directory, fsync, rename over the target. A crash leaves either the
// old file or the new one, never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// persistEnvelope records a newly admitted job. Without a DataDir the
// daemon is ephemeral and persistence is off.
func (s *Server) persistEnvelope(j *job) error {
	if s.cfg.DataDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(jobEnvelope{
		ID: j.id, Owner: j.owner, Name: j.name, Submitted: j.submitted, Request: j.req,
	}, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(s.envelopePath(j.id), data)
}

// persistDone records a job's terminal state.
func (s *Server) persistDone(j *job, st *api.JobStatus) error {
	if s.cfg.DataDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(doneRecord{
		State:   st.State,
		Started: st.Started, Finished: *st.Finished,
		Done: st.Done, Failed: st.Failed, Resumed: st.Resumed,
		Error: st.Error, Stats: st.Stats,
	}, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(s.donePath(j.id), data)
}

// recover reloads the data directory into the job table: terminal jobs
// become read-only history, interrupted ones re-queue (their checkpoint
// journals resume the completed trials). Called from New, before the
// schedulers start.
func (s *Server) recover() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	var envelopes []jobEnvelope
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".job.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.DataDir, name))
		if err != nil {
			return err
		}
		var env jobEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if env.ID == "" || env.Request == nil {
			return fmt.Errorf("%s: incomplete job envelope", name)
		}
		envelopes = append(envelopes, env)
	}
	sort.Slice(envelopes, func(i, k int) bool {
		if !envelopes[i].Submitted.Equal(envelopes[k].Submitted) {
			return envelopes[i].Submitted.Before(envelopes[k].Submitted)
		}
		return envelopes[i].ID < envelopes[k].ID
	})

	requeued := 0
	for i := range envelopes {
		env := &envelopes[i]
		j, err := s.buildJob(env.Request, env.Owner)
		if err != nil {
			// A job that validated at submission should rebuild; if it no
			// longer does (e.g. a hand-edited envelope), surface it as a
			// failed job rather than refusing to start the daemon.
			s.logger.Warn("job rebuild failed", "job", env.ID, "err", err)
			j = &job{owner: env.Owner, name: env.Name, req: env.Request, state: api.StateFailed,
				errMsg: fmt.Sprintf("rebuild after restart: %v", err)}
			j.finished = time.Now().UTC()
		}
		j.id = env.ID
		j.name = env.Name
		j.submitted = env.Submitted
		j.hub = sse.NewHub(j.id, s.m.sse)

		if rec, err := s.loadDone(env.ID); err != nil {
			return err
		} else if rec != nil {
			j.state = rec.State
			if rec.Started != nil {
				j.started = *rec.Started
			}
			j.finished = rec.Finished
			j.done, j.failed, j.resumed = rec.Done, rec.Failed, rec.Resumed
			j.errMsg = rec.Error
			j.statsJSON = rec.Stats
		}

		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		switch {
		case j.state == api.StateQueued:
			s.fifo = append(s.fifo, j)
			s.m.queueDepth.Inc()
			j.hub.Publish(api.Event{Type: api.EventState, State: api.StateQueued})
			requeued++
		default:
			// Terminal (or failed-to-rebuild): the stream replays the
			// final state and closes immediately.
			j.hub.Publish(api.Event{Type: api.EventDone, State: j.state, Status: j.status()})
			j.hub.Close()
		}
	}
	if len(envelopes) > 0 {
		s.logger.Info("recovered jobs from data dir",
			"dir", s.cfg.DataDir, "jobs", len(envelopes), "requeued", requeued)
	}
	return nil
}

// loadDone reads a job's terminal record, if one exists.
func (s *Server) loadDone(id string) (*doneRecord, error) {
	data, err := os.ReadFile(s.donePath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rec doneRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s.done.json: %w", id, err)
	}
	return &rec, nil
}
