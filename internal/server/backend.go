package server

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/ftsim"
	"repro/ftsim/api"
)

// Backend executes admitted campaigns. The server owns everything
// around the execution — admission, queueing, quotas, persistence, the
// SSE stream, the lifecycle state machine — and calls Run once per job
// when a scheduler slot frees. The default backend (nil Config.Backend)
// runs the campaign in-process on the ftsim engine; a coordinator
// daemon installs internal/coord's backend, which farms the same job
// out to worker daemons, shard by shard. Either way the HTTP surface
// and the wire format are identical.
type Backend interface {
	// Run executes the job's grid to completion and returns its merged
	// result. ctx is cancelled on client cancel and server drain; Run
	// must return promptly then. A nil error means every trial
	// completed and res carries the full statistics.
	Run(ctx context.Context, j *Job) (res *Result, err error)
}

// Job is a backend's view of one admitted campaign: the resolved
// request, the compiled trial grid, and write paths back into the
// server's job table and event stream. All callbacks are safe for
// concurrent use.
type Job struct {
	// ID is the job identifier (also the SSE stream name).
	ID string
	// Request is the resolved submission: server defaults applied,
	// configs normalized, labels generated. A distributed backend can
	// forward slices of it to workers verbatim.
	Request *api.CampaignRequest
	// Trials is the compiled grid, aligned with Request.Trials.
	Trials []ftsim.Trial
	// SeedOffset is the parent-grid index of Trials[0]: nonzero exactly
	// when the request is a shard of a larger campaign, in which case
	// per-trial seeds must derive from SeedOffset+i, not i.
	SeedOffset int

	publish  func(api.Event)
	progress func(done, failed int)
	shards   func(total, done int)
}

// Publish emits an event on the job's SSE stream (sequence number and
// job ID are stamped by the hub).
func (j *Job) Publish(ev api.Event) { j.publish(ev) }

// SetProgress updates the job's live trial counters, visible in
// GET /v1/campaigns/{id} while the job runs.
func (j *Job) SetProgress(done, failed int) { j.progress(done, failed) }

// SetShards updates the job's shard counters (distributed backends
// only; the local engine has no shards to report).
func (j *Job) SetShards(total, done int) { j.shards(total, done) }

// Result is a completed backend run.
type Result struct {
	// Stats is the compact JSON encoding of the per-trial statistics in
	// grid order ([]*ftsim.Stats) — the PR 7 stats codec, so sharded
	// and local results are interchangeable byte-for-byte. Set only on
	// success.
	Stats []byte
	// Done is the completed-trial count. The server trusts it only on
	// success; on error the live SetProgress count stands.
	Done int
	// Failed is the error-manifest length; Resumed counts trials
	// restored from a checkpoint journal rather than re-run. Both are
	// honoured even when Run also returns an error.
	Failed  int
	Resumed int
}

// localBackend is the default executor: the ftsim campaign engine,
// in-process, with checkpointing and live streaming wired into the
// server's instruments.
type localBackend struct{ s *Server }

func (b localBackend) Run(ctx context.Context, j *Job) (*Result, error) {
	workers := j.Request.Workers
	if workers == 0 {
		workers = b.s.cfg.WorkersPerJob
	}
	failed := 0 // progress callbacks are serialised; no lock needed
	opts := []ftsim.CampaignOption{
		ftsim.WithWorkers(workers),
		ftsim.WithCampaignSeed(j.Request.Seed),
		ftsim.WithMetricsSink(b.s.m.campaign),
		ftsim.WithCampaignObserveEvery(b.s.cfg.ObserveEvery),
		ftsim.WithCampaignObserver(func(trial int, label string, iv ftsim.Interval) {
			j.Publish(api.Event{Type: api.EventInterval, Trial: trial, Label: label, Interval: &iv})
		}),
		ftsim.WithCampaignProgress(func(done, total int, r ftsim.TrialResult) {
			if r.Err != nil && !isCancellation(r.Err) {
				failed++
			}
			j.SetProgress(done, failed)
			ev := api.Event{
				Type: api.EventTrial, Trial: r.Index, Label: r.Label,
				Done: done, Total: total, Seconds: r.Elapsed.Seconds(),
			}
			if r.Err != nil {
				ev.Err = r.Err.Error()
			}
			j.Publish(ev)
		}),
	}
	if j.SeedOffset != 0 {
		opts = append(opts, ftsim.WithTrialSeedOffset(j.SeedOffset))
	}
	if b.s.cfg.TrialTimeout > 0 {
		opts = append(opts, ftsim.WithTrialTimeout(b.s.cfg.TrialTimeout))
	}
	if b.s.cfg.DataDir != "" {
		opts = append(opts,
			ftsim.WithCheckpoint(b.s.journalPath(j.ID)),
			ftsim.WithCheckpointFlushEvery(b.s.cfg.FlushEvery))
	}

	rep, err := ftsim.RunCampaign(ctx, j.ID, j.Trials, opts...)
	res := &Result{}
	if rep != nil {
		res.Resumed = rep.Resumed
		res.Failed = len(rep.Failures())
	}
	if err != nil {
		return res, err
	}
	// Every trial completed (a fully resumed campaign never calls the
	// progress callback, so count from the report, not from it).
	res.Done = len(rep.Results)
	stats, err := ftsim.CollectStats(rep)
	if err != nil {
		return res, err
	}
	data, err := json.Marshal(stats)
	if err != nil {
		return res, fmt.Errorf("encoding stats: %v", err)
	}
	res.Stats = data
	return res, nil
}

// backendView wraps j as the backend-facing Job, routing counter
// updates through the server's mutex.
func (s *Server) backendView(j *job) *Job {
	return &Job{
		ID:         j.id,
		Request:    j.req,
		Trials:     j.trials,
		SeedOffset: j.seedOffset,
		publish:    j.hub.Publish,
		progress: func(done, failed int) {
			s.mu.Lock()
			j.done, j.failed = done, failed
			s.mu.Unlock()
		},
		shards: func(total, done int) {
			s.mu.Lock()
			j.shards, j.shardsDone = total, done
			s.mu.Unlock()
		},
	}
}
