package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/ftsim"
	"repro/ftsim/api"
)

// mediumTrial runs long enough (hundreds of milliseconds) that a
// multi-trial campaign can be interrupted mid-grid.
func mediumTrial(label string) api.TrialSpec {
	cfg := ftsim.ModelSS2.Config()
	cfg.MaxInsts = 2_000_000
	cfg.MaxCycles = 100_000_000
	return api.TrialSpec{
		Label: label,
		Asm: `
        li   r1, 60000
        li   r2, 11
loop:   add  r2, r2, r1
        xor  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r2
        halt
`,
		Config: cfg,
	}
}

func crashRequest() *api.CampaignRequest {
	req := &api.CampaignRequest{Name: "crash", Seed: 7, Workers: 1}
	for i := 0; i < 10; i++ {
		req.Trials = append(req.Trials, mediumTrial(fmt.Sprintf("t%d", i)))
	}
	return req
}

// TestServerResumesAfterSIGKILL is the durability proof for the whole
// serving stack: a campaign submitted over HTTP, its daemon SIGKILLed
// mid-grid (no drain, no deferred closes), a fresh daemon started on
// the same data directory — the job resumes from its checkpoint
// journal and finishes with aggregate stats byte-identical to an
// uninterrupted run of the same submission. The killed daemon runs in
// a subprocess (re-exec of this test binary, gated by an environment
// variable) because a real SIGKILL cannot be survived in-process.
func TestServerResumesAfterSIGKILL(t *testing.T) {
	if root := os.Getenv("FTSIMD_CRASH_CHILD"); root != "" {
		crashChildServer(root)
		return
	}
	root := t.TempDir()
	dataDir := filepath.Join(root, "data")

	cmd := exec.Command(os.Args[0], "-test.run=TestServerResumesAfterSIGKILL")
	cmd.Env = append(os.Environ(), "FTSIMD_CRASH_CHILD="+root)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The child writes its listen address once it is serving.
	addrPath := filepath.Join(root, "addr")
	var baseURL string
	for deadline := time.Now().Add(30 * time.Second); ; {
		if data, err := os.ReadFile(addrPath); err == nil && len(data) > 0 {
			baseURL = "http://" + strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never published its address:\n%s", childOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Submit the campaign over HTTP to the doomed daemon.
	body, err := json.Marshal(crashRequest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st api.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, %v", resp.StatusCode, err)
	}
	t.Logf("submitted job %s to child daemon at %s", st.ID, baseURL)

	// Stream SSE until a few trials have completed (and been fsynced:
	// the child runs FlushEvery=1), then SIGKILL the daemon mid-grid.
	killed := false
	sseResp, err := http.Get(baseURL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(sseResp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE line %q: %v", line, err)
		}
		if ev.Type == api.EventDone {
			t.Fatalf("campaign finished before the kill; grow the trials")
		}
		if ev.Type == api.EventTrial && ev.Done >= 3 {
			cmd.Process.Kill()
			killed = true
			break
		}
	}
	sseResp.Body.Close()
	if !killed {
		t.Fatalf("SSE stream ended before 3 trials completed (%v):\n%s", sc.Err(), childOut.String())
	}
	cmd.Wait()

	// The dead daemon left an envelope and a journal, but no terminal
	// record.
	if _, err := os.Stat(filepath.Join(dataDir, st.ID+".job.json")); err != nil {
		t.Fatalf("no persisted envelope: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dataDir, st.ID+".ckpt")); err != nil || fi.Size() == 0 {
		t.Fatalf("no checkpoint journal (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, st.ID+".done.json")); err == nil {
		t.Fatal("killed daemon somehow wrote a terminal record")
	}

	// Restart: a fresh server on the same data directory re-queues and
	// resumes the job.
	s2, err := New(Config{DataDir: dataDir, Concurrency: 1, FlushEvery: 1, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s2.Drain(ctx)
		ts2.Close()
	}()
	final := waitState(t, ts2, st.ID, api.StateDone)
	if final.Resumed == 0 {
		t.Fatal("restarted job resumed nothing; the journal was not used")
	}
	if final.Resumed >= final.Trials {
		t.Fatalf("restarted job resumed all %d trials; the kill came too late to prove anything", final.Trials)
	}
	if final.Done != final.Trials || final.Failed != 0 {
		t.Fatalf("resumed job: done %d/%d, failed %d", final.Done, final.Trials, final.Failed)
	}
	t.Logf("resumed %d of %d trials from the killed daemon's journal", final.Resumed, final.Trials)

	// Control: the identical submission on a pristine server. Aggregate
	// stats must be byte-identical.
	s3, err := New(Config{Concurrency: 1, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(s3.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s3.Drain(ctx)
		ts3.Close()
	}()
	ref := submit(t, ts3, "", crashRequest())
	refFinal := waitState(t, ts3, ref.ID, api.StateDone)

	if !bytes.Equal(final.Stats, refFinal.Stats) {
		t.Errorf("resumed aggregate stats differ from uninterrupted run:\nresumed: %s\ncontrol: %s",
			final.Stats, refFinal.Stats)
	}
}

// crashChildServer is the subprocess half of the SIGKILL test: a real
// daemon on a random port, address published to a file, serving until
// killed.
func crashChildServer(root string) {
	s, err := New(Config{
		DataDir:      filepath.Join(root, "data"),
		Concurrency:  1,
		FlushEvery:   1,
		ObserveEvery: 100_000,
		Logger:       slog.New(slog.NewTextHandler(os.Stderr, nil)).With("proc", "child"),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(1)
	}
	if err := writeFileAtomic(filepath.Join(root, "addr"), []byte(ln.Addr().String())); err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(1)
	}
	http.Serve(ln, s.Handler()) // until SIGKILL
}
