// Package testenv exposes build-time facts about the test environment.
package testenv

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-budget assertions skip under -race: the
// detector's instrumentation allocates on its own schedule, so
// testing.AllocsPerRun measurements are neither meaningful nor stable
// there.
const RaceEnabled = raceEnabled
