package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroDefault(t *testing.T) {
	m := New()
	if got := m.Read(0xDEAD_BEEF, 8); got != 0 {
		t.Errorf("untouched read = %#x, want 0", got)
	}
	if m.Pages() != 0 {
		t.Errorf("reads allocated %d pages", m.Pages())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	f := func(addr uint64, val uint64, sizeIdx uint8) bool {
		addr %= 1 << 40 // keep the page map small
		size := sizes[int(sizeIdx)%len(sizes)]
		m := New()
		m.Write(addr, size, val)
		want := val
		if size < 8 {
			want &= (1 << (8 * uint(size))) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // 8-byte access straddles the page boundary
	m.Write(addr, 8, 0x1122_3344_5566_7788)
	if got := m.Read(addr, 8); got != 0x1122_3344_5566_7788 {
		t.Errorf("cross-page read = %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("cross-page write allocated %d pages, want 2", m.Pages())
	}
	// Byte-level view must agree (little-endian).
	if got := m.Byte(addr); got != 0x88 {
		t.Errorf("first byte = %#x, want 0x88", got)
	}
	if got := m.Byte(addr + 7); got != 0x11 {
		t.Errorf("last byte = %#x, want 0x11", got)
	}
}

func TestLittleEndian(t *testing.T) {
	m := New()
	m.Write(0x100, 4, 0xAABBCCDD)
	want := []byte{0xDD, 0xCC, 0xBB, 0xAA}
	for i, w := range want {
		if got := m.Byte(0x100 + uint64(i)); got != w {
			t.Errorf("byte %d = %#x, want %#x", i, got, w)
		}
	}
	// Overlapping narrower read.
	if got := m.Read(0x102, 2); got != 0xAABB {
		t.Errorf("overlapping 2-byte read = %#x, want 0xaabb", got)
	}
}

func TestBytesSetBytes(t *testing.T) {
	m := New()
	src := []byte{1, 2, 3, 4, 5}
	m.SetBytes(PageSize-2, src) // straddles pages
	dst := make([]byte, 5)
	m.Bytes(PageSize-2, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	m.Write(0x1000, 8, 42)
	c := m.Clone()
	if got := c.Read(0x1000, 8); got != 42 {
		t.Fatalf("clone read = %d, want 42", got)
	}
	m.Write(0x1000, 8, 99)
	c.Write(0x2000, 8, 7)
	if got := c.Read(0x1000, 8); got != 42 {
		t.Errorf("clone saw original's write: %d", got)
	}
	if got := m.Read(0x2000, 8); got != 0 {
		t.Errorf("original saw clone's write: %d", got)
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	if !Equal(a, b) {
		t.Error("two empty memories differ")
	}
	a.Write(0x500, 8, 1)
	if Equal(a, b) {
		t.Error("differing memories compare equal")
	}
	b.Write(0x500, 8, 1)
	if !Equal(a, b) {
		t.Error("identical memories differ")
	}
	// A page of explicit zeros equals an absent page.
	a.Write(0x9000, 8, 0)
	if !Equal(a, b) {
		t.Error("explicit zero page != absent page")
	}
	if !Equal(b, a) {
		t.Error("Equal is not symmetric for zero pages")
	}
}

func TestFirstDiff(t *testing.T) {
	a, b := New(), New()
	if _, ok := FirstDiff(a, b); ok {
		t.Error("FirstDiff on identical memories reported a difference")
	}
	a.Write(0x5008, 1, 0xFF)
	a.Write(0x3004, 1, 0x01)
	addr, ok := FirstDiff(a, b)
	if !ok || addr != 0x3004 {
		t.Errorf("FirstDiff = %#x, %v; want 0x3004, true", addr, ok)
	}
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Read with size 3 did not panic")
		}
	}()
	New().Read(0, 3)
}
