package mem

import (
	"fmt"
	"testing"
)

// TestFastPathMatchesByteLoop cross-checks the binary.LittleEndian fast
// path against byte-at-a-time access for every size, at aligned,
// unaligned and page-straddling addresses.
func TestFastPathMatchesByteLoop(t *testing.T) {
	m := New()
	for i := uint64(0); i < 2*PageSize; i++ {
		m.SetByte(i, byte(i*131+7))
	}
	addrs := []uint64{0, 1, 7, 8, 1000, PageSize - 9, PageSize - 7, PageSize - 1, PageSize}
	for _, addr := range addrs {
		for _, size := range []int{1, 2, 4, 8} {
			var want uint64
			for i := size - 1; i >= 0; i-- {
				want = want<<8 | uint64(m.Byte(addr+uint64(i)))
			}
			if got := m.Read(addr, size); got != want {
				t.Errorf("Read(%#x, %d) = %#x, want %#x", addr, size, got, want)
			}
		}
	}
	// Writes: every size at a straddling and a non-straddling address.
	for _, addr := range []uint64{16, PageSize - 3} {
		for _, size := range []int{1, 2, 4, 8} {
			w := New()
			val := uint64(0x1122334455667788)
			w.Write(addr, size, val)
			for i := 0; i < size; i++ {
				if got, want := w.Byte(addr+uint64(i)), byte(val>>(8*i)); got != want {
					t.Errorf("Write(%#x, %d): byte %d = %#x, want %#x", addr, size, i, got, want)
				}
			}
		}
	}
}

func TestFirstDiffPageOnlyInB(t *testing.T) {
	a, b := New(), New()
	b.SetByte(5*PageSize+3, 9)
	if addr, ok := FirstDiff(a, b); !ok || addr != 5*PageSize+3 {
		t.Fatalf("FirstDiff = %#x, %v", addr, ok)
	}
	// A written-then-zeroed page is allocated but identical to absent.
	a.SetByte(7*PageSize, 1)
	a.SetByte(7*PageSize, 0)
	if addr, ok := FirstDiff(a, b); !ok || addr != 5*PageSize+3 {
		t.Fatalf("FirstDiff with zeroed page = %#x, %v", addr, ok)
	}
}

// BenchmarkReadWrite measures the hot simulator path: aligned loads and
// stores that never straddle a page.
func BenchmarkReadWrite(b *testing.B) {
	for _, size := range []int{1, 2, 4, 8} {
		size := size
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			m := New()
			m.Write(0, 8, 0xdeadbeefcafef00d)
			var sink uint64
			for i := 0; i < b.N; i++ {
				addr := uint64(i%512) * 8
				m.Write(addr, size, uint64(i))
				sink += m.Read(addr, size)
			}
			_ = sink
		})
	}
}

// BenchmarkInstFetch models the front end's pattern: 8-byte reads
// marching through a small text segment.
func BenchmarkInstFetch(b *testing.B) {
	m := New()
	for i := uint64(0); i < 4096; i += 8 {
		m.Write(i, 8, i)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += m.Read(uint64(i%512)*8, 8)
	}
	_ = sink
}

// BenchmarkFirstDiff measures the divergence search over a pair of
// images that differ only in their last page.
func BenchmarkFirstDiff(b *testing.B) {
	a, c := New(), New()
	for p := uint64(0); p < 64; p++ {
		for i := uint64(0); i < PageSize; i += 8 {
			a.Write(p<<PageShift|i, 8, p*i)
			c.Write(p<<PageShift|i, 8, p*i)
		}
	}
	c.SetByte(63<<PageShift|4095, 0xFF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FirstDiff(a, c); !ok {
			b.Fatal("no diff found")
		}
	}
}
