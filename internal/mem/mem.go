// Package mem implements the sparse physical memory used by both the
// functional (oracle) simulator and the out-of-order performance
// simulator.
//
// Memory is byte-addressable and little-endian. Storage is allocated
// lazily in 4 KiB pages so simulated programs can use widely separated
// text, data and stack segments without cost. Reads of untouched memory
// return zero, which keeps wrong-path (mis-speculated) loads harmless.
//
// In the paper's fault model, main memory and caches are ECC-protected and
// therefore sit outside the sphere of replication; this package models
// that assumption by being fault-free. The fault injector only corrupts
// speculative pipeline state.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageShift and PageSize define the lazy-allocation granularity.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	pageMask  = PageSize - 1
)

type page [PageSize]byte

// Memory is a sparse, little-endian, byte-addressable memory. The zero
// value is not ready to use; call New.
type Memory struct {
	pages map[uint64]*page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Clone returns a deep copy of the memory. The oracle simulator clones the
// post-load image so the two committed states the paper's Section 5.1.1
// sanity check maintains never alias.
func (m *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint64]*page, len(m.pages))}
	for idx, p := range m.pages {
		cp := *p
		c.pages[idx] = &cp
	}
	return c
}

// Pages returns the number of allocated pages (for tests and stats).
// Pages retained by Reset count even though they hold only zeroes.
func (m *Memory) Pages() int { return len(m.pages) }

// Reset zeroes the memory in place, keeping the allocated pages for
// reuse. A zeroed retained page is indistinguishable from an absent
// one — reads of untouched memory return zero either way — so a reset
// memory behaves exactly like a fresh New, without re-paying the page
// allocations when a pooled machine reloads a program of similar
// footprint.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = page{}
	}
}

func (m *Memory) page(addr uint64, allocate bool) *page {
	idx := addr >> PageShift
	p := m.pages[idx]
	if p == nil && allocate {
		p = new(page)
		m.pages[idx] = p
	}
	return p
}

// Byte returns the byte at addr.
func (m *Memory) Byte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read loads size bytes (1, 2, 4 or 8) at addr, little-endian,
// zero-extended into a uint64. Accesses may straddle page boundaries.
// The non-straddling path (the overwhelmingly common case: every
// instruction fetch and every aligned data access) is a single
// little-endian load instead of a byte loop.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		p := m.page(addr, false)
		if p == nil {
			checkSize(size)
			return 0
		}
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 1:
			return uint64(p[off])
		}
		checkSize(size)
	}
	checkSize(size)
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.Byte(addr+uint64(i)))
	}
	return v
}

// Write stores the low size bytes (1, 2, 4 or 8) of val at addr,
// little-endian. Accesses may straddle page boundaries. Like Read, the
// non-straddling path is a single little-endian store.
func (m *Memory) Write(addr uint64, size int, val uint64) {
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		p := m.page(addr, true)
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(p[off:], val)
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
			return
		case 1:
			p[off] = byte(val)
			return
		}
		checkSize(size)
	}
	checkSize(size)
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(val))
		val >>= 8
	}
}

// Bytes copies len(dst) bytes starting at addr into dst, one page-sized
// chunk at a time (the page table is consulted once per page, not once
// per byte).
func (m *Memory) Bytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := PageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// SetBytes copies src into memory starting at addr, page chunk by page
// chunk.
func (m *Memory) SetBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := PageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		copy(m.page(addr, true)[off:], src[:n])
		src = src[n:]
		addr += uint64(n)
	}
}

// NonZeroPages returns the indices of pages holding at least one
// non-zero byte, in ascending order. Zeroed retained pages are
// skipped: they are semantically identical to absent pages, so a
// snapshot that only records non-zero pages restores a memory
// indistinguishable (by Equal and by every access) from the donor.
func (m *Memory) NonZeroPages() []uint64 {
	var zero page
	idxs := make([]uint64, 0, len(m.pages))
	for idx, p := range m.pages {
		if *p != zero {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs
}

// PageData returns the raw contents of page idx, or nil if the page
// is not allocated. The returned slice aliases live storage — callers
// must copy or finish with it before the memory is written again.
func (m *Memory) PageData(idx uint64) []byte {
	p := m.pages[idx]
	if p == nil {
		return nil
	}
	return p[:]
}

// LoadPage installs data (at most PageSize bytes) as the contents of
// page idx, allocating it if needed. Restore paths use it to rebuild
// a memory image page-by-page.
func (m *Memory) LoadPage(idx uint64, data []byte) {
	if len(data) > PageSize {
		panic(fmt.Sprintf("mem: LoadPage with %d bytes", len(data)))
	}
	p := m.pages[idx]
	if p == nil {
		p = new(page)
		m.pages[idx] = p
	}
	*p = page{}
	copy(p[:], data)
}

// Equal reports whether the two memories have identical contents. Pages
// absent from one side compare equal to all-zero pages on the other.
func Equal(a, b *Memory) bool {
	return contains(a, b) && contains(b, a)
}

func contains(a, b *Memory) bool {
	var zero page
	for idx, pa := range a.pages {
		pb := b.pages[idx]
		if pb == nil {
			pb = &zero
		}
		if *pa != *pb {
			return false
		}
	}
	return true
}

// FirstDiff returns the lowest address at which the two memories differ.
// ok is false when they are identical. Each candidate page is compared
// once with its pointers resolved up front (a whole-array equality check
// skips identical pages, and the byte walk runs on the arrays directly),
// instead of the old per-byte page-table lookups that rescanned both
// maps for every address.
func FirstDiff(a, b *Memory) (addr uint64, ok bool) {
	found := false
	var best uint64
	var zero page
	check := func(idx uint64, pa, pb *page) {
		if *pa == *pb {
			return
		}
		base := idx << PageShift
		for i := 0; i < PageSize; i++ {
			if pa[i] != pb[i] {
				if d := base + uint64(i); !found || d < best {
					best, found = d, true
				}
				return
			}
		}
	}
	for idx, pa := range a.pages {
		pb := b.pages[idx]
		if pb == nil {
			pb = &zero
		}
		check(idx, pa, pb)
	}
	for idx, pb := range b.pages {
		if _, dup := a.pages[idx]; dup {
			continue // already compared above
		}
		check(idx, &zero, pb)
	}
	return best, found
}

func checkSize(size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("mem: invalid access size %d", size))
	}
}
