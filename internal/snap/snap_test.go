package snap

import (
	"bytes"
	"errors"
	"testing"
)

// TestRoundTrip writes one of every primitive and reads it back.
func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1<<63 | 12345)
	w.I64(-42)
	w.F64(3.141592653589793)
	w.Bytes([]byte("payload"))
	w.Bytes(nil)
	w.String("café")
	blob := w.Finish()

	r, err := NewReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63|12345 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %q", got)
	}
	if got := r.String(); got != "café" {
		t.Errorf("String = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestRejectsDamage covers every structural rejection path.
func TestRejectsDamage(t *testing.T) {
	w := NewWriter(0)
	w.U64(7)
	blob := w.Finish()

	if _, err := NewReader(blob[:4]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short blob: %v", err)
	}
	flip := append([]byte(nil), blob...)
	flip[len(flip)/2] ^= 1
	if _, err := NewReader(flip); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip survived CRC: %v", err)
	}
	// Truncation at any prefix length must fail cleanly (either CRC or
	// short-blob).
	for n := 0; n < len(blob); n++ {
		if _, err := NewReader(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

// TestRejectsVersion: a future version must be rejected with
// ErrVersion, not misread.
func TestRejectsVersion(t *testing.T) {
	w := &Writer{}
	w.U32(Magic)
	w.U32(Version + 1)
	w.U64(7)
	blob := w.Finish()
	if _, err := NewReader(blob); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: %v", err)
	}
}

// TestStickyErrors: reads past the payload stick at the first error,
// Done reports it, and hostile Bytes lengths do not allocate.
func TestStickyErrors(t *testing.T) {
	w := NewWriter(0)
	w.U32(0xffffffff) // masquerades as a 4 GiB Bytes length prefix
	blob := w.Finish()
	r, err := NewReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Bytes(); got != nil {
		t.Errorf("hostile length returned %d bytes", len(got))
	}
	if r.U64() != 0 || r.Bool() || r.U8() != 0 {
		t.Error("reads after failure returned nonzero values")
	}
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Done after sticky failure: %v", err)
	}
}

// TestTrailingGarbage: an under-consumed payload is an error — it
// means the decoder and encoder disagree about the schema.
func TestTrailingGarbage(t *testing.T) {
	w := NewWriter(0)
	w.U64(1)
	w.U64(2)
	blob := w.Finish()
	r, err := NewReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.U64()
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: %v", err)
	}
}

// TestCorruptf: semantic validation failures flow through the sticky
// error channel.
func TestCorruptf(t *testing.T) {
	w := NewWriter(0)
	w.U32(99)
	blob := w.Finish()
	r, err := NewReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.U32(); n != 99 {
		t.Fatalf("U32 = %d", n)
	}
	r.Corruptf("count %d exceeds geometry", 99)
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Corruptf not sticky: %v", err)
	}
}
