// Package snap is the versioned binary encoding shared by machine
// snapshots (internal/cpu) and campaign checkpoint journals
// (internal/campaign). The format is deliberately dumb: a fixed
// header (magic + format version), a flat little-endian payload of
// fixed-width primitives and length-prefixed byte strings, and a
// CRC32 (IEEE) trailer over everything before it. Dumb is the point —
// a restore path must be able to reject torn or corrupt bytes before
// acting on any of them, and a versioned header lets a future format
// evolve without silently misreading old files.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies a snap-encoded blob. "FTSN" = fault-tolerant
// simulator snapshot.
const Magic = 0x4654534e

// Version is the current format version. Decoders reject any other
// value with ErrVersion.
const Version = 1

// headerLen is magic (4) + version (4); trailerLen is the CRC32.
const (
	headerLen  = 8
	trailerLen = 4
)

var (
	// ErrCorrupt reports a blob that is structurally broken: too
	// short, bad magic, failed checksum, truncated field, or trailing
	// garbage.
	ErrCorrupt = errors.New("snap: corrupt encoding")

	// ErrVersion reports a well-formed blob written by an
	// incompatible format version.
	ErrVersion = errors.New("snap: unsupported format version")
)

// A Writer builds one encoded blob. The zero value is not ready;
// use NewWriter. Writers are append-only: primitives go in the order
// the matching Reader will consume them.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the header already emitted.
// sizeHint, when positive, pre-allocates the payload buffer.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	w := &Writer{buf: make([]byte, 0, headerLen+sizeHint+trailerLen)}
	w.U32(Magic)
	w.U32(Version)
	return w
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes appends a byte string with a u32 length prefix.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a string with a u32 length prefix.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Len reports the current encoded length, excluding the CRC trailer.
func (w *Writer) Len() int { return len(w.buf) }

// Finish appends the CRC32 trailer and returns the completed blob.
// The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf)
	return binary.LittleEndian.AppendUint32(w.buf, sum)
}

// A Reader consumes a blob produced by a Writer. Errors are sticky:
// after the first failure every further read returns the zero value
// and Err reports the failure, so decode sequences can run
// unconditionally and check once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates the header and CRC trailer of data and returns
// a Reader positioned at the first payload byte. It returns
// ErrCorrupt for structural damage and ErrVersion for a format
// mismatch. data is aliased, not copied — the caller must not mutate
// it while reading.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid encoding", ErrCorrupt, len(data))
	}
	body := data[:len(data)-trailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %#x, want %#x)", ErrCorrupt, got, want)
	}
	if magic := binary.LittleEndian.Uint32(body); magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != Version {
		return nil, fmt.Errorf("%w: got version %d, support version %d", ErrVersion, v, Version)
	}
	return &Reader{buf: body, off: headerLen}, nil
}

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// need checks that n more payload bytes exist.
func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail(fmt.Errorf("%w: truncated payload (want %d more bytes, have %d)", ErrCorrupt, n, len(r.buf)-r.off))
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool reads a boolean; any byte other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: invalid boolean byte", ErrCorrupt))
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a length-prefixed byte string. The returned slice
// aliases the Reader's buffer; copy it if it must outlive the blob.
// The length is validated against the remaining payload before any
// allocation, so hostile lengths cannot trigger huge allocations.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if !r.need(n) {
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Len reports how many unread payload bytes remain. It is the
// fuzz-safety primitive: decoders must bound element counts by the
// remaining length before allocating (`if n > r.Len() { corrupt }`).
func (r *Reader) Len() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// Err reports the first read failure, or nil.
func (r *Reader) Err() error { return r.err }

// Done verifies the whole payload was consumed exactly and returns
// the sticky error (or ErrCorrupt on trailing garbage).
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return nil
}

// Corruptf lets a decoder record a semantic validation failure (a
// count that disagrees with the configured geometry, an out-of-range
// enum) through the Reader's sticky-error channel.
func (r *Reader) Corruptf(format string, args ...any) {
	r.fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}
