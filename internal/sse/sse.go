// Package sse is the event fan-out shared by every daemon mode of the
// campaign service: an append-only, sequence-numbered per-job event
// log with bounded replay history and any number of live subscribers.
// The worker daemon (internal/server) publishes local campaign
// progress to it; the coordinator (internal/coord) republishes merged
// multi-worker progress through the identical machinery, so clients
// see one SSE dialect regardless of which daemon they watch.
package sse

import (
	"sync"

	"repro/ftsim/api"
	"repro/internal/obs"
)

// HubHistory bounds the per-job event replay buffer. Events older than
// the window are evicted; a reconnecting client whose Last-Event-ID
// fell off the window simply replays from the oldest retained event.
const HubHistory = 4096

// SubBuffer is each subscriber's channel depth. A subscriber that falls
// this far behind the live stream is evicted (its channel closes) for
// every event kind except intervals, which are droppable progress
// samples; evicted clients reconnect with Last-Event-ID and catch up
// from history.
const SubBuffer = 256

// Metrics instruments a set of hubs. One instance is shared by every
// hub of a daemon; a nil *Metrics disables recording. All fields must
// be set when the struct is non-nil.
type Metrics struct {
	Subscribers      *obs.Gauge
	Published        *obs.Counter
	Replayed         *obs.Counter // history events handed to (re)connecting subscribers
	DroppedReplays   *obs.Counter // events lost to reconnects past the bounded history
	Evictions        *obs.Counter // slow subscribers force-closed
	DroppedIntervals *obs.Counter // interval samples dropped for full subscriber buffers
}

// NewMetrics registers the hub instrument set on reg under the given
// metric-name prefix (e.g. "ftsimd" yields ftsimd_sse_*).
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	return &Metrics{
		Subscribers: reg.NewGauge(prefix+"_sse_subscribers",
			"Live SSE subscribers across all job streams.").With(),
		Published: reg.NewCounter(prefix+"_sse_published_events_total",
			"Events published to job streams.").With(),
		Replayed: reg.NewCounter(prefix+"_sse_replayed_events_total",
			"Retained events replayed to (re)connecting subscribers.").With(),
		DroppedReplays: reg.NewCounter(prefix+"_sse_dropped_replay_events_total",
			"Events a reconnecting subscriber asked for that had aged out of the bounded history.").With(),
		Evictions: reg.NewCounter(prefix+"_sse_evictions_total",
			"Slow subscribers evicted for falling a full buffer behind the live stream.").With(),
		DroppedIntervals: reg.NewCounter(prefix+"_sse_dropped_interval_events_total",
			"Interval samples dropped for individual slow subscribers.").With(),
	}
}

// Hub is one job's event fan-out. Publishing never blocks on slow
// consumers, so the simulation observer tap stays cheap.
type Hub struct {
	mu       sync.Mutex
	job      string
	m        *Metrics // shared across a daemon's hubs; nil disables recording
	seq      int64
	history  []api.Event
	firstSeq int64 // Seq of history[0]
	subs     map[chan api.Event]struct{}
	closed   bool
}

// NewHub builds a hub for one job's stream. m may be nil.
func NewHub(job string, m *Metrics) *Hub {
	return &Hub{job: job, m: m, firstSeq: 1, subs: make(map[chan api.Event]struct{})}
}

// Publish stamps the event with the job and the next sequence number,
// records it in history, and fans it out. Interval events are dropped
// for subscribers whose buffer is full; any other kind evicts such a
// subscriber instead, so lifecycle and completion events are never
// silently missing from a live stream.
func (h *Hub) Publish(ev api.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	ev.Job = h.job
	h.history = append(h.history, ev)
	if len(h.history) > HubHistory {
		drop := len(h.history) - HubHistory
		h.history = append(h.history[:0:0], h.history[drop:]...)
		h.firstSeq += int64(drop)
	}
	if h.m != nil {
		h.m.Published.Inc()
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			if ev.Type == api.EventInterval {
				if h.m != nil {
					h.m.DroppedIntervals.Inc()
				}
				continue
			}
			delete(h.subs, ch)
			close(ch)
			if h.m != nil {
				h.m.Evictions.Inc()
				h.m.Subscribers.Dec()
			}
		}
	}
}

// Subscribe returns the retained events after sequence number `after`
// plus a live channel for what follows. The channel is closed when the
// hub closes (job reached a terminal state) or the subscriber is
// evicted; cancel detaches early and is idempotent.
func (h *Hub) Subscribe(after int64) (backlog []api.Event, ch chan api.Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if after < h.firstSeq-1 {
		// The subscriber asked for events that already fell off the
		// bounded history; they are gone, and the dropped-replay counter
		// is the only remaining evidence.
		if h.m != nil {
			h.m.DroppedReplays.Add(uint64(h.firstSeq - 1 - after))
		}
		after = h.firstSeq - 1
	}
	if n := int(h.seq - after); n > 0 && len(h.history) >= n {
		backlog = append(backlog, h.history[len(h.history)-n:]...)
	}
	if h.m != nil {
		h.m.Replayed.Add(uint64(len(backlog)))
	}
	ch = make(chan api.Event, SubBuffer)
	if h.closed {
		close(ch)
		return backlog, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	if h.m != nil {
		h.m.Subscribers.Inc()
	}
	return backlog, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
			if h.m != nil {
				h.m.Subscribers.Dec()
			}
		}
	}
}

// Close ends the stream: all subscriber channels close after the events
// already published. Further publishes are no-ops.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
		if h.m != nil {
			h.m.Subscribers.Dec()
		}
	}
}
