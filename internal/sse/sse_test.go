package sse

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/ftsim/api"
	"repro/internal/obs"
)

func newTestHub(job string) (*Hub, *Metrics) {
	m := NewMetrics(obs.NewRegistry(), "test")
	return NewHub(job, m), m
}

// TestHubSlowSubscriberEviction: a subscriber that lets its buffer fill
// is evicted on the next non-interval event — and the eviction counter
// says so.
func TestHubSlowSubscriberEviction(t *testing.T) {
	h, m := newTestHub("j1")

	_, ch, cancel := h.Subscribe(0)
	defer cancel()
	if got := m.Subscribers.Value(); got != 1 {
		t.Fatalf("subscribers gauge %d after subscribe, want 1", got)
	}

	// Fill the buffer exactly, without reading.
	for i := 0; i < SubBuffer; i++ {
		h.Publish(api.Event{Type: api.EventTrial})
	}
	if got := m.Evictions.Value(); got != 0 {
		t.Fatalf("evicted with a merely full buffer (evictions %d)", got)
	}

	// An interval on a full buffer is dropped for this subscriber only.
	h.Publish(api.Event{Type: api.EventInterval})
	if got := m.DroppedIntervals.Value(); got != 1 {
		t.Errorf("dropped-interval counter %d, want 1", got)
	}
	if got := m.Evictions.Value(); got != 0 {
		t.Fatalf("interval drop evicted the subscriber")
	}

	// A lifecycle event on a full buffer must not be dropped: evict.
	h.Publish(api.Event{Type: api.EventState, State: api.StateRunning})
	if got := m.Evictions.Value(); got != 1 {
		t.Errorf("eviction counter %d, want 1", got)
	}
	if got := m.Subscribers.Value(); got != 0 {
		t.Errorf("subscribers gauge %d after eviction, want 0", got)
	}
	// The channel still drains its buffered events, then closes.
	n := 0
	for range ch {
		n++
	}
	if n != SubBuffer {
		t.Errorf("evicted subscriber drained %d events, want %d", n, SubBuffer)
	}
}

// TestHubDroppedReplay: reconnecting with a Last-Event-ID that has
// aged out of the bounded history replays what is retained and counts
// what is gone.
func TestHubDroppedReplay(t *testing.T) {
	const past = 25
	h, m := newTestHub("j2")

	for i := 0; i < HubHistory+past; i++ {
		h.Publish(api.Event{Type: api.EventInterval})
	}

	backlog, _, cancel := h.Subscribe(0) // asks for everything since the beginning
	defer cancel()
	if len(backlog) != HubHistory {
		t.Fatalf("backlog %d events, want the full retained window %d", len(backlog), HubHistory)
	}
	if got := m.DroppedReplays.Value(); got != past {
		t.Errorf("dropped-replay counter %d, want %d", got, past)
	}
	if got := m.Replayed.Value(); got != HubHistory {
		t.Errorf("replayed counter %d, want %d", got, HubHistory)
	}

	// A subscriber inside the window drops nothing further.
	backlog2, _, cancel2 := h.Subscribe(int64(HubHistory + past - 10))
	defer cancel2()
	if len(backlog2) != 10 {
		t.Fatalf("in-window backlog %d events, want 10", len(backlog2))
	}
	if got := m.DroppedReplays.Value(); got != past {
		t.Errorf("in-window replay moved the dropped counter to %d", got)
	}
}

// TestHubChurn subjects one hub to the subscriber population a busy
// coordinator job sees: 200 concurrent subscribers, half draining the
// stream as fast as it arrives, half never reading at all, while the
// publisher interleaves droppable interval samples with must-deliver
// trial completions. The contract under churn:
//
//   - every fast subscriber receives every published event in order
//     (nothing but intervals is ever dropped, and none of theirs were);
//   - every slow subscriber is evicted — on a non-interval event, never
//     on an interval — and the eviction counter accounts for each one;
//   - dropped-interval accounting matches the samples that were
//     actually withheld from full buffers.
//
// The test runs under -race in CI, which is half the point: Publish,
// Subscribe, eviction and cancel all interleave freely here.
func TestHubChurn(t *testing.T) {
	const (
		fast      = 100
		slow      = 100
		intervals = SubBuffer + 64 // enough to overrun every slow buffer
		trials    = 8
	)
	h, m := newTestHub("churn")

	type feed struct {
		events []api.Event // touched only by the reader goroutine until wg.Wait
		seen   atomic.Int64
		closed bool
	}
	feeds := make([]feed, fast)
	var wg sync.WaitGroup
	for i := 0; i < fast; i++ {
		_, ch, cancel := h.Subscribe(0)
		defer cancel()
		wg.Add(1)
		go func(f *feed, ch chan api.Event) {
			defer wg.Done()
			for ev := range ch {
				f.events = append(f.events, ev)
				f.seen.Add(1)
			}
			f.closed = true
		}(&feeds[i], ch)
	}
	slowChans := make([]chan api.Event, slow)
	for i := 0; i < slow; i++ {
		_, ch, cancel := h.Subscribe(0)
		defer cancel()
		slowChans[i] = ch
	}

	// Interleave: bursts of interval samples punctuated by trial
	// completions, closed out by a state transition and done. Between
	// bursts the publisher waits for every fast reader to catch up, so
	// "fast" is a guarantee, not a scheduling accident — no fast buffer
	// ever approaches the eviction threshold, however CI schedules the
	// 200 goroutines.
	published := 0
	publish := func(ev api.Event) { h.Publish(ev); published++ }
	catchUp := func() {
		for i := range feeds {
			for feeds[i].seen.Load() < int64(published) {
				runtime.Gosched()
			}
		}
	}
	for b := 0; b < trials; b++ {
		for i := 0; i < intervals/trials; i++ {
			publish(api.Event{Type: api.EventInterval, Trial: b})
		}
		publish(api.Event{Type: api.EventTrial, Trial: b, Done: b + 1, Total: trials})
		catchUp()
	}
	for published < intervals+trials {
		publish(api.Event{Type: api.EventInterval})
	}
	publish(api.Event{Type: api.EventState, State: api.StateRunning})
	publish(api.Event{Type: api.EventDone, State: api.StateDone})
	// Before the hub closes, the only attached subscribers left are the
	// fast readers: every slow one was evicted along the way.
	if got := m.Subscribers.Value(); got != fast {
		t.Errorf("subscribers gauge %d before close, want the %d fast readers", got, fast)
	}
	h.Close()
	wg.Wait()

	for i := range feeds {
		if !feeds[i].closed {
			t.Fatalf("fast subscriber %d never saw the hub close", i)
		}
		if len(feeds[i].events) != published {
			t.Fatalf("fast subscriber %d received %d events, want all %d",
				i, len(feeds[i].events), published)
		}
		for k := 1; k < len(feeds[i].events); k++ {
			if feeds[i].events[k].Seq <= feeds[i].events[k-1].Seq {
				t.Fatalf("fast subscriber %d: out-of-order Seq %d after %d",
					i, feeds[i].events[k].Seq, feeds[i].events[k-1].Seq)
			}
		}
	}

	// Every slow subscriber was evicted (their buffers filled during the
	// first interval burst; the next trial event evicted them), and its
	// channel holds exactly one full buffer.
	if got := m.Evictions.Value(); got != slow {
		t.Errorf("evictions %d, want %d", got, slow)
	}
	if got := m.Subscribers.Value(); got != 0 {
		t.Errorf("subscribers gauge %d after close, want 0", got)
	}
	for i, ch := range slowChans {
		n := 0
		for range ch {
			n++
		}
		if n != SubBuffer {
			t.Errorf("slow subscriber %d drained %d buffered events, want %d", i, n, SubBuffer)
		}
	}

	// Dropped-interval accounting: each slow subscriber missed every
	// interval published between its buffer filling and its eviction.
	// The exact figure depends on interleaving with the fast drains —
	// but it is bounded below by the samples that arrived on provably
	// full buffers: the first burst holds SubBuffer/trials-per-burst...
	// assert the counter moved and never exceeds what was published.
	dropped := m.DroppedIntervals.Value()
	if dropped == 0 {
		t.Errorf("no dropped intervals recorded across %d slow subscribers", slow)
	}
	if max := uint64(intervals+trials) * slow; dropped > max {
		t.Errorf("dropped intervals %d exceeds published*slow %d", dropped, max)
	}

	// Post-close subscribers get the bounded history and a closed channel.
	backlog, ch, cancel := h.Subscribe(0)
	defer cancel()
	if want := min(published, HubHistory); len(backlog) != want {
		t.Errorf("post-close backlog %d, want %d", len(backlog), want)
	}
	if _, ok := <-ch; ok {
		t.Error("post-close subscriber channel delivered a live event")
	}
	if backlog[len(backlog)-1].Type != api.EventDone {
		t.Error("post-close backlog does not end with the done event")
	}
}

// TestHubConcurrentSubscribeCancel hammers Subscribe/cancel/Publish
// from many goroutines at once; the assertions are the race detector's
// plus a zeroed subscriber gauge at the end.
func TestHubConcurrentSubscribeCancel(t *testing.T) {
	h, m := newTestHub("concurrent")
	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			typ := api.EventInterval
			if i%7 == 0 {
				typ = api.EventTrial
			}
			h.Publish(api.Event{Type: typ, Label: fmt.Sprint(i)})
		}
	}()
	var subs sync.WaitGroup
	for g := 0; g < 32; g++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for i := 0; i < 50; i++ {
				_, ch, cancel := h.Subscribe(0)
				// Drain a little, then detach; every other iteration
				// abandons the channel un-drained to exercise eviction.
				if i%2 == 0 {
					for k := 0; k < 4; k++ {
						<-ch
					}
				}
				cancel()
				cancel() // idempotent
			}
		}()
	}
	subs.Wait()
	close(stop)
	<-pubDone
	h.Close()
	if got := m.Subscribers.Value(); got != 0 {
		t.Errorf("subscriber gauge %d after every cancel, want 0", got)
	}
}
