package coord

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/ftsim"
	"repro/ftsim/api"
	"repro/ftsim/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// tWriter adapts t.Logf into an io.Writer for a slog handler.
type tWriter struct{ t *testing.T }

func (w tWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T, tag string) *slog.Logger {
	return slog.New(slog.NewTextHandler(tWriter{t}, nil)).With("daemon", tag)
}

// startServer runs one in-process ftsimd (worker or coordinator,
// depending on cfg.Backend) on a random port.
func startServer(t *testing.T, tag string, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = testLogger(t, tag)
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain %s: %v", tag, err)
		}
		ts.Close()
	})
	return s, ts
}

// cluster is a coordinator daemon plus its worker fleet, all
// in-process on random ports and speaking shared-token auth.
type cluster struct {
	coord   *Coordinator
	client  *client.Client // bound to the coordinator daemon
	workers []*httptest.Server
	reg     *obs.Registry
}

const clusterToken = "cluster-secret"

// newCluster starts n workers and a coordinator daemon in front of
// them.
func newCluster(t *testing.T, n int, cfg Config) *cluster {
	t.Helper()
	cl := &cluster{reg: obs.NewRegistry()}
	for i := 0; i < n; i++ {
		_, ts := startServer(t, fmt.Sprintf("worker%d", i), server.Config{AuthToken: clusterToken})
		cl.workers = append(cl.workers, ts)
		cfg.Workers = append(cfg.Workers, ts.URL)
	}
	cfg.AuthToken = clusterToken
	cfg.Registry = cl.reg
	if cfg.Logger == nil {
		cfg.Logger = testLogger(t, "coord")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 100 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	cl.coord = co
	// The coordinator daemon: same server, distributed backend. Its
	// own API is open (no token) — worker auth is what's under test.
	_, ts := startServer(t, "coord", server.Config{
		Backend:  co,
		Registry: cl.reg,
		// Several campaigns run concurrently in the invariance sweep.
		Concurrency: 4,
	})
	cl.client = &client.Client{BaseURL: ts.URL}
	return cl
}

// fig5Grid is a miniature of the paper's Fig 5 sweep: one workload
// across fault rates on the 2-way redundant design, fault injection
// live on most of the grid so per-trial seeds shape the numbers.
func fig5Grid(trials int) []api.TrialSpec {
	asm := `
        li   r1, 900
        li   r2, 17
loop:   add  r2, r2, r1
        xor  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r2
        halt
`
	out := make([]api.TrialSpec, trials)
	for i := range out {
		cfg := ftsim.ModelSS2.Config()
		cfg.MaxInsts = 20_000
		cfg.MaxCycles = 1_000_000
		if i%4 != 0 { // every 4th trial is the fault-free control arm
			cfg.Fault.Rate = 1e-3
			cfg.Fault.Targets = ftsim.AllFaultTargets()
		}
		out[i] = api.TrialSpec{Label: fmt.Sprintf("fig5/%d", i), Asm: asm, Config: cfg}
	}
	return out
}

// runToDone submits a campaign and waits for the done state via the
// SSE stream, returning the final status.
func runToDone(t *testing.T, c *client.Client, req *api.CampaignRequest) *api.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var final *api.JobStatus
	err = c.Watch(ctx, st.ID, 0, func(ev api.Event) error {
		if ev.Type == api.EventDone {
			final = ev.Status
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch %s: %v", st.ID, err)
	}
	if final == nil || final.State != api.StateDone {
		t.Fatalf("job %s finished as %+v, want done", st.ID, final)
	}
	return final
}

// TestPartitionProperty: for any grid size and shard count, the ranges
// tile [0, n) contiguously with sizes differing by at most one.
func TestPartitionProperty(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 100, 101} {
		for _, k := range []int{1, 2, 3, 7, 13, n, n + 5} {
			ranges := partition(n, k)
			wantShards := k
			if wantShards > n {
				wantShards = n
			}
			if wantShards < 1 {
				wantShards = 1
			}
			if len(ranges) != wantShards {
				t.Fatalf("partition(%d,%d): %d shards, want %d", n, k, len(ranges), wantShards)
			}
			next, minSz, maxSz := 0, n, 0
			for _, r := range ranges {
				if r.lo != next || r.hi <= r.lo {
					t.Fatalf("partition(%d,%d): bad range %+v after %d", n, k, r, next)
				}
				next = r.hi
				if sz := r.hi - r.lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
			}
			if next != n {
				t.Fatalf("partition(%d,%d): covers [0,%d), want [0,%d)", n, k, next, n)
			}
			if maxSz-minSz > 1 && maxSz != 0 {
				t.Fatalf("partition(%d,%d): shard sizes range %d..%d", n, k, minSz, maxSz)
			}
		}
	}
}

// TestShardInvariance is the distributed-determinism backbone: the
// Fig 5 grid, run unsharded on a plain single daemon, must merge
// byte-identical from a coordinator + 3 workers at every shard count
// {1, 2, 3, 7} — the coordinator is invisible in the results.
func TestShardInvariance(t *testing.T) {
	grid := fig5Grid(14)
	req := func(shards int) *api.CampaignRequest {
		return &api.CampaignRequest{Name: "fig5", Seed: 5, Shards: shards,
			Trials: append([]api.TrialSpec(nil), grid...)}
	}

	// Control: one ordinary daemon, no coordinator anywhere.
	_, controlTS := startServer(t, "control", server.Config{})
	control := runToDone(t, &client.Client{BaseURL: controlTS.URL}, req(0))
	if len(control.Stats) == 0 {
		t.Fatal("control run produced no stats")
	}

	cl := newCluster(t, 3, Config{})
	for _, shards := range []int{1, 2, 3, 7} {
		final := runToDone(t, cl.client, req(shards))
		if final.Shards != shards || final.ShardsDone != shards {
			t.Errorf("shards=%d: reported %d/%d shards done", shards, final.ShardsDone, final.Shards)
		}
		if final.Done != len(grid) || final.Failed != 0 {
			t.Errorf("shards=%d: done %d failed %d, want %d/0", shards, final.Done, final.Failed, len(grid))
		}
		if !bytes.Equal(final.Stats, control.Stats) {
			t.Errorf("shards=%d: merged stats differ from the unsharded control (%d vs %d bytes)",
				shards, len(final.Stats), len(control.Stats))
		}
	}
}

// TestCoordinatorEvents: the merged SSE stream speaks parent-grid
// coordinates — every trial index appears exactly once across shards,
// and the done counter reaches the grid size monotonically.
func TestCoordinatorEvents(t *testing.T) {
	grid := fig5Grid(9)
	cl := newCluster(t, 3, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := cl.client.Submit(ctx, &api.CampaignRequest{
		Name: "events", Seed: 7, Shards: 3, Trials: grid})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	maxDone := 0
	var final *api.JobStatus
	err = cl.client.Watch(ctx, st.ID, 0, func(ev api.Event) error {
		switch ev.Type {
		case api.EventTrial:
			seen[ev.Trial]++
			if ev.Done < maxDone {
				t.Errorf("merged done counter went backwards: %d after %d", ev.Done, maxDone)
			}
			maxDone = ev.Done
			if want := fmt.Sprintf("fig5/%d", ev.Trial); ev.Label != want {
				t.Errorf("trial %d labelled %q, want %q", ev.Trial, ev.Label, want)
			}
		case api.EventDone:
			final = ev.Status
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || final.State != api.StateDone {
		t.Fatalf("final status %+v", final)
	}
	for i := range grid {
		if seen[i] != 1 {
			t.Errorf("trial %d reported %d completion events, want 1", i, seen[i])
		}
	}
	if maxDone != len(grid) {
		t.Errorf("merged done counter peaked at %d, want %d", maxDone, len(grid))
	}
}

// metricValue scrapes one un-labelled counter/gauge value from the
// registry's text exposition.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// slowGrid is fig5Grid's shape with a nested loop heavy enough
// (~180k instructions per trial) that shards are genuinely mid-flight
// for a while — the kill test needs time to strike.
func slowGrid(trials int) []api.TrialSpec {
	asm := `
        li   r4, 250
outer:  li   r1, 900
        li   r2, 17
loop:   add  r2, r2, r1
        xor  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        addi r4, r4, -1
        bne  r4, r0, outer
        out  r2
        halt
`
	out := make([]api.TrialSpec, trials)
	for i := range out {
		cfg := ftsim.ModelSS2.Config()
		cfg.MaxInsts = 2_000_000
		cfg.MaxCycles = 20_000_000
		if i%4 != 0 {
			cfg.Fault.Rate = 1e-5
			cfg.Fault.Targets = ftsim.AllFaultTargets()
		}
		out[i] = api.TrialSpec{Label: fmt.Sprintf("kill/%d", i), Asm: asm, Config: cfg}
	}
	return out
}

// TestKillWorkerMidGrid: with every shard mid-flight, the worker
// serving the furthest-behind shard dies hard (all connections
// severed, port closed). Its shard must be redispatched to a surviving
// worker and the merged stats must still be byte-identical to the
// single-daemon control — fault recovery without result drift.
func TestKillWorkerMidGrid(t *testing.T) {
	grid := slowGrid(12)
	req := func(shards int) *api.CampaignRequest {
		return &api.CampaignRequest{Name: "kill", Seed: 11, Shards: shards,
			Trials: append([]api.TrialSpec(nil), grid...)}
	}
	_, controlTS := startServer(t, "control", server.Config{})
	control := runToDone(t, &client.Client{BaseURL: controlTS.URL}, req(0))

	cl := newCluster(t, 3, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()
	st, err := cl.client.Submit(ctx, req(3))
	if err != nil {
		t.Fatal(err)
	}

	// killBusyWorker severs the first worker found with a running
	// sub-job at least two trials from done — its shard is provably
	// unfinished when the port goes dark. Killing immediately on the
	// first hit keeps the stale-state window to one List round-trip.
	killBusyWorker := func() bool {
		for i, ts := range cl.workers {
			wc := &client.Client{BaseURL: ts.URL, AuthToken: clusterToken}
			jobs, err := wc.List(ctx)
			if err != nil {
				continue
			}
			for _, j := range jobs {
				if j.State == api.StateRunning && j.Trials-j.Done >= 2 {
					ts.CloseClientConnections()
					ts.Close()
					t.Logf("worker %d killed with %d trials outstanding", i, j.Trials-j.Done)
					return true
				}
			}
		}
		return false
	}

	// Watch the merged stream; once every shard has completed at least
	// one trial (so all three workers are provably mid-shard), strike.
	killed := false
	shardsSeen := make(map[int]bool)
	shardOf := func(trial int) int { return trial / 4 } // 12 trials, 3 shards
	var final *api.JobStatus
	err = cl.client.Watch(ctx, st.ID, 0, func(ev api.Event) error {
		switch ev.Type {
		case api.EventTrial:
			shardsSeen[shardOf(ev.Trial)] = true
			if !killed && len(shardsSeen) == 3 {
				killed = killBusyWorker()
			}
		case api.EventDone:
			final = ev.Status
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill condition never triggered")
	}
	if final == nil || final.State != api.StateDone {
		t.Fatalf("job after worker kill: %+v, want done", final)
	}
	if !bytes.Equal(final.Stats, control.Stats) {
		t.Errorf("post-kill merged stats differ from control (%d vs %d bytes)",
			len(final.Stats), len(control.Stats))
	}
	if v := metricValue(t, cl.reg, "ftsimd_coord_shard_redispatches_total"); v < 1 {
		t.Errorf("redispatch counter %v after a worker kill, want >= 1", v)
	}
	if v := metricValue(t, cl.reg, "ftsimd_coord_shards_dispatched_total"); v < 4 {
		t.Errorf("dispatched counter %v, want >= 4 (3 shards + >=1 redispatch)", v)
	}
}

// TestCoordinatorRejectsBadFleet: constructor-level validation.
func TestCoordinatorRejectsBadFleet(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New(Config{Workers: []string{"http://a", "http://a"}}); err == nil {
		t.Error("duplicate worker URL accepted")
	}
}
