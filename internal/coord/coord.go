// Package coord turns ftsimd into a campaign coordinator: a
// server.Backend that splits a submitted trial grid into contiguous
// index-range shards and farms them out to a fleet of worker ftsimd
// daemons over the ordinary HTTP API.
//
// Sharding is invisible in the results. PR 1's seed derivation makes
// trials independent — trial i's fault seed is a pure function of the
// campaign seed and i — so a shard carrying trials [lo, hi) of the
// parent grid runs them under api.ShardRange{Offset: lo}, the worker
// derives seeds from parent indices (ftsim.WithTrialSeedOffset), and
// the coordinator's merge is mere concatenation of the per-shard stats
// arrays in shard order: byte-identical to one daemon running the
// whole grid, for any shard count and any interleaving of failures and
// redispatches.
//
// Failure handling is shard-granular. Worker health is probed via
// /healthz; a shard whose worker dies (transport error, 5xx, dropped
// event stream) is redispatched to another worker with capped backoff,
// its progress contribution reset, until it completes or the attempt
// budget runs out. Trial-level simulation failures are not retried —
// they are deterministic and belong to the campaign's error manifest,
// exactly as on a single daemon.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/ftsim/api"
	"repro/ftsim/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// Config parameterises a Coordinator.
type Config struct {
	// Workers is the fleet: base URLs of worker ftsimd daemons. At
	// least one is required.
	Workers []string
	// AuthToken is the workers' shared bearer token (their -auth-token);
	// empty for open workers.
	AuthToken string
	// Shards is the default shard count for requests that don't set
	// one. <= 0 means one shard per worker.
	Shards int
	// ShardAttempts bounds dispatch attempts per shard (first try plus
	// redispatches). <= 0 means 8.
	ShardAttempts int
	// RetryBackoff is the wait before a shard's first redispatch,
	// doubled per further attempt and capped at 2s. <= 0 means 50ms.
	RetryBackoff time.Duration
	// ProbeInterval is the worker /healthz polling period. <= 0 means
	// 2s.
	ProbeInterval time.Duration
	// Logger receives operational logs; nil discards them.
	Logger *slog.Logger
	// Registry receives the ftsimd_coord_* metric families; nil creates
	// a private registry. Pass the server's registry so one /metrics
	// page carries both.
	Registry *obs.Registry
}

// maxRetryBackoff caps the per-shard redispatch backoff.
const maxRetryBackoff = 2 * time.Second

// worker is one fleet member: its client plus probed health and load,
// both guarded by the coordinator's fleet mutex.
type worker struct {
	url     string
	client  *client.Client
	healthy bool
	active  int // shards currently dispatched here
}

// metrics is the coordinator instrument set (ftsimd_coord_*).
type metrics struct {
	dispatched     *obs.Counter
	redispatches   *obs.Counter
	outcomes       *obs.CounterVec // state: done|failed
	shardSeconds   *obs.Histogram
	workersHealthy *obs.Gauge
	probes         *obs.CounterVec // outcome: ok|unhealthy
}

var shardSecondsBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600, 3600}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		dispatched: reg.NewCounter("ftsimd_coord_shards_dispatched_total",
			"Shard dispatches to workers, including redispatches.").With(),
		redispatches: reg.NewCounter("ftsimd_coord_shard_redispatches_total",
			"Shards re-dispatched after a worker failure.").With(),
		outcomes: reg.NewCounter("ftsimd_coord_shards_total",
			"Shards by final outcome.", "state"),
		shardSeconds: reg.NewHistogram("ftsimd_coord_shard_seconds",
			"Wall time of successful shard runs, dispatch to merge.", shardSecondsBuckets).With(),
		workersHealthy: reg.NewGauge("ftsimd_coord_workers_healthy",
			"Workers whose last /healthz probe succeeded.").With(),
		probes: reg.NewCounter("ftsimd_coord_health_probes_total",
			"Worker health probes by outcome.", "outcome"),
	}
}

// Coordinator implements server.Backend over a worker fleet. Create
// with New, install as server.Config.Backend, Close on shutdown.
type Coordinator struct {
	cfg Config
	log *slog.Logger
	m   *metrics

	fleetMu sync.Mutex // guards every worker's healthy/active
	workers []*worker

	stopProbe context.CancelFunc
	probeDone chan struct{}
}

// New validates the fleet, probes it once synchronously (so a
// coordinator that comes up with live workers dispatches immediately),
// and starts the background health prober.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("coord: no workers configured")
	}
	if cfg.ShardAttempts <= 0 {
		cfg.ShardAttempts = 8
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	c := &Coordinator{cfg: cfg, log: cfg.Logger}
	if c.log == nil {
		c.log = slog.New(slog.DiscardHandler)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.m = newMetrics(reg)
	seen := make(map[string]bool)
	for _, url := range cfg.Workers {
		if url == "" || seen[url] {
			return nil, fmt.Errorf("coord: empty or duplicate worker URL %q", url)
		}
		seen[url] = true
		c.workers = append(c.workers, &worker{
			url: url,
			client: &client.Client{
				BaseURL:   url,
				Token:     "coordinator",
				AuthToken: cfg.AuthToken,
				// Transient submit/status hiccups are absorbed here;
				// shard-level redispatch handles real worker loss.
				Retries:      2,
				RetryBackoff: cfg.RetryBackoff,
			},
		})
	}
	c.probeAll(context.Background())
	probeCtx, stop := context.WithCancel(context.Background())
	c.stopProbe = stop
	c.probeDone = make(chan struct{})
	go c.probeLoop(probeCtx)
	return c, nil
}

// Close stops the health prober. In-flight Run calls are governed by
// their own contexts (the server cancels them on drain).
func (c *Coordinator) Close() {
	c.stopProbe()
	<-c.probeDone
}

// probeLoop polls every worker's /healthz.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.probeAll(ctx)
		}
	}
}

// probeAll probes the whole fleet once and refreshes the healthy gauge.
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeInterval)
			defer cancel()
			h, err := w.client.Health(pctx)
			ok := err == nil && h.Status == "ok"
			c.setHealthy(w, ok)
			if ok {
				c.m.probes.With("ok").Inc()
			} else {
				c.m.probes.With("unhealthy").Inc()
			}
		}(w)
	}
	wg.Wait()
}

// setHealthy flips one worker's health and keeps the gauge consistent.
func (c *Coordinator) setHealthy(w *worker, ok bool) {
	c.fleetMu.Lock()
	changed := w.healthy != ok
	w.healthy = ok
	c.fleetMu.Unlock()
	if !changed {
		return
	}
	if ok {
		c.m.workersHealthy.Inc()
		c.log.Info("worker healthy", "worker", w.url)
	} else {
		c.m.workersHealthy.Dec()
		c.log.Warn("worker unhealthy", "worker", w.url)
	}
}

// pickWorker selects the least-loaded healthy worker — or, when the
// whole fleet looks down, the least-loaded worker regardless, so a
// recovered-but-not-yet-reprobed daemon gets a chance and a truly dead
// fleet fails fast through the attempt budget instead of hanging.
// Selection and load accounting happen under one lock, so concurrent
// shard dispatches spread across the fleet instead of dogpiling.
func (c *Coordinator) pickWorker() *worker {
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	best := c.workers[0]
	for _, w := range c.workers[1:] {
		if w.healthy != best.healthy {
			if w.healthy {
				best = w
			}
			continue
		}
		if w.active < best.active {
			best = w
		}
	}
	best.active++
	return best
}

// release undoes pickWorker's load accounting.
func (c *Coordinator) release(w *worker) {
	c.fleetMu.Lock()
	w.active--
	c.fleetMu.Unlock()
}

// shardRange is one contiguous slice of the parent grid.
type shardRange struct{ lo, hi int }

// partition splits n trials into k contiguous ranges whose sizes
// differ by at most one. k is clamped to [1, n].
func partition(n, k int) []shardRange {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]shardRange, k)
	for i := 0; i < k; i++ {
		out[i] = shardRange{lo: i * n / k, hi: (i + 1) * n / k}
	}
	return out
}

// shardState is one shard's contribution to the merged progress,
// guarded by the job-level mutex in Run.
type shardState struct {
	done   int
	failed int
	stats  json.RawMessage // shard's final stats array, set on success
}

// errShardFailed marks a deterministic shard failure (the campaign
// itself failed on the worker, not the worker): never redispatched.
var errShardFailed = errors.New("shard campaign failed")

// Run implements server.Backend: partition, dispatch, merge.
func (c *Coordinator) Run(ctx context.Context, j *server.Job) (*server.Result, error) {
	n := len(j.Trials)
	k := j.Request.Shards
	if k == 0 {
		k = c.cfg.Shards
	}
	if k <= 0 {
		k = len(c.workers)
	}
	ranges := partition(n, k)
	jlog := c.log.With("job", j.ID)
	jlog.Info("dispatching campaign", "trials", n, "shards", len(ranges), "workers", len(c.workers))

	var (
		mu         sync.Mutex
		states     = make([]shardState, len(ranges))
		shardsDone int
	)
	j.SetShards(len(ranges), 0)
	// publishProgress recomputes the merged counters under mu and
	// pushes them to the job table.
	publishProgress := func() (done, failed int) {
		for i := range states {
			done += states[i].done
			failed += states[i].failed
		}
		j.SetProgress(done, failed)
		return done, failed
	}

	var wg sync.WaitGroup
	shardErrs := make([]error, len(ranges))
	for i := range ranges {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shardErrs[i] = c.runShardWithRetry(ctx, j, ranges[i], &mu, &states[i], publishProgress)
			if shardErrs[i] == nil {
				mu.Lock()
				shardsDone++
				j.SetShards(len(ranges), shardsDone)
				mu.Unlock()
				c.m.outcomes.With("done").Inc()
			} else {
				c.m.outcomes.With("failed").Inc()
			}
		}(i)
	}
	wg.Wait()

	mu.Lock()
	done, failed := publishProgress()
	mu.Unlock()
	res := &server.Result{Done: done, Failed: failed}
	for i, err := range shardErrs {
		if err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			return res, fmt.Errorf("shard %d (trials %d-%d): %w",
				i, ranges[i].lo, ranges[i].hi-1, err)
		}
	}

	// Merge: concatenate the shards' stats arrays in shard order.
	// Re-marshalling []json.RawMessage compacts each element, which is
	// exactly the encoding an unsharded daemon produces — the merged
	// bytes are identical to a local run's.
	var merged []json.RawMessage
	for i := range states {
		var part []json.RawMessage
		if err := json.Unmarshal(states[i].stats, &part); err != nil {
			return res, fmt.Errorf("shard %d: decoding worker stats: %w", i, err)
		}
		if got, want := len(part), ranges[i].hi-ranges[i].lo; got != want {
			return res, fmt.Errorf("shard %d: worker returned %d stats, want %d", i, got, want)
		}
		merged = append(merged, part...)
	}
	stats, err := json.Marshal(merged)
	if err != nil {
		return res, fmt.Errorf("encoding merged stats: %w", err)
	}
	res.Stats = stats
	jlog.Info("campaign merged", "trials", done, "shards", len(ranges))
	return res, nil
}

// runShardWithRetry drives one shard to completion, redispatching on
// worker failure with capped backoff.
func (c *Coordinator) runShardWithRetry(ctx context.Context, j *server.Job, r shardRange,
	mu *sync.Mutex, st *shardState, publishProgress func() (int, int)) error {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.ShardAttempts; attempt++ {
		if attempt > 0 {
			c.m.redispatches.Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
			// A redispatched shard starts over; drop its stale
			// contribution so merged progress never double-counts.
			mu.Lock()
			st.done, st.failed = 0, 0
			publishProgress()
			mu.Unlock()
		}
		w := c.pickWorker()
		c.m.dispatched.Inc()
		start := time.Now()
		err := c.runShard(ctx, j, r, w, mu, st, publishProgress)
		c.release(w)
		switch {
		case err == nil:
			c.m.shardSeconds.Observe(time.Since(start).Seconds())
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, errShardFailed):
			return err
		}
		// Worker trouble: mark it down (the prober rights it when it
		// recovers) and try elsewhere.
		c.setHealthy(w, false)
		c.log.Warn("shard dispatch failed; redispatching",
			"job", j.ID, "trials_lo", r.lo, "trials_hi", r.hi,
			"worker", w.url, "attempt", attempt+1, "err", err)
		lastErr = err
	}
	return fmt.Errorf("gave up after %d attempts: %w", c.cfg.ShardAttempts, lastErr)
}

// permanentSubmit reports a submission verdict that retrying on
// another worker cannot change: the request itself was rejected.
// Quota/backpressure rejections (429, 503) and everything 5xx are
// worker conditions, not request defects.
func permanentSubmit(err error) bool {
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 &&
		apiErr.StatusCode != 429
}

// runShard executes one shard on one worker: submit the sub-campaign,
// stream its events (remapped into parent-grid coordinates) into the
// coordinator job's hub, and record the final stats. Any error other
// than errShardFailed means "worker trouble, try another".
func (c *Coordinator) runShard(ctx context.Context, j *server.Job, r shardRange, w *worker,
	mu *sync.Mutex, st *shardState, publishProgress func() (int, int)) error {
	req := *j.Request
	req.Name = fmt.Sprintf("%s[%d:%d]", j.Request.Name, r.lo, r.hi)
	req.Trials = j.Request.Trials[r.lo:r.hi]
	req.Shards = 0
	req.Shard = &api.ShardRange{
		Offset: j.SeedOffset + r.lo,
		Total:  j.SeedOffset + len(j.Trials),
	}

	sub, err := w.client.Submit(ctx, &req)
	if err != nil {
		if permanentSubmit(err) {
			return fmt.Errorf("%w: worker %s rejected the shard: %v", errShardFailed, w.url, err)
		}
		return fmt.Errorf("submitting to %s: %w", w.url, err)
	}
	// Whatever happens next, never leave the sub-job running on a live
	// worker after we stop watching it (cancel, redispatch, error).
	finished := false
	defer func() {
		if finished {
			return
		}
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		w.client.Cancel(cctx, sub.ID) // best-effort
	}()

	total := len(j.Trials)
	var final *api.JobStatus
	werr := w.client.Watch(ctx, sub.ID, 0, func(ev api.Event) error {
		switch ev.Type {
		case api.EventInterval:
			j.Publish(api.Event{
				Type: api.EventInterval, Trial: r.lo + ev.Trial,
				Label: ev.Label, Interval: ev.Interval,
			})
		case api.EventTrial:
			mu.Lock()
			st.done = ev.Done
			if ev.Err != "" {
				st.failed++
			}
			done, _ := publishProgress()
			mu.Unlock()
			j.Publish(api.Event{
				Type: api.EventTrial, Trial: r.lo + ev.Trial, Label: ev.Label,
				Done: done, Total: total, Seconds: ev.Seconds, Err: ev.Err,
			})
		case api.EventDone:
			final = ev.Status
		}
		return nil
	})
	if werr != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("watching %s on %s: %w", sub.ID, w.url, werr)
	}
	if final == nil {
		return fmt.Errorf("event stream of %s on %s ended without a final status", sub.ID, w.url)
	}
	finished = true
	switch final.State {
	case api.StateDone:
		mu.Lock()
		st.done = final.Done
		st.failed = final.Failed
		st.stats = final.Stats
		publishProgress()
		mu.Unlock()
		return nil
	case api.StateCancelled:
		// We did not cancel it; the worker side was interfered with.
		return fmt.Errorf("worker %s reported the shard cancelled", w.url)
	default:
		return fmt.Errorf("%w on worker %s: %s", errShardFailed, w.url, final.Error)
	}
}
