package asm

import (
	"strings"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, src string) *funcsim.Machine {
	t.Helper()
	m := funcsim.New(mustAssemble(t, src))
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSumProgram(t *testing.T) {
	m := run(t, `
; sum the first n integers
.data
n:      .word 100
.text
start:  la   r1, n
        ld   r1, 0(r1)
        li   r3, 0
loop:   add  r3, r3, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r3
        halt
`)
	if len(m.Output) != 1 || m.Output[0] != 5050 {
		t.Errorf("output = %v, want [5050]", m.Output)
	}
}

func TestAllFormsAssemble(t *testing.T) {
	src := `
.data
val:    .word 7
vec:    .float 1.5, -2.5
buf:    .space 16
        .align 64
big:    .word 0x123456789
.text
        nop
        la   r1, val
        ld   r2, 0(r1)
        lw   r3, 0(r1)
        lb   r4, (r1)
        sd   r2, 8(r1)
        sw   r2, 8(r1)
        sb   r2, 8(r1)
        fld  f1, 0(r1)
        fsd  f1, 0(r1)
        add  r5, r2, r3
        addi r5, r5, -12
        mul  r6, r5, r5
        div  r7, r6, r5
        rem  r8, r6, r5
        and  r9, r8, r7
        andi r9, r8, 0xFF
        sll  r10, r9, r2
        slli r10, r9, 3
        slt  r11, r10, r9
        slti r11, r10, 5
        li   r12, -42
        lih  r13, 1
        li64 r14, 0x123456789ABCDEF0
        fadd f2, f1, f1
        fmul f3, f2, f2
        fdiv f4, f3, f2
        fsqrt f5, f4
        feq  r15, f4, f5
        cvtif f6, r15
        cvtfi r16, f6
        movif f7, r16
        movfi r17, f7
        beq  r0, r0, fwd
        sub  r18, r17, r16
fwd:    bne  r0, r1, next
next:   blt  r0, r1, n2
n2:     bge  r1, r0, n3
n3:     jal  ra, sub1
        j    end
sub1:   jr   ra
        jalr r20, ra
end:    out  r5
        halt
`
	p := mustAssemble(t, src)
	// li64 expands to two instructions; everything else is one.
	m := funcsim.New(p)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Error("program did not halt")
	}
}

func TestLi64(t *testing.T) {
	m := run(t, `
.text
    li64 r1, 0x123456789ABCDEF0
    out  r1
    li64 r2, -1
    out  r2
    halt
`)
	if m.Output[0] != 0x123456789ABCDEF0 {
		t.Errorf("li64 = %#x", m.Output[0])
	}
	if m.Output[1] != ^uint64(0) {
		t.Errorf("li64(-1) = %#x", m.Output[1])
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAssemble(t, `
.text
    add r1, sp, zero
    jal ra, next
next:
    halt
`)
	if p.Text[0].Rs1 != isa.RegSP || p.Text[0].Rs2 != isa.RegZero {
		t.Errorf("aliases: %v", p.Text[0])
	}
	if p.Text[1].Rd != isa.RegLink {
		t.Errorf("ra alias: %v", p.Text[1])
	}
}

func TestFPRegisters(t *testing.T) {
	p := mustAssemble(t, ".text\n fadd f1, f2, f31\n halt")
	in := p.Text[0]
	if in.Rd != isa.FPBase+1 || in.Rs1 != isa.FPBase+2 || in.Rs2 != isa.FPBase+31 {
		t.Errorf("fp regs: %v", in)
	}
}

func TestBranchLiteralOffset(t *testing.T) {
	p := mustAssemble(t, ".text\n beq r0, r0, 16\n nop\n halt")
	if p.Text[0].Imm != 16 {
		t.Errorf("literal offset = %d", p.Text[0].Imm)
	}
}

func TestDataLayout(t *testing.T) {
	p := mustAssemble(t, `
.data
a:  .word 1
b:  .float 2.0
c:  .space 3
    .align 8
d:  .word 4
.text
    halt
`)
	if p.Symbols["a"] != prog.DataBase {
		t.Errorf("a at %#x", p.Symbols["a"])
	}
	if p.Symbols["b"] != prog.DataBase+8 {
		t.Errorf("b at %#x", p.Symbols["b"])
	}
	if p.Symbols["c"] != prog.DataBase+16 {
		t.Errorf("c at %#x", p.Symbols["c"])
	}
	if p.Symbols["d"] != prog.DataBase+24 {
		t.Errorf("d at %#x (align)", p.Symbols["d"])
	}
	if len(p.Data) != 32 {
		t.Errorf("data length = %d", len(p.Data))
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	p := mustAssemble(t, ".text\nfoo: bar: halt")
	if p.Symbols["foo"] != p.Symbols["bar"] || p.Symbols["foo"] != prog.TextBase {
		t.Errorf("labels: foo=%#x bar=%#x", p.Symbols["foo"], p.Symbols["bar"])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown op", ".text\n frobnicate r1, r2\n", "unknown instruction"},
		{"bad reg", ".text\n add r1, r99, r2\n", "bad register"},
		{"bad operand count", ".text\n add r1, r2\n", "wants 3 operands"},
		{"undefined label", ".text\n j nowhere\n", "undefined label"},
		{"duplicate label", ".text\nx: nop\nx: nop\n", "duplicate label"},
		{"inst in data", ".data\n add r1, r2, r3\n", "in .data section"},
		{"word in text", ".text\n .word 5\n", "outside .data"},
		{"bad label char", ".text\n1bad: nop\n", "invalid label"},
		{"li too big", ".text\n li r1, 0x100000000\n", "does not fit"},
		{"bad mem operand", ".text\n ld r1, r2\n", "bad memory operand"},
		{"bad int", ".data\n .word xyz\n", "bad integer"},
		{"bad float", ".data\n .float abc\n", "bad float"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("e", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("e", ".text\n nop\n nop\n bogus r1\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 4 {
		t.Errorf("error line = %d, want 4", aerr.Line)
	}
}

// TestAgainstBuilder cross-checks the assembler against the programmatic
// builder on an identical program.
func TestAgainstBuilder(t *testing.T) {
	src := `
.text
start:  li   r1, 10
        li   r2, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r2
        halt
`
	p1 := mustAssemble(t, src)

	b := prog.NewBuilder("test")
	b.Label("start")
	b.Li(1, 10)
	b.Li(2, 0)
	b.Label("loop")
	b.R(isa.OpAdd, 2, 2, 1)
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(2)
	b.Halt()
	p2 := b.MustBuild()

	if len(p1.Text) != len(p2.Text) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Text), len(p2.Text))
	}
	for i := range p1.Text {
		if p1.Text[i] != p2.Text[i] {
			t.Errorf("inst %d: %v vs %v", i, p1.Text[i], p2.Text[i])
		}
	}
}

func TestHexAndNegative(t *testing.T) {
	m := run(t, `
.text
    li r1, 0xFF
    li r2, -0x10
    add r3, r1, r2
    out r3
    halt
`)
	if m.Output[0] != 0xEF {
		t.Errorf("0xFF - 0x10 = %#x", m.Output[0])
	}
}

// TestDisassemblyRoundTrip: for representative instructions, the
// disassembly printed by isa.Inst.String() is valid assembler input that
// re-encodes to the identical instruction.
func TestDisassemblyRoundTrip(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpNop},
		{Op: isa.OpHalt},
		{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.OpSub, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: isa.OpAddi, Rd: 4, Rs1: 5, Imm: -1000},
		{Op: isa.OpAndi, Rd: 4, Rs1: 5, Imm: 255},
		{Op: isa.OpSlli, Rd: 6, Rs1: 7, Imm: 3},
		{Op: isa.OpSlt, Rd: 8, Rs1: 9, Rs2: 10},
		{Op: isa.OpLi, Rd: 11, Imm: 42},
		{Op: isa.OpLih, Rd: 12, Imm: 0x1234},
		{Op: isa.OpMul, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: isa.OpDiv, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: isa.OpLd, Rd: 19, Rs1: 20, Imm: 64},
		{Op: isa.OpLb, Rd: 19, Rs1: 20, Imm: -8},
		{Op: isa.OpSd, Rs1: 21, Rs2: 22, Imm: 16},
		{Op: isa.OpFld, Rd: isa.FPBase + 1, Rs1: 2, Imm: 8},
		{Op: isa.OpFsd, Rs1: 2, Rs2: isa.FPBase + 1, Imm: 8},
		{Op: isa.OpBeq, Rs1: 1, Rs2: 2, Imm: 32},
		{Op: isa.OpBlt, Rs1: 3, Rs2: 4, Imm: -64},
		{Op: isa.OpJ, Imm: 128},
		{Op: isa.OpJal, Rd: isa.RegLink, Imm: 8},
		{Op: isa.OpJr, Rs1: isa.RegLink},
		{Op: isa.OpJalr, Rd: 5, Rs1: 6},
		{Op: isa.OpFadd, Rd: isa.FPBase + 1, Rs1: isa.FPBase + 2, Rs2: isa.FPBase + 3},
		{Op: isa.OpFdiv, Rd: isa.FPBase + 4, Rs1: isa.FPBase + 5, Rs2: isa.FPBase + 6},
		{Op: isa.OpFsqrt, Rd: isa.FPBase + 7, Rs1: isa.FPBase + 8},
		{Op: isa.OpFeq, Rd: 9, Rs1: isa.FPBase + 1, Rs2: isa.FPBase + 2},
		{Op: isa.OpCvtIF, Rd: isa.FPBase + 9, Rs1: 10},
		{Op: isa.OpCvtFI, Rd: 11, Rs1: isa.FPBase + 10},
		{Op: isa.OpMovIF, Rd: isa.FPBase + 11, Rs1: 12},
		{Op: isa.OpMovFI, Rd: 13, Rs1: isa.FPBase + 12},
		{Op: isa.OpOut, Rs1: 14},
	}
	for _, want := range insts {
		src := ".text\n" + want.String() + "\n"
		p, err := Assemble("rt", src)
		if err != nil {
			t.Errorf("%v: disassembly %q does not assemble: %v", want.Op, want.String(), err)
			continue
		}
		if len(p.Text) != 1 {
			t.Errorf("%q assembled to %d instructions", want.String(), len(p.Text))
			continue
		}
		if p.Text[0] != want {
			t.Errorf("round trip %q: got %+v, want %+v", want.String(), p.Text[0], want)
		}
	}
}

// TestRegNamesAllParse: every register name that RegName can print is
// accepted by the assembler's register parser.
func TestRegNamesAllParse(t *testing.T) {
	for r := uint8(0); r < isa.NumRegs; r++ {
		got, err := parseReg(isa.RegName(r))
		if err != nil || got != r {
			t.Errorf("parseReg(%q) = %d, %v", isa.RegName(r), got, err)
		}
	}
}
