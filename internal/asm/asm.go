// Package asm implements a two-pass text assembler for SRISC.
//
// The syntax is conventional:
//
//	; sum the first n integers
//	.data
//	n:      .word 100
//	.text
//	start:  la   r1, n
//	        ld   r1, 0(r1)
//	        li   r3, 0
//	loop:   add  r3, r3, r1
//	        addi r1, r1, -1
//	        bne  r1, r0, loop
//	        out  r3
//	        halt
//
// Comments start with ';' or '#'. Labels end with ':' and may share a line
// with an instruction or directive. Registers are r0..r31 and f0..f31,
// with aliases zero (r0), sp (r30) and ra (r31). Immediates are decimal or
// 0x-prefixed hex. Directives: .text, .data, .word, .float, .space,
// .align. The pseudo-instruction li64 materialises a full 64-bit constant
// as a lih/ori pair.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Error describes an assembly error with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

// item is a parsed source statement awaiting label resolution.
type item struct {
	line   int
	mnem   string
	args   []string
	nInsts int // instructions this item expands to
}

type assembler struct {
	name   string
	items  []item
	labels map[string]uint64 // absolute addresses (text or data)

	textLen int // instructions so far (pass 1)
	data    []byte

	insts []isa.Inst
}

// Assemble translates SRISC assembly source into a loadable program.
func Assemble(name, src string) (*prog.Program, error) {
	a := &assembler{name: name, labels: make(map[string]uint64)}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	return &prog.Program{
		Name:    name,
		Text:    a.insts,
		Data:    a.data,
		Symbols: a.labels,
	}, nil
}

// pass1 tokenises, assigns label addresses and lays out the data segment.
func (a *assembler) pass1(src string) error {
	sec := secText
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel off any labels.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t") {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validLabel(label) {
				return &Error{lineNo + 1, fmt.Sprintf("invalid label %q", label)}
			}
			if _, dup := a.labels[label]; dup {
				return &Error{lineNo + 1, fmt.Sprintf("duplicate label %q", label)}
			}
			if sec == secText {
				a.labels[label] = prog.TextBase + uint64(a.textLen)*isa.InstBytes
			} else {
				a.labels[label] = prog.DataBase + uint64(len(a.data))
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		mnem, rest, _ := strings.Cut(line, " ")
		mnem = strings.ToLower(strings.TrimSpace(mnem))
		args := splitArgs(rest)

		switch mnem {
		case ".text":
			sec = secText
			continue
		case ".data":
			sec = secData
			continue
		case ".word", ".float", ".space", ".align":
			if sec != secData {
				return &Error{lineNo + 1, mnem + " outside .data section"}
			}
			if err := a.layoutData(lineNo+1, mnem, args); err != nil {
				return err
			}
			continue
		}
		if sec != secText {
			return &Error{lineNo + 1, fmt.Sprintf("instruction %q in .data section", mnem)}
		}
		n := 1
		if mnem == "li64" {
			n = 2
		}
		a.items = append(a.items, item{line: lineNo + 1, mnem: mnem, args: args, nInsts: n})
		a.textLen += n
	}
	return nil
}

func (a *assembler) layoutData(line int, mnem string, args []string) error {
	switch mnem {
	case ".word":
		a.alignData(8)
		for _, s := range args {
			v, err := parseInt(s)
			if err != nil {
				return &Error{line, err.Error()}
			}
			a.appendWord(uint64(v))
		}
	case ".float":
		a.alignData(8)
		for _, s := range args {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return &Error{line, fmt.Sprintf("bad float %q", s)}
			}
			a.appendWord(isa.F2B(f))
		}
	case ".space":
		if len(args) != 1 {
			return &Error{line, ".space wants one size argument"}
		}
		n, err := parseInt(args[0])
		if err != nil || n < 0 {
			return &Error{line, fmt.Sprintf("bad size %q", args[0])}
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		if len(args) != 1 {
			return &Error{line, ".align wants one argument"}
		}
		n, err := parseInt(args[0])
		if err != nil || n <= 0 {
			return &Error{line, fmt.Sprintf("bad alignment %q", args[0])}
		}
		a.alignData(int(n))
	}
	return nil
}

func (a *assembler) alignData(n int) {
	for len(a.data)%n != 0 {
		a.data = append(a.data, 0)
	}
}

func (a *assembler) appendWord(v uint64) {
	for i := 0; i < 8; i++ {
		a.data = append(a.data, byte(v))
		v >>= 8
	}
}

// pass2 encodes instructions with all labels known.
func (a *assembler) pass2() error {
	pc := uint64(prog.TextBase)
	for _, it := range a.items {
		insts, err := a.encode(it, pc)
		if err != nil {
			return err
		}
		if len(insts) != it.nInsts {
			return &Error{it.line, fmt.Sprintf("internal: %q expanded to %d instructions, expected %d",
				it.mnem, len(insts), it.nInsts)}
		}
		a.insts = append(a.insts, insts...)
		pc += uint64(len(insts)) * isa.InstBytes
	}
	return nil
}

func (a *assembler) encode(it item, pc uint64) ([]isa.Inst, error) {
	fail := func(format string, args ...any) ([]isa.Inst, error) {
		return nil, &Error{it.line, fmt.Sprintf(format, args...)}
	}
	want := func(n int) error {
		if len(it.args) != n {
			return &Error{it.line, fmt.Sprintf("%s wants %d operands, got %d", it.mnem, n, len(it.args))}
		}
		return nil
	}

	// Pseudo-instructions first.
	switch it.mnem {
	case "li64":
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		v, err := parseInt(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		return []isa.Inst{
			{Op: isa.OpLih, Rd: rd, Imm: int32(uint64(v) >> 32)},
			{Op: isa.OpOri, Rd: rd, Rs1: rd, Imm: int32(uint32(v))},
		}, nil
	case "la":
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		addr, ok := a.labels[it.args[1]]
		if !ok {
			return fail("undefined label %q", it.args[1])
		}
		if addr > 0x7FFF_FFFF {
			return fail("label %q address %#x exceeds immediate range", it.args[1], addr)
		}
		return []isa.Inst{{Op: isa.OpLi, Rd: rd, Imm: int32(addr)}}, nil
	}

	op, ok := isa.OpByName(it.mnem)
	if !ok {
		return fail("unknown instruction %q", it.mnem)
	}
	oi := isa.Info(op)
	in := isa.Inst{Op: op}

	switch {
	case op == isa.OpNop || op == isa.OpHalt:
		if err := want(0); err != nil {
			return nil, err
		}
	case op == isa.OpOut || op == isa.OpJr:
		if err := want(1); err != nil {
			return nil, err
		}
		r, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		in.Rs1 = r
	case op == isa.OpJ:
		if err := want(1); err != nil {
			return nil, err
		}
		imm, err := a.branchTarget(it.args[0], pc)
		if err != nil {
			return fail("%v", err)
		}
		in.Imm = imm
	case op == isa.OpJal:
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		imm, err := a.branchTarget(it.args[1], pc)
		if err != nil {
			return fail("%v", err)
		}
		in.Rd, in.Imm = rd, imm
	case op == isa.OpJalr:
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		rs, err := parseReg(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Rd, in.Rs1 = rd, rs
	case oi.IsBranch:
		if err := want(3); err != nil {
			return nil, err
		}
		rs1, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		rs2, err := parseReg(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		imm, err := a.branchTarget(it.args[2], pc)
		if err != nil {
			return fail("%v", err)
		}
		in.Rs1, in.Rs2, in.Imm = rs1, rs2, imm
	case oi.IsLoad:
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		imm, base, err := parseMemOperand(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Rd, in.Rs1, in.Imm = rd, base, imm
	case oi.IsStore:
		if err := want(2); err != nil {
			return nil, err
		}
		rv, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		imm, base, err := parseMemOperand(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Rs2, in.Rs1, in.Imm = rv, base, imm
	case op == isa.OpLi || op == isa.OpLih:
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		v, err := parseInt(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		if v < -(1<<31) || v > (1<<31)-1 {
			return fail("immediate %d does not fit in 32 bits (use li64)", v)
		}
		in.Rd, in.Imm = rd, int32(v)
	case oi.ReadsRs2 && oi.WritesRd: // three-register ops
		if err := want(3); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		rs1, err := parseReg(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		rs2, err := parseReg(it.args[2])
		if err != nil {
			return fail("%v", err)
		}
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
	case oi.ReadsRs1 && oi.WritesRd && oneOf(op, isa.OpFsqrt, isa.OpCvtIF, isa.OpCvtFI, isa.OpMovIF, isa.OpMovFI):
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		rs1, err := parseReg(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Rd, in.Rs1 = rd, rs1
	case oi.ReadsRs1 && oi.WritesRd: // register-immediate ops
		if err := want(3); err != nil {
			return nil, err
		}
		rd, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		rs1, err := parseReg(it.args[1])
		if err != nil {
			return fail("%v", err)
		}
		v, err := parseInt(it.args[2])
		if err != nil {
			return fail("%v", err)
		}
		if v < -(1<<31) || v > (1<<31)-1 {
			return fail("immediate %d does not fit in 32 bits", v)
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, int32(v)
	default:
		return fail("unsupported instruction form %q", it.mnem)
	}
	return []isa.Inst{in}, nil
}

// branchTarget resolves a label or literal offset to a PC-relative byte
// immediate.
func (a *assembler) branchTarget(arg string, pc uint64) (int32, error) {
	if addr, ok := a.labels[arg]; ok {
		off := int64(addr) - int64(pc)
		if off < -(1<<31) || off > (1<<31)-1 {
			return 0, fmt.Errorf("branch to %q out of range", arg)
		}
		return int32(off), nil
	}
	v, err := parseInt(arg)
	if err != nil {
		return 0, fmt.Errorf("undefined label or bad offset %q", arg)
	}
	if v < -(1<<31) || v > (1<<31)-1 {
		return 0, fmt.Errorf("offset %d out of range", v)
	}
	return int32(v), nil
}

var regAliases = map[string]uint8{
	"zero": isa.RegZero,
	"sp":   isa.RegSP,
	"ra":   isa.RegLink,
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'f') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			if s[0] == 'r' {
				return uint8(n), nil
			}
			return uint8(n + isa.FPBase), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseMemOperand parses "imm(reg)" or "(reg)".
func parseMemOperand(s string) (imm int32, base uint8, err error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q (want imm(reg))", s)
	}
	if open > 0 {
		v, err := parseInt(s[:open])
		if err != nil {
			return 0, 0, err
		}
		if v < -(1<<31) || v > (1<<31)-1 {
			return 0, 0, fmt.Errorf("displacement %d out of range", v)
		}
		imm = int32(v)
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	return imm, base, err
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func oneOf(op isa.Op, ops ...isa.Op) bool {
	for _, o := range ops {
		if op == o {
			return true
		}
	}
	return false
}
