package isa

import "math"

// Eval computes the result of a non-memory, non-control instruction given
// its source operand values a (rs1) and b (rs2). Operand and result values
// are raw 64-bit register contents; floating-point operations interpret
// them as IEEE-754 float64 bit patterns.
//
// Division by zero does not trap: integer division by zero yields all ones
// and remainder yields the dividend (the usual soft-ISA convention), while
// floating-point follows IEEE-754 (Inf/NaN).
func Eval(op Op, imm int32, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpAddi:
		return a + uint64(int64(imm))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	// Logical immediates are zero-extended (as on MIPS), which lets a
	// lih/ori pair materialise any 64-bit constant exactly.
	case OpAndi:
		return a & uint64(uint32(imm))
	case OpOri:
		return a | uint64(uint32(imm))
	case OpXori:
		return a ^ uint64(uint32(imm))
	case OpSll:
		return a << (b & 63)
	case OpSrl:
		return a >> (b & 63)
	case OpSra:
		return uint64(int64(a) >> (b & 63))
	case OpSlli:
		return a << (uint32(imm) & 63)
	case OpSrli:
		return a >> (uint32(imm) & 63)
	case OpSrai:
		return uint64(int64(a) >> (uint32(imm) & 63))
	case OpSlt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSltu:
		if a < b {
			return 1
		}
		return 0
	case OpSlti:
		if int64(a) < int64(imm) {
			return 1
		}
		return 0
	case OpLi:
		return uint64(int64(imm))
	case OpLih:
		return uint64(uint32(imm)) << 32
	case OpMul:
		return uint64(int64(a) * int64(b))
	case OpDiv:
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return a // overflow wraps, as on real hardware
		}
		return uint64(int64(a) / int64(b))
	case OpRem:
		if b == 0 {
			return a
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case OpFadd:
		return f2b(b2f(a) + b2f(b))
	case OpFsub:
		return f2b(b2f(a) - b2f(b))
	case OpFmul:
		return f2b(b2f(a) * b2f(b))
	case OpFdiv:
		return f2b(b2f(a) / b2f(b))
	case OpFsqrt:
		return f2b(math.Sqrt(b2f(a)))
	case OpFeq:
		if b2f(a) == b2f(b) {
			return 1
		}
		return 0
	case OpFlt:
		if b2f(a) < b2f(b) {
			return 1
		}
		return 0
	case OpFle:
		if b2f(a) <= b2f(b) {
			return 1
		}
		return 0
	case OpCvtIF:
		return f2b(float64(int64(a)))
	case OpCvtFI:
		f := b2f(a)
		switch {
		case math.IsNaN(f):
			return 0
		case f >= math.MaxInt64:
			return uint64(int64(math.MaxInt64))
		case f <= math.MinInt64:
			return 1 << 63 // bit pattern of math.MinInt64
		}
		return uint64(int64(f))
	case OpMovIF, OpMovFI:
		return a
	case OpOut:
		return a
	case OpNop, OpHalt:
		return 0
	}
	// Control-flow results are produced by EvalCtrl; memory values by the
	// memory system. Returning 0 keeps wrong-path execution harmless.
	return 0
}

// EvalCtrl evaluates a control-flow instruction at address pc with source
// operand values a (rs1) and b (rs2). It returns whether the branch is
// taken, the next PC, and the link value (pc+InstBytes, meaningful only
// for OpJal/OpJalr).
func EvalCtrl(op Op, pc uint64, imm int32, a, b uint64) (taken bool, next uint64, link uint64) {
	fall := pc + InstBytes
	target := pc + uint64(int64(imm))
	switch op {
	case OpBeq:
		taken = a == b
	case OpBne:
		taken = a != b
	case OpBlt:
		taken = int64(a) < int64(b)
	case OpBge:
		taken = int64(a) >= int64(b)
	case OpJ, OpJal:
		taken = true
	case OpJr, OpJalr:
		taken = true
		target = a
	default:
		return false, fall, fall
	}
	if taken {
		next = target
	} else {
		next = fall
	}
	return taken, next, fall
}

// EffAddr computes the effective address of a load or store given the base
// register value.
func EffAddr(imm int32, base uint64) uint64 {
	return base + uint64(int64(imm))
}

// LoadWidth returns the access size in bytes of a load/store opcode and
// whether the loaded value is sign-extended.
func LoadWidth(op Op) (size int, signExtend bool) {
	switch op {
	case OpLd, OpSd, OpFld, OpFsd:
		return 8, false
	case OpLw, OpSw:
		return 4, true
	case OpLb, OpSb:
		return 1, true
	}
	return 0, false
}

// SignExtend sign-extends the low size bytes of v.
func SignExtend(v uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	}
	return v
}

func b2f(b uint64) float64 { return math.Float64frombits(b) }
func f2b(f float64) uint64 { return math.Float64bits(f) }

// F2B converts a float64 to its register bit pattern.
func F2B(f float64) uint64 { return f2b(f) }

// B2F converts a register bit pattern to a float64.
func B2F(b uint64) float64 { return b2f(b) }
