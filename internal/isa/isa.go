// Package isa defines SRISC, the 64-bit load/store RISC instruction set
// used by the simulators in this repository.
//
// SRISC plays the role PISA plays for SimpleScalar: a simple, regular
// target that exposes the same operation classes (integer ALU, integer
// multiply/divide, floating-point add/multiply/divide, loads, stores and
// branches) that the paper's Table 1 machine provides functional units for.
//
// The register file has 32 integer registers (r0 is hardwired to zero) and
// 32 floating-point registers. Architectural register indices occupy a
// single 64-entry namespace: integer registers are 0..31 and floating-point
// registers are 32..63, which lets the rename logic use one map table, as
// the paper's design requires.
//
// Instructions are fixed-width 64-bit words (see Encode) and the PC
// advances by InstBytes. Immediates are 32-bit and sign-extended.
package isa

import "fmt"

// Register file layout.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// RegZero is hardwired to zero; writes to it are discarded.
	RegZero = 0
	// RegSP is the conventional stack pointer.
	RegSP = 30
	// RegLink is the conventional link register used by JAL.
	RegLink = 31
	// FPBase is the architectural index of f0.
	FPBase = NumIntRegs
)

// InstBytes is the size of one encoded instruction in memory.
const InstBytes = 8

// Op enumerates SRISC opcodes.
type Op uint8

const (
	OpNop Op = iota
	OpHalt
	// OpOut appends the integer value of rs1 to the machine's output
	// stream. It exists so example programs have an observable,
	// deterministic effect besides final memory state.
	OpOut

	// Integer ALU (latency 1).
	OpAdd
	OpSub
	OpAddi
	OpAnd
	OpOr
	OpXor
	OpAndi
	OpOri
	OpXori
	OpSll
	OpSrl
	OpSra
	OpSlli
	OpSrli
	OpSrai
	OpSlt
	OpSltu
	OpSlti
	OpLi  // rd = signext(imm)
	OpLih // rd = imm << 32 (load immediate high)

	// Integer multiply/divide.
	OpMul
	OpDiv
	OpRem

	// Memory.
	OpLd // load 64-bit
	OpLw // load 32-bit, sign-extended
	OpLb // load 8-bit, sign-extended
	OpSd // store 64-bit
	OpSw // store 32-bit
	OpSb // store 8-bit
	OpFld
	OpFsd

	// Control flow. Conditional branch targets are PC-relative byte
	// offsets; Jr/Jalr jump to the value of rs1.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpJ
	OpJal
	OpJr
	OpJalr

	// Floating point (operands/results in FP registers).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFeq // rd (int) = rs1 == rs2
	OpFlt // rd (int) = rs1 < rs2
	OpFle // rd (int) = rs1 <= rs2
	OpCvtIF
	OpCvtFI
	OpMovIF // move raw bits, int reg -> fp reg
	OpMovFI // move raw bits, fp reg -> int reg

	NumOps
)

// Pool identifies the functional-unit pool that executes an operation,
// mirroring Table 1's functional unit mix.
type Pool uint8

const (
	PoolNone Pool = iota
	PoolIntALU
	PoolIntMult // integer multiply and divide share the IntMult units
	PoolFPAdd   // FP add/sub, compares and conversions
	PoolFPMult  // FP multiply, divide and sqrt share the FPMult unit
	PoolMemPort // D-cache ports, shared by loads and stores
	NumPools
)

// String returns a short name for the pool.
func (p Pool) String() string {
	switch p {
	case PoolNone:
		return "none"
	case PoolIntALU:
		return "int-alu"
	case PoolIntMult:
		return "int-mult"
	case PoolFPAdd:
		return "fp-add"
	case PoolFPMult:
		return "fp-mult"
	case PoolMemPort:
		return "mem-port"
	}
	return fmt.Sprintf("pool(%d)", uint8(p))
}

// OpInfo describes the static properties of an opcode.
type OpInfo struct {
	Name string
	Pool Pool
	// Latency in cycles from issue to result availability. Matches
	// SimpleScalar's defaults: intALU 1, intMult 3, intDiv 20, fpAdd 2,
	// fpMult 4, fpDiv 12, fpSqrt 24. Loads use 1 cycle for address
	// generation plus the cache access time modelled separately.
	Latency   int
	Pipelined bool

	ReadsRs1 bool
	ReadsRs2 bool
	WritesRd bool

	IsBranch bool // conditional control flow
	IsJump   bool // unconditional control flow
	IsLoad   bool
	IsStore  bool
	IsFP     bool
}

// IsCtrl reports whether the opcode changes control flow.
func (oi *OpInfo) IsCtrl() bool { return oi.IsBranch || oi.IsJump }

// IsMem reports whether the opcode accesses data memory.
func (oi *OpInfo) IsMem() bool { return oi.IsLoad || oi.IsStore }

var opInfos = [NumOps]OpInfo{
	OpNop:  {Name: "nop", Pool: PoolNone, Latency: 1, Pipelined: true},
	OpHalt: {Name: "halt", Pool: PoolNone, Latency: 1, Pipelined: true},
	OpOut:  {Name: "out", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true},

	OpAdd:  {Name: "add", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpSub:  {Name: "sub", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpAddi: {Name: "addi", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpAnd:  {Name: "and", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpOr:   {Name: "or", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpXor:  {Name: "xor", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpAndi: {Name: "andi", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpOri:  {Name: "ori", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpXori: {Name: "xori", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpSll:  {Name: "sll", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpSrl:  {Name: "srl", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpSra:  {Name: "sra", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpSlli: {Name: "slli", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpSrli: {Name: "srli", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpSrai: {Name: "srai", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpSlt:  {Name: "slt", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpSltu: {Name: "sltu", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpSlti: {Name: "slti", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpLi:   {Name: "li", Pool: PoolIntALU, Latency: 1, Pipelined: true, WritesRd: true},
	OpLih:  {Name: "lih", Pool: PoolIntALU, Latency: 1, Pipelined: true, WritesRd: true},

	OpMul: {Name: "mul", Pool: PoolIntMult, Latency: 3, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpDiv: {Name: "div", Pool: PoolIntMult, Latency: 20, Pipelined: false, ReadsRs1: true, ReadsRs2: true, WritesRd: true},
	OpRem: {Name: "rem", Pool: PoolIntMult, Latency: 20, Pipelined: false, ReadsRs1: true, ReadsRs2: true, WritesRd: true},

	OpLd:  {Name: "ld", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true, IsLoad: true},
	OpLw:  {Name: "lw", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true, IsLoad: true},
	OpLb:  {Name: "lb", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true, IsLoad: true},
	OpSd:  {Name: "sd", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsStore: true},
	OpSw:  {Name: "sw", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsStore: true},
	OpSb:  {Name: "sb", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsStore: true},
	OpFld: {Name: "fld", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true, IsLoad: true, IsFP: true},
	OpFsd: {Name: "fsd", Pool: PoolMemPort, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsStore: true, IsFP: true},

	OpBeq: {Name: "beq", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsBranch: true},
	OpBne: {Name: "bne", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsBranch: true},
	OpBlt: {Name: "blt", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsBranch: true},
	OpBge: {Name: "bge", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, ReadsRs2: true, IsBranch: true},
	OpJ:   {Name: "j", Pool: PoolIntALU, Latency: 1, Pipelined: true, IsJump: true},
	OpJal: {Name: "jal", Pool: PoolIntALU, Latency: 1, Pipelined: true, WritesRd: true, IsJump: true},
	OpJr:  {Name: "jr", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, IsJump: true},
	OpJalr: {Name: "jalr", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true,
		IsJump: true},

	OpFadd:  {Name: "fadd", Pool: PoolFPAdd, Latency: 2, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true, IsFP: true},
	OpFsub:  {Name: "fsub", Pool: PoolFPAdd, Latency: 2, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true, IsFP: true},
	OpFmul:  {Name: "fmul", Pool: PoolFPMult, Latency: 4, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true, IsFP: true},
	OpFdiv:  {Name: "fdiv", Pool: PoolFPMult, Latency: 12, Pipelined: false, ReadsRs1: true, ReadsRs2: true, WritesRd: true, IsFP: true},
	OpFsqrt: {Name: "fsqrt", Pool: PoolFPMult, Latency: 24, Pipelined: false, ReadsRs1: true, WritesRd: true, IsFP: true},
	OpFeq:   {Name: "feq", Pool: PoolFPAdd, Latency: 2, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true, IsFP: true},
	OpFlt:   {Name: "flt", Pool: PoolFPAdd, Latency: 2, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true, IsFP: true},
	OpFle:   {Name: "fle", Pool: PoolFPAdd, Latency: 2, Pipelined: true, ReadsRs1: true, ReadsRs2: true, WritesRd: true, IsFP: true},
	OpCvtIF: {Name: "cvtif", Pool: PoolFPAdd, Latency: 2, Pipelined: true, ReadsRs1: true, WritesRd: true, IsFP: true},
	OpCvtFI: {Name: "cvtfi", Pool: PoolFPAdd, Latency: 2, Pipelined: true, ReadsRs1: true, WritesRd: true, IsFP: true},
	OpMovIF: {Name: "movif", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
	OpMovFI: {Name: "movfi", Pool: PoolIntALU, Latency: 1, Pipelined: true, ReadsRs1: true, WritesRd: true},
}

// Info returns the static description of op. It panics on an invalid
// opcode, which indicates a decoder bug rather than a recoverable error.
func Info(op Op) *OpInfo {
	if op >= NumOps {
		panic(fmt.Sprintf("isa: invalid opcode %d", op))
	}
	return &opInfos[op]
}

// String returns the mnemonic of the opcode.
func (op Op) String() string {
	if op >= NumOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opInfos[op].Name
}

// OpByName maps a mnemonic back to its opcode. The second result is false
// if the name is unknown.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < NumOps; op++ {
		m[opInfos[op].Name] = op
	}
	return m
}()

// Inst is a decoded SRISC instruction. Register fields hold architectural
// indices in the unified 0..63 namespace.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Info returns the static description of the instruction's opcode.
func (in Inst) Info() *OpInfo { return Info(in.Op) }

// Encode packs the instruction into a 64-bit word:
//
//	bits 63..56  opcode
//	bits 55..48  rd
//	bits 47..40  rs1
//	bits 39..32  rs2
//	bits 31..0   imm (two's complement)
func Encode(in Inst) uint64 {
	return uint64(in.Op)<<56 |
		uint64(in.Rd)<<48 |
		uint64(in.Rs1)<<40 |
		uint64(in.Rs2)<<32 |
		uint64(uint32(in.Imm))
}

// Decode unpacks a 64-bit instruction word. Words with an out-of-range
// opcode or register field decode to OpNop so that wrong-path fetches of
// arbitrary memory never crash the pipeline; DecodeStrict reports them.
func Decode(w uint64) Inst {
	in, ok := DecodeStrict(w)
	if !ok {
		return Inst{Op: OpNop}
	}
	return in
}

// DecodeStrict unpacks a 64-bit instruction word, reporting whether the
// word is a well-formed SRISC instruction.
func DecodeStrict(w uint64) (Inst, bool) {
	in := Inst{
		Op:  Op(w >> 56),
		Rd:  uint8(w >> 48),
		Rs1: uint8(w >> 40),
		Rs2: uint8(w >> 32),
		Imm: int32(uint32(w)),
	}
	if in.Op >= NumOps || in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return Inst{Op: OpNop}, false
	}
	return in, true
}

// RegName returns the assembly name of an architectural register index:
// r0..r31 for integer registers, f0..f31 for floating-point registers.
func RegName(r uint8) string {
	if r < NumIntRegs {
		return fmt.Sprintf("r%d", r)
	}
	if r < NumRegs {
		return fmt.Sprintf("f%d", r-FPBase)
	}
	return fmt.Sprintf("reg(%d)", r)
}

// String disassembles the instruction.
func (in Inst) String() string {
	oi := in.Info()
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return oi.Name
	case in.Op == OpOut || in.Op == OpJr:
		return fmt.Sprintf("%s %s", oi.Name, RegName(in.Rs1))
	case in.Op == OpJ:
		return fmt.Sprintf("%s %d", oi.Name, in.Imm)
	case in.Op == OpJal:
		return fmt.Sprintf("%s %s, %d", oi.Name, RegName(in.Rd), in.Imm)
	case in.Op == OpJalr:
		return fmt.Sprintf("%s %s, %s", oi.Name, RegName(in.Rd), RegName(in.Rs1))
	case in.Op == OpLi || in.Op == OpLih:
		return fmt.Sprintf("%s %s, %d", oi.Name, RegName(in.Rd), in.Imm)
	case oi.IsBranch:
		return fmt.Sprintf("%s %s, %s, %d", oi.Name, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case oi.IsLoad:
		return fmt.Sprintf("%s %s, %d(%s)", oi.Name, RegName(in.Rd), in.Imm, RegName(in.Rs1))
	case oi.IsStore:
		return fmt.Sprintf("%s %s, %d(%s)", oi.Name, RegName(in.Rs2), in.Imm, RegName(in.Rs1))
	case oi.ReadsRs2:
		return fmt.Sprintf("%s %s, %s, %s", oi.Name, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case in.Op == OpFsqrt || in.Op == OpCvtIF || in.Op == OpCvtFI || in.Op == OpMovIF || in.Op == OpMovFI:
		// Unary register-to-register operations take no immediate.
		return fmt.Sprintf("%s %s, %s", oi.Name, RegName(in.Rd), RegName(in.Rs1))
	case oi.ReadsRs1 && oi.WritesRd:
		return fmt.Sprintf("%s %s, %s, %d", oi.Name, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s, %d", oi.Name, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	}
}
