package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{
			Op:  Op(op % uint8(NumOps)),
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs,
			Imm: imm,
		}
		got, ok := DecodeStrict(Encode(in))
		return ok && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalid(t *testing.T) {
	cases := []struct {
		name string
		word uint64
	}{
		{"bad opcode", uint64(NumOps) << 56},
		{"bad opcode max", uint64(255) << 56},
		{"bad rd", Encode(Inst{Op: OpAdd}) | uint64(NumRegs)<<48},
		{"bad rs1", Encode(Inst{Op: OpAdd}) | uint64(200)<<40},
		{"bad rs2", Encode(Inst{Op: OpAdd}) | uint64(NumRegs)<<32},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, ok := DecodeStrict(c.word); ok {
				t.Errorf("DecodeStrict(%#x) accepted an invalid word", c.word)
			}
			if got := Decode(c.word); got.Op != OpNop {
				t.Errorf("Decode(%#x) = %v, want nop", c.word, got)
			}
		})
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("no-such-op"); ok {
		t.Error("OpByName accepted an unknown mnemonic")
	}
}

func TestInfoConsistency(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		oi := Info(op)
		if oi.Name == "" {
			t.Fatalf("op %d has no name", op)
		}
		if oi.Latency < 1 {
			t.Errorf("%s: latency %d < 1", oi.Name, oi.Latency)
		}
		if oi.IsLoad && oi.Pool != PoolMemPort {
			t.Errorf("%s: load not on mem port", oi.Name)
		}
		if oi.IsStore && oi.WritesRd {
			t.Errorf("%s: store writes a register", oi.Name)
		}
		if oi.IsBranch && oi.IsJump {
			t.Errorf("%s: both branch and jump", oi.Name)
		}
		if !oi.Pipelined && oi.Latency <= 4 {
			t.Errorf("%s: short-latency op marked unpipelined", oi.Name)
		}
	}
}

func TestEvalIntALU(t *testing.T) {
	cases := []struct {
		op   Op
		imm  int32
		a, b uint64
		want uint64
	}{
		{OpAdd, 0, 3, 4, 7},
		{OpAdd, 0, ^uint64(0), 1, 0},
		{OpSub, 0, 3, 4, ^uint64(0)},
		{OpAddi, -1, 10, 0, 9},
		{OpAnd, 0, 0xF0F0, 0xFF00, 0xF000},
		{OpOr, 0, 0xF0F0, 0x0F0F, 0xFFFF},
		{OpXor, 0, 0xFFFF, 0x0F0F, 0xF0F0},
		{OpAndi, -1, 0xFFFF_FFFF_0000_1234, 0, 0x1234},   // zero-extended imm
		{OpOri, -1, 0, 0, 0xFFFF_FFFF},                   // zero-extended imm
		{OpXori, int32(-0x8000_0000), 0, 0, 0x8000_0000}, // zero-extended imm
		{OpSll, 0, 1, 8, 256},
		{OpSll, 0, 1, 64 + 3, 8}, // shift amount masked to 6 bits
		{OpSrl, 0, 1 << 63, 63, 1},
		{OpSra, 0, 1 << 63, 63, ^uint64(0)},
		{OpSlli, 4, 3, 0, 48},
		{OpSrli, 4, 256, 0, 16},
		{OpSrai, 1, negU64(8), 0, negU64(4)},
		{OpSlt, 0, negU64(1), 0, 1},
		{OpSltu, 0, negU64(1), 0, 0},
		{OpSlti, 5, 4, 0, 1},
		{OpLi, -7, 99, 99, negU64(7)},
		{OpLih, 0x1234, 0, 0, 0x1234_0000_0000},
		{OpMul, 0, 7, 6, 42},
		{OpMul, 0, negU64(3), 5, negU64(15)},
		{OpDiv, 0, 42, 6, 7},
		{OpDiv, 0, negU64(42), 6, negU64(7)},
		{OpDiv, 0, 5, 0, ^uint64(0)},             // divide by zero
		{OpDiv, 0, 1 << 63, ^uint64(0), 1 << 63}, // MinInt64 / -1 wraps
		{OpRem, 0, 43, 6, 1},
		{OpRem, 0, 5, 0, 5},
		{OpRem, 0, 1 << 63, ^uint64(0), 0},
		{OpMovIF, 0, 0xDEAD, 0, 0xDEAD},
		{OpOut, 0, 123, 0, 123},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.imm, c.a, c.b); got != c.want {
			t.Errorf("Eval(%v, imm=%d, %#x, %#x) = %#x, want %#x", c.op, c.imm, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalFP(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float64
		want float64
	}{
		{OpFadd, 1.5, 2.25, 3.75},
		{OpFsub, 1.5, 2.5, -1.0},
		{OpFmul, 3, 4, 12},
		{OpFdiv, 1, 4, 0.25},
		{OpFsqrt, 81, 0, 9},
	}
	for _, c := range cases {
		got := B2F(Eval(c.op, 0, F2B(c.a), F2B(c.b)))
		if got != c.want {
			t.Errorf("Eval(%v, %g, %g) = %g, want %g", c.op, c.a, c.b, got, c.want)
		}
	}

	boolCases := []struct {
		op   Op
		a, b float64
		want uint64
	}{
		{OpFeq, 2, 2, 1}, {OpFeq, 2, 3, 0},
		{OpFlt, 2, 3, 1}, {OpFlt, 3, 2, 0},
		{OpFle, 2, 2, 1}, {OpFle, 3, 2, 0},
	}
	for _, c := range boolCases {
		if got := Eval(c.op, 0, F2B(c.a), F2B(c.b)); got != c.want {
			t.Errorf("Eval(%v, %g, %g) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalConversions(t *testing.T) {
	if got := B2F(Eval(OpCvtIF, 0, negU64(3), 0)); got != -3.0 {
		t.Errorf("cvtif(-3) = %g", got)
	}
	if got := Eval(OpCvtFI, 0, F2B(-3.75), 0); got != negU64(3) {
		t.Errorf("cvtfi(-3.75) = %d, want -3", int64(got))
	}
	nan := F2B(B2F(0x7FF8_0000_0000_0001))
	if got := Eval(OpCvtFI, 0, nan, 0); got != 0 {
		t.Errorf("cvtfi(NaN) = %#x, want 0", got)
	}
	if got := Eval(OpCvtFI, 0, F2B(1e300), 0); int64(got) != int64(^uint64(0)>>1) {
		t.Errorf("cvtfi(1e300) = %d, want MaxInt64", int64(got))
	}
	if got := Eval(OpCvtFI, 0, F2B(-1e300), 0); got != 1<<63 {
		t.Errorf("cvtfi(-1e300) = %#x, want MinInt64 pattern", got)
	}
}

func TestEvalCtrl(t *testing.T) {
	const pc = 0x1000
	fall := uint64(pc + InstBytes)
	cases := []struct {
		op        Op
		imm       int32
		a, b      uint64
		wantTaken bool
		wantNext  uint64
	}{
		{OpBeq, 64, 5, 5, true, pc + 64},
		{OpBeq, 64, 5, 6, false, fall},
		{OpBne, -16, 5, 6, true, pc - 16},
		{OpBne, -16, 5, 5, false, fall},
		{OpBlt, 8, negU64(1), 0, true, pc + 8},
		{OpBlt, 8, 1, 0, false, fall},
		{OpBge, 8, 1, 0, true, pc + 8},
		{OpBge, 8, 1, 1, true, pc + 8},
		{OpBge, 8, negU64(2), 0, false, fall},
		{OpJ, 800, 0, 0, true, pc + 800},
		{OpJal, -8, 0, 0, true, pc - 8},
		{OpJr, 0, 0x4000, 0, true, 0x4000},
		{OpJalr, 0, 0x4000, 0, true, 0x4000},
	}
	for _, c := range cases {
		taken, next, link := EvalCtrl(c.op, pc, c.imm, c.a, c.b)
		if taken != c.wantTaken || next != c.wantNext {
			t.Errorf("EvalCtrl(%v, imm=%d, a=%#x) = taken=%v next=%#x, want %v %#x",
				c.op, c.imm, c.a, taken, next, c.wantTaken, c.wantNext)
		}
		if link != fall {
			t.Errorf("EvalCtrl(%v): link = %#x, want %#x", c.op, link, fall)
		}
	}
	// Non-control op: never taken.
	if taken, next, _ := EvalCtrl(OpAdd, pc, 0, 1, 2); taken || next != fall {
		t.Errorf("EvalCtrl(add) = %v, %#x; want false, fall-through", taken, next)
	}
}

func TestLoadWidth(t *testing.T) {
	cases := []struct {
		op      Op
		size    int
		signExt bool
	}{
		{OpLd, 8, false}, {OpSd, 8, false}, {OpFld, 8, false}, {OpFsd, 8, false},
		{OpLw, 4, true}, {OpSw, 4, true},
		{OpLb, 1, true}, {OpSb, 1, true},
		{OpAdd, 0, false},
	}
	for _, c := range cases {
		size, se := LoadWidth(c.op)
		if size != c.size || se != c.signExt {
			t.Errorf("LoadWidth(%v) = %d, %v; want %d, %v", c.op, size, se, c.size, c.signExt)
		}
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		size int
		want uint64
	}{
		{0x80, 1, 0xFFFF_FFFF_FFFF_FF80},
		{0x7F, 1, 0x7F},
		{0x8000, 2, 0xFFFF_FFFF_FFFF_8000},
		{0x8000_0000, 4, 0xFFFF_FFFF_8000_0000},
		{0x7FFF_FFFF, 4, 0x7FFF_FFFF},
		{0xDEAD, 8, 0xDEAD},
	}
	for _, c := range cases {
		if got := SignExtend(c.v, c.size); got != c.want {
			t.Errorf("SignExtend(%#x, %d) = %#x, want %#x", c.v, c.size, got, c.want)
		}
	}
}

func TestEffAddr(t *testing.T) {
	if got := EffAddr(-8, 0x1000); got != 0xFF8 {
		t.Errorf("EffAddr(-8, 0x1000) = %#x, want 0xff8", got)
	}
	if got := EffAddr(16, 0x1000); got != 0x1010 {
		t.Errorf("EffAddr(16, 0x1000) = %#x, want 0x1010", got)
	}
}

func TestRegName(t *testing.T) {
	cases := []struct {
		r    uint8
		want string
	}{
		{0, "r0"}, {31, "r31"}, {32, "f0"}, {63, "f31"}, {64, "reg(64)"},
	}
	for _, c := range cases {
		if got := RegName(c.r); got != c.want {
			t.Errorf("RegName(%d) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpHalt}, "halt"},
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Inst{Op: OpLd, Rd: 4, Rs1: 30, Imm: 16}, "ld r4, 16(r30)"},
		{Inst{Op: OpSd, Rs1: 30, Rs2: 4, Imm: -8}, "sd r4, -8(r30)"},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 32}, "beq r1, r2, 32"},
		{Inst{Op: OpJ, Imm: -64}, "j -64"},
		{Inst{Op: OpJr, Rs1: 31}, "jr r31"},
		{Inst{Op: OpFadd, Rd: 33, Rs1: 34, Rs2: 35}, "fadd f1, f2, f3"},
		{Inst{Op: OpLi, Rd: 5, Imm: 42}, "li r5, 42"},
		{Inst{Op: OpOut, Rs1: 7}, "out r7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%+v).String() = %q, want %q", c.in, got, c.want)
		}
	}
	// Every opcode must disassemble to something starting with its mnemonic.
	for op := Op(0); op < NumOps; op++ {
		s := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 4}.String()
		if !strings.HasPrefix(s, op.String()) {
			t.Errorf("disassembly %q does not start with mnemonic %q", s, op.String())
		}
	}
}

func TestPoolString(t *testing.T) {
	for p := Pool(0); p < NumPools; p++ {
		if s := p.String(); s == "" || strings.HasPrefix(s, "pool(") {
			t.Errorf("Pool(%d).String() = %q", p, s)
		}
	}
	if s := Pool(200).String(); s != "pool(200)" {
		t.Errorf("unknown pool string = %q", s)
	}
}

// negU64 returns the two's-complement representation of -v.
func negU64(v uint64) uint64 { return ^v + 1 }
