package cache

import "testing"

func smallCache(next *Cache, memLat int) *Cache {
	// 4 sets x 2 ways x 16B lines = 128 bytes.
	return NewCache(Config{Name: "t", SizeBytes: 128, Ways: 2, LineBytes: 16, HitLatency: 1}, next, memLat)
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(nil, 10)
	if lat := c.Access(0x100, false); lat != 11 {
		t.Errorf("cold miss latency = %d, want 11", lat)
	}
	if lat := c.Access(0x100, false); lat != 1 {
		t.Errorf("hit latency = %d, want 1", lat)
	}
	if lat := c.Access(0x10F, false); lat != 1 {
		t.Errorf("same-line hit latency = %d, want 1", lat)
	}
	if lat := c.Access(0x110, false); lat != 11 {
		t.Errorf("next-line miss latency = %d, want 11", lat)
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := smallCache(nil, 10)
	// Three lines mapping to set 0 (line size 16, 4 sets: stride 64).
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b
	if lat := c.Access(a, false); lat != 1 {
		t.Errorf("a evicted (latency %d)", lat)
	}
	if lat := c.Access(b, false); lat != 11 {
		t.Errorf("b not evicted (latency %d)", lat)
	}
}

func TestDirtyWriteback(t *testing.T) {
	l2 := smallCache(nil, 10)
	l1 := NewCache(Config{Name: "l1", SizeBytes: 32, Ways: 1, LineBytes: 16, HitLatency: 1}, l2, 0)
	// Write to a line, then conflict-evict it.
	l1.Access(0x00, true)  // set 0, dirty
	l1.Access(0x20, false) // set 0, evicts dirty line
	if l1.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", l1.Stats.Writebacks)
	}
	// Clean eviction: no writeback.
	l1.Access(0x40, false)
	if l1.Stats.Writebacks != 1 {
		t.Errorf("clean eviction triggered writeback")
	}
}

func TestTwoLevelLatency(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		IL1:        Config{Name: "il1", SizeBytes: 128, Ways: 2, LineBytes: 16, HitLatency: 1},
		DL1:        Config{Name: "dl1", SizeBytes: 128, Ways: 2, LineBytes: 16, HitLatency: 1},
		L2:         Config{Name: "l2", SizeBytes: 1024, Ways: 4, LineBytes: 32, HitLatency: 6},
		MemLatency: 40,
	})
	// Cold: DL1 miss -> L2 miss -> memory.
	if lat := h.DAccess(0x1000, false); lat != 1+6+40 {
		t.Errorf("cold access latency = %d, want 47", lat)
	}
	// DL1 hit.
	if lat := h.DAccess(0x1000, false); lat != 1 {
		t.Errorf("dl1 hit latency = %d, want 1", lat)
	}
	// IL1 miss on a line already in L2? Different line: cold.
	if lat := h.IFetch(0x1000); lat != 1+6 {
		t.Errorf("ifetch latency with L2 hit = %d, want 7", lat)
	}
}

func TestUnifiedL2Shared(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.DAccess(0x8000, false)
	before := h.L2.Stats.Misses
	h.IFetch(0x8000) // same line: should hit in L2 (unified)
	if h.L2.Stats.Misses != before {
		t.Error("instruction fetch missed in L2 after data access warmed it")
	}
}

func TestDefaultHierarchyGeometry(t *testing.T) {
	cfg := DefaultHierarchy()
	if got := cfg.IL1.Sets(); got != 1024 {
		t.Errorf("IL1 sets = %d, want 1024", got)
	}
	if got := cfg.DL1.Sets(); got != 512 {
		t.Errorf("DL1 sets = %d, want 512", got)
	}
	if got := cfg.L2.Sets(); got != 2048 {
		t.Errorf("L2 sets = %d, want 2048", got)
	}
}

func TestFlush(t *testing.T) {
	c := smallCache(nil, 10)
	c.Access(0x100, false)
	c.Flush()
	if lat := c.Access(0x100, false); lat != 11 {
		t.Errorf("access after flush hit (latency %d)", lat)
	}
}

func TestWriteAllocate(t *testing.T) {
	c := smallCache(nil, 10)
	if lat := c.Access(0x40, true); lat != 11 {
		t.Errorf("write miss latency = %d, want 11", lat)
	}
	if lat := c.Access(0x40, false); lat != 1 {
		t.Errorf("read after write-allocate missed (latency %d)", lat)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry did not panic")
		}
	}()
	NewCache(Config{Name: "bad", SizeBytes: 8, Ways: 2, LineBytes: 16, HitLatency: 1}, nil, 10)
}

func TestConfigString(t *testing.T) {
	s := DefaultHierarchy().IL1.String()
	if s == "" {
		t.Error("empty config string")
	}
}
