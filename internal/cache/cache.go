// Package cache models the simulated machine's memory hierarchy for
// timing purposes: separate L1 instruction and data caches backed by a
// unified L2, per the paper's Table 1 (64 KB 2-way IL1, 32 KB 2-way DL1
// with 2 R/W ports, 512 KB 4-way unified L2).
//
// Caches here carry no data — values always come from the functional
// memory, which is ECC-protected in the paper's fault model — only tags,
// LRU state and dirty bits, from which access latencies are derived.
// Dirty evictions are written back through a write buffer and are not
// charged on the access's critical path.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

func (c Config) String() string {
	return fmt.Sprintf("%s %dKB %d-way %dB-line (%d-cycle hit)",
		c.Name, c.SizeBytes/1024, c.Ways, c.LineBytes, c.HitLatency)
}

// Stats counts accesses for one cache level.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Cache is one level of the hierarchy. The zero value is unusable; use
// NewCache.
//
// Line state lives in one flat set-major slab rather than a slice per
// set: a Table 1 hierarchy has thousands of sets, and per-set slices
// cost one allocation each per machine build — the second-largest
// allocation source in the campaign hot path before the slab.
type Cache struct {
	cfg   Config
	lines []line // nsets * Ways, set-major
	nsets int
	age   uint64
	next  *Cache // nil means the next level is memory
	memLa int    // memory latency when next == nil

	Stats Stats
}

// NewCache builds a cache; next is the level below (nil = main memory
// with the given latency).
func NewCache(cfg Config, next *Cache, memLatency int) *Cache {
	if cfg.Sets() <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %+v", cfg.Name, cfg))
	}
	nsets := cfg.Sets()
	return &Cache{cfg: cfg, lines: make([]line, nsets*cfg.Ways), nsets: nsets, next: next, memLa: memLatency}
}

// set returns the ways of one set as a slice into the slab.
func (c *Cache) set(setIdx uint64) []line {
	i := int(setIdx) * c.cfg.Ways
	return c.lines[i : i+c.cfg.Ways]
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates a read (write=false) or write (write=true) of the line
// containing addr and returns the access latency in cycles. Writes
// allocate on miss (write-allocate, write-back).
func (c *Cache) Access(addr uint64, write bool) int {
	c.Stats.Accesses++
	lineAddr := addr / uint64(c.cfg.LineBytes)
	setIdx := lineAddr % uint64(c.nsets)
	tag := lineAddr / uint64(c.nsets)
	set := c.set(setIdx)
	c.age++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.age
			if write {
				set[i].dirty = true
			}
			return c.cfg.HitLatency
		}
	}
	// Miss: fetch the line from below, evicting the LRU way.
	c.Stats.Misses++
	below := c.memLa
	if c.next != nil {
		below = c.next.Access(addr, false)
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
		if c.next != nil {
			// The writeback goes through a write buffer; model its
			// effect on lower-level state but not on this access's
			// latency.
			victimAddr := (set[victim].tag*uint64(c.nsets) + setIdx) * uint64(c.cfg.LineBytes)
			c.next.Access(victimAddr, true)
		}
	}
	set[victim] = line{valid: true, dirty: write, tag: tag, lru: c.age}
	return c.cfg.HitLatency + below
}

// Flush invalidates all lines (used between experiment repetitions).
func (c *Cache) Flush() {
	clear(c.lines)
}

// Reset restores the cache to its just-built state in place: all lines
// invalid, LRU clock and statistics zeroed. A reset cache is
// indistinguishable from a fresh NewCache with the same geometry.
func (c *Cache) Reset() {
	clear(c.lines)
	c.age = 0
	c.Stats = Stats{}
}

// HierarchyConfig describes the full Table 1 memory hierarchy.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	MemLatency   int
}

// DefaultHierarchy returns the Table 1 configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		IL1:        Config{Name: "il1", SizeBytes: 64 * 1024, Ways: 2, LineBytes: 32, HitLatency: 1},
		DL1:        Config{Name: "dl1", SizeBytes: 32 * 1024, Ways: 2, LineBytes: 32, HitLatency: 1},
		L2:         Config{Name: "ul2", SizeBytes: 512 * 1024, Ways: 4, LineBytes: 64, HitLatency: 6},
		MemLatency: 40,
	}
}

// Hierarchy is the assembled two-level hierarchy.
type Hierarchy struct {
	IL1, DL1, L2 *Cache
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	l2 := NewCache(cfg.L2, nil, cfg.MemLatency)
	return &Hierarchy{
		IL1: NewCache(cfg.IL1, l2, 0),
		DL1: NewCache(cfg.DL1, l2, 0),
		L2:  l2,
	}
}

// Renew returns a hierarchy for cfg, reusing h's line slabs when every
// level's geometry matches (the common case when machines are pooled
// across trials of one experiment grid); otherwise it builds fresh. A
// reused hierarchy is fully reset and behaves identically to a new one.
func Renew(h *Hierarchy, cfg HierarchyConfig) *Hierarchy {
	if h == nil ||
		h.IL1.cfg != cfg.IL1 || h.DL1.cfg != cfg.DL1 || h.L2.cfg != cfg.L2 ||
		h.L2.memLa != cfg.MemLatency {
		return NewHierarchy(cfg)
	}
	h.IL1.Reset()
	h.DL1.Reset()
	h.L2.Reset()
	return h
}

// IFetch returns the latency of an instruction fetch at addr.
func (h *Hierarchy) IFetch(addr uint64) int { return h.IL1.Access(addr, false) }

// DAccess returns the latency of a data access at addr.
func (h *Hierarchy) DAccess(addr uint64, write bool) int { return h.DL1.Access(addr, write) }
