package cache

import "repro/internal/snap"

// EncodeSnapshot appends one cache level's complete timing state —
// line tags/valid/dirty/LRU, the LRU clock and statistics — to w.
// Geometry is not encoded; the caller guarantees (via a config
// fingerprint) that the snapshot is only applied to a cache of
// identical geometry, and the line count is re-validated on decode.
func (c *Cache) EncodeSnapshot(w *snap.Writer) {
	w.U32(uint32(len(c.lines)))
	for i := range c.lines {
		l := &c.lines[i]
		w.Bool(l.valid)
		w.Bool(l.dirty)
		w.U64(l.tag)
		w.U64(l.lru)
	}
	w.U64(c.age)
	w.U64(c.Stats.Accesses)
	w.U64(c.Stats.Misses)
	w.U64(c.Stats.Writebacks)
}

// DecodeSnapshot restores state written by EncodeSnapshot in place. A
// line count that disagrees with the cache's geometry marks the
// reader corrupt; the caller checks r.Done() and discards the machine
// on failure.
func (c *Cache) DecodeSnapshot(r *snap.Reader) {
	if n := int(r.U32()); n == len(c.lines) {
		for i := range c.lines {
			l := &c.lines[i]
			l.valid = r.Bool()
			l.dirty = r.Bool()
			l.tag = r.U64()
			l.lru = r.U64()
		}
	} else {
		r.Corruptf("cache %s: %d lines in snapshot, want %d", c.cfg.Name, n, len(c.lines))
	}
	c.age = r.U64()
	c.Stats.Accesses = r.U64()
	c.Stats.Misses = r.U64()
	c.Stats.Writebacks = r.U64()
}

// EncodeSnapshot writes all three levels (L2 once, although IL1 and
// DL1 share it).
func (h *Hierarchy) EncodeSnapshot(w *snap.Writer) {
	h.IL1.EncodeSnapshot(w)
	h.DL1.EncodeSnapshot(w)
	h.L2.EncodeSnapshot(w)
}

// DecodeSnapshot restores all three levels.
func (h *Hierarchy) DecodeSnapshot(r *snap.Reader) {
	h.IL1.DecodeSnapshot(r)
	h.DL1.DecodeSnapshot(r)
	h.L2.DecodeSnapshot(r)
}
