// Package stats provides the small text-reporting helpers the experiment
// drivers and CLIs use to print paper-style tables and curve data.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with prec digits, integers as themselves.
func (t *Table) AddF(prec int, cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, F(v, prec))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case uint64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Stream is a streaming (single-pass, O(1) memory) aggregator of float64
// observations: count, sum, mean, min, max and variance via Welford's
// algorithm. The zero value is ready to use. It is the aggregation sink
// for campaign runs, where trial results arrive one at a time in
// completion order and nothing may depend on buffering them all.
type Stream struct {
	n        int
	mean, m2 float64
	sum      float64
	min, max float64
}

// Add folds one observation into the aggregate.
func (s *Stream) Add(v float64) {
	s.n++
	s.sum += v
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Merge folds another aggregate into this one (parallel-merge form of
// Welford/Chan et al.), so shards aggregated independently combine into
// the same moments as a single stream.
func (s *Stream) Merge(o Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the observation count.
func (s *Stream) N() int { return s.n }

// Sum returns the running total.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns the running mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Stream) Max() float64 { return s.max }

// Var returns the (population) variance.
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Var()) }

// String summarises the aggregate for progress reports.
func (s *Stream) String() string {
	if s.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s min=%s max=%s", s.n, F(s.mean, 3), F(s.min, 3), F(s.max, 3))
}

// F formats a float with the given precision, using scientific notation
// for very small nonzero magnitudes.
func F(v float64, prec int) string {
	if v != 0 && v < 1e-3 && v > -1e-3 {
		return fmt.Sprintf("%.*e", prec, v)
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a ratio as a percentage string.
func Pct(ratio float64) string {
	return fmt.Sprintf("%.1f%%", 100*ratio)
}
