// Package stats provides the small text-reporting helpers the experiment
// drivers and CLIs use to print paper-style tables and curve data.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with prec digits, integers as themselves.
func (t *Table) AddF(prec int, cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, F(v, prec))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case uint64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision, using scientific notation
// for very small nonzero magnitudes.
func F(v float64, prec int) string {
	if v != 0 && v < 1e-3 && v > -1e-3 {
		return fmt.Sprintf("%.*e", prec, v)
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a ratio as a percentage string.
func Pct(ratio float64) string {
	return fmt.Sprintf("%.1f%%", 100*ratio)
}
