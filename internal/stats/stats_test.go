package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("bee", "22", "extra-dropped")
	tb.Add("c") // short row padded
	out := tb.String()

	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("bad header: %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[3], "1") {
		t.Errorf("bad row: %q", lines[3])
	}
	if strings.Contains(out, "extra-dropped") {
		t.Error("overflow cell not dropped")
	}
	// All lines align to the same width per column: the separator row
	// must be at least as wide as the longest cell.
	if len(lines[2]) < len(lines[3]) {
		t.Errorf("separator narrower than data: %q vs %q", lines[2], lines[3])
	}
	if tb.Rows() != 3 {
		t.Errorf("Rows() = %d", tb.Rows())
	}
}

func TestAddF(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d")
	tb.AddF(2, "s", 1.2345, 7, uint64(9))
	out := tb.String()
	for _, want := range []string{"s", "1.23", "7", "9"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestF(t *testing.T) {
	cases := []struct {
		v    float64
		prec int
		want string
	}{
		{1.23456, 2, "1.23"},
		{0, 3, "0.000"},
		{1e-6, 1, "1.0e-06"},
		{-5e-5, 1, "-5.0e-05"},
		{100, 0, "100"},
	}
	for _, c := range cases {
		if got := F(c.v, c.prec); got != c.want {
			t.Errorf("F(%g, %d) = %q, want %q", c.v, c.prec, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.305); got != "30.5%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestStream(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.String() != "n=0" {
		t.Fatalf("zero stream: %+v", s)
	}
	for _, v := range []float64{4, 2, 8, 2} {
		s.Add(v)
	}
	if s.N() != 4 || s.Sum() != 16 || s.Mean() != 4 || s.Min() != 2 || s.Max() != 8 {
		t.Errorf("aggregates: n=%d sum=%g mean=%g min=%g max=%g", s.N(), s.Sum(), s.Mean(), s.Min(), s.Max())
	}
	// Population variance of {4,2,8,2} is 6.
	if v := s.Var(); v < 5.999 || v > 6.001 {
		t.Errorf("Var = %g, want 6", v)
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Errorf("String = %q", s.String())
	}
}

func TestStreamMerge(t *testing.T) {
	vals := []float64{1, 5, 3, 9, 2, 2, 7, 4}
	var whole, a, b Stream
	for i, v := range vals {
		whole.Add(v)
		if i < 3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() || a.Sum() != whole.Sum() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merge mismatch: %+v vs %+v", a, whole)
	}
	if d := a.Var() - whole.Var(); d > 1e-9 || d < -1e-9 {
		t.Errorf("merged Var %g, want %g", a.Var(), whole.Var())
	}
	var empty Stream
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Error("merge into empty lost data")
	}
	a.Merge(Stream{})
	if a.N() != whole.N() {
		t.Error("merging empty changed the aggregate")
	}
}
