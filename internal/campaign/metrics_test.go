package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// metricsCodec journals int trial values.
func metricsCodec() (func(any) ([]byte, error), func([]byte) (any, error)) {
	enc := func(v any) ([]byte, error) { return []byte(fmt.Sprint(v)), nil }
	dec := func(data []byte) (any, error) {
		var n int
		_, err := fmt.Sscan(string(data), &n)
		return n, err
	}
	return enc, dec
}

// TestMetricsClassifyOutcomes: the trials-total counter partitions by
// outcome — ok, failed, panic, timeout — and retries are counted.
func TestMetricsClassifyOutcomes(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	boom := errors.New("boom")
	spec := Spec{
		Name: "outcomes",
		Seed: 3,
		Trials: []Trial{
			{Label: "ok", Run: func(ctx context.Context, seed int64) (any, error) { return 1, nil }},
			{Label: "fail", Run: func(ctx context.Context, seed int64) (any, error) { return nil, boom }},
			{Label: "panic", Run: func(ctx context.Context, seed int64) (any, error) { panic("eek") }},
			{Label: "slow", Run: func(ctx context.Context, seed int64) (any, error) {
				<-ctx.Done() // only the per-trial deadline ends this
				return nil, ctx.Err()
			}},
			{Label: "flaky", Run: func(ctx context.Context, seed int64) (any, error) {
				return nil, fmt.Errorf("wobbly: %w", ErrTransient)
			}},
		},
	}
	r := Runner{
		Workers: 2, Contain: true, Metrics: m,
		TrialTimeout: 50 * time.Millisecond,
		Retries:      2, RetryBackoff: time.Millisecond,
	}
	if _, err := r.Run(context.Background(), spec); err == nil {
		t.Fatal("want a contained-failure summary error")
	}

	want := map[string]uint64{
		OutcomeOK:      1,
		OutcomeFailed:  2, // boom, plus flaky exhausting its retries
		OutcomePanic:   1,
		OutcomeTimeout: 1,
	}
	for outcome, n := range want {
		if got := m.trials.With(outcome).Value(); got != n {
			t.Errorf("trials_total{outcome=%q} = %d, want %d", outcome, got, n)
		}
	}
	// flaky: 1 first attempt + 2 retries = 2 extra attempts. The timeout
	// trial is also retryable, so it consumes 2 more.
	if got := m.retries.Value(); got != 4 {
		t.Errorf("retries_total = %d, want 4", got)
	}
	if got := m.trialSeconds.With(OutcomeOK).Count(); got != 1 {
		t.Errorf("trial_seconds{ok} count = %d, want 1", got)
	}
}

// TestMetricsCheckpointAndResume: journal fsyncs report synced records
// and bytes; a resumed run counts restored trials.
func TestMetricsCheckpointAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	enc, dec := metricsCodec()
	mkSpec := func() Spec {
		var trials []Trial
		for i := 0; i < 6; i++ {
			i := i
			trials = append(trials, Trial{
				Label: fmt.Sprintf("t%d", i),
				Run:   func(ctx context.Context, seed int64) (any, error) { return i, nil },
			})
		}
		return Spec{Name: "ckpt", Seed: 9, Trials: trials}
	}

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	r := Runner{
		Workers: 1, Metrics: m,
		Checkpoint: &Checkpoint{Path: path, Encode: enc, Decode: dec, FlushEvery: 2},
	}
	rep, err := r.Run(context.Background(), mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 0 {
		t.Fatalf("fresh run resumed %d trials", rep.Resumed)
	}
	// Header sync + 3 batches of 2 records.
	if got := m.ckptSyncs.Value(); got != 4 {
		t.Errorf("checkpoint_syncs_total = %d, want 4", got)
	}
	if got := m.ckptRecords.Value(); got != 6 {
		t.Errorf("checkpoint_synced_records_total = %d, want 6", got)
	}
	if m.ckptBytes.Value() == 0 {
		t.Error("checkpoint_synced_bytes_total = 0, want > 0")
	}

	// Resume over the complete journal: everything restores, nothing
	// executes, and the resumed counter says so.
	reg2 := obs.NewRegistry()
	m2 := NewMetrics(reg2)
	r2 := Runner{
		Workers: 1, Metrics: m2,
		Checkpoint: &Checkpoint{Path: path, Encode: enc, Decode: dec},
	}
	rep2, err := r2.Run(context.Background(), mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != 6 {
		t.Fatalf("resumed %d trials, want 6", rep2.Resumed)
	}
	if got := m2.resumed.Value(); got != 6 {
		t.Errorf("trials_resumed_total = %d, want 6", got)
	}
	if got := m2.trials.With(OutcomeOK).Value(); got != 0 {
		t.Errorf("resumed run executed %d trials", got)
	}
}

// TestMetricsArePureTap: a Runner with Metrics produces results
// identical to one without.
func TestMetricsArePureTap(t *testing.T) {
	mkSpec := func() Spec {
		var trials []Trial
		for i := 0; i < 12; i++ {
			trials = append(trials, Trial{
				Label: fmt.Sprintf("t%d", i),
				Run: func(ctx context.Context, seed int64) (any, error) {
					return seed % 1000, nil
				},
			})
		}
		return Spec{Name: "tap", Seed: 42, Trials: trials}
	}
	plain, err := Runner{Workers: 3}.Run(context.Background(), mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	tapped, err := Runner{Workers: 3, Metrics: NewMetrics(obs.NewRegistry())}.
		Run(context.Background(), mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Collect[int64](tapped)
	want, _ := Collect[int64](plain)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("metrics tap perturbed results:\n got %v\nwant %v", got, want)
	}
}

// TestMetricsExposition: the campaign instruments render under the
// documented ftsim_* names.
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	m.trialFinished(OutcomeOK, 0.25, 1)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		`ftsim_trials_total{outcome="ok"} 1`,
		`ftsim_trial_seconds_count{outcome="ok"} 1`,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %q:\n%s", name, out)
		}
	}
}
