package campaign

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestCheckpointSyncsOnCancelDrain is the graceful-shutdown regression
// test: when a campaign's parent context is cancelled while a slow
// trial is still in flight, the checkpoint journal must fsync the
// already-completed trials immediately — before Run returns — and any
// trial that still completes during the drain must be synced as it
// lands. Without the drain hook, results journaled since the last
// FlushEvery batch would stay unsynced until Close, i.e. until every
// in-flight trial finished, which a SIGTERM→SIGKILL shutdown window
// does not wait for.
func TestCheckpointSyncsOnCancelDrain(t *testing.T) {
	const quick = 5 // trials completed before the cancellation

	var mu sync.Mutex
	var syncs []int // records made durable per observed fsync
	synced := make(chan struct{}, 8)

	enc, dec := intCodec()
	ck := &Checkpoint{
		Path:   filepath.Join(t.TempDir(), "drain.ckpt"),
		Hash:   7,
		Encode: enc,
		Decode: dec,
		// Far larger than the grid: no batch fsync can fire on its own,
		// so any sync observed before Close is the drain path's.
		FlushEvery: 1000,
		syncHook: func(flushed int) {
			mu.Lock()
			syncs = append(syncs, flushed)
			mu.Unlock()
			synced <- struct{}{}
		},
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	inFlight := make(chan struct{})
	trials := make([]Trial, quick+1)
	for i := range trials {
		i := i
		trials[i] = Trial{
			Label: "t",
			Run: func(ctx context.Context, seed int64) (any, error) {
				if i == quick {
					// The slow in-flight trial: signals that the quick
					// trials are all journaled (one worker, batch 1 —
					// strictly sequential), then holds the drain open until
					// the test has observed the cancellation-time fsync.
					// It completes successfully, so its journal append
					// happens after cancellation and must sync at once.
					close(inFlight)
					<-release
				}
				return i, nil
			},
		}
	}

	runDone := make(chan error, 1)
	go func() {
		_, err := Runner{Workers: 1, Batch: 1, Checkpoint: ck, Contain: true}.
			Run(ctx, Spec{Name: "drain", Seed: 3, Trials: trials})
		runDone <- err
	}()

	// Cancel once the quick trials are all journaled and the slow trial
	// is in flight — cancelling from the test goroutine exercises
	// exactly the external-SIGTERM shape.
	deadline := time.After(30 * time.Second)
	select {
	case <-inFlight:
	case <-deadline:
		t.Fatal("timed out waiting for the slow trial to start")
	}
	waitSync := func(what string) int {
		select {
		case <-synced:
		case err := <-runDone:
			t.Fatalf("Run returned (err=%v) before %s", err, what)
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
		mu.Lock()
		defer mu.Unlock()
		return syncs[len(syncs)-1]
	}

	cancel()
	if got := waitSync("the drain fsync"); got != quick {
		t.Errorf("drain fsync flushed %d records, want the %d completed trials", got, quick)
	}

	// Unblock the in-flight trial; its post-cancellation append must be
	// synced individually (drain switches the journal to sync-per-append).
	close(release)
	if got := waitSync("the post-cancellation append fsync"); got != 1 {
		t.Errorf("post-drain append flushed %d records per fsync, want 1", got)
	}

	// Every trial was dispatched before the cancel and every one
	// completed, so the campaign itself finishes cleanly.
	if err := <-runDone; err != nil {
		t.Errorf("Run returned %v, want nil (all trials completed)", err)
	}

	// Nothing was pending at Close, so the journal saw exactly the two
	// drain-path syncs.
	mu.Lock()
	defer mu.Unlock()
	if len(syncs) != 2 {
		t.Errorf("observed %d fsyncs %v, want 2 (drain + post-drain append)", len(syncs), syncs)
	}
}
