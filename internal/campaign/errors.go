package campaign

import (
	"errors"
	"fmt"
	"time"
)

var (
	// ErrTrialPanic is the sentinel every *TrialPanicError unwraps to:
	// a trial panicked and the panic was contained to that trial
	// instead of tearing down the whole campaign.
	ErrTrialPanic = errors.New("campaign: trial panicked")

	// ErrTrialTimeout is the sentinel every *TrialTimeoutError unwraps
	// to: a trial exceeded the per-trial deadline (Runner.TrialTimeout)
	// and was abandoned. It deliberately does NOT unwrap to
	// context.DeadlineExceeded — a wedged trial is a real failure of
	// that trial, not campaign-cancellation noise, and must not be
	// filtered out by Report.Err's cancellation handling.
	ErrTrialTimeout = errors.New("campaign: trial deadline exceeded")

	// ErrCheckpointMismatch is the sentinel every
	// *CheckpointMismatchError unwraps to: a checkpoint journal was
	// written by a different campaign (different name, seed, grid size
	// or config hash) and refusing to resume from it is the only safe
	// answer.
	ErrCheckpointMismatch = errors.New("campaign: checkpoint belongs to a different campaign")

	// ErrTransient marks a trial failure as retryable: wrap (or return)
	// an error that errors.Is-matches ErrTransient and the runner's
	// bounded retry (Runner.Retries) re-attempts the trial with backoff.
	// Pool contention and resource exhaustion are the intended cases;
	// deterministic simulation failures must not be marked transient.
	ErrTransient = errors.New("campaign: transient trial failure")
)

// TrialPanicError is a panic converted into a per-trial error by the
// runner's containment wrapper.
type TrialPanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack string
}

func (e *TrialPanicError) Error() string {
	return fmt.Sprintf("%v: %v", ErrTrialPanic, e.Value)
}

// Unwrap makes errors.Is(err, ErrTrialPanic) hold.
func (e *TrialPanicError) Unwrap() error { return ErrTrialPanic }

// TrialTimeoutError reports a trial that exceeded Runner.TrialTimeout.
type TrialTimeoutError struct {
	Timeout time.Duration
}

func (e *TrialTimeoutError) Error() string {
	return fmt.Sprintf("%v (after %v)", ErrTrialTimeout, e.Timeout)
}

// Unwrap makes errors.Is(err, ErrTrialTimeout) hold.
func (e *TrialTimeoutError) Unwrap() error { return ErrTrialTimeout }

// CheckpointMismatchError explains which identity field of a
// checkpoint journal disagreed with the campaign trying to resume
// from it.
type CheckpointMismatchError struct {
	Path  string
	Field string // "name", "seed", "trials", "hash", "trial seed"
	Want  string
	Got   string
}

func (e *CheckpointMismatchError) Error() string {
	return fmt.Sprintf("%v: %s: journal has %s %s, campaign has %s",
		ErrCheckpointMismatch, e.Path, e.Field, e.Got, e.Want)
}

// Unwrap makes errors.Is(err, ErrCheckpointMismatch) hold.
func (e *CheckpointMismatchError) Unwrap() error { return ErrCheckpointMismatch }

// retryable reports whether a failure is worth re-attempting: an
// explicitly transient error, or a per-trial timeout (which a loaded
// host can cause without the trial being wedged for good).
func retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTrialTimeout)
}
