package campaign

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// intCodec journals int trial values as JSON for tests.
func intCodec() (func(any) ([]byte, error), func([]byte) (any, error)) {
	return func(v any) ([]byte, error) { return json.Marshal(v.(int)) },
		func(data []byte) (any, error) {
			var v int
			err := json.Unmarshal(data, &v)
			return v, err
		}
}

// testCheckpoint builds a Checkpoint journaling ints under dir.
func testCheckpoint(t *testing.T, dir string, hash uint64) *Checkpoint {
	t.Helper()
	enc, dec := intCodec()
	return &Checkpoint{Path: filepath.Join(dir, "camp.ckpt"), Hash: hash, Encode: enc, Decode: dec}
}

// squareSpec is a deterministic n-trial campaign whose trial i returns
// i*i; fail(i) non-nil injects failures.
func squareSpec(n int, fail func(i int) error) Spec {
	trials := make([]Trial, n)
	for i := range trials {
		i := i
		trials[i] = Trial{
			Label: fmt.Sprintf("sq/%d", i),
			Run: func(ctx context.Context, seed int64) (any, error) {
				if fail != nil {
					if err := fail(i); err != nil {
						return nil, err
					}
				}
				return i * i, nil
			},
		}
	}
	return Spec{Name: "squares", Seed: 42, Trials: trials}
}

func collectInts(t *testing.T, rep *Report) []int {
	t.Helper()
	vals, err := Collect[int](rep)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return vals
}

// ---------------------------------------------------------------------
// Containment.

func TestContainPanickingTrial(t *testing.T) {
	spec := squareSpec(8, nil)
	spec.Trials[3].Run = func(ctx context.Context, seed int64) (any, error) {
		panic("boom at trial 3")
	}
	rep, err := Runner{Workers: 2, Contain: true}.Run(context.Background(), spec)
	if err == nil {
		t.Fatal("want summarising error, got nil")
	}
	if !errors.Is(err, ErrTrialPanic) {
		t.Fatalf("err = %v, want ErrTrialPanic", err)
	}
	var pe *TrialPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %v does not unwrap to *TrialPanicError", err)
	}
	if !strings.Contains(pe.Stack, "durability_test") {
		t.Errorf("panic stack does not name the panicking frame:\n%s", pe.Stack)
	}
	// Every other trial still ran to completion.
	for i, res := range rep.Results {
		if i == 3 {
			if res.Err == nil {
				t.Fatal("trial 3 should have failed")
			}
			continue
		}
		if res.Err != nil {
			t.Fatalf("trial %d contained failure leaked: %v", i, res.Err)
		}
		if res.Value != i*i {
			t.Fatalf("trial %d value = %v, want %d", i, res.Value, i*i)
		}
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Index != 3 || fails[0].Attempts != 1 {
		t.Fatalf("Failures() = %+v, want exactly trial 3 with 1 attempt", fails)
	}
}

func TestFailFastStopsDispatch(t *testing.T) {
	boom := errors.New("hard failure")
	spec := squareSpec(64, func(i int) error {
		if i == 0 {
			return boom
		}
		return nil
	})
	rep, err := Runner{Workers: 1, Batch: 1}.Run(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the trial failure", err)
	}
	ran := 0
	for _, res := range rep.Results {
		if res.Attempts > 0 {
			ran++
		}
	}
	if ran == len(rep.Results) {
		t.Fatal("fail-fast run dispatched the whole grid")
	}
}

func TestPanicContainedEvenWithoutContain(t *testing.T) {
	spec := squareSpec(4, nil)
	spec.Trials[0].Run = func(ctx context.Context, seed int64) (any, error) { panic("kaboom") }
	// Without Contain the campaign fails fast, but the panic must still
	// be converted to an error instead of crashing the worker pool.
	_, err := Runner{Workers: 2}.Run(context.Background(), spec)
	if !errors.Is(err, ErrTrialPanic) {
		t.Fatalf("err = %v, want ErrTrialPanic", err)
	}
}

func TestTrialTimeout(t *testing.T) {
	spec := squareSpec(4, nil)
	spec.Trials[2].Run = func(ctx context.Context, seed int64) (any, error) {
		<-ctx.Done() // a wedged-but-cooperative trial
		return nil, ctx.Err()
	}
	rep, err := Runner{Workers: 2, Contain: true, TrialTimeout: 20 * time.Millisecond}.
		Run(context.Background(), spec)
	if !errors.Is(err, ErrTrialTimeout) {
		t.Fatalf("err = %v, want ErrTrialTimeout", err)
	}
	// The timeout is a real per-trial failure, not cancellation noise:
	// it must survive the Err/Failures cancellation filter and must NOT
	// match context.DeadlineExceeded.
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("trial timeout leaked context.DeadlineExceeded; Report.Err would filter it as noise")
	}
	if fails := rep.Failures(); len(fails) != 1 || fails[0].Index != 2 {
		t.Fatalf("Failures() = %+v, want exactly trial 2", fails)
	}
}

func TestParentCancellationIsNotATimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := squareSpec(2, nil)
	spec.Trials[0].Run = func(ctx context.Context, seed int64) (any, error) {
		cancel() // the campaign is aborted while this trial runs
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, err := Runner{Workers: 1, TrialTimeout: time.Hour}.Run(ctx, spec)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if errors.Is(err, ErrTrialTimeout) {
		t.Fatalf("campaign abort misreported as per-trial timeout: %v", err)
	}
}

func TestRetryTransient(t *testing.T) {
	attempts := map[int]int{}
	spec := squareSpec(6, func(i int) error {
		attempts[i]++
		if i == 4 && attempts[i] <= 2 {
			return fmt.Errorf("resource busy: %w", ErrTransient)
		}
		return nil
	})
	rep, err := Runner{Workers: 1, Retries: 3, RetryBackoff: time.Millisecond}.
		Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("retries should have recovered the transient failure: %v", err)
	}
	if got := rep.Results[4].Attempts; got != 3 {
		t.Fatalf("trial 4 attempts = %d, want 3", got)
	}
	if got := rep.Results[2].Attempts; got != 1 {
		t.Fatalf("healthy trial attempts = %d, want 1", got)
	}
	if vals := collectInts(t, rep); vals[4] != 16 {
		t.Fatalf("recovered trial value = %d, want 16", vals[4])
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	calls := 0
	spec := squareSpec(1, func(i int) error {
		calls++
		return fmt.Errorf("still broken: %w", ErrTransient)
	})
	rep, err := Runner{Retries: 2, RetryBackoff: time.Millisecond, Contain: true}.
		Run(context.Background(), spec)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want the exhausted transient failure", err)
	}
	if calls != 3 {
		t.Fatalf("trial ran %d times, want 1 + 2 retries", calls)
	}
	if rep.Results[0].Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", rep.Results[0].Attempts)
	}
}

func TestDeterministicFailuresNotRetried(t *testing.T) {
	calls := 0
	spec := squareSpec(1, func(i int) error {
		calls++
		return errors.New("deterministic bug")
	})
	Runner{Retries: 5, RetryBackoff: time.Millisecond, Contain: true}.
		Run(context.Background(), spec)
	if calls != 1 {
		t.Fatalf("non-retryable failure ran %d times, want 1", calls)
	}
}

func TestErrSummarisesMultipleFailures(t *testing.T) {
	spec := squareSpec(8, func(i int) error {
		if i == 2 || i == 5 || i == 7 {
			return fmt.Errorf("bad cell %d", i)
		}
		return nil
	})
	rep, err := Runner{Workers: 4, Contain: true}.Run(context.Background(), spec)
	if err == nil {
		t.Fatal("want error")
	}
	// Deterministic: always the lowest-index failure, with the count.
	if want := "3 of 8 trials failed; first: trial 2 (sq/2): bad cell 2"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
	if len(rep.Failures()) != 3 {
		t.Fatalf("Failures() = %+v, want 3 entries", rep.Failures())
	}
}

// ---------------------------------------------------------------------
// Checkpoint / resume.

func TestCheckpointResumeSkipsCompletedTrials(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(t, dir, 7)
	spec := squareSpec(16, nil)

	// First run: trial 9 fails, everything else completes and is
	// journaled (FlushEvery=1 so every record is synced).
	failing := squareSpec(16, func(i int) error {
		if i == 9 {
			return errors.New("flaky cell")
		}
		return nil
	})
	ck.FlushEvery = 1
	rep1, err := Runner{Workers: 2, Contain: true, Checkpoint: ck}.Run(context.Background(), failing)
	if err == nil || len(rep1.Failures()) != 1 {
		t.Fatalf("first run: err=%v failures=%v", err, rep1.Failures())
	}

	// Second run over the same journal: only trial 9 re-executes.
	executed := map[int]bool{}
	resumeSpec := squareSpec(16, nil)
	for i := range resumeSpec.Trials {
		i := i
		inner := resumeSpec.Trials[i].Run
		resumeSpec.Trials[i].Run = func(ctx context.Context, seed int64) (any, error) {
			executed[i] = true
			return inner(ctx, seed)
		}
	}
	rep2, err := Runner{Workers: 1, Checkpoint: ck}.Run(context.Background(), resumeSpec)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep2.Resumed != 15 {
		t.Fatalf("Resumed = %d, want 15", rep2.Resumed)
	}
	if len(executed) != 1 || !executed[9] {
		t.Fatalf("resume executed trials %v, want only trial 9", executed)
	}

	// Aggregate values equal an uninterrupted run's.
	ref, err := Runner{Workers: 1}.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if got, want := collectInts(t, rep2), collectInts(t, ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed values %v != uninterrupted %v", got, want)
	}

	// Third run: everything resumed, nothing executes.
	rep3, err := Runner{Workers: 1, Checkpoint: ck}.Run(context.Background(), squareSpec(16, func(i int) error {
		t.Errorf("trial %d re-ran on a complete journal", i)
		return nil
	}))
	if err != nil || rep3.Resumed != 16 {
		t.Fatalf("complete-journal run: err=%v resumed=%d", err, rep3.Resumed)
	}
}

func TestCheckpointRejectsMismatchedCampaign(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(t, dir, 7)
	ck.FlushEvery = 1
	if _, err := (Runner{Checkpoint: ck}).Run(context.Background(), squareSpec(8, nil)); err != nil {
		t.Fatalf("seed run: %v", err)
	}

	cases := []struct {
		name   string
		ck     *Checkpoint
		mutate func(*Spec)
	}{
		{"different name", testCheckpoint(t, dir, 7), func(s *Spec) { s.Name = "other" }},
		{"different seed", testCheckpoint(t, dir, 7), func(s *Spec) { s.Seed = 43 }},
		{"different trial count", testCheckpoint(t, dir, 7), func(s *Spec) { s.Trials = s.Trials[:4] }},
		{"different hash", testCheckpoint(t, dir, 8), nil},
		{"different seed grouping", testCheckpoint(t, dir, 7), func(s *Spec) { s.SeedIndex = func(int) int { return 0 } }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := squareSpec(8, nil)
			if tc.mutate != nil {
				tc.mutate(&spec)
			}
			_, err := Runner{Checkpoint: tc.ck}.Run(context.Background(), spec)
			if !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
			}
			var me *CheckpointMismatchError
			if !errors.As(err, &me) {
				t.Fatalf("err %v does not unwrap to *CheckpointMismatchError", err)
			}
		})
	}
}

func TestCheckpointTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(t, dir, 1)
	ck.FlushEvery = 1
	if _, err := (Runner{Workers: 1, Checkpoint: ck}).Run(context.Background(), squareSpec(6, nil)); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	data, err := os.ReadFile(ck.Path)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, 3, 7} { // tear at various depths into the last frame
		trunc := append([]byte(nil), data[:len(data)-cut]...)
		if err := os.WriteFile(ck.Path, trunc, 0o644); err != nil {
			t.Fatal(err)
		}
		executed := map[int]bool{}
		rep, err := Runner{Workers: 1, Checkpoint: testCheckpoint(t, dir, 1)}.Run(context.Background(),
			squareSpec(6, func(i int) error { executed[i] = true; return nil }))
		if err != nil {
			t.Fatalf("cut %d: resume over torn journal: %v", cut, err)
		}
		// The torn record's trial re-ran; all values are still correct.
		if len(executed) == 0 {
			t.Fatalf("cut %d: torn final record should force at least one re-run", cut)
		}
		vals := collectInts(t, rep)
		for i, v := range vals {
			if v != i*i {
				t.Fatalf("cut %d: value[%d] = %d, want %d", cut, i, v, i*i)
			}
		}
		// Restore the intact journal for the next iteration.
		if err := os.WriteFile(ck.Path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckpointGarbageTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(t, dir, 1)
	ck.FlushEvery = 1
	if _, err := (Runner{Workers: 1, Checkpoint: ck}).Run(context.Background(), squareSpec(4, nil)); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	// Append a frame header claiming 1GiB of payload that isn't there.
	f, err := os.OpenFile(ck.Path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<30)
	f.Write(huge[:])
	f.Write([]byte("not a snap blob"))
	f.Close()

	rep, err := Runner{Workers: 1, Checkpoint: testCheckpoint(t, dir, 1)}.Run(context.Background(), squareSpec(4, nil))
	if err != nil || rep.Resumed != 4 {
		t.Fatalf("garbage tail: err=%v resumed=%d, want clean resume of 4", err, rep.Resumed)
	}
}

func TestCheckpointCorruptHeaderStartsOver(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	if err := os.WriteFile(path, []byte("garbage that is no journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	enc, dec := intCodec()
	ck := &Checkpoint{Path: path, Hash: 1, Encode: enc, Decode: dec, FlushEvery: 1}
	rep, err := Runner{Workers: 1, Checkpoint: ck}.Run(context.Background(), squareSpec(3, nil))
	if err != nil || rep.Resumed != 0 {
		t.Fatalf("unusable journal should start over: err=%v resumed=%d", err, rep.Resumed)
	}
	// And the rewritten journal resumes cleanly now.
	rep2, err := Runner{Workers: 1, Checkpoint: ck}.Run(context.Background(), squareSpec(3, nil))
	if err != nil || rep2.Resumed != 3 {
		t.Fatalf("rewritten journal: err=%v resumed=%d", err, rep2.Resumed)
	}
}

func TestCheckpointFailedTrialsAreNotJournaled(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(t, dir, 1)
	ck.FlushEvery = 1
	spec := squareSpec(4, func(i int) error {
		if i == 1 {
			return errors.New("failed cell")
		}
		return nil
	})
	Runner{Workers: 1, Contain: true, Checkpoint: ck}.Run(context.Background(), spec)

	data, err := os.ReadFile(ck.Path)
	if err != nil {
		t.Fatal(err)
	}
	_, recs, _ := parseJournal(data)
	for _, rec := range recs {
		if rec.index == 1 {
			t.Fatal("failed trial was journaled; resume would wrongly skip it")
		}
	}
	if len(recs) != 3 {
		t.Fatalf("journal has %d records, want 3 successes", len(recs))
	}
}

// TestCheckpointSurvivesSIGKILL covers the headline crash scenario: a
// campaign is killed mid-grid (SIGKILL, no deferred cleanup runs), and
// a resumed run completes the grid with values identical to an
// uninterrupted run. The killed campaign runs in a subprocess (re-exec
// of this test binary, gated by an environment variable) because a
// real SIGKILL cannot be survived in-process.
func TestCheckpointSurvivesSIGKILL(t *testing.T) {
	if os.Getenv("CAMPAIGN_CRASH_CHILD") != "" {
		crashChildMain()
		return
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.ckpt")

	cmd := exec.Command(os.Args[0], "-test.run=TestCheckpointSurvivesSIGKILL")
	cmd.Env = append(os.Environ(), "CAMPAIGN_CRASH_CHILD="+path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child exited cleanly; it was supposed to be SIGKILLed\n%s", out)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("child left no journal (err=%v): %s", err, out)
	}

	// Resume in-process and check the grid completes correctly.
	enc, dec := intCodec()
	ck := &Checkpoint{Path: path, Hash: 99, Encode: enc, Decode: dec}
	rep, err := Runner{Workers: 2, Checkpoint: ck}.Run(context.Background(), crashSpec())
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if rep.Resumed == 0 {
		t.Fatal("nothing resumed; the crashed run's journal was not used")
	}
	t.Logf("resumed %d of %d trials from the killed run", rep.Resumed, len(rep.Results))

	ref, err := Runner{Workers: 1}.Run(context.Background(), crashSpec())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if got, want := collectInts(t, rep), collectInts(t, ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed values %v != uninterrupted %v", got, want)
	}
}

// crashSpec is the grid the SIGKILL test runs in both processes.
func crashSpec() Spec {
	return squareSpec(32, nil)
}

// crashChildMain runs the campaign with a checkpoint and SIGKILLs
// itself after a handful of trials have been journaled.
func crashChildMain() {
	path := os.Getenv("CAMPAIGN_CRASH_CHILD")
	enc, dec := intCodec()
	ck := &Checkpoint{Path: path, Hash: 99, Encode: enc, Decode: dec, FlushEvery: 1}
	done := 0
	runner := Runner{
		Workers:    1,
		Batch:      1,
		Checkpoint: ck,
		Progress: func(d, total int, r Result) {
			done = d
			if done == 10 {
				// SIGKILL: no deferred closes, no final fsync — the
				// hardest crash the journal must survive.
				p, _ := os.FindProcess(os.Getpid())
				p.Kill()
				select {} // never reached; Kill is synchronous on Unix
			}
		},
	}
	runner.Run(context.Background(), crashSpec())
	os.Exit(0) // not reached if the kill fired
}

// ---------------------------------------------------------------------
// Journal format fuzzing.

// FuzzCheckpointDecode feeds arbitrary bytes to the journal parser:
// it must never panic or over-allocate, and whatever prefix it accepts
// must be internally consistent (indices parse back, offsets within
// bounds).
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a real journal: header + two records + torn tail.
	dir := f.TempDir()
	enc, dec := intCodec()
	ck := &Checkpoint{Path: filepath.Join(dir, "seed.ckpt"), Hash: 5, Encode: enc, Decode: dec, FlushEvery: 1}
	if _, err := (Runner{Workers: 1, Checkpoint: ck}).Run(context.Background(), squareSpec(2, nil)); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(ck.Path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, valid := parseJournal(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of bounds [0,%d]", valid, len(data))
		}
		if hdr == nil && len(recs) > 0 {
			t.Fatal("records without a header")
		}
		// The accepted prefix must reparse to the same result (the
		// resume path truncates to it and reads again).
		hdr2, recs2, valid2 := parseJournal(data[:valid])
		if valid2 != valid || len(recs2) != len(recs) || (hdr == nil) != (hdr2 == nil) {
			t.Fatalf("reparse of valid prefix diverged: %d/%d records, %d/%d bytes",
				len(recs), len(recs2), valid, valid2)
		}
	})
}
