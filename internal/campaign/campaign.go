// Package campaign runs experiment campaigns — grids of independent
// simulation trials — across a pool of worker goroutines.
//
// The paper's evaluation is an embarrassingly parallel sweep over
// (benchmark x machine configuration x fault rate) points: every trial
// builds its own program, machine and fault injector and shares no
// mutable state with any other trial. The engine exploits that by
// dispatching trials to GOMAXPROCS workers while keeping the results
// bit-identical to a serial run:
//
//   - each trial's RNG seed is derived from the campaign seed and the
//     trial's index (TrialSeed), never from completion order or worker
//     identity; and
//   - results are stored by trial index, so aggregation happens in grid
//     order no matter which worker finished first.
//
// A Runner therefore satisfies the invariant the determinism regression
// tests assert: the same Spec and seed produce byte-identical tables at
// Workers=1 and Workers=N.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
)

// Trial is one independent simulation point of a campaign grid.
type Trial struct {
	// Label names the trial in progress reports, e.g. "fig5/gcc/SS-2".
	Label string
	// Run executes the trial. The context is the campaign context and
	// fires when the campaign is cancelled or a sibling trial fails;
	// long-running trials should plumb it into their simulation so an
	// abort stops in-flight work promptly, not just future dispatch.
	// The seed argument is the trial's derived RNG seed (TrialSeed of
	// the campaign seed and the trial index); trials that inject faults
	// must seed their injectors from it so the campaign stays
	// deterministic under any worker count.
	Run func(ctx context.Context, seed int64) (any, error)
	// RunW, when non-nil, is used instead of Run and additionally
	// receives the executing worker's Workspace, where a trial can keep
	// reusable state (pooled simulator machines, scratch buffers) that
	// survives across all the trials that worker executes. Because
	// results must not depend on which worker ran a trial, anything a
	// trial stores in the workspace must be behaviourally identical to
	// a fresh instance — caches of immutable data and poolable machines
	// qualify; accumulated statistics do not.
	RunW func(ctx context.Context, ws *Workspace, seed int64) (any, error)
}

// run dispatches to RunW when set, else Run.
func (t Trial) run(ctx context.Context, ws *Workspace, seed int64) (any, error) {
	if t.RunW != nil {
		return t.RunW(ctx, ws, seed)
	}
	return t.Run(ctx, seed)
}

// Workspace is per-worker storage handed to Trial.RunW. One worker
// goroutine owns one workspace for the lifetime of a campaign, so no
// locking is needed; nothing stored in it is shared between workers.
// The zero value is ready to use.
type Workspace struct {
	vals map[any]any
}

// Value returns the value stored under key, or nil.
func (w *Workspace) Value(key any) any {
	if w.vals == nil {
		return nil
	}
	return w.vals[key]
}

// Set stores val under key, replacing any previous value.
func (w *Workspace) Set(key, val any) {
	if w.vals == nil {
		w.vals = make(map[any]any)
	}
	w.vals[key] = val
}

// Spec is a campaign: a named grid of trials and the master seed all
// per-trial seeds derive from.
type Spec struct {
	Name string
	Seed int64
	// SeedIndex maps a trial index to the index its seed derives from;
	// nil is the identity. Trials mapped to the same seed index receive
	// the identical derived seed, keeping the arms of a controlled
	// comparison (e.g. two designs at one fault rate) on one RNG stream.
	SeedIndex func(i int) int
	Trials    []Trial
}

// trialSeed derives trial i's seed, honouring SeedIndex grouping.
func (s Spec) trialSeed(i int) int64 {
	if s.SeedIndex != nil {
		i = s.SeedIndex(i)
	}
	return TrialSeed(s.Seed, i)
}

// Result is the outcome of one trial.
type Result struct {
	Index   int
	Label   string
	Seed    int64
	Value   any
	Err     error
	Elapsed time.Duration
	// Attempts is how many times the trial executed (1 + retries
	// consumed); 0 for trials that never ran because dispatch stopped.
	Attempts int
}

// Progress observes trial completions as they happen. done counts
// completed trials including this one; calls are serialised by the
// runner but arrive in completion order, not index order.
type Progress func(done, total int, r Result)

// Report is a completed campaign: per-trial results in grid order plus
// streaming aggregates of the trial wall times.
type Report struct {
	Spec    string
	Results []Result
	// TrialSeconds aggregates per-trial wall-clock seconds as trials
	// complete (count, mean, min, max); its Sum is the total CPU-side
	// work, which together with Wall gives the realised parallel speedup.
	TrialSeconds stats.Stream
	// Wall is the end-to-end campaign duration.
	Wall time.Duration
	// Workers is the worker-pool size the campaign ran with.
	Workers int
	// Resumed counts trials restored from a checkpoint journal instead
	// of executed; their Results carry the journaled value and elapsed
	// time, and they contribute nothing to TrialSeconds or Wall.
	Resumed int
}

// Speedup is the realised parallelism: total per-trial work divided by
// wall-clock time (1.0 for a serial run, approaching Workers for a
// perfectly parallel grid). When workers oversubscribe the available
// cores, per-trial elapsed times include scheduler wait and the figure
// overstates true parallelism.
func (r *Report) Speedup() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return r.TrialSeconds.Sum() / r.Wall.Seconds()
}

// Err summarises the campaign's failures deterministically: the
// lowest-index real failure is always the one wrapped (so errors.Is /
// errors.As see the root cause regardless of completion order), and
// when containment let several trials fail the message carries the
// count. Cancellation errors are reported only when no trial failed
// for a real reason: one failing trial cancels the campaign context
// (unless Runner.Contain), and the in-flight siblings it interrupts
// then return context.Canceled — noise that must not mask the root
// cause. Use Failures for the full manifest.
func (r *Report) Err() error {
	var cancelled, first error
	failed := 0
	for i := range r.Results {
		err := r.Results[i].Err
		if err == nil {
			continue
		}
		if isCancellation(err) {
			if cancelled == nil {
				cancelled = fmt.Errorf("trial %d (%s): %w", i, r.Results[i].Label, err)
			}
			continue
		}
		failed++
		if first == nil {
			first = fmt.Errorf("trial %d (%s): %w", i, r.Results[i].Label, err)
		}
	}
	switch {
	case first == nil:
		return cancelled
	case failed == 1:
		return first
	default:
		return fmt.Errorf("%d of %d trials failed; first: %w", failed, len(r.Results), first)
	}
}

// TrialFailure is one entry of a campaign's error manifest.
type TrialFailure struct {
	Index    int
	Label    string
	Seed     int64
	Attempts int
	Err      error
}

// Failures returns the error manifest: every trial that failed for a
// real reason, in grid order. Cancellation noise (siblings
// interrupted by an abort) is excluded, mirroring Err. An empty
// manifest with a non-nil Err means the campaign itself was
// cancelled.
func (r *Report) Failures() []TrialFailure {
	var out []TrialFailure
	for i := range r.Results {
		res := &r.Results[i]
		if res.Err == nil || isCancellation(res.Err) {
			continue
		}
		out = append(out, TrialFailure{
			Index:    i,
			Label:    res.Label,
			Seed:     res.Seed,
			Attempts: res.Attempts,
			Err:      res.Err,
		})
	}
	return out
}

// isCancellation reports whether err is a context cancellation or
// deadline expiry rather than a trial's own failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// TrialSeed derives the RNG seed for one trial from the campaign seed.
// It is a splitmix64-style finaliser over (seed, index): cheap, stable
// across runs, and spreading consecutive indices to uncorrelated
// streams. The result is never zero, so downstream configs that treat a
// zero seed as "use the default" cannot be tripped by it.
func TrialSeed(campaignSeed int64, index int) int64 {
	x := uint64(campaignSeed)*0x9E3779B97F4A7C15 + uint64(index) + 1
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return int64(x)
}

// Runner executes campaigns over a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Batch is the number of consecutive trials handed to a worker per
	// dispatch; <= 0 picks an automatic size (1 for small grids, larger
	// for big ones, so channel traffic amortises over cheap trials
	// without hurting load balance). Batching never affects results —
	// per-trial seeds derive from trial indices, not from scheduling —
	// only dispatch granularity. Cancellation still reaches every trial
	// of an in-flight batch through the campaign context.
	Batch int
	// Progress, when non-nil, is invoked (serialised) after every trial.
	Progress Progress

	// Contain keeps the campaign running when a trial fails: instead of
	// cancelling the grid on the first failure (the zero-value,
	// fail-fast behaviour), the failed trial is recorded and every
	// other trial still runs, yielding partial results plus the error
	// manifest (Report.Failures). Panics are converted to
	// *TrialPanicError either way — a containment wrapper always
	// isolates a crashing trial from the worker pool.
	Contain bool
	// TrialTimeout, when positive, bounds each trial attempt with a
	// per-trial deadline delivered through the trial's context; an
	// attempt that exceeds it fails with *TrialTimeoutError. The
	// deadline is cooperative — trials must plumb their context into
	// the simulation loop for it to bite.
	TrialTimeout time.Duration
	// Retries is how many additional attempts a retryable failure
	// (ErrTransient, ErrTrialTimeout) gets before the trial is declared
	// failed. 0 disables retry.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent retry; <= 0 means 50ms.
	RetryBackoff time.Duration

	// Checkpoint, when non-nil, journals completed trials to disk and
	// resumes a matching journal: already-recorded trials are restored
	// into the report instead of re-run.
	Checkpoint *Checkpoint

	// Metrics, when non-nil, receives the runner's instrumentation:
	// trial durations and outcomes, retry counts, resumed trials, and
	// checkpoint fsync activity. A pure tap — results are identical
	// with and without it — that may be shared across concurrent
	// campaigns.
	Metrics *Metrics
}

// batch resolves the dispatch batch size for n trials over w workers.
func (r Runner) batch(n, w int) int {
	if r.Batch > 0 {
		return r.Batch
	}
	b := n / (w * 8)
	if b < 1 {
		b = 1
	}
	if b > 32 {
		b = 32
	}
	return b
}

func (r Runner) workers(trials int) int {
	n := r.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > trials {
		n = trials
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes every trial of the spec and returns the completed
// report. Without Contain, a trial failure does not abort trials
// already in flight but stops new trials from being dispatched; with
// Contain, failures are recorded and the rest of the grid still runs.
// Report.Err surfaces the lowest-index failure either way. The
// context cancels dispatch between trials.
func (r Runner) Run(ctx context.Context, spec Spec) (*Report, error) {
	n := len(spec.Trials)
	rep := &Report{Spec: spec.Name, Results: make([]Result, n), Workers: r.workers(n)}
	if n == 0 {
		return rep, nil
	}
	start := time.Now()

	var jw *journal
	var prefilled []bool
	if r.Checkpoint != nil {
		var resumed []Result
		var err error
		jw, resumed, err = r.Checkpoint.open(spec, r.Metrics)
		if err != nil {
			return nil, err
		}
		prefilled = make([]bool, n)
		for _, res := range resumed {
			prefilled[res.Index] = true
			rep.Results[res.Index] = res
		}
		rep.Resumed = len(resumed)
		r.Metrics.trialsResumed(rep.Resumed)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	batch := r.batch(n, rep.Workers)
	jobs := make(chan [2]int) // [start, end) trial-index ranges
	var wg sync.WaitGroup
	var mu sync.Mutex // guards done, rep.TrialSeconds, journal appends and Progress calls
	done := rep.Resumed

	// Fsync on drain: the moment the campaign is cancelled (parent
	// context or fail-fast), flush journaled-but-unsynced trials and
	// switch to sync-per-append. A SIGTERM'd process then has every
	// completed trial durable before its in-flight trials finish
	// draining — it cannot lose a batch of results to the follow-up
	// SIGKILL that graceful-shutdown timeouts deliver.
	if jw != nil {
		stopDrain := context.AfterFunc(ctx, func() {
			mu.Lock()
			jw.drain()
			mu.Unlock()
		})
		defer stopDrain()
	}

	for w := 0; w < rep.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The workspace lives as long as the worker: trials using
			// RunW reuse pooled machines and scratch state across every
			// trial this worker executes.
			ws := &Workspace{}
			for rng := range jobs {
				for idx := rng[0]; idx < rng[1]; idx++ {
					if prefilled != nil && prefilled[idx] {
						continue // restored from the checkpoint journal
					}
					t := spec.Trials[idx]
					res := Result{Index: idx, Label: t.Label, Seed: spec.trialSeed(idx)}
					t0 := time.Now()
					res.Value, res.Attempts, res.Err = r.runTrial(ctx, t, ws, res.Seed)
					res.Elapsed = time.Since(t0)
					rep.Results[idx] = res
					if res.Err != nil && !r.Contain {
						cancel()
					}
					mu.Lock()
					done++
					rep.TrialSeconds.Add(res.Elapsed.Seconds())
					r.Metrics.trialFinished(outcomeOf(res.Err), res.Elapsed.Seconds(), res.Attempts)
					if jw != nil && res.Err == nil {
						jw.append(r.Checkpoint, res)
					}
					if r.Progress != nil {
						r.Progress(done, n, res)
					}
					mu.Unlock()
				}
			}
		}()
	}

	dispatched := 0
dispatch:
	for i := 0; i < n; i += batch {
		end := i + batch
		if end > n {
			end = n
		}
		select {
		case jobs <- [2]int{i, end}:
			dispatched += end - i
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	rep.Wall = time.Since(start)
	err := rep.Err()
	// Dispatch stopped early without any trial failing for a real
	// reason: the caller's context was cancelled. Surface the campaign-
	// level cancellation — a silently partial report would read as a
	// completed campaign, and a trial-level context.Canceled would bury
	// how much of the grid was abandoned.
	if dispatched < n && (err == nil || isCancellation(err)) {
		err = fmt.Errorf("campaign %s: cancelled after %d/%d trials dispatched: %w",
			spec.Name, dispatched, n, context.Cause(ctx))
	}
	if jw != nil {
		// Close under mu: the drain AfterFunc may still be contending for
		// the lock, and journal state is only ever touched under it.
		mu.Lock()
		ckErr := jw.Close()
		mu.Unlock()
		// A journal failure degrades durability, not results: the report
		// is complete in memory, so surface the checkpoint error alongside
		// (not instead of) any trial failure.
		if ckErr != nil {
			ckErr = fmt.Errorf("campaign %s: checkpoint: %w", spec.Name, ckErr)
			if err == nil {
				err = ckErr
			} else {
				err = errors.Join(err, ckErr)
			}
		}
	}
	return rep, err
}

// Collect extracts the trial values as a typed slice in grid order.
// Trials that never ran (dispatch stopped after an error) or whose
// value is not a T yield an error naming the offending trial.
func Collect[T any](rep *Report) ([]T, error) {
	out := make([]T, len(rep.Results))
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Err != nil {
			return nil, fmt.Errorf("trial %d (%s): %w", i, res.Label, res.Err)
		}
		v, ok := res.Value.(T)
		if !ok {
			return nil, fmt.Errorf("trial %d (%s): value %T is not %T (trial skipped or mistyped)",
				i, res.Label, res.Value, v)
		}
		out[i] = v
	}
	return out, nil
}
