package campaign

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/snap"
)

// Checkpoint makes a campaign resumable across process deaths. When a
// Runner carries one, every successfully completed trial is appended
// to an on-disk journal, and a later run of the same campaign over the
// same journal skips the trials already recorded, re-running only the
// remainder — with aggregate results identical to an uninterrupted
// run, because per-trial seeds derive from trial indices, never from
// scheduling.
//
// The journal is crash-safe by construction: it is append-only, each
// record is an independently checksummed snap blob behind a length
// prefix, and the reader stops at — and truncates — the first torn or
// corrupt frame, so a record is either durably whole or ignored. A
// header record pins the campaign identity (name, seed, grid size,
// caller-supplied config hash); resuming under a different campaign
// fails with ErrCheckpointMismatch instead of silently mixing grids.
type Checkpoint struct {
	// Path is the journal file. It is created on first use; a non-empty
	// existing journal is resumed from.
	Path string

	// Hash fingerprints the campaign configuration beyond what the Spec
	// itself carries (machine configs, fault rates, workload set...).
	// Trials are closures, so the runner cannot derive this itself; the
	// caller must fold everything that changes trial outcomes into it.
	Hash uint64

	// Encode serialises a trial's Value for the journal; Decode is its
	// inverse, used on resume. Both are required. The round trip must
	// be exact — resumed aggregate statistics are only as bit-identical
	// as this codec.
	Encode func(v any) ([]byte, error)
	Decode func(data []byte) (any, error)

	// FlushEvery is the fsync batch size: the journal is synced to
	// stable storage after this many appended records (and once more on
	// close). <= 0 means 32. Records between syncs can be lost to a
	// crash — they are re-run on resume, never corrupted.
	FlushEvery int

	// syncHook, when non-nil, observes every successful journal fsync
	// with the number of records the sync made durable. Test-only.
	syncHook func(flushed int)
}

// Journal record kinds. The header is always the first frame.
const (
	recHeader = 1
	recTrial  = 2
)

// journalHeader is the campaign identity pinned by the first frame.
type journalHeader struct {
	name   string
	seed   int64
	trials int
	hash   uint64
}

// journalRecord is one completed trial as stored on disk.
type journalRecord struct {
	index    int
	seed     int64
	attempts int
	elapsed  time.Duration
	value    []byte
}

// parseJournal scans data as a sequence of [u32 length][snap blob]
// frames: a header frame followed by trial frames. It stops at the
// first frame that is truncated, corrupt, or of an unexpected kind,
// and returns the records of the valid prefix plus that prefix's byte
// length — the offset a resuming writer truncates to. A missing or
// broken header yields (nil, nil, 0): the journal is unusable and is
// started over. parseJournal never allocates proportionally to
// claimed (rather than actual) lengths, so it is safe on hostile
// input; returned value slices alias data.
func parseJournal(data []byte) (*journalHeader, []journalRecord, int64) {
	off := 0
	var hdr *journalHeader
	var recs []journalRecord
	for {
		if len(data)-off < 4 {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > len(data)-off-4 {
			break // torn tail: frame extends past the file
		}
		r, err := snap.NewReader(data[off+4 : off+4+n])
		if err != nil {
			break
		}
		if hdr == nil {
			if r.U8() != recHeader {
				break
			}
			h := journalHeader{name: r.String(), seed: r.I64()}
			h.trials = int(r.U32())
			h.hash = r.U64()
			if r.Done() != nil {
				break
			}
			hdr = &h
		} else {
			if r.U8() != recTrial {
				break
			}
			rec := journalRecord{index: int(r.U32()), seed: r.I64()}
			rec.attempts = int(r.U32())
			rec.elapsed = time.Duration(r.I64())
			rec.value = r.Bytes()
			if r.Done() != nil {
				break
			}
			recs = append(recs, rec)
		}
		off += 4 + n
	}
	if hdr == nil {
		return nil, nil, 0
	}
	return hdr, recs, int64(off)
}

// frame wraps a snap payload in its length prefix.
func frame(payload []byte) []byte {
	buf := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// headerFrame encodes the identity frame for spec under hash.
func headerFrame(spec Spec, hash uint64) []byte {
	w := snap.NewWriter(32 + len(spec.Name))
	w.U8(recHeader)
	w.String(spec.Name)
	w.I64(spec.Seed)
	w.U32(uint32(len(spec.Trials)))
	w.U64(hash)
	return frame(w.Finish())
}

// trialFrame encodes one completed trial with its pre-encoded value.
func trialFrame(res Result, value []byte) []byte {
	w := snap.NewWriter(40 + len(value))
	w.U8(recTrial)
	w.U32(uint32(res.Index))
	w.I64(res.Seed)
	w.U32(uint32(res.Attempts))
	w.I64(int64(res.Elapsed))
	w.Bytes(value)
	return frame(w.Finish())
}

// open prepares the journal for spec: it validates or (re)writes the
// header, converts the journal's valid prefix into resumed Results,
// truncates any torn tail, and returns a writer positioned for
// appending. A mismatched journal returns *CheckpointMismatchError.
func (c *Checkpoint) open(spec Spec, m *Metrics) (*journal, []Result, error) {
	if c.Path == "" {
		return nil, nil, errors.New("campaign: checkpoint has no path")
	}
	if c.Encode == nil || c.Decode == nil {
		return nil, nil, errors.New("campaign: checkpoint needs both Encode and Decode")
	}
	f, err := os.OpenFile(c.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: checkpoint %s: read: %w", c.Path, err)
	}
	hdr, recs, valid := parseJournal(data)
	j := &journal{f: f, flushEvery: c.FlushEvery, syncHook: c.syncHook, metrics: m}
	if j.flushEvery <= 0 {
		j.flushEvery = 32
	}
	if hdr == nil {
		// Empty file, or a header torn by a crash during the very first
		// write: nothing completed under it, so start the journal over.
		if err := j.reset(headerFrame(spec, c.Hash)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: checkpoint %s: init: %w", c.Path, err)
		}
		return j, nil, nil
	}
	resumed, err := c.resume(spec, hdr, recs)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail so appended records land on a frame boundary.
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("campaign: checkpoint %s: truncate torn tail: %w", c.Path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: checkpoint %s: seek: %w", c.Path, err)
	}
	return j, resumed, nil
}

// resume validates the journal identity against spec and converts the
// records into Results, decoding the stored values. Later records for
// an index win (only possible if a crash raced the batch fsync).
func (c *Checkpoint) resume(spec Spec, hdr *journalHeader, recs []journalRecord) ([]Result, error) {
	mismatch := func(field, want, got string) error {
		return &CheckpointMismatchError{Path: c.Path, Field: field, Want: want, Got: got}
	}
	if hdr.name != spec.Name {
		return nil, mismatch("name", fmt.Sprintf("%q", spec.Name), fmt.Sprintf("%q", hdr.name))
	}
	if hdr.seed != spec.Seed {
		return nil, mismatch("seed", fmt.Sprint(spec.Seed), fmt.Sprint(hdr.seed))
	}
	if hdr.trials != len(spec.Trials) {
		return nil, mismatch("trials", fmt.Sprint(len(spec.Trials)), fmt.Sprint(hdr.trials))
	}
	if hdr.hash != c.Hash {
		return nil, mismatch("hash", fmt.Sprintf("%#x", c.Hash), fmt.Sprintf("%#x", hdr.hash))
	}
	byIndex := make(map[int]int, len(recs)) // trial index -> slot in out
	var out []Result
	for _, rec := range recs {
		if rec.index < 0 || rec.index >= len(spec.Trials) {
			return nil, mismatch("trial index", fmt.Sprintf("< %d", len(spec.Trials)), fmt.Sprint(rec.index))
		}
		// The campaign seed already matched, so a record seed that
		// disagrees with the derived seed means the seed-derivation
		// grouping (Spec.SeedIndex) changed between runs.
		if want := spec.trialSeed(rec.index); rec.seed != want {
			return nil, mismatch(fmt.Sprintf("trial %d seed", rec.index), fmt.Sprint(want), fmt.Sprint(rec.seed))
		}
		v, err := c.Decode(rec.value)
		if err != nil {
			return nil, fmt.Errorf("campaign: checkpoint %s: decode trial %d: %w", c.Path, rec.index, err)
		}
		res := Result{
			Index:    rec.index,
			Label:    spec.Trials[rec.index].Label,
			Seed:     rec.seed,
			Value:    v,
			Elapsed:  rec.elapsed,
			Attempts: rec.attempts,
		}
		if slot, ok := byIndex[rec.index]; ok {
			out[slot] = res
		} else {
			byIndex[rec.index] = len(out)
			out = append(out, res)
		}
	}
	return out, nil
}

// journal appends trial records to the checkpoint file with batched
// fsync. Errors are sticky: after a failed append the journal stops
// writing and Close reports the failure — the campaign keeps running
// (results in memory are unaffected), it just loses durability.
type journal struct {
	f            *os.File
	flushEvery   int
	pending      int
	pendingBytes int64
	closed       bool
	err          error
	syncHook     func(flushed int)
	metrics      *Metrics
}

// reset truncates the file and writes a fresh header, synced.
func (j *journal) reset(header []byte) error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := j.f.Write(header); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.metrics.checkpointSynced(0, int64(len(header)))
	return nil
}

// append journals one successful trial. The caller serialises calls
// (the runner appends under its completion mutex).
func (j *journal) append(c *Checkpoint, res Result) {
	if j.err != nil || j.closed {
		return
	}
	value, err := c.Encode(res.Value)
	if err != nil {
		j.err = fmt.Errorf("encode trial %d: %w", res.Index, err)
		return
	}
	fr := trialFrame(res, value)
	if _, err := j.f.Write(fr); err != nil {
		j.err = fmt.Errorf("append trial %d: %w", res.Index, err)
		return
	}
	j.pending++
	j.pendingBytes += int64(len(fr))
	if j.pending >= j.flushEvery {
		j.sync()
	}
}

// sync flushes pending records to stable storage.
func (j *journal) sync() {
	flushed, flushedBytes := j.pending, j.pendingBytes
	j.pending, j.pendingBytes = 0, 0
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("sync: %w", err)
		return
	}
	j.metrics.checkpointSynced(flushed, flushedBytes)
	if j.syncHook != nil {
		j.syncHook(flushed)
	}
}

// drain hardens the journal for shutdown: records appended but not yet
// fsynced are synced immediately, and every later append syncs as it
// lands. The runner calls this the moment its context is cancelled, so
// a campaign interrupted by SIGTERM has its completed trials durable
// even if the process is killed for real while slow in-flight trials
// are still draining — without it, up to FlushEvery-1 journaled results
// would sit unsynced until Close.
func (j *journal) drain() {
	if j.err != nil || j.closed {
		return
	}
	j.flushEvery = 1
	if j.pending > 0 {
		j.sync()
	}
}

// Close flushes pending records and closes the file, returning the
// first error the journal hit.
func (j *journal) Close() error {
	if j.err == nil && j.pending > 0 {
		j.sync()
	}
	j.closed = true
	if err := j.f.Close(); err != nil && j.err == nil {
		j.err = fmt.Errorf("close: %w", err)
	}
	return j.err
}
