package campaign

import (
	"context"
	"runtime/debug"
	"time"
)

// runTrial executes one trial under the runner's containment policy:
// panics become *TrialPanicError, each attempt runs under the
// per-trial deadline, and retryable failures (ErrTransient,
// ErrTrialTimeout) are re-attempted up to Retries times with doubling
// backoff. attempts reports how many attempts actually ran.
func (r Runner) runTrial(ctx context.Context, t Trial, ws *Workspace, seed int64) (v any, attempts int, err error) {
	backoff := r.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	for {
		attempts++
		v, err = r.attempt(ctx, t, ws, seed)
		if err == nil || attempts > r.Retries || !retryable(err) || ctx.Err() != nil {
			return v, attempts, err
		}
		select {
		case <-ctx.Done():
			return v, attempts, err
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// attempt is a single execution of the trial with panic containment
// and the per-attempt deadline. The deadline is cooperative: the
// trial's context fires at TrialTimeout and a simulation that plumbs
// it into its run loop (as core.RunContext does) stops promptly. An
// expired attempt deadline is reported as *TrialTimeoutError — a real
// per-trial failure — except when the campaign context itself is
// done, in which case the cancellation is passed through untouched so
// an aborted campaign is not misread as a grid full of timeouts.
func (r Runner) attempt(ctx context.Context, t Trial, ws *Workspace, seed int64) (v any, err error) {
	actx := ctx
	if r.TrialTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, r.TrialTimeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &TrialPanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	v, err = t.run(actx, ws, seed)
	if err != nil && r.TrialTimeout > 0 && isCancellation(err) &&
		actx.Err() != nil && ctx.Err() == nil {
		err = &TrialTimeoutError{Timeout: r.TrialTimeout}
	}
	return v, err
}
