package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestWorkspaceZeroValue: the zero Workspace is usable and Set/Value
// round-trip with typed keys.
func TestWorkspaceZeroValue(t *testing.T) {
	var ws Workspace
	type keyA struct{}
	type keyB struct{}
	if ws.Value(keyA{}) != nil {
		t.Error("empty workspace returned a value")
	}
	ws.Set(keyA{}, 1)
	ws.Set(keyB{}, "two")
	ws.Set(keyA{}, 3) // overwrite
	if got := ws.Value(keyA{}); got != 3 {
		t.Errorf("Value(keyA) = %v, want 3", got)
	}
	if got := ws.Value(keyB{}); got != "two" {
		t.Errorf("Value(keyB) = %v, want two", got)
	}
}

// TestWorkspacePerWorker: every worker goroutine owns exactly one
// workspace for the whole campaign — the property that makes lock-free
// machine pools in RunW safe — and RunW wins over Run when both are
// set.
func TestWorkspacePerWorker(t *testing.T) {
	const trials = 64
	const workers = 4
	var mu sync.Mutex
	seen := map[*Workspace]int{} // workspace -> trials it served

	specTrials := make([]Trial, trials)
	for i := range specTrials {
		specTrials[i] = Trial{
			Label: fmt.Sprintf("t%d", i),
			Run: func(ctx context.Context, seed int64) (any, error) {
				return nil, errors.New("Run called although RunW is set")
			},
			RunW: func(ctx context.Context, ws *Workspace, seed int64) (any, error) {
				if ws == nil {
					return nil, errors.New("nil workspace")
				}
				// Per-worker trial counter kept in the workspace itself.
				type countKey struct{}
				n, _ := ws.Value(countKey{}).(int)
				ws.Set(countKey{}, n+1)
				mu.Lock()
				seen[ws]++
				mu.Unlock()
				return n, nil
			},
		}
	}
	rep, err := Runner{Workers: workers}.Run(context.Background(), Spec{Name: "ws", Trials: specTrials})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) > workers {
		t.Errorf("%d distinct workspaces for %d workers", len(seen), workers)
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != trials {
		t.Errorf("workspaces served %d trials, want %d", total, trials)
	}
	// The workspace counter each trial observed must agree with the
	// per-workspace totals: trial i on a workspace sees counts 0..n-1.
	perWS := map[int]int{}
	for _, res := range rep.Results {
		perWS[res.Value.(int)]++
	}
	for _, n := range seen {
		for c := 0; c < n; c++ {
			if perWS[c] == 0 {
				t.Fatalf("workspace counter sequence has a hole at %d", c)
			}
			perWS[c]--
		}
	}
}

// TestBatchingDeterminism: results — values, seeds, labels, order — are
// identical across every batch size and worker count, because seeds
// derive from trial indices and results are stored by index.
func TestBatchingDeterminism(t *testing.T) {
	const trials = 50
	mkTrials := func() []Trial {
		ts := make([]Trial, trials)
		for i := range ts {
			idx := i
			ts[i] = Trial{
				Label: fmt.Sprintf("t%d", idx),
				RunW: func(ctx context.Context, ws *Workspace, seed int64) (any, error) {
					return fmt.Sprintf("%d:%d", idx, seed), nil
				},
			}
		}
		return ts
	}
	var ref []Result
	for _, workers := range []int{1, 3} {
		for _, batch := range []int{0, 1, 7, 1000} {
			rep, err := Runner{Workers: workers, Batch: batch}.Run(
				context.Background(), Spec{Name: "batch", Seed: 42, Trials: mkTrials()})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if ref == nil {
				ref = rep.Results
				continue
			}
			for i := range rep.Results {
				got, want := rep.Results[i], ref[i]
				if got.Value != want.Value || got.Seed != want.Seed || got.Label != want.Label || got.Index != want.Index {
					t.Errorf("workers=%d batch=%d trial %d: %+v != reference %+v",
						workers, batch, i, got, want)
				}
			}
		}
	}
}

// TestAutoBatchSizing pins the auto batch heuristic's envelope: 1 for
// small grids, bounded by 32, and never zero.
func TestAutoBatchSizing(t *testing.T) {
	r := Runner{}
	for _, tc := range []struct{ n, w, want int }{
		{1, 1, 1},
		{33, 4, 1},
		{320, 4, 10},
		{100_000, 4, 32},
	} {
		if got := r.batch(tc.n, tc.w); got != tc.want {
			t.Errorf("batch(%d, %d) = %d, want %d", tc.n, tc.w, got, tc.want)
		}
	}
	if got := (Runner{Batch: 5}).batch(1000, 4); got != 5 {
		t.Errorf("explicit Batch ignored: got %d", got)
	}
}

// TestBatchedCancellation: cancelling the campaign context stops
// dispatch between batches and surfaces the cancellation; trials inside
// an already-dispatched batch still observe the cancelled context.
func TestBatchedCancellation(t *testing.T) {
	const trials = 40
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	ts := make([]Trial, trials)
	for i := range ts {
		ts[i] = Trial{RunW: func(c context.Context, ws *Workspace, seed int64) (any, error) {
			ran++
			if ran == 3 {
				cancel()
			}
			return nil, c.Err() // nil before cancellation, Canceled after
		}}
	}
	rep, err := Runner{Workers: 1, Batch: 8}.Run(ctx, Spec{Name: "cancel", Trials: ts})
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	if rep == nil || ran >= trials {
		t.Fatalf("cancellation did not stop dispatch (ran %d/%d)", ran, trials)
	}
}
