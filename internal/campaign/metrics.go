package campaign

import (
	"errors"
	"repro/internal/obs"
)

// Trial outcome classes, the label values of the trials-total counter.
// A trial has exactly one outcome: its final error (after retries)
// decides the class.
const (
	OutcomeOK        = "ok"
	OutcomePanic     = "panic"
	OutcomeTimeout   = "timeout"
	OutcomeCancelled = "cancelled"
	OutcomeFailed    = "failed"
)

// outcomeOf classifies a trial's final error.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, ErrTrialPanic):
		return OutcomePanic
	case errors.Is(err, ErrTrialTimeout):
		return OutcomeTimeout
	case isCancellation(err):
		return OutcomeCancelled
	default:
		return OutcomeFailed
	}
}

// Metrics is the campaign engine's instrumentation: a set of obs
// instruments the runner updates as trials complete and the checkpoint
// journal syncs. One Metrics may be shared by any number of concurrent
// campaigns (a daemon wires a single instance into every job); all
// updates are atomic.
//
// Instrumentation is a pure tap: a Runner with Metrics produces
// byte-identical results to one without (proved by the ftsim
// equivalence test), it only observes.
type Metrics struct {
	// trialSeconds is the wall-time histogram of executed (not resumed)
	// trials, labelled by outcome.
	trialSeconds *obs.HistogramVec
	// trials counts trials by outcome.
	trials *obs.CounterVec
	// retries counts extra attempts consumed by retryable failures.
	retries *obs.Counter
	// resumed counts trials restored from a checkpoint journal instead
	// of executed.
	resumed *obs.Counter
	// ckptSyncs / ckptRecords / ckptBytes count checkpoint-journal
	// fsyncs, the trial records they made durable, and the bytes written
	// to stable storage.
	ckptSyncs   *obs.Counter
	ckptRecords *obs.Counter
	ckptBytes   *obs.Counter
}

// NewMetrics registers the campaign instruments on r (idempotently:
// calling it twice on one registry yields two handles onto the same
// series) and returns the handle a Runner carries.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		trialSeconds: r.NewHistogram("ftsim_trial_seconds",
			"Wall-clock duration of executed campaign trials.", nil, "outcome"),
		trials: r.NewCounter("ftsim_trials_total",
			"Campaign trials by terminal outcome.", "outcome"),
		retries: r.NewCounter("ftsim_trial_retries_total",
			"Extra attempts consumed by retryable trial failures.").With(),
		resumed: r.NewCounter("ftsim_trials_resumed_total",
			"Trials restored from a checkpoint journal instead of executed.").With(),
		ckptSyncs: r.NewCounter("ftsim_checkpoint_syncs_total",
			"Checkpoint-journal fsync calls.").With(),
		ckptRecords: r.NewCounter("ftsim_checkpoint_synced_records_total",
			"Trial records made durable by checkpoint fsyncs.").With(),
		ckptBytes: r.NewCounter("ftsim_checkpoint_synced_bytes_total",
			"Bytes written to checkpoint journals, counted at fsync.").With(),
	}
}

// trialFinished records one executed trial's final result.
func (m *Metrics) trialFinished(outcome string, seconds float64, attempts int) {
	if m == nil {
		return
	}
	m.trials.With(outcome).Inc()
	m.trialSeconds.With(outcome).Observe(seconds)
	if attempts > 1 {
		m.retries.Add(uint64(attempts - 1))
	}
}

// trialsResumed records trials restored from a journal.
func (m *Metrics) trialsResumed(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.resumed.Add(uint64(n))
}

// checkpointSynced records one journal fsync that made records trial
// records (possibly 0, for the header) and bytes bytes durable.
func (m *Metrics) checkpointSynced(records int, bytes int64) {
	if m == nil {
		return
	}
	m.ckptSyncs.Inc()
	if records > 0 {
		m.ckptRecords.Add(uint64(records))
	}
	if bytes > 0 {
		m.ckptBytes.Add(uint64(bytes))
	}
}
