package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestTrialSeed(t *testing.T) {
	// Deterministic, index-sensitive, seed-sensitive, never zero.
	if TrialSeed(1, 0) != TrialSeed(1, 0) {
		t.Fatal("TrialSeed not deterministic")
	}
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for idx := 0; idx < 256; idx++ {
			s := TrialSeed(seed, idx)
			if s == 0 {
				t.Fatalf("TrialSeed(%d,%d) = 0", seed, idx)
			}
			if seen[s] {
				t.Fatalf("TrialSeed(%d,%d) = %d collides", seed, idx, s)
			}
			seen[s] = true
		}
	}
}

// spec builds a trial grid whose values depend only on (index, seed), with
// deliberately uneven trial durations so completion order scrambles.
func testSpec(n int) Spec {
	trials := make([]Trial, n)
	for i := range trials {
		i := i
		trials[i] = Trial{
			Label: fmt.Sprintf("trial-%d", i),
			Run: func(_ context.Context, seed int64) (any, error) {
				time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
				return seed ^ int64(i), nil
			},
		}
	}
	return Spec{Name: "test", Seed: 42, Trials: trials}
}

func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int64 {
		rep, err := Runner{Workers: workers}.Run(context.Background(), testSpec(24))
		if err != nil {
			t.Fatal(err)
		}
		vals, err := Collect[int64](rep)
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	serial := run(1)
	for _, w := range []int{2, 8, 64} {
		got := run(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: trial %d = %d, serial = %d", w, i, got[i], serial[i])
			}
		}
	}
}

func TestRunnerReportAndProgress(t *testing.T) {
	var calls atomic.Int64
	lastDone := 0
	r := Runner{Workers: 4, Progress: func(done, total int, res Result) {
		calls.Add(1)
		if total != 24 {
			t.Errorf("total = %d", total)
		}
		if done != lastDone+1 { // serialised by the runner
			t.Errorf("done jumped %d -> %d", lastDone, done)
		}
		lastDone = done
		if res.Seed != TrialSeed(42, res.Index) {
			t.Errorf("trial %d seed %d, want %d", res.Index, res.Seed, TrialSeed(42, res.Index))
		}
	}}
	rep, err := r.Run(context.Background(), testSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 24 {
		t.Errorf("progress called %d times", calls.Load())
	}
	if rep.TrialSeconds.N() != 24 {
		t.Errorf("aggregated %d trial times", rep.TrialSeconds.N())
	}
	if rep.Wall <= 0 || rep.TrialSeconds.Sum() < 0 {
		t.Errorf("wall %v, work %v", rep.Wall, rep.TrialSeconds.Sum())
	}
	if rep.Workers != 4 {
		t.Errorf("workers = %d", rep.Workers)
	}
	if rep.Speedup() <= 0 {
		t.Errorf("speedup = %g", rep.Speedup())
	}
	for i, res := range rep.Results {
		if res.Index != i || res.Label == "" {
			t.Fatalf("result %d out of place: %+v", i, res)
		}
	}
}

func TestSeedIndexGrouping(t *testing.T) {
	// Paired trials (same seed group) must receive the identical seed,
	// and the reported Result.Seed must be the seed the trial ran with.
	spec := testSpec(8)
	spec.SeedIndex = func(i int) int { return i / 2 }
	rep, err := Runner{Workers: 4}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i += 2 {
		a, b := rep.Results[i], rep.Results[i+1]
		if a.Seed != b.Seed {
			t.Errorf("pair %d: seeds %d != %d", i/2, a.Seed, b.Seed)
		}
		if a.Seed != TrialSeed(spec.Seed, i/2) {
			t.Errorf("pair %d: seed %d, want TrialSeed(%d,%d)", i/2, a.Seed, spec.Seed, i/2)
		}
		// The trial really ran with the reported seed (testSpec returns
		// seed ^ index).
		if got := a.Value.(int64); got != a.Seed^int64(i) {
			t.Errorf("trial %d ran with a different seed than reported", i)
		}
	}
}

func TestRunnerErrorIsLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	spec := testSpec(16)
	// Two failures; the reported one must be the lower index no matter
	// which completes first.
	spec.Trials[3].Run = func(context.Context, int64) (any, error) { return nil, boom }
	spec.Trials[9].Run = func(context.Context, int64) (any, error) { return nil, boom }
	for _, w := range []int{1, 8} {
		_, err := Runner{Workers: w}.Run(context.Background(), spec)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if !strings.Contains(err.Error(), "trial 3 (trial-3)") {
			t.Errorf("workers=%d: err names wrong trial: %v", w, err)
		}
	}
}

func TestRunnerEmptyAndCancel(t *testing.T) {
	rep, err := Runner{}.Run(context.Background(), Spec{Name: "empty"})
	if err != nil || len(rep.Results) != 0 {
		t.Fatalf("empty campaign: %v, %d results", err, len(rep.Results))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err = Runner{Workers: 2}.Run(ctx, testSpec(50))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	ran := 0
	for _, r := range rep.Results {
		if r.Value != nil {
			ran++
		}
	}
	if ran == 50 {
		t.Error("cancel did not stop dispatch")
	}
}

// TestCancelReachesInFlightTrials: the campaign context is handed to
// every trial, so cancelling mid-trial interrupts running work instead
// of only stopping future dispatch.
func TestCancelReachesInFlightTrials(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	spec := Spec{Name: "cancel", Trials: []Trial{{
		Label: "blocker",
		Run: func(ctx context.Context, _ int64) (any, error) {
			close(started)
			<-ctx.Done() // a well-behaved long trial honours its context
			return nil, ctx.Err()
		},
	}}}
	go func() {
		<-started
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := Runner{Workers: 1}.Run(ctx, spec)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("campaign returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation never reached the in-flight trial")
	}
}

// TestTrialFailureNotMaskedByCancellation: when one trial fails, the
// campaign cancels its siblings; the reported error must stay the real
// failure, not a lower-index sibling's context.Canceled.
func TestTrialFailureNotMaskedByCancellation(t *testing.T) {
	boom := errors.New("boom")
	blocked := make(chan struct{})
	spec := Spec{Name: "mask", Trials: []Trial{
		{Label: "innocent", Run: func(ctx context.Context, _ int64) (any, error) {
			close(blocked)
			<-ctx.Done() // interrupted by the sibling's failure
			return nil, ctx.Err()
		}},
		{Label: "guilty", Run: func(context.Context, int64) (any, error) {
			<-blocked // fail only once the innocent trial is in flight
			return nil, boom
		}},
	}}
	_, err := Runner{Workers: 2}.Run(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("campaign returned %v, want the real failure", err)
	}
	if !strings.Contains(err.Error(), "guilty") {
		t.Errorf("error %v does not name the failing trial", err)
	}
}

func TestCollectTypeMismatch(t *testing.T) {
	rep, err := Runner{Workers: 1}.Run(context.Background(), Spec{Trials: []Trial{
		{Label: "s", Run: func(context.Context, int64) (any, error) { return "str", nil }},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect[int](rep); err == nil {
		t.Error("type mismatch not reported")
	}
	vals, err := Collect[string](rep)
	if err != nil || vals[0] != "str" {
		t.Fatalf("collect: %v, %v", vals, err)
	}
}
