// Package ecc implements a Hamming SECDED(72,64) code: 64 data bits
// protected by 8 check bits, correcting any single-bit error and
// detecting any double-bit error.
//
// The paper assumes all committed program state — register files, the
// register rename map table, caches, memory, TLBs and the committed
// next-PC register — is protected by exactly this kind of information
// redundancy, placing it outside the sphere of replication. This package
// makes that assumption concrete: the simulator's committed structures
// can be wrapped in ecc.Word and survive the single-event upsets that the
// fault injector throws at the rest of the datapath.
//
// Layout: the codeword has positions 1..72. Positions that are powers of
// two (1,2,4,8,16,32,64) hold check bits; the remaining 65 positions hold
// the 64 data bits in order (one position, 72, is unused by data and
// serves as the overall parity bit for double-error detection).
package ecc

import "math/bits"

// Word is an ECC-protected 64-bit value. Data and Check are stored
// separately so tests and the fault injector can flip bits in either.
type Word struct {
	Data  uint64
	Check uint8 // bits 0..6: Hamming check bits; bit 7: overall parity
}

// Status reports the outcome of decoding a word.
type Status int

const (
	// OK means the word was error-free.
	OK Status = iota
	// Corrected means a single-bit error was detected and corrected.
	Corrected
	// Uncorrectable means a double-bit (or worse) error was detected.
	Uncorrectable
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	}
	return "unknown"
}

// dataPos[i] is the codeword position (1..72) of data bit i.
var dataPos = func() [64]uint {
	var pos [64]uint
	i := 0
	for p := uint(1); i < 64; p++ {
		if p&(p-1) == 0 { // power of two: check-bit position
			continue
		}
		pos[i] = p
		i++
	}
	return pos
}()

// checkPos[j] is the codeword position of check bit j.
var checkPos = [7]uint{1, 2, 4, 8, 16, 32, 64}

// syndrome returns the XOR of the positions of all set data bits.
func syndrome(data uint64) uint {
	var s uint
	for d := data; d != 0; d &= d - 1 {
		s ^= dataPos[bits.TrailingZeros64(d)]
	}
	return s
}

// Encode computes the check bits for data.
func Encode(data uint64) Word {
	s := syndrome(data)
	var check uint8
	for j, p := range checkPos {
		if s&p != 0 {
			check |= 1 << uint(j)
		}
	}
	// Overall parity over data and the 7 Hamming check bits.
	parity := uint8(bits.OnesCount64(data)+bits.OnesCount8(check)) & 1
	check |= parity << 7
	return Word{Data: data, Check: check}
}

// Decode verifies w, returning the (possibly corrected) data value and
// the error status. On Uncorrectable the returned data is w.Data
// unchanged.
func Decode(w Word) (uint64, Status) {
	s := syndrome(w.Data)
	var storedCheck uint
	for j, p := range checkPos {
		if w.Check&(1<<uint(j)) != 0 {
			storedCheck ^= p
		}
	}
	synd := s ^ storedCheck
	parityOK := uint8(bits.OnesCount64(w.Data)+bits.OnesCount8(w.Check))&1 == 0

	switch {
	case synd == 0 && parityOK:
		return w.Data, OK
	case synd == 0 && !parityOK:
		// The overall parity bit itself flipped; data is intact.
		return w.Data, Corrected
	case parityOK:
		// Nonzero syndrome with even parity: two bits flipped.
		return w.Data, Uncorrectable
	}
	// Single-bit error at position synd.
	if synd > 72 {
		return w.Data, Uncorrectable
	}
	for _, p := range checkPos {
		if synd == p {
			// A check bit flipped; data is intact.
			return w.Data, Corrected
		}
	}
	for i, p := range dataPos {
		if synd == p {
			return w.Data ^ (1 << uint(i)), Corrected
		}
	}
	// Position 72 holds no data or Hamming bit; any syndrome pointing
	// there is inconsistent.
	return w.Data, Uncorrectable
}

// FlipDataBit returns w with data bit i (0..63) inverted, modelling a
// single-event upset in the protected array.
func FlipDataBit(w Word, i uint) Word {
	w.Data ^= 1 << (i & 63)
	return w
}

// FlipCheckBit returns w with check bit j (0..7) inverted.
func FlipCheckBit(w Word, j uint) Word {
	w.Check ^= 1 << (j & 7)
	return w
}

// Reg is an ECC-protected register: every read is decoded and corrected.
// It models structures like the committed next-PC register that the
// paper requires to be information-redundant.
type Reg struct {
	w Word
	// CorrectedCount counts reads that required single-bit correction.
	CorrectedCount uint64
}

// Set stores v with fresh check bits.
func (r *Reg) Set(v uint64) { r.w = Encode(v) }

// Get decodes the stored word, correcting a single-bit upset if present.
// ok is false if the value was uncorrectable.
func (r *Reg) Get() (v uint64, ok bool) {
	v, st := Decode(r.w)
	switch st {
	case Corrected:
		r.CorrectedCount++
		r.w = Encode(v) // scrub
	case Uncorrectable:
		return v, false
	}
	return v, true
}

// Upset flips data bit i in the stored word (for fault-injection tests).
func (r *Reg) Upset(i uint) { r.w = FlipDataBit(r.w, i) }
