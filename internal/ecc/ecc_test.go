package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	f := func(data uint64) bool {
		got, st := Decode(Encode(data))
		return st == OK && got == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleDataBitCorrection exhaustively flips each of the 64 data bits
// for several payloads and requires exact correction.
func TestSingleDataBitCorrection(t *testing.T) {
	payloads := []uint64{0, ^uint64(0), 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63, 0x5555_5555_5555_5555}
	for _, data := range payloads {
		w := Encode(data)
		for i := uint(0); i < 64; i++ {
			got, st := Decode(FlipDataBit(w, i))
			if st != Corrected {
				t.Fatalf("data=%#x bit %d: status %v, want Corrected", data, i, st)
			}
			if got != data {
				t.Fatalf("data=%#x bit %d: corrected to %#x", data, i, got)
			}
		}
	}
}

// TestSingleCheckBitCorrection flips each of the 8 check bits; data must
// survive untouched.
func TestSingleCheckBitCorrection(t *testing.T) {
	data := uint64(0x0123_4567_89AB_CDEF)
	w := Encode(data)
	for j := uint(0); j < 8; j++ {
		got, st := Decode(FlipCheckBit(w, j))
		if st != Corrected {
			t.Fatalf("check bit %d: status %v, want Corrected", j, st)
		}
		if got != data {
			t.Fatalf("check bit %d: data corrupted to %#x", j, got)
		}
	}
}

// TestDoubleBitDetection verifies that all double flips (data+data,
// data+check, check+check) are flagged Uncorrectable, by property test.
func TestDoubleBitDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		data := rng.Uint64()
		w := Encode(data)
		// Choose two distinct bit positions out of the 72 used.
		i := uint(rng.Intn(72))
		j := uint(rng.Intn(72))
		if i == j {
			continue
		}
		flip := func(w Word, p uint) Word {
			if p < 64 {
				return FlipDataBit(w, p)
			}
			return FlipCheckBit(w, p-64)
		}
		_, st := Decode(flip(flip(w, i), j))
		if st != Uncorrectable {
			t.Fatalf("double flip (%d,%d) on %#x: status %v, want Uncorrectable", i, j, data, st)
		}
	}
}

func TestDataPositionsDistinct(t *testing.T) {
	seen := make(map[uint]bool)
	for _, p := range dataPos {
		if p == 0 || p > 72 {
			t.Fatalf("position %d out of range", p)
		}
		if p&(p-1) == 0 {
			t.Fatalf("data bit at check position %d", p)
		}
		if seen[p] {
			t.Fatalf("duplicate position %d", p)
		}
		seen[p] = true
	}
}

func TestReg(t *testing.T) {
	var r Reg
	r.Set(0xFEED_FACE_DEAD_BEEF)
	v, ok := r.Get()
	if !ok || v != 0xFEED_FACE_DEAD_BEEF {
		t.Fatalf("clean get = %#x, %v", v, ok)
	}
	// Upset a bit; the next read corrects and scrubs.
	r.Upset(17)
	v, ok = r.Get()
	if !ok || v != 0xFEED_FACE_DEAD_BEEF {
		t.Fatalf("post-upset get = %#x, %v", v, ok)
	}
	if r.CorrectedCount != 1 {
		t.Errorf("corrected count = %d, want 1", r.CorrectedCount)
	}
	// After scrubbing, another upset is again correctable.
	r.Upset(3)
	if v, ok = r.Get(); !ok || v != 0xFEED_FACE_DEAD_BEEF {
		t.Fatalf("second upset get = %#x, %v", v, ok)
	}
	// A double upset without an intervening read is uncorrectable.
	r.Upset(3)
	r.Upset(40)
	if _, ok = r.Get(); ok {
		t.Error("double upset not detected")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{OK: "ok", Corrected: "corrected", Uncorrectable: "uncorrectable", Status(9): "unknown"} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}
