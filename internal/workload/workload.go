// Package workload provides the 11 synthetic benchmarks standing in for
// the SPEC95/SPEC2000 programs of the paper's Table 2.
//
// SPEC binaries (and the PISA toolchain that compiled them) are not
// available, so each benchmark is generated from a Profile that encodes
// what actually drives the paper's results:
//
//   - the dynamic instruction mix of Table 2 (percent memory, integer,
//     FP add, FP multiply, FP divide), which determines which functional
//     units the workload stresses; and
//   - the behavioural character Section 5.2 attributes to each program:
//     how much instruction-level parallelism it exposes (number of
//     independent dependency chains), whether serialised divides bound
//     its critical path (ammp), how predictable its branches are (go and
//     vpr mispredict often), and how its footprint interacts with the
//     caches (swim streams through memory).
//
// The generated programs are real SRISC programs: a startup section, a
// main loop whose body realises the target mix, and a halt. Their
// measured dynamic mixes are verified against Table 2 by the package
// tests.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string

	// Table 2 dynamic-mix targets, in percent of all instructions.
	MemPct  float64
	IntPct  float64
	FAddPct float64
	FMulPct float64
	FDivPct float64

	// Chains is the number of independent integer dependency chains: the
	// workload's exposed ILP. Low values model go/vpr (ILP-limited);
	// high values model gcc/ijpeg (resource-limited).
	Chains int
	// SerialDivs inserts this many serially dependent integer divides
	// per loop body (ammp's critical-path divisions).
	SerialDivs int
	// MulFrac is the fraction of integer filler that uses the multiplier.
	MulFrac float64

	// BranchEvery inserts one conditional branch per this many body
	// slots; RandomBranchFrac is the fraction of those whose direction is
	// data-random (mispredicted ~half the time).
	BranchEvery      int
	RandomBranchFrac float64

	// FootprintBytes (a power of two) is the data region the memory
	// operations sweep; Stride is the byte distance between consecutive
	// accesses. Footprints beyond the cache sizes produce misses.
	FootprintBytes int
	Stride         int
	// StoreFrac is the fraction of memory operations that are stores.
	StoreFrac float64

	// BodySlots is the number of instruction slots per loop body.
	BodySlots int
	// Seed makes slot shuffling deterministic per profile.
	Seed int64
}

// Table2 returns the 11 benchmark profiles in the paper's order. Mix
// columns are Table 2 verbatim; the behavioural knobs encode Section
// 5.2's characterisation (which benchmarks are functional-unit limited,
// which are ILP limited, which are RUU/memory limited, and ammp's
// divide-bound critical path).
func Table2() []Profile {
	return []Profile{
		{
			Name: "gcc", MemPct: 74.55, IntPct: 25.45,
			Chains: 8, BranchEvery: 14, RandomBranchFrac: 0.15,
			FootprintBytes: 256 << 10, Stride: 24, StoreFrac: 0.33,
			MulFrac: 0.05, BodySlots: 320, Seed: 101,
		},
		{
			Name: "vortex", MemPct: 54.56, IntPct: 45.44,
			Chains: 8, BranchEvery: 12, RandomBranchFrac: 0.08,
			FootprintBytes: 512 << 10, Stride: 40, StoreFrac: 0.35,
			MulFrac: 0.05, BodySlots: 320, Seed: 102,
		},
		{
			Name: "go", MemPct: 29.49, IntPct: 70.50,
			Chains: 2, BranchEvery: 6, RandomBranchFrac: 0.45,
			FootprintBytes: 64 << 10, Stride: 16, StoreFrac: 0.25,
			MulFrac: 0.08, BodySlots: 320, Seed: 103,
		},
		{
			Name: "bzip", MemPct: 29.84, IntPct: 70.16,
			Chains: 12, BranchEvery: 9, RandomBranchFrac: 0.15,
			FootprintBytes: 256 << 10, Stride: 16, StoreFrac: 0.3,
			MulFrac: 0.08, BodySlots: 320, Seed: 104,
		},
		{
			Name: "ijpeg", MemPct: 26.06, IntPct: 73.94,
			Chains: 14, BranchEvery: 16, RandomBranchFrac: 0.05,
			FootprintBytes: 128 << 10, Stride: 8, StoreFrac: 0.3,
			MulFrac: 0.3, BodySlots: 320, Seed: 105,
		},
		{
			Name: "vpr", MemPct: 31.30, IntPct: 63.61, FAddPct: 3.57, FMulPct: 1.38, FDivPct: 0.15,
			Chains: 2, BranchEvery: 7, RandomBranchFrac: 0.4,
			FootprintBytes: 128 << 10, Stride: 24, StoreFrac: 0.25,
			MulFrac: 0.08, BodySlots: 320, Seed: 106,
		},
		{
			Name: "equake", MemPct: 34.55, IntPct: 52.82, FAddPct: 6.06, FMulPct: 6.41, FDivPct: 0.16,
			Chains: 6, BranchEvery: 12, RandomBranchFrac: 0.1,
			FootprintBytes: 1 << 20, Stride: 64, StoreFrac: 0.25,
			MulFrac: 0.1, BodySlots: 320, Seed: 107,
		},
		{
			Name: "ammp", MemPct: 41.35, IntPct: 56.64, FAddPct: 1.49, FMulPct: 0.50, FDivPct: 0.02,
			// Sixteen serially dependent 20-cycle integer divides dominate
			// each body's critical path — the "large number of divisions in
			// its critical path" that Section 5.2 blames for ammp's low,
			// resource-insensitive IPC. The two redundant divide chains of
			// SS-2 land on the two IntMult units and proceed in parallel,
			// which is why ammp loses almost nothing to redundancy.
			Chains: 4, SerialDivs: 16, BranchEvery: 12, RandomBranchFrac: 0.12,
			FootprintBytes: 512 << 10, Stride: 32, StoreFrac: 0.3,
			MulFrac: 0.01, BodySlots: 320, Seed: 108,
		},
		{
			Name: "fpppp", MemPct: 52.43, IntPct: 15.03, FAddPct: 15.53, FMulPct: 16.84, FDivPct: 0.16,
			Chains: 10, BranchEvery: 64, RandomBranchFrac: 0,
			FootprintBytes: 64 << 10, Stride: 8, StoreFrac: 0.35,
			MulFrac: 0.05, BodySlots: 320, Seed: 109,
		},
		{
			Name: "swim", MemPct: 32.71, IntPct: 37.41, FAddPct: 19.31, FMulPct: 10.12, FDivPct: 0.47,
			Chains: 12, BranchEvery: 40, RandomBranchFrac: 0,
			FootprintBytes: 2 << 20, Stride: 128, StoreFrac: 0.3,
			MulFrac: 0.05, BodySlots: 320, Seed: 110,
		},
		{
			Name: "art", MemPct: 35.29, IntPct: 43.50, FAddPct: 11.07, FMulPct: 8.39, FDivPct: 1.36,
			Chains: 6, BranchEvery: 14, RandomBranchFrac: 0.1,
			FootprintBytes: 1 << 20, Stride: 32, StoreFrac: 0.25,
			MulFrac: 0.08, BodySlots: 320, Seed: 111,
		},
	}
}

// ByName returns the profile with the given benchmark name.
func ByName(name string) (Profile, bool) {
	for _, p := range Table2() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the benchmark names in Table 2 order.
func Names() []string {
	ps := Table2()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Register allocation for generated programs.
const (
	regIters = 1 // loop counter
	regLCG   = 2 // per-iteration pseudo-random state
	regTmp   = 3 // scratch for branch bits
	regBase  = 4 // data segment base
	regOff   = 5 // sweep offset
	regMask  = 6 // footprint mask
	regDenom = 7 // divisor for serial divides
	regAddr  = 8 // base + offset, recomputed once per iteration
	regChain = 10
	maxChain = 25
	// Loads land in a small rotating pool that integer filler reads, so
	// memory latency couples into the dependency chains without cutting
	// them.
	regLoad    = 26
	numLoadReg = 4

	fpOne   = isa.FPBase     // f0: multiplicative constant near 1
	fpSmall = isa.FPBase + 1 // f1: additive constant
	fpChain = isa.FPBase + 2 // f2..: FP chains
	maxFP   = isa.FPBase + 31
)

// slotKind is one body slot's instruction class.
type slotKind int

const (
	kindInt slotKind = iota
	kindIntMul
	kindLoad
	kindStore
	kindFAdd
	kindFMul
	kindFDiv
	kindBranchPred
	kindBranchRand
	kindSerialDiv
)

// Build generates the benchmark program with the given number of main
// loop iterations. Instruction counts scale as roughly BodySlots *
// iters; use core.Config.MaxInsts to bound simulated length instead of
// tuning iters precisely.
func (p Profile) Build(iters int64) (*prog.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	b := prog.NewBuilder(p.Name)
	rng := rand.New(rand.NewSource(p.Seed))

	// Data segment: the sweep window, pre-filled with pseudo-random
	// words so loads return varied values.
	words := p.FootprintBytes / 8
	initWords := make([]uint64, words)
	for i := range initWords {
		initWords[i] = rng.Uint64()
	}
	base := b.Word(initWords...)
	fconsts := b.Float(1.0000001, 1.0/(1<<20))

	// Startup.
	b.Li(regIters, iters)
	b.Li(regLCG, int64(p.Seed)*2654435761+12345)
	b.Li(regBase, int64(base))
	b.Li(regOff, 0)
	b.Li(regMask, int64(p.FootprintBytes-1))
	b.Li(regDenom, 3)
	for r := uint8(regChain); r <= maxChain; r++ {
		b.Li(r, int64(rng.Int63n(1<<40)+1))
	}
	b.Li(regTmp, int64(fconsts))
	b.Load(isa.OpFld, fpOne, regTmp, 0)
	b.Load(isa.OpFld, fpSmall, regTmp, 8)
	for f := uint8(fpChain); f <= maxFP; f++ {
		b.R(isa.OpCvtIF, f, uint8((int(f)-fpChain)%3+1), 0)
	}

	slots := p.planSlots(rng)

	b.Label("loop")
	// Per-iteration overhead: advance the LCG and the sweep window.
	b.Li(regTmp, 1103515245)
	b.R(isa.OpMul, regLCG, regLCG, regTmp)
	b.I(isa.OpAddi, regLCG, regLCG, 12345)
	b.I(isa.OpAddi, regOff, regOff, int32(p.Stride*7+64))
	b.R(isa.OpAnd, regOff, regOff, regMask)
	b.R(isa.OpAdd, regAddr, regBase, regOff)

	p.emitBody(b, slots, rng)

	b.I(isa.OpAddi, regIters, regIters, -1)
	b.Branch(isa.OpBne, regIters, 0, "loop")
	// Fold the chains and load registers into one observable checksum.
	b.Li(regTmp, 0)
	for r := uint8(regChain); r <= maxChain; r++ {
		b.R(isa.OpXor, regTmp, regTmp, r)
	}
	for r := uint8(regLoad); r < regLoad+numLoadReg; r++ {
		b.R(isa.OpXor, regTmp, regTmp, r)
	}
	b.Out(regTmp)
	b.Halt()
	return b.Build()
}

// MustBuild is Build that panics on error (profiles in Table2 are valid
// by construction).
func (p Profile) MustBuild(iters int64) *prog.Program {
	pr, err := p.Build(iters)
	if err != nil {
		panic(err)
	}
	return pr
}

func (p Profile) validate() error {
	switch {
	case p.BodySlots < 50:
		return fmt.Errorf("workload %s: body of %d slots is too small", p.Name, p.BodySlots)
	case p.Chains < 1 || p.Chains > maxChain-regChain+1:
		return fmt.Errorf("workload %s: %d chains out of range", p.Name, p.Chains)
	case p.FootprintBytes&(p.FootprintBytes-1) != 0 || p.FootprintBytes < 4096:
		return fmt.Errorf("workload %s: footprint %d not a power of two >= 4096", p.Name, p.FootprintBytes)
	case p.BranchEvery < 2:
		return fmt.Errorf("workload %s: BranchEvery %d < 2", p.Name, p.BranchEvery)
	}
	total := p.MemPct + p.IntPct + p.FAddPct + p.FMulPct + p.FDivPct
	if total < 99.0 || total > 101.0 {
		return fmt.Errorf("workload %s: mix sums to %.2f%%", p.Name, total)
	}
	return nil
}

// planSlots converts the percentage mix into a concrete multiset of body
// slots using largest-remainder rounding, then shuffles deterministically.
func (p Profile) planSlots(rng *rand.Rand) []slotKind {
	n := p.BodySlots
	// The loop adds fixed overhead instructions we must charge to the
	// integer budget: 6 per iteration of LCG/window maintenance plus the
	// counter decrement and backedge.
	const overhead = 8

	type share struct {
		kind slotKind
		pct  float64
	}
	shares := []share{
		{kindLoad, p.MemPct * (1 - p.StoreFrac)},
		{kindStore, p.MemPct * p.StoreFrac},
		{kindFAdd, p.FAddPct},
		{kindFMul, p.FMulPct},
		{kindFDiv, p.FDivPct},
	}
	counts := make(map[slotKind]int)
	type rem struct {
		kind slotKind
		frac float64
	}
	var rems []rem
	used := 0
	for _, s := range shares {
		exact := float64(n) * s.pct / 100
		whole := int(exact)
		counts[s.kind] += whole
		used += whole
		rems = append(rems, rem{s.kind, exact - float64(whole)})
	}
	sort.Slice(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	// Integer budget gets the remainder; hand out fractional leftovers
	// only to FP classes whose target would otherwise round to zero.
	for _, r := range rems {
		if r.frac > 0.5 && counts[r.kind] == 0 {
			counts[r.kind]++
			used++
		}
	}
	intBudget := n - used

	// Branches come out of the integer budget.
	nBranch := n / p.BranchEvery
	nRand := int(float64(nBranch)*p.RandomBranchFrac + 0.5)
	nPred := nBranch - nRand
	// A random branch costs srli+andi+beq (+ a skipped filler op half
	// the time); a predictable one is a single beq; each serial-divide
	// slot emits a div and a value-repair ori.
	intCost := nPred + nRand*3 + overhead + 2*p.SerialDivs
	filler := intBudget - intCost
	if filler < 0 {
		filler = 0
	}
	nMul := int(float64(filler)*p.MulFrac + 0.5)
	nInt := filler - nMul

	slots := make([]slotKind, 0, n)
	add := func(k slotKind, c int) {
		for i := 0; i < c; i++ {
			slots = append(slots, k)
		}
	}
	add(kindLoad, counts[kindLoad])
	add(kindStore, counts[kindStore])
	add(kindFAdd, counts[kindFAdd])
	add(kindFMul, counts[kindFMul])
	add(kindFDiv, counts[kindFDiv])
	add(kindBranchPred, nPred)
	add(kindBranchRand, nRand)
	add(kindInt, nInt)
	add(kindIntMul, nMul)
	add(kindSerialDiv, p.SerialDivs)
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return slots
}

// emitBody lowers the slot plan to instructions.
func (p Profile) emitBody(b *prog.Builder, slots []slotKind, rng *rand.Rand) {
	chain := func(i int) uint8 { return uint8(regChain + i%p.Chains) }
	nFPChains := maxFP - fpChain + 1
	fpReg := func(i int) uint8 { return uint8(fpChain + i%nFPChains) }

	intOps := []isa.Op{isa.OpAdd, isa.OpXor, isa.OpSub, isa.OpOr, isa.OpAnd, isa.OpAdd, isa.OpAdd, isa.OpXor}
	memIdx, fpIdx, brIdx, chIdx := 0, 0, 0, 0

	for si, k := range slots {
		switch k {
		case kindInt:
			// Destination stays on its chain (serial dependence defines
			// the exposed ILP); the second source alternates between a
			// sibling chain and a recently loaded value, coupling memory
			// latency into the computation without cutting chains.
			op := intOps[rng.Intn(len(intOps))]
			c := chain(chIdx)
			chIdx++
			src2 := chain(chIdx*7 + 3)
			if si%2 == 0 {
				src2 = uint8(regLoad + (si/2)%numLoadReg)
			}
			b.R(op, c, c, src2)
		case kindIntMul:
			c := chain(chIdx)
			chIdx++
			b.R(isa.OpMul, c, c, chain(chIdx*5+1))
		case kindSerialDiv:
			// Serially dependent divide: the signature ammp bottleneck.
			b.R(isa.OpDiv, regChain, regChain, regDenom)
			b.I(isa.OpOri, regChain, regChain, 5) // keep the value nonzero
		case kindLoad:
			off := (memIdx * p.Stride) & (p.FootprintBytes - 1) &^ 7
			memIdx++
			b.Load(isa.OpLd, uint8(regLoad+memIdx%numLoadReg), regAddr, int32(off))
		case kindStore:
			off := (memIdx*p.Stride + 8) & (p.FootprintBytes - 1) &^ 7
			memIdx++
			b.Store(isa.OpSd, chain(chIdx), regAddr, int32(off))
			chIdx++
		case kindFAdd:
			f := fpReg(fpIdx)
			fpIdx++
			b.R(isa.OpFadd, f, f, fpSmall)
		case kindFMul:
			f := fpReg(fpIdx)
			fpIdx++
			b.R(isa.OpFmul, f, f, fpOne)
		case kindFDiv:
			f := fpReg(fpIdx)
			fpIdx++
			b.R(isa.OpFdiv, f, f, fpOne)
		case kindBranchPred:
			// Always-taken branch to the next instruction: trivially
			// predictable after warmup, but still occupies predictor and
			// issue resources.
			label := fmt.Sprintf("bp%d", si)
			b.Branch(isa.OpBeq, 0, 0, label)
			b.Label(label)
			brIdx++
		case kindBranchRand:
			// Direction depends on an LCG bit: mispredicted roughly half
			// the time, exercising the rewind path.
			bit := brIdx % 16
			label := fmt.Sprintf("br%d", si)
			b.I(isa.OpSrli, regTmp, regLCG, int32(8+bit))
			b.I(isa.OpAndi, regTmp, regTmp, 1)
			b.Branch(isa.OpBeq, regTmp, 0, label)
			c := chain(chIdx)
			b.R(isa.OpXor, c, c, regLCG) // conditionally skipped filler
			b.Label(label)
			brIdx++
		}
	}
}
