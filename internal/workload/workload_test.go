package workload

import (
	"math"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
)

// TestMixMatchesTable2 is the package's defining property: each
// benchmark's measured dynamic instruction mix must match its Table 2
// column to within a small absolute tolerance.
func TestMixMatchesTable2(t *testing.T) {
	const tol = 3.0 // absolute percentage points
	for _, p := range Table2() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := funcsim.New(p.MustBuild(300))
			if err := m.Run(2_000_000); err != nil {
				t.Fatal(err)
			}
			if !m.Halted {
				t.Fatal("did not halt")
			}
			mix := m.Mix()
			check := func(name string, got, want float64) {
				if math.Abs(got-want) > tol {
					t.Errorf("%s: measured %.2f%%, Table 2 says %.2f%%", name, got, want)
				}
			}
			check("mem", mix.MemPct, p.MemPct)
			check("int", mix.IntPct, p.IntPct)
			check("fadd", mix.FAdd, p.FAddPct)
			check("fmul", mix.FMul, p.FMulPct)
			check("fdiv", mix.FDiv, p.FDivPct)
		})
	}
}

func TestDeterministicGeneration(t *testing.T) {
	p, _ := ByName("gcc")
	a := p.MustBuild(10)
	b := p.MustBuild(10)
	if len(a.Text) != len(b.Text) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Text), len(b.Text))
	}
	for i := range a.Text {
		if a.Text[i] != b.Text[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	// And the computation itself is deterministic.
	m1, m2 := funcsim.New(a), funcsim.New(b)
	if err := m1.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(0); err != nil {
		t.Fatal(err)
	}
	if m1.Output[0] != m2.Output[0] {
		t.Error("checksums differ across identical runs")
	}
}

func TestProfilesDiffer(t *testing.T) {
	// Different benchmarks must generate different programs (guards
	// against seed plumbing bugs).
	gcc, _ := ByName("gcc")
	go_, _ := ByName("go")
	a, b := gcc.MustBuild(5), go_.MustBuild(5)
	if len(a.Text) == len(b.Text) {
		same := true
		for i := range a.Text {
			if a.Text[i] != b.Text[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("gcc and go generated identical programs")
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(names))
	}
	want := []string{"gcc", "vortex", "go", "bzip", "ijpeg", "vpr", "equake", "ammp", "fpppp", "swim", "art"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, names[i], n)
		}
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestValidation(t *testing.T) {
	base, _ := ByName("gcc")
	cases := []func(*Profile){
		func(p *Profile) { p.BodySlots = 10 },
		func(p *Profile) { p.Chains = 0 },
		func(p *Profile) { p.Chains = 100 },
		func(p *Profile) { p.FootprintBytes = 1000 }, // not a power of two
		func(p *Profile) { p.FootprintBytes = 512 },  // too small
		func(p *Profile) { p.BranchEvery = 1 },
		func(p *Profile) { p.IntPct = 5 }, // mix no longer sums to 100
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if _, err := p.Build(1); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestAmmpEmitsSerialDivides(t *testing.T) {
	p, _ := ByName("ammp")
	if p.SerialDivs == 0 {
		t.Fatal("ammp profile lost its serial divides")
	}
	prog := p.MustBuild(1)
	divs := 0
	for _, in := range prog.Text {
		if in.Op == isa.OpDiv {
			divs++
		}
	}
	if divs < p.SerialDivs {
		t.Errorf("found %d div instructions, want >= %d", divs, p.SerialDivs)
	}
}

func TestFPHeavyProfilesEmitFPOps(t *testing.T) {
	for _, name := range []string{"fpppp", "swim", "art"} {
		p, _ := ByName(name)
		prog := p.MustBuild(1)
		var fadd, fmul, fdiv int
		for _, in := range prog.Text {
			switch in.Op {
			case isa.OpFadd:
				fadd++
			case isa.OpFmul:
				fmul++
			case isa.OpFdiv:
				fdiv++
			}
		}
		if fadd == 0 || fmul == 0 {
			t.Errorf("%s: fadd=%d fmul=%d", name, fadd, fmul)
		}
		_ = fdiv
	}
}

func TestFootprintsRespected(t *testing.T) {
	// Data segment must cover the footprint.
	p, _ := ByName("swim")
	prog := p.MustBuild(1)
	if len(prog.Data) < p.FootprintBytes {
		t.Errorf("data segment %d bytes < footprint %d", len(prog.Data), p.FootprintBytes)
	}
}

func TestIterationScaling(t *testing.T) {
	p, _ := ByName("go")
	m10 := funcsim.New(p.MustBuild(10))
	m20 := funcsim.New(p.MustBuild(20))
	if err := m10.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := m20.Run(0); err != nil {
		t.Fatal(err)
	}
	// Dynamic length should scale roughly linearly with iterations.
	ratio := float64(m20.Insts) / float64(m10.Insts)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("iteration scaling ratio = %.2f, want ~2", ratio)
	}
}
