package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSteadyStateIPC(t *testing.T) {
	cases := []struct {
		ipc1, b float64
		r       int
		want    float64
	}{
		// Saturated: IPC1 = B, so IPC_R = B/R (the paper's 1/R case).
		{4, 4, 2, 2},
		{4, 4, 3, 4.0 / 3},
		// Unsaturated: free redundancy until R*IPC1 reaches B.
		{1, 4, 2, 1},
		{1, 4, 3, 1},
		{2, 4, 2, 2},
		// Partially saturated.
		{3, 4, 2, 2}, // min(3, 4/2)
		{1.5, 4, 3, 4.0 / 3},
		// Degenerate.
		{4, 4, 1, 4},
		{0, 4, 2, 0},
	}
	for _, c := range cases {
		if got := SteadyStateIPC(c.ipc1, c.b, c.r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SteadyStateIPC(%g, %g, %d) = %g, want %g", c.ipc1, c.b, c.r, got, c.want)
		}
	}
}

// Property: IPC_R == min(IPC_1, B/R).
func TestSteadyStateEquivalence(t *testing.T) {
	f := func(ipcRaw, bRaw uint16, rRaw uint8) bool {
		ipc1 := 0.1 + float64(ipcRaw%800)/100
		b := 0.5 + float64(bRaw%800)/100
		r := 1 + int(rRaw%4)
		got := SteadyStateIPC(ipc1, b, r)
		want := math.Min(ipc1, b/float64(r))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRewindProbability(t *testing.T) {
	// Base design: p = 1-(1-f)^R ~ R*f for small f.
	f := 1e-6
	if got := RewindProbability(2, 0, false, f); math.Abs(got-2*f)/(2*f) > 1e-3 {
		t.Errorf("base R=2 p = %g, want ~%g", got, 2*f)
	}
	// Majority R=3 threshold 2: p ~ 3f^2 for small f.
	if got := RewindProbability(3, 2, true, f); math.Abs(got-3*f*f)/(3*f*f) > 1e-2 {
		t.Errorf("majority R=3 p = %g, want ~%g", got, 3*f*f)
	}
	// Extremes.
	if RewindProbability(2, 0, false, 0) != 0 {
		t.Error("p(0) != 0")
	}
	if RewindProbability(2, 0, false, 1) != 1 {
		t.Error("p(1) != 1")
	}
	// Monotone in f.
	prev := -1.0
	for _, fr := range LogSpace(1e-9, 0.5, 30) {
		p := RewindProbability(3, 2, true, fr)
		if p < prev {
			t.Fatalf("p not monotone at f=%g", fr)
		}
		prev = p
	}
}

func TestIPCUnderFaults(t *testing.T) {
	// No faults: unchanged.
	if got := IPCUnderFaults(2, 20, 0); got != 2 {
		t.Errorf("fault-free IPC = %g", got)
	}
	// Sanity: the CPI increase equals rw*p exactly.
	ipc := IPCUnderFaults(2, 20, 0.01)
	wantCPI := 0.5 + 20*0.01
	if math.Abs(1/ipc-wantCPI) > 1e-12 {
		t.Errorf("CPI = %g, want %g", 1/ipc, wantCPI)
	}
}

// TestFigure3Shape reproduces the qualitative claims the paper draws from
// Figure 3 (normalized IPC1 = B = 1, rw = 20).
func TestFigure3Shape(t *testing.T) {
	freqs := LogSpace(1e-8, 1e-1, 60)
	r2 := Curve(CurveConfig{IPC1: 1, B: 1, R: 2, Rewind: 20}, freqs)
	r3 := Curve(CurveConfig{IPC1: 1, B: 1, R: 3, Rewind: 20}, freqs)
	r3maj := Curve(CurveConfig{IPC1: 1, B: 1, R: 3, Majority: true, Rewind: 20}, freqs)

	// Error-free plateaus: 1/2 and 1/3.
	if math.Abs(r2[0].IPC-0.5) > 1e-6 || math.Abs(r3[0].IPC-1.0/3) > 1e-6 {
		t.Fatalf("plateaus: R2=%g R3=%g", r2[0].IPC, r3[0].IPC)
	}
	// "IPC stays relatively constant until 1/f is within two orders of
	// magnitude of rw": at f = 1e-4 (1/f = 10^4, rw*100 = 2000) R=2 has
	// lost under 5%.
	at := func(pts []Point, f float64) float64 {
		best, dist := 0.0, math.Inf(1)
		for _, p := range pts {
			if d := math.Abs(math.Log10(p.FaultsPerInst) - math.Log10(f)); d < dist {
				best, dist = p.IPC, d
			}
		}
		return best
	}
	if ipc := at(r2, 1e-4); ipc < 0.5*0.95 {
		t.Errorf("R=2 already degraded at f=1e-4: %g", ipc)
	}
	// At f=1e-1, R=2 has collapsed.
	if ipc := at(r2, 1e-1); ipc > 0.2 {
		t.Errorf("R=2 not degraded at f=1e-1: %g", ipc)
	}
	// Majority R=3 stays flat to much higher frequencies than R=2...
	if at(r3maj, 1e-3) < at(r3, 0)*0.999 {
		t.Errorf("majority curve droops too early")
	}
	// ...and crosses above plain R=2 only at very high f.
	crossover := 0.0
	for i := range freqs {
		if r3maj[i].IPC > r2[i].IPC {
			crossover = freqs[i]
			break
		}
	}
	if crossover == 0 {
		t.Fatal("no R=3-majority/R=2 crossover found")
	}
	if crossover < 1e-4 || crossover > 1e-1 {
		t.Errorf("crossover at f=%g, expected very high frequency", crossover)
	}
}

// TestFigure4Shape: rw=2000 shifts the knee down by two decades but
// leaves the plateau untouched.
func TestFigure4Shape(t *testing.T) {
	f20 := KneeFrequency(0.5, 20, 2, 0.01)
	f2000 := KneeFrequency(0.5, 2000, 2, 0.01)
	if math.Abs(f20/f2000-100) > 1e-6 {
		t.Errorf("knee ratio = %g, want 100", f20/f2000)
	}
	freqs := LogSpace(1e-9, 1e-2, 40)
	short := Curve(CurveConfig{IPC1: 1, B: 1, R: 2, Rewind: 20}, freqs)
	long := Curve(CurveConfig{IPC1: 1, B: 1, R: 2, Rewind: 2000}, freqs)
	if math.Abs(short[0].IPC-long[0].IPC) > 1e-4 {
		t.Error("plateaus differ")
	}
	for i := range freqs {
		if long[i].IPC > short[i].IPC+1e-12 {
			t.Fatalf("rw=2000 outperforms rw=20 at f=%g", freqs[i])
		}
	}
	// "rw has only a minimal effect on the average IPC for any reasonable
	// f": at one fault per 10^7 instructions even rw=2000 loses <1%.
	if long[len(freqs)-1].IPC >= short[0].IPC {
		t.Error("no visible effect at high f")
	}
	idx := 0
	for i, f := range freqs {
		if f >= 1e-7 {
			idx = i
			break
		}
	}
	if long[idx].IPC < 0.5*0.99 {
		t.Errorf("rw=2000 already lost >1%% at f=1e-7: %g", long[idx].IPC)
	}
}

func TestLogSpace(t *testing.T) {
	fs := LogSpace(1e-6, 1e-2, 5)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
	for i := range want {
		if math.Abs(fs[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("LogSpace[%d] = %g, want %g", i, fs[i], want[i])
		}
	}
	if got := LogSpace(5, 10, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate LogSpace = %v", got)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{3, 0, 1}, {3, 1, 3}, {3, 2, 3}, {3, 3, 1}, {4, 2, 6}, {3, 4, 0}, {3, -1, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}
