// Package model implements the paper's Section 4 analytical performance
// model for a fault-tolerant superscalar:
//
//   - steady-state throughput under R-way redundant instruction
//     processing (Section 4.1), and
//   - the additional slowdown from rewind-based error recovery as a
//     function of the transient-fault frequency f (Section 4.2),
//     including the majority-election variant for R >= 3.
//
// Definitions follow the paper: IPC1/CPI1 describe the unmodified
// datapath, IPCr/CPIr the same datapath running R redundant threads, B is
// the first resource bottleneck the application exercises, f is the
// fault frequency in faults per executed instruction copy, and rw is the
// average rewind penalty in cycles.
package model

import "math"

// SteadyStateIPC returns IPC_R per Section 4.1:
//
//	IPC_R = IPC_1 - max(0, R*IPC_1 - B)/R
//
// equivalently min(IPC_1, B/R): until the replicated streams saturate the
// bottleneck B, the extra data-independent operations consume previously
// unused capacity and redundancy is free; past saturation the machine
// divides B among R copies.
func SteadyStateIPC(ipc1, b float64, r int) float64 {
	if r < 1 || ipc1 <= 0 {
		return 0
	}
	over := float64(r)*ipc1 - b
	if over < 0 {
		over = 0
	}
	return ipc1 - over/float64(r)
}

// RewindProbability returns the per-instruction probability that a
// retiring group triggers a full rewind.
//
// For the base design (majority == false) any corrupted copy forces a
// rewind: p = 1 - (1-f)^R, whose small-f linearisation is the paper's
// R*f term.
//
// With majority election, corrupted copies (which almost surely disagree
// with everything) cannot form a majority, so the group commits exactly
// when at least threshold copies are clean: p = P[clean < threshold].
func RewindProbability(r, threshold int, majority bool, f float64) float64 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 1
	}
	if !majority {
		return 1 - math.Pow(1-f, float64(r))
	}
	p := 0.0
	for clean := 0; clean < threshold; clean++ {
		p += binom(r, clean) * math.Pow(1-f, float64(clean)) * math.Pow(f, float64(r-clean))
	}
	return p
}

// IPCUnderFaults applies Section 4.2: each rewind adds rw cycles, and
// rewinds arrive at pRewind per committed instruction, so
//
//	CPI_R(f) = CPI_R(err-free) + rw * pRewind
//	IPC_R(f) = IPC_eff / (1 + rw * pRewind * IPC_eff)
//
// The model is optimistic for very high fault frequencies (1/f
// approaching rw), where overlapping faults share one rewind penalty —
// the same caveat the paper notes.
func IPCUnderFaults(ipcEff, rw, pRewind float64) float64 {
	if ipcEff <= 0 {
		return 0
	}
	return ipcEff / (1 + rw*pRewind*ipcEff)
}

// Point is one sample of an IPC-versus-fault-frequency curve.
type Point struct {
	FaultsPerInst float64
	IPC           float64
}

// CurveConfig describes one curve of Figures 3/4/6.
type CurveConfig struct {
	// IPC1 is the baseline (non-redundant) throughput; B the bottleneck.
	IPC1, B float64
	// R is the redundancy degree; Majority/Threshold select the R>=3
	// election design.
	R         int
	Majority  bool
	Threshold int
	// Rewind is the recovery penalty rw in cycles (20 in Figure 3, 2000
	// in Figure 4).
	Rewind float64
}

// Curve evaluates IPC_R(f) at the given fault frequencies.
func Curve(cfg CurveConfig, freqs []float64) []Point {
	eff := SteadyStateIPC(cfg.IPC1, cfg.B, cfg.R)
	thr := cfg.Threshold
	if thr == 0 {
		thr = cfg.R/2 + 1
	}
	pts := make([]Point, len(freqs))
	for i, f := range freqs {
		p := RewindProbability(cfg.R, thr, cfg.Majority, f)
		pts[i] = Point{FaultsPerInst: f, IPC: IPCUnderFaults(eff, cfg.Rewind, p)}
	}
	return pts
}

// LogSpace returns n frequencies spaced logarithmically from lo to hi
// inclusive.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// KneeFrequency estimates where rewind penalties stop being negligible:
// the f at which recovery inflates CPI by the given fraction (e.g. 0.01
// for 1%). For the base design p ~ R*f, so f_knee = frac * CPI_eff /
// (rw * R).
func KneeFrequency(ipcEff, rw float64, r int, frac float64) float64 {
	if ipcEff <= 0 || rw <= 0 || r < 1 {
		return 0
	}
	return frac / (rw * float64(r) * ipcEff)
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}
