// Package prog defines the loadable program image shared by the
// assembler, the workload generators and the simulators, plus a
// programmatic Builder for constructing SRISC programs with labels.
package prog

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Memory layout. Text, data and stack live in widely separated segments
// of the sparse memory.
const (
	// TextBase is where the first instruction is loaded; it is also the
	// entry point.
	TextBase = 0x0000_1000
	// DataBase is the start of the static data segment.
	DataBase = 0x0010_0000
	// StackTop is the initial value of the stack pointer (r30); the stack
	// grows down.
	StackTop = 0x0800_0000
)

// Program is a loadable SRISC program image.
type Program struct {
	// Name identifies the program in stats output.
	Name string
	// Text holds the decoded instructions, loaded contiguously at TextBase.
	Text []isa.Inst
	// Data is the initial contents of the data segment at DataBase.
	Data []byte
	// Symbols maps labels to absolute addresses (text or data).
	Symbols map[string]uint64
}

// Entry returns the address of the first instruction.
func (p *Program) Entry() uint64 { return TextBase }

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint64 {
	return TextBase + uint64(len(p.Text))*isa.InstBytes
}

// LoadInto writes the program image into memory and returns the initial
// PC. The stack pointer convention (r30 = StackTop) is established by the
// simulators, not the image.
func (p *Program) LoadInto(m *mem.Memory) uint64 {
	for i, in := range p.Text {
		m.Write(TextBase+uint64(i)*isa.InstBytes, isa.InstBytes, isa.Encode(in))
	}
	m.SetBytes(DataBase, p.Data)
	return p.Entry()
}

// Builder incrementally constructs a Program. Control-flow targets are
// symbolic labels resolved at Build time. The zero value is not ready to
// use; call NewBuilder.
type Builder struct {
	name   string
	insts  []isa.Inst
	labels map[string]int // label -> instruction index
	fixups []fixup
	data   []byte
	errs   []error
}

type fixupKind uint8

const (
	fixRelative fixupKind = iota // imm = byte offset from the instruction
	fixAbsolute                  // imm = absolute text address of the label
)

type fixup struct {
	inst  int
	label string
	kind  fixupKind
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Label defines name at the current text position. Redefinition is an
// error reported by Build.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("prog: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.insts)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.insts = append(b.insts, in) }

// R emits a three-register-operand instruction rd = rs1 op rs2.
func (b *Builder) R(op isa.Op, rd, rs1, rs2 uint8) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// I emits a register-immediate instruction rd = rs1 op imm.
func (b *Builder) I(op isa.Op, rd, rs1 uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li materialises a 64-bit constant in rd, using one instruction when the
// constant fits in a sign-extended 32-bit immediate and a lih/ori pair
// otherwise.
func (b *Builder) Li(rd uint8, v int64) {
	if int64(int32(v)) == v {
		b.I(isa.OpLi, rd, 0, int32(v))
		return
	}
	b.I(isa.OpLih, rd, 0, int32(uint64(v)>>32))
	b.I(isa.OpOri, rd, rd, int32(uint32(v)))
}

// La materialises the absolute address of label in rd; the label may be
// defined later.
func (b *Builder) La(rd uint8, label string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label, kind: fixAbsolute})
	b.I(isa.OpLi, rd, 0, 0)
}

// Branch emits a conditional branch to label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 uint8, label string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label, kind: fixRelative})
	b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label, kind: fixRelative})
	b.Emit(isa.Inst{Op: isa.OpJ})
}

// Jal emits a call to label, linking in rd.
func (b *Builder) Jal(rd uint8, label string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label, kind: fixRelative})
	b.Emit(isa.Inst{Op: isa.OpJal, Rd: rd})
}

// Load emits a load of the given width: rd = mem[rs1+imm].
func (b *Builder) Load(op isa.Op, rd, base uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: imm})
}

// Store emits a store of the given width: mem[rs1+imm] = rs2.
func (b *Builder) Store(op isa.Op, val, base uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rs1: base, Rs2: val, Imm: imm})
}

// Halt emits the halt instruction.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHalt}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNop}) }

// Out emits an output of rs1 to the machine's output stream.
func (b *Builder) Out(rs uint8) { b.Emit(isa.Inst{Op: isa.OpOut, Rs1: rs}) }

// Align pads the data segment to the given power-of-two boundary.
func (b *Builder) Align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Word appends 64-bit little-endian values to the data segment and returns
// the address of the first.
func (b *Builder) Word(vals ...uint64) uint64 {
	b.Align(8)
	addr := DataBase + uint64(len(b.data))
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			b.data = append(b.data, byte(v))
			v >>= 8
		}
	}
	return addr
}

// Float appends float64 values to the data segment and returns the address
// of the first.
func (b *Builder) Float(vals ...float64) uint64 {
	words := make([]uint64, len(vals))
	for i, f := range vals {
		words[i] = isa.F2B(f)
	}
	return b.Word(words...)
}

// Alloc reserves n zeroed bytes in the data segment, 8-byte aligned, and
// returns their address.
func (b *Builder) Alloc(n int) uint64 {
	b.Align(8)
	addr := DataBase + uint64(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return addr
}

// Build resolves labels and returns the finished program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	syms := make(map[string]uint64, len(b.labels))
	for name, idx := range b.labels {
		syms[name] = TextBase + uint64(idx)*isa.InstBytes
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("prog: undefined label %q", f.label)
		}
		switch f.kind {
		case fixRelative:
			b.insts[f.inst].Imm = int32((idx - f.inst) * isa.InstBytes)
		case fixAbsolute:
			addr := TextBase + uint64(idx)*isa.InstBytes
			if addr > 0x7FFF_FFFF {
				return nil, fmt.Errorf("prog: label %q address %#x exceeds immediate range", f.label, addr)
			}
			b.insts[f.inst].Imm = int32(addr)
		}
	}
	return &Program{
		Name:    b.name,
		Text:    append([]isa.Inst(nil), b.insts...),
		Data:    append([]byte(nil), b.data...),
		Symbols: syms,
	}, nil
}

// MustBuild is Build that panics on error; intended for statically known
// correct programs in tests and examples.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
