package prog

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestBuilderBranchResolution(t *testing.T) {
	b := NewBuilder("t")
	b.Label("top")                    // index 0
	b.Nop()                           // 0
	b.Branch(isa.OpBeq, 1, 2, "done") // 1 -> index 3: offset (3-1)*8 = 16
	b.Jump("top")                     // 2 -> index 0: offset -16
	b.Label("done")
	b.Halt() // 3
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Text[1].Imm; got != 16 {
		t.Errorf("forward branch imm = %d, want 16", got)
	}
	if got := p.Text[2].Imm; got != -16 {
		t.Errorf("backward jump imm = %d, want -16", got)
	}
	if p.Symbols["done"] != TextBase+3*isa.InstBytes {
		t.Errorf("symbol done = %#x", p.Symbols["done"])
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label not reported")
	}

	b2 := NewBuilder("undef")
	b2.Jump("nowhere")
	if _, err := b2.Build(); err == nil {
		t.Error("undefined label not reported")
	}
}

func TestLiExpansion(t *testing.T) {
	cases := []struct {
		v       int64
		numInst int
	}{
		{0, 1},
		{42, 1},
		{-1, 1},
		{1 << 31, 2}, // does not fit in sign-extended imm32
		{-(1 << 40), 2},
		{0x7FFF_FFFF, 1},
		{int64(^uint64(0) >> 1), 2}, // MaxInt64
	}
	for _, c := range cases {
		b := NewBuilder("li")
		b.Li(5, c.v)
		if b.Len() != c.numInst {
			t.Errorf("Li(%#x) emitted %d instructions, want %d", c.v, b.Len(), c.numInst)
		}
		// Verify the sequence computes the right value.
		var r5 uint64
		for _, in := range b.MustBuild().Text {
			r5 = isa.Eval(in.Op, in.Imm, r5, 0)
		}
		if r5 != uint64(c.v) {
			t.Errorf("Li(%#x) computed %#x", c.v, r5)
		}
	}
}

func TestLaAbsolute(t *testing.T) {
	b := NewBuilder("la")
	b.La(3, "target")
	b.Nop()
	b.Label("target")
	b.Halt()
	p := b.MustBuild()
	want := int32(TextBase + 2*isa.InstBytes)
	if p.Text[0].Imm != want {
		t.Errorf("La imm = %d, want %d", p.Text[0].Imm, want)
	}
}

func TestDataSegment(t *testing.T) {
	b := NewBuilder("data")
	a1 := b.Word(0x1111, 0x2222)
	a2 := b.Float(2.5)
	a3 := b.Alloc(24)
	b.Halt()
	p := b.MustBuild()

	if a1 != DataBase {
		t.Errorf("first word at %#x, want %#x", a1, DataBase)
	}
	if a2 != DataBase+16 {
		t.Errorf("float at %#x, want %#x", a2, DataBase+16)
	}
	if a3 != DataBase+24 {
		t.Errorf("alloc at %#x, want %#x", a3, DataBase+24)
	}
	if len(p.Data) != 48 {
		t.Errorf("data length %d, want 48", len(p.Data))
	}

	m := mem.New()
	p.LoadInto(m)
	if got := m.Read(a1+8, 8); got != 0x2222 {
		t.Errorf("loaded word = %#x, want 0x2222", got)
	}
	if got := isa.B2F(m.Read(a2, 8)); got != 2.5 {
		t.Errorf("loaded float = %g, want 2.5", got)
	}
}

func TestAlignment(t *testing.T) {
	b := NewBuilder("align")
	b.data = append(b.data, 1, 2, 3) // 3 unaligned bytes
	addr := b.Word(7)
	if addr%8 != 0 {
		t.Errorf("Word returned unaligned address %#x", addr)
	}
}

func TestLoadIntoRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	b.Li(1, 7)
	b.R(isa.OpAdd, 2, 1, 1)
	b.Store(isa.OpSd, 2, 0, int32(DataBase))
	b.Halt()
	p := b.MustBuild()

	m := mem.New()
	entry := p.LoadInto(m)
	if entry != TextBase {
		t.Fatalf("entry = %#x, want %#x", entry, TextBase)
	}
	for i, want := range p.Text {
		got := isa.Decode(m.Read(TextBase+uint64(i)*isa.InstBytes, isa.InstBytes))
		if got != want {
			t.Errorf("inst %d: loaded %v, want %v", i, got, want)
		}
	}
	if p.TextEnd() != TextBase+uint64(len(p.Text))*isa.InstBytes {
		t.Errorf("TextEnd = %#x", p.TextEnd())
	}
}

func TestEmitHelpers(t *testing.T) {
	b := NewBuilder("h")
	b.R(isa.OpAdd, 1, 2, 3)
	b.I(isa.OpAddi, 1, 2, 5)
	b.Load(isa.OpLd, 4, 30, 8)
	b.Store(isa.OpSw, 4, 30, 12)
	b.Out(4)
	b.Jal(isa.RegLink, "f")
	b.Label("f")
	b.Emit(isa.Inst{Op: isa.OpJr, Rs1: isa.RegLink})
	b.Halt()
	p := b.MustBuild()
	want := []isa.Inst{
		{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.OpAddi, Rd: 1, Rs1: 2, Imm: 5},
		{Op: isa.OpLd, Rd: 4, Rs1: 30, Imm: 8},
		{Op: isa.OpSw, Rs1: 30, Rs2: 4, Imm: 12},
		{Op: isa.OpOut, Rs1: 4},
		{Op: isa.OpJal, Rd: isa.RegLink, Imm: 8},
		{Op: isa.OpJr, Rs1: isa.RegLink},
		{Op: isa.OpHalt},
	}
	if len(p.Text) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(p.Text), len(want))
	}
	for i := range want {
		if p.Text[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, p.Text[i], want[i])
		}
	}
}
