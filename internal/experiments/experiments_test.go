package experiments

import (
	"math"
	"strings"
	"testing"
)

// testOpt keeps simulation budgets small enough for the test suite while
// still past the warm-up transient.
var testOpt = Options{MaxInsts: 25_000}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 33-point Figure 5 grid; skipped in -short")
	}
	rows, err := Fig5(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.Bench] = r
		// The paper's global claims: SS-2 always loses to SS-1, and the
		// penalty stays within (roughly) the 2%-45% band.
		if r.SS2 >= r.SS1 {
			t.Errorf("%s: SS-2 IPC %.3f >= SS-1 %.3f", r.Bench, r.SS2, r.SS1)
		}
		if r.Penalty < 0.0 || r.Penalty > 0.55 {
			t.Errorf("%s: penalty %.1f%% outside the plausible band", r.Bench, 100*r.Penalty)
		}
		// Section 4's bound: the redundant machine keeps at least about
		// half the baseline throughput.
		if r.SS2 < r.SS1/2*0.85 {
			t.Errorf("%s: SS-2 %.3f below IPC1/2 bound %.3f", r.Bench, r.SS2, r.SS1/2)
		}
	}
	// "ammp, go and vpr suffer less IPC penalty in SS-2 than the rest."
	mean := MeanPenalty(rows)
	for _, name := range []string{"ammp", "go", "vpr"} {
		if byName[name].Penalty >= mean {
			t.Errorf("%s penalty %.1f%% not below the mean %.1f%%",
				name, 100*byName[name].Penalty, 100*mean)
		}
	}
	// ammp is the extreme case (divisions in its critical path).
	for _, r := range rows {
		if r.Bench != "ammp" && r.Penalty < byName["ammp"].Penalty {
			t.Errorf("%s penalty %.1f%% below ammp's %.1f%%",
				r.Bench, 100*r.Penalty, 100*byName["ammp"].Penalty)
		}
	}
	// "For fpppp, swim, and art Static-2 outperforms SS-2 due to the
	// extra FP Mult/Div unit" — allow swim a little noise, require the
	// clear cases.
	for _, name := range []string{"fpppp", "art"} {
		if byName[name].Static2 <= byName[name].SS2 {
			t.Errorf("%s: Static-2 %.3f not above SS-2 %.3f",
				name, byName[name].Static2, byName[name].SS2)
		}
	}
	// Mean penalty in the paper's ballpark (30%-ish).
	if mean < 0.15 || mean > 0.45 {
		t.Errorf("mean penalty %.1f%% far from the paper's ~30%%", 100*mean)
	}
}

func TestTable2Measured(t *testing.T) {
	rows, err := Table2(Options{MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Measured.MemPct-r.Profile.MemPct) > 3.5 {
			t.Errorf("%s: mem %.2f%% vs target %.2f%%", r.Bench, r.Measured.MemPct, r.Profile.MemPct)
		}
		if math.Abs(r.Measured.IntPct-r.Profile.IntPct) > 3.5 {
			t.Errorf("%s: int %.2f%% vs target %.2f%%", r.Bench, r.Measured.IntPct, r.Profile.IntPct)
		}
	}
}

func TestFig3Fig4Curves(t *testing.T) {
	c3, c4 := Fig3(), Fig4()
	if c3.Rewind != 20 || c4.Rewind != 2000 {
		t.Fatalf("rewind penalties: %g, %g", c3.Rewind, c4.Rewind)
	}
	// Plateaus at 1/2 and 1/3 of the normalised bottleneck.
	if math.Abs(c3.R2[0].IPC-0.5) > 1e-3 || math.Abs(c3.R3[0].IPC-1.0/3) > 1e-3 {
		t.Errorf("figure 3 plateaus: %g, %g", c3.R2[0].IPC, c3.R3[0].IPC)
	}
	// Figure 4's knee sits ~2 decades below Figure 3's: at f=1e-4 the
	// rw=2000 curve has visibly dropped while rw=20 has not.
	idx := indexOfFreq(c3.Freqs, 1e-4)
	if c3.R2[idx].IPC < 0.5*0.93 {
		t.Errorf("figure 3 R2 dropped too early: %g", c3.R2[idx].IPC)
	}
	if c4.R2[idx].IPC > 0.5*0.93 {
		t.Errorf("figure 4 R2 did not drop at f=1e-4: %g", c4.R2[idx].IPC)
	}
	// Majority curve dominates plain R=3 everywhere.
	for i := range c3.Freqs {
		if c3.R3Maj[i].IPC < c3.R3[i].IPC-1e-9 {
			t.Fatalf("majority below plain R=3 at f=%g", c3.Freqs[i])
		}
	}
}

func indexOfFreq(freqs []float64, f float64) int {
	best, dist := 0, math.Inf(1)
	for i, v := range freqs {
		if d := math.Abs(math.Log10(v) - math.Log10(f)); d < dist {
			best, dist = i, d
		}
	}
	return best
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault-frequency sweep; skipped in -short (TestCampaignDeterminism covers the fig6 path)")
	}
	rows, err := Fig6("fpppp", Options{MaxInsts: 20_000, FaultSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Fault-free: R=2 beats R=3 (paper: "IPC of the R=3 design is
	// lower").
	if first.R2IPC <= first.R3IPC {
		t.Errorf("fault-free: R2 %.3f <= R3 %.3f", first.R2IPC, first.R3IPC)
	}
	// R=2 drops sharply at the top of the sweep.
	if last.R2IPC > 0.7*first.R2IPC {
		t.Errorf("R2 did not degrade: %.3f -> %.3f", first.R2IPC, last.R2IPC)
	}
	// The R=3 majority design holds its IPC longer (relative loss at the
	// midpoint of the sweep is smaller than R=2's).
	mid := rows[len(rows)/2+1]
	r2loss := 1 - mid.R2IPC/first.R2IPC
	r3loss := 1 - mid.R3IPC/first.R3IPC
	if r3loss >= r2loss {
		t.Errorf("majority lost more at midpoint: R3 %.2f%% vs R2 %.2f%%", 100*r3loss, 100*r2loss)
	}
	// "IPC of the more efficient R=2 design eventually drops below the
	// R=3 design" — the crossover exists at some high frequency.
	crossed := false
	for _, r := range rows[1:] {
		if r.R3IPC > r.R2IPC {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("no R=2/R=3 crossover in the sweep")
	}
	// Majority election is actually electing.
	if mid.R3Majority == 0 {
		t.Error("no majority commits at mid sweep")
	}
	// Recovery penalty is tens of cycles, not thousands (fine-grain
	// rewind, the paper's central recovery claim).
	if last.R2Recovery <= 2 || last.R2Recovery > 100 {
		t.Errorf("R2 recovery penalty %.1f cycles", last.R2Recovery)
	}
}

func TestSensitivityClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("77-point sensitivity grid; skipped in -short")
	}
	rows, err := Sensitivity(Options{MaxInsts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SensRow{}
	for _, r := range rows {
		byName[r.Bench] = r
		// More resources never hurt much (allowing small scheduling
		// noise).
		if r.FU2x < r.Base*0.97 || r.RUU2x < r.Base*0.97 {
			t.Errorf("%s: scaling resources reduced IPC (%.3f -> FU %.3f, RUU %.3f)",
				r.Bench, r.Base, r.FU2x, r.RUU2x)
		}
		// Fewer resources never help much.
		if r.FUHalf > r.Base*1.03 || r.RUUHalf > r.Base*1.03 {
			t.Errorf("%s: halving resources raised IPC", r.Bench)
		}
	}
	// Section 5.2's named cases.
	for _, name := range []string{"go", "vpr", "ammp"} {
		if byName[name].Limiter != LimitILP {
			t.Errorf("%s classified %s, want ILP-limited (gains FU %.1f%% RUU %.1f%%)",
				name, byName[name].Limiter, 100*byName[name].FUGain, 100*byName[name].RUUGain)
		}
	}
	for _, name := range []string{"gcc", "vortex", "fpppp"} {
		if byName[name].Limiter != LimitFU {
			t.Errorf("%s classified %s, want FU-limited (gains FU %.1f%% RUU %.1f%%)",
				name, byName[name].Limiter, 100*byName[name].FUGain, 100*byName[name].RUUGain)
		}
	}
}

func TestAblations(t *testing.T) {
	cs, err := AblateCoSchedule([]string{"gcc"}, testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].IPCBase <= 0 || cs[0].IPCCoSched <= 0 {
		t.Fatalf("cosched rows: %+v", cs)
	}
	// Co-scheduling restricts the scheduler; it must not dramatically
	// change throughput either way.
	ratio := cs[0].IPCCoSched / cs[0].IPCBase
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("co-scheduling changed IPC by %.1f%%", 100*(ratio-1))
	}

	cw, err := AblateCommitWidth("gcc", []int{4, 8, 16}, testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 3 {
		t.Fatalf("commit width rows: %d", len(cw))
	}
	// Wider commit never hurts.
	for i := 1; i < len(cw); i++ {
		if cw[i].IPC2 < cw[i-1].IPC2*0.97 {
			t.Errorf("SS-2 IPC fell when widening commit: %+v", cw)
		}
	}

	if _, err := AblateCoSchedule([]string{"nope"}, testOpt); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := AblateCommitWidth("nope", []int{8}, testOpt); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Fig6("nope", testOpt); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb)
	if !strings.Contains(sb.String(), "RUU / LSQ size") {
		t.Error("table 1 output missing parameters")
	}
	sb.Reset()
	PrintCurves(&sb, "fig3", Fig3())
	if !strings.Contains(sb.String(), "IPC R=3 majority") {
		t.Error("curves output missing header")
	}

	rows, err := Table2(Options{MaxInsts: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	PrintTable2(&sb, rows)
	if !strings.Contains(sb.String(), "gcc") {
		t.Error("table 2 output missing benchmarks")
	}
}

// TestRecoveryGrainAblation: at a fault rate near the knee, fine-grain
// rewind keeps most of the error-free throughput while checkpoint-style
// penalties (the paper's Figure 4 scenario) destroy it.
func TestRecoveryGrainAblation(t *testing.T) {
	rows, err := AblateRecoveryGrain("fpppp", 1000, []int{0, 2000}, Options{MaxInsts: 25_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fine, coarse := rows[0], rows[1]
	if fine.Rewinds == 0 {
		t.Skip("no recoveries at this budget")
	}
	if coarse.IPC >= fine.IPC*0.7 {
		t.Errorf("coarse recovery too cheap: fine %.3f vs coarse %.3f", fine.IPC, coarse.IPC)
	}
	if fine.AvgPenalty > 100 {
		t.Errorf("fine-grain recovery cost %.1f cycles, expected tens", fine.AvgPenalty)
	}
	if coarse.AvgPenalty < 1500 {
		t.Errorf("coarse recovery cost %.1f cycles, expected ~2000", coarse.AvgPenalty)
	}
	if _, err := AblateRecoveryGrain("nope", 1000, []int{0}, Options{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
