package experiments

import (
	"fmt"
	"io"

	"repro/ftsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Limiter classifies what bounds a benchmark's baseline throughput,
// reproducing the Section 5.2 analysis ("we test the benchmark's
// sensitivity to varying numbers of functional units and RUU sizes").
type Limiter string

const (
	// LimitFU: doubling the functional units raises IPC materially; the
	// benchmark saturates Table 1's unit mix, so redundant injection is
	// expensive (gcc, vortex, bzip, ijpeg, fpppp...).
	LimitFU Limiter = "FU-limited"
	// LimitRUU: enlarging the window raises IPC materially (swim).
	LimitRUU Limiter = "RUU-limited"
	// LimitILP: nearly insensitive to both; throughput is bound by the
	// program's own dependences and branches, so the second thread rides
	// along almost free (go, vpr, ammp).
	LimitILP Limiter = "ILP-limited"
)

// SensRow holds one benchmark's resource-sensitivity sweep: baseline IPC
// and the IPC with functional units and window scaled by 0.5x, 2x and
// "infinite" (16x).
type SensRow struct {
	Bench   string
	Base    float64
	FUHalf  float64
	FU2x    float64
	FUInf   float64
	RUUHalf float64
	RUU2x   float64
	RUUInf  float64
	Limiter Limiter
	FUGain  float64 // FU2x/Base - 1
	RUUGain float64 // RUU2x/Base - 1
}

// scaleFU multiplies every functional-unit pool (minimum 1 unit each).
func scaleFU(cfg ftsim.Config, factor float64) ftsim.Config {
	mul := func(n int) int {
		v := int(float64(n)*factor + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	cfg.Pipeline.IntALU = mul(cfg.Pipeline.IntALU)
	cfg.Pipeline.IntMult = mul(cfg.Pipeline.IntMult)
	cfg.Pipeline.FPAdd = mul(cfg.Pipeline.FPAdd)
	cfg.Pipeline.FPMult = mul(cfg.Pipeline.FPMult)
	cfg.Pipeline.MemPorts = mul(cfg.Pipeline.MemPorts)
	return cfg
}

// scaleWindow multiplies the RUU and LSQ sizes.
func scaleWindow(cfg ftsim.Config, factor float64) ftsim.Config {
	cfg.Pipeline.RUUSize = int(float64(cfg.Pipeline.RUUSize) * factor)
	cfg.Pipeline.LSQSize = int(float64(cfg.Pipeline.LSQSize) * factor)
	return cfg
}

// Sensitivity reproduces the Section 5.2 study on the baseline machine:
// an 11-benchmark x 7-configuration campaign grid.
func Sensitivity(opt Options) ([]SensRow, error) {
	opt = opt.defaults()
	const gainThreshold = 0.08
	ss1 := ftsim.ModelSS1.Config()
	scales := []struct {
		name string
		cfg  ftsim.Config
	}{
		{"base", ss1},
		{"fu-0.5x", scaleFU(ss1, 0.5)},
		{"fu-2x", scaleFU(ss1, 2)},
		{"fu-16x", scaleFU(ss1, 16)},
		{"ruu-0.5x", scaleWindow(ss1, 0.5)},
		{"ruu-2x", scaleWindow(ss1, 2)},
		{"ruu-16x", scaleWindow(ss1, 16)},
	}
	profiles := workload.Table2()
	points := make([]simPoint, 0, len(profiles)*len(scales))
	for _, p := range profiles {
		for _, s := range scales {
			points = append(points, simPoint{"sens/" + p.Name + "/" + s.name, p.Name, s.cfg})
		}
	}
	sts, err := runGrid("sensitivity", points, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]SensRow, len(profiles))
	for i, p := range profiles {
		ipc := func(j int) float64 { return sts[i*len(scales)+j].IPC() }
		row := SensRow{
			Bench: p.Name,
			Base:  ipc(0), FUHalf: ipc(1), FU2x: ipc(2), FUInf: ipc(3),
			RUUHalf: ipc(4), RUU2x: ipc(5), RUUInf: ipc(6),
		}
		if row.Base > 0 {
			row.FUGain = row.FU2x/row.Base - 1
			row.RUUGain = row.RUU2x/row.Base - 1
		}
		// Classify by the stronger lever; below the threshold the
		// benchmark is bound by its own ILP, not the machine.
		switch {
		case row.FUGain >= gainThreshold && row.FUGain >= row.RUUGain:
			row.Limiter = LimitFU
		case row.RUUGain >= gainThreshold:
			row.Limiter = LimitRUU
		default:
			row.Limiter = LimitILP
		}
		rows[i] = row
	}
	return rows, nil
}

// PrintSensitivity renders the resource-sensitivity study.
func PrintSensitivity(w io.Writer, rows []SensRow) {
	t := stats.NewTable("Section 5.2: sensitivity to functional units and RUU size (IPC)",
		"bench", "base", "FU 0.5x", "FU 2x", "FU 16x", "RUU 0.5x", "RUU 2x", "RUU 16x", "limiter")
	for _, r := range rows {
		t.Add(r.Bench, stats.F(r.Base, 3), stats.F(r.FUHalf, 3), stats.F(r.FU2x, 3),
			stats.F(r.FUInf, 3), stats.F(r.RUUHalf, 3), stats.F(r.RUU2x, 3),
			stats.F(r.RUUInf, 3), string(r.Limiter))
	}
	t.Render(w)
}

// ---------------------------------------------------------------------
// Ablations.

// CoSchedRow compares SS-2 with and without co-scheduling redundant
// copies on distinct functional-unit instances (Section 3.5).
type CoSchedRow struct {
	Bench      string
	IPCBase    float64
	IPCCoSched float64
}

// AblateCoSchedule measures the throughput cost of forcing copies onto
// distinct physical units.
func AblateCoSchedule(benches []string, opt Options) ([]CoSchedRow, error) {
	opt = opt.defaults()
	points := make([]simPoint, 0, 2*len(benches))
	for _, name := range benches {
		_, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("ablate-cosched: unknown benchmark %q", name)
		}
		cs := ftsim.ModelSS2.Config()
		cs.CoSchedule = true
		points = append(points,
			simPoint{"cosched/" + name + "/default", name, ftsim.ModelSS2.Config()},
			simPoint{"cosched/" + name + "/co-scheduled", name, cs})
	}
	sts, err := runGrid("ablate-cosched", points, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]CoSchedRow, len(benches))
	for i, name := range benches {
		rows[i] = CoSchedRow{Bench: name, IPCBase: sts[2*i].IPC(), IPCCoSched: sts[2*i+1].IPC()}
	}
	return rows, nil
}

// PrintCoSchedule renders the co-scheduling ablation.
func PrintCoSchedule(w io.Writer, rows []CoSchedRow) {
	t := stats.NewTable("Ablation: co-scheduling redundant copies on distinct FUs (SS-2)",
		"bench", "IPC default", "IPC co-scheduled", "delta")
	for _, r := range rows {
		delta := 0.0
		if r.IPCBase > 0 {
			delta = r.IPCCoSched/r.IPCBase - 1
		}
		t.Add(r.Bench, stats.F(r.IPCBase, 3), stats.F(r.IPCCoSched, 3), stats.Pct(delta))
	}
	t.Render(w)
}

// CommitWidthRow measures how the commit-bandwidth tax of Section 3.2
// ("the effective commit/retire bandwidth is reduced by a factor of R")
// depends on the provisioned width.
type CommitWidthRow struct {
	Width int
	IPC1  float64
	IPC2  float64
}

// AblateCommitWidth sweeps the commit width for one benchmark on SS-1
// and SS-2.
func AblateCommitWidth(bench string, widths []int, opt Options) ([]CommitWidthRow, error) {
	opt = opt.defaults()
	_, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("ablate-commit: unknown benchmark %q", bench)
	}
	points := make([]simPoint, 0, 2*len(widths))
	for _, wd := range widths {
		c1 := ftsim.ModelSS1.Config()
		c1.Pipeline.CommitWidth = wd
		c2 := ftsim.ModelSS2.Config()
		c2.Pipeline.CommitWidth = wd
		points = append(points,
			simPoint{fmt.Sprintf("commit/%s/SS-1/w%d", bench, wd), bench, c1},
			simPoint{fmt.Sprintf("commit/%s/SS-2/w%d", bench, wd), bench, c2})
	}
	sts, err := runGrid("ablate-commit", points, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]CommitWidthRow, len(widths))
	for i, wd := range widths {
		rows[i] = CommitWidthRow{Width: wd, IPC1: sts[2*i].IPC(), IPC2: sts[2*i+1].IPC()}
	}
	return rows, nil
}

// PrintCommitWidth renders the commit-width ablation.
func PrintCommitWidth(w io.Writer, bench string, rows []CommitWidthRow) {
	t := stats.NewTable(fmt.Sprintf("Ablation: commit width vs redundancy tax (%s)", bench),
		"commit width", "SS-1 IPC", "SS-2 IPC", "SS-2/SS-1")
	for _, r := range rows {
		ratio := 0.0
		if r.IPC1 > 0 {
			ratio = r.IPC2 / r.IPC1
		}
		t.Add(fmt.Sprintf("%d", r.Width), stats.F(r.IPC1, 3), stats.F(r.IPC2, 3), stats.F(ratio, 3))
	}
	t.Render(w)
}

// RecoveryGrainRow compares fine-grain rewind recovery with coarser
// schemes at one fault rate — the simulated counterpart of the
// Figure 3 / Figure 4 analytic comparison.
type RecoveryGrainRow struct {
	Penalty    int // extra cycles per recovery (0 = fine-grain rewind)
	IPC        float64
	Rewinds    uint64
	AvgPenalty float64 // measured cycles per recovery
}

// AblateRecoveryGrain sweeps the per-recovery penalty for one benchmark
// on SS-2 at a fixed fault rate.
func AblateRecoveryGrain(bench string, faultsPerM float64, penalties []int, opt Options) ([]RecoveryGrainRow, error) {
	opt = opt.defaults()
	_, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("ablate-recovery: unknown benchmark %q", bench)
	}
	points := make([]simPoint, 0, len(penalties))
	for _, pen := range penalties {
		cfg := ftsim.ModelSS2.Config()
		// Seed is set per trial by the campaign grid (runGridGrouped).
		cfg.Fault = ftsim.FaultConfig{Rate: faultsPerM / 1e6, Targets: ftsim.AllFaultTargets()}
		cfg.RecoveryPenalty = pen
		points = append(points, simPoint{fmt.Sprintf("recovery/%s/pen%d", bench, pen), bench, cfg})
	}
	// Every penalty arm shares one seed group: the sweep varies only the
	// recovery cost, so all arms must see the identical fault stream.
	sts, err := runGridGrouped("ablate-recovery", points, func(int) int { return 0 }, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]RecoveryGrainRow, len(penalties))
	for i, pen := range penalties {
		rows[i] = RecoveryGrainRow{
			Penalty:    pen,
			IPC:        sts[i].IPC(),
			Rewinds:    sts[i].FaultRewinds,
			AvgPenalty: sts[i].AvgRecoveryPenalty(),
		}
	}
	return rows, nil
}

// PrintRecoveryGrain renders the recovery-granularity ablation.
func PrintRecoveryGrain(w io.Writer, bench string, faultsPerM float64, rows []RecoveryGrainRow) {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: recovery granularity (%s, %.0f faults/M copies, SS-2)", bench, faultsPerM),
		"extra penalty", "measured cycles/recovery", "rewinds", "IPC")
	for _, r := range rows {
		t.Add(fmt.Sprintf("%d", r.Penalty), stats.F(r.AvgPenalty, 1),
			fmt.Sprintf("%d", r.Rewinds), stats.F(r.IPC, 3))
	}
	t.Render(w)
}
