// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the Section 5.2 sensitivity study and two
// ablations. Each driver returns structured results (so tests can assert
// the paper's qualitative claims) and has a Print companion that renders
// the same rows a reader would compare against the paper.
//
// All simulation-backed drivers are thin grids over the public ftsim
// facade: every trial builds an ftsim machine from a serializable
// ftsim.Config and runs it under the campaign context, so experiments
// exercise exactly the API embedders use.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/ftsim"
	"repro/internal/campaign"
	"repro/internal/funcsim"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options bounds the simulations.
type Options struct {
	// MaxInsts is the committed-instruction budget per simulation run
	// (the paper simulates 1B per benchmark; the default here keeps the
	// full suite interactive).
	MaxInsts uint64
	// FaultSeed is the campaign master seed: each trial's fault-injection
	// seed is derived from it and the trial's grid index, so a whole
	// experiment is reproducible from this one number.
	FaultSeed int64
	// Parallel is the campaign worker-pool size: 0 uses GOMAXPROCS,
	// 1 forces a serial run. Results are identical for any value.
	Parallel int
	// Context, when non-nil, cancels the campaign: dispatch stops and
	// in-flight simulations abort promptly (the context is plumbed
	// through the worker pool into every pipeline loop).
	Context context.Context
	// Progress, when non-nil, observes every campaign trial completion.
	Progress campaign.Progress
	// Report, when non-nil, receives each finished campaign's report
	// (worker count, wall time, streaming trial-time aggregates).
	Report func(*campaign.Report)
	// Metrics, when non-nil, receives campaign instrumentation (trial
	// durations and outcomes, retries, checkpoint fsyncs) for every
	// experiment run under these options. A pure tap: results are
	// identical with and without it.
	Metrics *campaign.Metrics

	// CheckpointDir, when non-empty, journals each campaign's completed
	// trials to <dir>/<campaign>.ckpt so a killed run can resume. A
	// non-empty journal is only resumed when Resume is also set;
	// otherwise it is reported as an error rather than silently resumed
	// or overwritten.
	CheckpointDir string
	// Resume permits resuming existing checkpoint journals: completed
	// trials are restored from disk and only the remainder simulates.
	Resume bool
	// TrialTimeout, when positive, bounds each trial with a per-trial
	// deadline (campaign.Runner.TrialTimeout).
	TrialTimeout time.Duration
	// Retries re-attempts retryable trial failures this many times.
	Retries int
	// Contain keeps a campaign running past trial failures, collecting
	// an error manifest instead of cancelling the grid.
	Contain bool
}

// Defaults fills zero fields.
func (o Options) defaults() Options {
	if o.MaxInsts == 0 {
		o.MaxInsts = 200_000
	}
	if o.FaultSeed == 0 {
		o.FaultSeed = 1
	}
	return o
}

// workloadIters is the loop bound baked into generated benchmarks; runs
// are always cut off by MaxInsts first.
const workloadIters = int64(1) << 32

// runBench simulates one benchmark on one machine configuration through
// the public facade, honouring the campaign context.
func runBench(ctx context.Context, bench string, cfg ftsim.Config, opt Options) (*ftsim.Stats, error) {
	program, err := ftsim.Benchmark(bench)
	if err != nil {
		return nil, err
	}
	cfg.MaxInsts = opt.MaxInsts
	cfg.MaxCycles = opt.MaxInsts * 100 // generous safety net
	m, err := ftsim.NewFromConfig(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(ctx, program)
}

// ---------------------------------------------------------------------
// Table 1: machine parameters (configuration echo).

// PrintTable1 renders the simulated machine parameters, mirroring the
// paper's Table 1.
func PrintTable1(w io.Writer) {
	cfg := ftsim.ModelSS1.Config()
	p := cfg.Pipeline
	t := stats.NewTable("Table 1: baseline superscalar machine parameters", "parameter", "value")
	t.Add("fetch/decode/issue/commit width", fmt.Sprintf("%d / %d / %d / %d",
		p.FetchWidth, p.DispatchWidth, p.IssueWidth, p.CommitWidth))
	t.Add("RUU / LSQ size", fmt.Sprintf("%d / %d", p.RUUSize, p.LSQSize))
	t.Add("branch predictor", cfg.BranchPred.String())
	t.Add("IL1", cfg.Memory.IL1.String())
	t.Add("DL1", cfg.Memory.DL1.String()+fmt.Sprintf(", %d R/W ports", p.MemPorts))
	t.Add("UL2", cfg.Memory.L2.String())
	t.Add("memory latency", fmt.Sprintf("%d cycles", cfg.Memory.Latency))
	t.Add("functional units", fmt.Sprintf("%d IntALU, %d IntMult/Div, %d FPAdd, %d FPMult/Div",
		p.IntALU, p.IntMult, p.FPAdd, p.FPMult))
	t.Render(w)
}

// ---------------------------------------------------------------------
// Table 2: benchmark dynamic instruction mixes.

// MixRow compares a benchmark's measured dynamic mix with its Table 2
// target.
type MixRow struct {
	Bench    string
	Measured funcsim.Mix
	Profile  workload.Profile
}

// Table2 measures each synthetic benchmark's dynamic mix on the
// functional simulator, one campaign trial per benchmark.
func Table2(opt Options) ([]MixRow, error) {
	opt = opt.defaults()
	profiles := workload.Table2()
	trials := make([]campaign.Trial, len(profiles))
	for i := range profiles {
		p := profiles[i]
		trials[i] = campaign.Trial{
			Label: "table2/" + p.Name,
			Run: func(ctx context.Context, _ int64) (any, error) {
				program, err := p.Build(workloadIters)
				if err != nil {
					return nil, err
				}
				// The functional simulator has no context plumbing of its
				// own; stepping it in bounded chunks keeps the trial
				// responsive to campaign cancellation without changing
				// the measured mix (the stepper is deterministic, so N
				// chunked runs equal one straight run).
				const chunk = 65_536
				m := funcsim.New(program)
				for {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					lim := m.Insts + chunk
					if lim > opt.MaxInsts {
						lim = opt.MaxInsts
					}
					err := m.Run(lim)
					if err == nil || m.Insts >= opt.MaxInsts {
						break // halted or budget exhausted
					}
					if err != funcsim.ErrLimit {
						return nil, fmt.Errorf("table2 %s: %w", p.Name, err)
					}
				}
				return m.Mix(), nil
			},
		}
	}
	rep, err := runCampaign("table2", trials, nil, jsonCodec[funcsim.Mix](), opt)
	if err != nil {
		return nil, err
	}
	mixes, err := campaign.Collect[funcsim.Mix](rep)
	if err != nil {
		return nil, err
	}
	rows := make([]MixRow, len(profiles))
	for i, p := range profiles {
		rows[i] = MixRow{Bench: p.Name, Measured: mixes[i], Profile: p}
	}
	return rows, nil
}

// PrintTable2 renders measured-vs-target mixes.
func PrintTable2(w io.Writer, rows []MixRow) {
	t := stats.NewTable("Table 2: dynamic instruction mix (measured / paper)",
		"bench", "%mem", "%int", "%fp add", "%fp mult", "%fp div")
	for _, r := range rows {
		cell := func(got, want float64) string {
			return fmt.Sprintf("%5.2f / %5.2f", got, want)
		}
		t.Add(r.Bench,
			cell(r.Measured.MemPct, r.Profile.MemPct),
			cell(r.Measured.IntPct, r.Profile.IntPct),
			cell(r.Measured.FAdd, r.Profile.FAddPct),
			cell(r.Measured.FMul, r.Profile.FMulPct),
			cell(r.Measured.FDiv, r.Profile.FDivPct))
	}
	t.Render(w)
}

// ---------------------------------------------------------------------
// Figures 3 and 4: analytical IPC vs fault frequency.

// Curves holds the analytic series of Figure 3 or 4.
type Curves struct {
	Rewind float64 // cycles
	Freqs  []float64
	R2     []model.Point
	R3     []model.Point
	R3Maj  []model.Point
}

// Fig3 evaluates the Section 4 model with the paper's Figure 3
// parameters: IPC1 = B normalised to 1, rewind penalty 20 cycles.
func Fig3() Curves { return analyticCurves(20) }

// Fig4 is Figure 3 with the rewind penalty raised to 2000 cycles,
// modelling coarse-grain checkpoint recovery.
func Fig4() Curves { return analyticCurves(2000) }

func analyticCurves(rw float64) Curves {
	freqs := model.LogSpace(1e-8, 1e-1, 29)
	mk := func(r int, maj bool) []model.Point {
		return model.Curve(model.CurveConfig{IPC1: 1, B: 1, R: r, Majority: maj, Rewind: rw}, freqs)
	}
	return Curves{
		Rewind: rw,
		Freqs:  freqs,
		R2:     mk(2, false),
		R3:     mk(3, false),
		R3Maj:  mk(3, true),
	}
}

// PrintCurves renders an analytic figure as columns.
func PrintCurves(w io.Writer, title string, c Curves) {
	t := stats.NewTable(title, "faults/inst", "IPC R=2", "IPC R=3", "IPC R=3 majority")
	for i := range c.Freqs {
		t.Add(fmt.Sprintf("%.1e", c.Freqs[i]), stats.F(c.R2[i].IPC, 3),
			stats.F(c.R3[i].IPC, 3), stats.F(c.R3Maj[i].IPC, 3))
	}
	t.Render(w)
}

// ---------------------------------------------------------------------
// Figure 5: steady-state IPC of SS-1, Static-2 and SS-2.

// Fig5Row is one benchmark's bar group in Figure 5.
type Fig5Row struct {
	Bench   string
	SS1     float64
	Static2 float64
	SS2     float64
	// Penalty is the SS-2 throughput loss relative to SS-1 (the paper's
	// 2%-45% range, 30% average).
	Penalty float64
}

// Fig5 runs the three machine models over the 11 benchmarks — a 33-point
// campaign grid.
func Fig5(opt Options) ([]Fig5Row, error) {
	opt = opt.defaults()
	profiles := workload.Table2()
	points := make([]simPoint, 0, 3*len(profiles))
	for _, p := range profiles {
		points = append(points,
			simPoint{"fig5/" + p.Name + "/SS-1", p.Name, ftsim.ModelSS1.Config()},
			simPoint{"fig5/" + p.Name + "/Static-2", p.Name, ftsim.ModelStatic2.Config()},
			simPoint{"fig5/" + p.Name + "/SS-2", p.Name, ftsim.ModelSS2.Config()})
	}
	sts, err := runGrid("fig5", points, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, len(profiles))
	for i, p := range profiles {
		row := Fig5Row{Bench: p.Name, SS1: sts[3*i].IPC(), Static2: sts[3*i+1].IPC(), SS2: sts[3*i+2].IPC()}
		if row.SS1 > 0 {
			row.Penalty = 1 - row.SS2/row.SS1
		}
		rows[i] = row
	}
	return rows, nil
}

// MeanPenalty returns the average SS-2 throughput penalty across rows.
func MeanPenalty(rows []Fig5Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Penalty
	}
	return sum / float64(len(rows))
}

// PrintFig5 renders the steady-state IPC comparison.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	t := stats.NewTable("Figure 5: steady-state IPC comparison",
		"bench", "SS-1", "Static-2", "SS-2", "SS-2 penalty")
	for _, r := range rows {
		t.Add(r.Bench, stats.F(r.SS1, 3), stats.F(r.Static2, 3), stats.F(r.SS2, 3), stats.Pct(r.Penalty))
	}
	t.Render(w)
	fmt.Fprintf(w, "  mean SS-2 penalty: %s (paper: 2%%-45%%, ~30%% average)\n", stats.Pct(MeanPenalty(rows)))
}

// ---------------------------------------------------------------------
// Figure 6: simulated IPC vs fault frequency (fpppp).

// Fig6Row is one fault-frequency sample.
type Fig6Row struct {
	FaultsPerM float64 // faults per million instruction copies
	R2IPC      float64
	R3IPC      float64
	R2Rewinds  uint64
	R3Rewinds  uint64
	R3Majority uint64
	R2Recovery float64 // average cycles per recovery
}

// Fig6 sweeps the fault-injection rate for one benchmark (the paper uses
// fpppp) on the R=2 rewind design and the R=3 majority design.
func Fig6(bench string, opt Options) ([]Fig6Row, error) {
	opt = opt.defaults()
	if _, ok := workload.ByName(bench); !ok {
		return nil, fmt.Errorf("fig6: unknown benchmark %q", bench)
	}
	ratesPerM := []float64{0, 1, 10, 100, 1000, 5000, 10_000, 20_000, 50_000, 100_000}
	points := make([]simPoint, 0, 2*len(ratesPerM))
	for _, rm := range ratesPerM {
		// Seed is set per trial by the campaign grid (runGridGrouped).
		fc := ftsim.FaultConfig{Rate: rm / 1e6, Targets: ftsim.AllFaultTargets()}
		ss2 := ftsim.ModelSS2.Config()
		ss2.Fault = fc
		ss3 := ftsim.ModelSS3.Config()
		ss3.Fault = fc
		points = append(points,
			simPoint{fmt.Sprintf("fig6/%s/R2@%g", bench, rm), bench, ss2},
			simPoint{fmt.Sprintf("fig6/%s/R3@%g", bench, rm), bench, ss3})
	}
	// The R=2 and R=3 arms at one fault rate share a seed group, so each
	// row compares the two designs under the identical fault stream.
	sts, err := runGridGrouped("fig6", points, func(i int) int { return i / 2 }, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(ratesPerM))
	for i, rm := range ratesPerM {
		st2, st3 := sts[2*i], sts[2*i+1]
		rows[i] = Fig6Row{
			FaultsPerM: rm,
			R2IPC:      st2.IPC(),
			R3IPC:      st3.IPC(),
			R2Rewinds:  st2.FaultRewinds,
			R3Rewinds:  st3.FaultRewinds,
			R3Majority: st3.MajorityCommits,
			R2Recovery: st2.AvgRecoveryPenalty(),
		}
	}
	return rows, nil
}

// PrintFig6 renders the fault-frequency sweep.
func PrintFig6(w io.Writer, bench string, rows []Fig6Row) {
	t := stats.NewTable(fmt.Sprintf("Figure 6: IPC vs fault frequency (%s)", bench),
		"faults/M-inst", "IPC R=2", "IPC R=3 maj", "R2 rewinds", "R3 rewinds", "R3 elected", "R2 avg recovery")
	for _, r := range rows {
		t.Add(stats.F(r.FaultsPerM, 0), stats.F(r.R2IPC, 3), stats.F(r.R3IPC, 3),
			fmt.Sprintf("%d", r.R2Rewinds), fmt.Sprintf("%d", r.R3Rewinds),
			fmt.Sprintf("%d", r.R3Majority), stats.F(r.R2Recovery, 1))
	}
	t.Render(w)
}
