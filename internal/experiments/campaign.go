package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/ftsim"
	"repro/internal/campaign"
)

// simPoint is one (benchmark, machine configuration) cell of an
// experiment grid.
type simPoint struct {
	label string
	bench string
	cfg   ftsim.Config
}

// valueCodec serialises trial values for a checkpoint journal. Each
// campaign passes the codec matching its value type.
type valueCodec struct {
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

// jsonCodec builds a valueCodec for trial values of type T. The
// experiment value types (ftsim.Stats counters, funcsim.Mix fractions)
// are uint64s and float64s, which encoding/json round-trips exactly,
// so resumed aggregates stay bit-identical to an uninterrupted run's.
func jsonCodec[T any]() valueCodec {
	return valueCodec{
		encode: func(v any) ([]byte, error) {
			t, ok := v.(T)
			if !ok {
				var want T
				return nil, fmt.Errorf("experiments: checkpoint: trial value is %T, want %T", v, want)
			}
			return json.Marshal(t)
		},
		decode: func(data []byte) (any, error) {
			var t T
			if err := json.Unmarshal(data, &t); err != nil {
				return nil, fmt.Errorf("experiments: checkpoint: %w", err)
			}
			return t, nil
		},
	}
}

// campaignHash fingerprints what the trial closures hide from the
// campaign engine: the grid's shape (labels encode benchmark, model
// and sweep parameters) and the per-run instruction budget. Resuming
// under a changed grid or budget fails with ErrCheckpointMismatch
// instead of mixing incompatible results.
func campaignHash(name string, trials []campaign.Trial, opt Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00", name, opt.MaxInsts)
	for _, t := range trials {
		fmt.Fprintf(h, "%s\x00", t.Label)
	}
	return h.Sum64()
}

// runCampaign runs a trial grid through the campaign engine with the
// runner configured from opt (worker count, progress sink, campaign
// seed, containment policy, checkpointing). group is the spec's
// seed-index mapping (nil = identity). The finished report is handed
// to opt.Report when set.
func runCampaign(name string, trials []campaign.Trial, group func(int) int, codec valueCodec, opt Options) (*campaign.Report, error) {
	runner := campaign.Runner{
		Workers:      opt.Parallel,
		Progress:     opt.Progress,
		Contain:      opt.Contain,
		TrialTimeout: opt.TrialTimeout,
		Retries:      opt.Retries,
		Metrics:      opt.Metrics,
	}
	if opt.CheckpointDir != "" {
		path := filepath.Join(opt.CheckpointDir, name+".ckpt")
		if !opt.Resume {
			// A non-empty journal the caller did not ask to resume is a
			// footgun either way: silently resuming surprises a user who
			// wanted a fresh run, silently overwriting destroys completed
			// work. Make the choice explicit.
			if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
				return nil, fmt.Errorf("experiments: checkpoint %s already holds a journal; resume it (Options.Resume / ftexp -resume) or delete it to start over", path)
			}
		}
		if err := os.MkdirAll(opt.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: checkpoint: %w", err)
		}
		runner.Checkpoint = &campaign.Checkpoint{
			Path:   path,
			Hash:   campaignHash(name, trials, opt),
			Encode: codec.encode,
			Decode: codec.decode,
		}
	}
	spec := campaign.Spec{Name: name, Seed: opt.FaultSeed, SeedIndex: group, Trials: trials}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	rep, err := runner.Run(ctx, spec)
	if rep != nil && opt.Report != nil {
		opt.Report(rep)
	}
	return rep, err
}

// runGrid executes the points through the campaign engine and returns
// their statistics in grid order. opt.FaultSeed acts as the campaign
// seed: every point with fault injection enabled has its injector
// reseeded with the engine's derived per-trial seed, so results depend
// only on (grid, seed) — never on worker count or completion order.
func runGrid(name string, points []simPoint, opt Options) ([]*ftsim.Stats, error) {
	return runGridGrouped(name, points, nil, opt)
}

// runGridGrouped is runGrid with seed pairing (campaign.Spec.SeedIndex):
// points sharing a seed index see the identical fault stream, so
// controlled comparisons (R=2 vs R=3 at one fault rate, a penalty sweep
// at one rate) measure the design's difference, not the RNG's. nil
// means every point is its own group.
//
// Trials run on pooled machines: each worker keeps a machine pool (and
// the grid's programs are built once, up front, instead of once per
// trial), so per-trial cost is dominated by simulation, not
// construction. Pooling is results-invisible — a recycled machine is
// reset to a state bit-identical to a fresh build.
func runGridGrouped(name string, points []simPoint, group func(int) int, opt Options) ([]*ftsim.Stats, error) {
	progs := make(map[string]*ftsim.Program, len(points))
	for i := range points {
		b := points[i].bench
		if _, ok := progs[b]; ok {
			continue
		}
		program, err := ftsim.Benchmark(b)
		if err != nil {
			return nil, err
		}
		progs[b] = program
	}
	trials := make([]campaign.Trial, len(points))
	for i := range points {
		pt := points[i]
		trials[i] = campaign.Trial{
			Label: pt.label,
			RunW: func(ctx context.Context, ws *campaign.Workspace, seed int64) (any, error) {
				cfg := pt.cfg
				if cfg.Fault.Enabled() {
					cfg.Fault.Seed = seed
				}
				return runBenchPooled(ctx, ws, progs[pt.bench], cfg, opt)
			},
		}
	}
	rep, err := runCampaign(name, trials, group, jsonCodec[*ftsim.Stats](), opt)
	if err != nil {
		return nil, err
	}
	return campaign.Collect[*ftsim.Stats](rep)
}

// poolKey indexes the per-worker machine pool in a campaign Workspace.
type poolKey struct{}

// wsPool returns the worker's machine pool, creating it on first use.
func wsPool(ws *campaign.Workspace) *ftsim.MachinePool {
	if v := ws.Value(poolKey{}); v != nil {
		return v.(*ftsim.MachinePool)
	}
	p := new(ftsim.MachinePool)
	ws.Set(poolKey{}, p)
	return p
}

// runBenchPooled is runBench for a pre-built program on a pooled
// machine.
func runBenchPooled(ctx context.Context, ws *campaign.Workspace, program *ftsim.Program, cfg ftsim.Config, opt Options) (*ftsim.Stats, error) {
	cfg.MaxInsts = opt.MaxInsts
	cfg.MaxCycles = opt.MaxInsts * 100 // generous safety net
	m, err := ftsim.NewFromConfig(cfg)
	if err != nil {
		return nil, err
	}
	return m.RunPooled(ctx, wsPool(ws), program)
}
