package experiments

import (
	"context"

	"repro/ftsim"
	"repro/internal/campaign"
)

// simPoint is one (benchmark, machine configuration) cell of an
// experiment grid.
type simPoint struct {
	label string
	bench string
	cfg   ftsim.Config
}

// runCampaign runs a trial grid through the campaign engine with the
// runner configured from opt (worker count, progress sink, campaign
// seed). group is the spec's seed-index mapping (nil = identity). The
// finished report is handed to opt.Report when set.
func runCampaign(name string, trials []campaign.Trial, group func(int) int, opt Options) (*campaign.Report, error) {
	runner := campaign.Runner{Workers: opt.Parallel, Progress: opt.Progress}
	spec := campaign.Spec{Name: name, Seed: opt.FaultSeed, SeedIndex: group, Trials: trials}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	rep, err := runner.Run(ctx, spec)
	if rep != nil && opt.Report != nil {
		opt.Report(rep)
	}
	return rep, err
}

// runGrid executes the points through the campaign engine and returns
// their statistics in grid order. opt.FaultSeed acts as the campaign
// seed: every point with fault injection enabled has its injector
// reseeded with the engine's derived per-trial seed, so results depend
// only on (grid, seed) — never on worker count or completion order.
func runGrid(name string, points []simPoint, opt Options) ([]*ftsim.Stats, error) {
	return runGridGrouped(name, points, nil, opt)
}

// runGridGrouped is runGrid with seed pairing (campaign.Spec.SeedIndex):
// points sharing a seed index see the identical fault stream, so
// controlled comparisons (R=2 vs R=3 at one fault rate, a penalty sweep
// at one rate) measure the design's difference, not the RNG's. nil
// means every point is its own group.
func runGridGrouped(name string, points []simPoint, group func(int) int, opt Options) ([]*ftsim.Stats, error) {
	trials := make([]campaign.Trial, len(points))
	for i := range points {
		pt := points[i]
		trials[i] = campaign.Trial{
			Label: pt.label,
			Run: func(ctx context.Context, seed int64) (any, error) {
				cfg := pt.cfg
				if cfg.Fault.Enabled() {
					cfg.Fault.Seed = seed
				}
				return runBench(ctx, pt.bench, cfg, opt)
			},
		}
	}
	rep, err := runCampaign(name, trials, group, opt)
	if err != nil {
		return nil, err
	}
	return campaign.Collect[*ftsim.Stats](rep)
}
