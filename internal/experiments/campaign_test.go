package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestCampaignDeterminism is the parallelism regression gate: the same
// experiment at -parallel 1 and -parallel 8 must produce identical
// aggregated rows (and byte-identical rendered tables) for the same
// campaign seed. Fig6 exercises the seed-sensitive path (fault
// injection); Fig5 covers the fault-free grids.
func TestCampaignDeterminism(t *testing.T) {
	serial := Options{MaxInsts: 6_000, FaultSeed: 11, Parallel: 1}
	if testing.Short() {
		serial.MaxInsts = 2_000 // keep the concurrency gate, trim the budget
	}
	par := serial
	par.Parallel = 8

	r1, err := Fig6("fpppp", serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Fig6("fpppp", par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("fig6 rows differ between -parallel 1 and -parallel 8:\n%+v\n%+v", r1, r8)
	}
	var t1, t8 strings.Builder
	PrintFig6(&t1, "fpppp", r1)
	PrintFig6(&t8, "fpppp", r8)
	if t1.String() != t8.String() {
		t.Error("fig6 rendered tables not byte-identical")
	}

	if testing.Short() {
		return // the fig6 arm above already exercised worker-count invariance
	}
	f1, err := Fig5(serial)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig5(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f8) {
		t.Errorf("fig5 rows differ between -parallel 1 and -parallel 8")
	}
}

// TestCampaignSeedMatters guards against the degenerate "determinism"
// of ignoring the seed entirely: a different campaign seed must change
// the injected-fault trajectory somewhere in the sweep.
func TestCampaignSeedMatters(t *testing.T) {
	a, err := Fig6("fpppp", Options{MaxInsts: 6_000, FaultSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6("fpppp", Options{MaxInsts: 6_000, FaultSeed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("fig6 identical under different campaign seeds")
	}
}

// TestCampaignProgress checks the per-trial progress stream the CLIs
// attach: one callback per grid point, labels carrying the experiment
// name.
func TestCampaignProgress(t *testing.T) {
	var labels []string
	var rep *campaign.Report
	opt := Options{MaxInsts: 2_000, Parallel: 1}
	opt.Progress = func(done, total int, r campaign.Result) {
		if total != 11 {
			t.Errorf("total = %d, want 11", total)
		}
		labels = append(labels, r.Label)
	}
	opt.Report = func(r *campaign.Report) { rep = r }
	if _, err := Table2(opt); err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.TrialSeconds.N() != 11 || rep.Workers != 1 || rep.Spec != "table2" {
		t.Fatalf("report hook: %+v", rep)
	}
	if len(labels) != 11 {
		t.Fatalf("got %d progress callbacks", len(labels))
	}
	for _, l := range labels {
		if !strings.HasPrefix(l, "table2/") {
			t.Errorf("label %q missing experiment prefix", l)
		}
	}
}
