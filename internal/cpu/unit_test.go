package cpu

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// RUU ring buffer.

func TestRUURing(t *testing.T) {
	r := newRUU(4)
	if !r.empty() || r.free() != 4 {
		t.Fatal("fresh RUU not empty")
	}
	for i := 0; i < 4; i++ {
		idx := r.alloc()
		e := r.at(idx)
		e.Valid = true
		e.Seq = uint64(i + 1)
	}
	if r.free() != 0 {
		t.Fatalf("free = %d after filling", r.free())
	}
	// Release two, allocate two more: indices wrap.
	r.release()
	r.release()
	if r.free() != 2 || r.head != 2 {
		t.Fatalf("after releases: free=%d head=%d", r.free(), r.head)
	}
	i5 := r.alloc()
	if i5 != 0 {
		t.Fatalf("wrapped alloc at %d, want 0", i5)
	}
	e := r.at(i5)
	e.Valid, e.Seq = true, 5
	// forEach visits oldest -> youngest.
	var seqs []uint64
	r.forEach(func(_ int, e *Entry) bool {
		seqs = append(seqs, e.Seq)
		return true
	})
	want := []uint64{3, 4, 5}
	if len(seqs) != len(want) {
		t.Fatalf("visited %v", seqs)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("visited %v, want %v", seqs, want)
		}
	}
}

func TestRUUTruncateAfter(t *testing.T) {
	r := newRUU(8)
	for i := 0; i < 6; i++ {
		idx := r.alloc()
		e := r.at(idx)
		e.Valid = true
		e.Seq = uint64(i + 1)
	}
	if n := r.truncateAfter(4, false); n != 2 {
		t.Fatalf("squashed %d entries, want 2", n)
	}
	if r.count != 4 || r.tail != 4 {
		t.Fatalf("count=%d tail=%d", r.count, r.tail)
	}
	// Squashing everything.
	if n := r.truncateAfter(0, true); n != 4 {
		t.Fatalf("squash-all removed %d", n)
	}
	if !r.empty() {
		t.Fatal("not empty after squash-all")
	}
}

func TestRUUOverflowPanics(t *testing.T) {
	r := newRUU(1)
	r.alloc()
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.alloc()
}

func TestRUUUnderflowPanics(t *testing.T) {
	r := newRUU(1)
	defer func() {
		if recover() == nil {
			t.Error("underflow did not panic")
		}
	}()
	r.release()
}

// ---------------------------------------------------------------------
// LSQ disambiguation.

func newTestLSQ(t *testing.T, entries ...lsqEntry) *lsq {
	t.Helper()
	q := newLSQ(8)
	for _, e := range entries {
		idx := q.alloc()
		e.valid = true
		*q.at(idx) = e
	}
	return q
}

func TestLSQForwardExactMatch(t *testing.T) {
	q := newTestLSQ(t,
		lsqEntry{seq: 1, isLoad: false, addrReady: true, addr: 0x100, size: 8, dataReady: true, data: 42},
		lsqEntry{seq: 2, isLoad: true},
	)
	conflict, val := q.checkLoad(1, 0x100, 8)
	if conflict != loadForward || val != 42 {
		t.Errorf("exact match: %v, %d", conflict, val)
	}
}

func TestLSQBlockedOnUnknownStore(t *testing.T) {
	q := newTestLSQ(t,
		lsqEntry{seq: 1, isLoad: false, addrReady: false},
		lsqEntry{seq: 2, isLoad: true},
	)
	if conflict, _ := q.checkLoad(1, 0x100, 8); conflict != loadBlocked {
		t.Errorf("unknown-address store: %v", conflict)
	}
}

func TestLSQBlockedOnPartialOverlap(t *testing.T) {
	q := newTestLSQ(t,
		lsqEntry{seq: 1, addrReady: true, addr: 0x100, size: 8, dataReady: true, data: 1},
		lsqEntry{seq: 2, isLoad: true},
	)
	// 1-byte load inside the 8-byte store: partial overlap, must wait.
	if conflict, _ := q.checkLoad(1, 0x103, 1); conflict != loadBlocked {
		t.Error("partial overlap not blocked")
	}
	// Store data not yet ready with matching address: also blocked.
	q2 := newTestLSQ(t,
		lsqEntry{seq: 1, addrReady: true, addr: 0x100, size: 8, dataReady: false},
		lsqEntry{seq: 2, isLoad: true},
	)
	if conflict, _ := q2.checkLoad(1, 0x100, 8); conflict != loadBlocked {
		t.Error("data-not-ready store not blocked")
	}
}

func TestLSQClearWhenDisjoint(t *testing.T) {
	q := newTestLSQ(t,
		lsqEntry{seq: 1, addrReady: true, addr: 0x100, size: 8, dataReady: true},
		lsqEntry{seq: 2, isLoad: true},
	)
	if conflict, _ := q.checkLoad(1, 0x200, 8); conflict != loadClear {
		t.Error("disjoint addresses blocked")
	}
	// Adjacent but non-overlapping.
	if conflict, _ := q.checkLoad(1, 0x108, 8); conflict != loadClear {
		t.Error("adjacent access blocked")
	}
}

func TestLSQNearestStoreForwards(t *testing.T) {
	q := newTestLSQ(t,
		lsqEntry{seq: 1, addrReady: true, addr: 0x100, size: 8, dataReady: true, data: 1},
		lsqEntry{seq: 2, addrReady: true, addr: 0x100, size: 8, dataReady: true, data: 2},
		lsqEntry{seq: 3, isLoad: true},
	)
	if _, val := q.checkLoad(2, 0x100, 8); val != 2 {
		t.Errorf("forwarded %d, want the youngest older store's 2", val)
	}
}

func TestLSQYoungerStoresIgnored(t *testing.T) {
	q := newTestLSQ(t,
		lsqEntry{seq: 2, isLoad: true},
		lsqEntry{seq: 5, addrReady: true, addr: 0x100, size: 8, dataReady: true, data: 9},
	)
	// The store is younger (seq 5 > 2): the load must not see it.
	if conflict, _ := q.checkLoad(0, 0x100, 8); conflict != loadClear {
		t.Error("younger store affected an older load")
	}
}

func TestLSQTruncateAndRelease(t *testing.T) {
	q := newTestLSQ(t,
		lsqEntry{seq: 1, gid: 10, isLoad: true},
		lsqEntry{seq: 2, gid: 11, isLoad: true},
		lsqEntry{seq: 3, gid: 12, isLoad: true},
	)
	q.truncateAfter(2, false)
	if q.count != 2 {
		t.Fatalf("count = %d after truncate", q.count)
	}
	q.releaseHead(10)
	q.releaseHead(11)
	if q.count != 0 {
		t.Fatalf("count = %d after releases", q.count)
	}
}

func TestLSQReleaseHeadMismatchPanics(t *testing.T) {
	q := newTestLSQ(t, lsqEntry{seq: 1, gid: 10})
	defer func() {
		if recover() == nil {
			t.Error("gid mismatch did not panic")
		}
	}()
	q.releaseHead(99)
}

func TestOverlapPredicate(t *testing.T) {
	cases := []struct {
		a    uint64
		an   int
		b    uint64
		bn   int
		want bool
	}{
		{0x100, 8, 0x100, 8, true},
		{0x100, 8, 0x107, 1, true},
		{0x100, 8, 0x108, 8, false},
		{0x108, 8, 0x100, 8, false},
		{0x100, 1, 0x100, 8, true},
		{0x0FF, 2, 0x100, 4, true},
	}
	for _, c := range cases {
		if got := overlap(c.a, c.an, c.b, c.bn); got != c.want {
			t.Errorf("overlap(%#x+%d, %#x+%d) = %v, want %v", c.a, c.an, c.b, c.bn, got, c.want)
		}
	}
}

// ---------------------------------------------------------------------
// Functional-unit pools.

func TestFUPipelined(t *testing.T) {
	p := newFUPool(isa.PoolIntALU, 2)
	// Two units accept two issues in one cycle; the third must wait.
	if p.tryIssue(10, 1, true, -1) < 0 || p.tryIssue(10, 1, true, -1) < 0 {
		t.Fatal("two pipelined issues rejected")
	}
	if p.tryIssue(10, 1, true, -1) >= 0 {
		t.Fatal("third same-cycle issue accepted on 2 units")
	}
	// Next cycle both are free again (pipelined).
	if p.tryIssue(11, 1, true, -1) < 0 {
		t.Fatal("pipelined unit not free next cycle")
	}
}

func TestFUUnpipelined(t *testing.T) {
	p := newFUPool(isa.PoolFPMult, 1)
	if p.tryIssue(10, 12, false, -1) < 0 {
		t.Fatal("first issue rejected")
	}
	// Busy for the full latency.
	if p.tryIssue(11, 12, false, -1) >= 0 || p.tryIssue(21, 12, false, -1) >= 0 {
		t.Fatal("unpipelined unit accepted a second op while busy")
	}
	if p.tryIssue(22, 12, false, -1) < 0 {
		t.Fatal("unit not free after latency elapsed")
	}
}

func TestFUPreference(t *testing.T) {
	p := newFUPool(isa.PoolIntALU, 4)
	// Preferred instance granted when free.
	if got := p.tryIssue(5, 1, true, 2); got != 2 {
		t.Fatalf("preferred unit not granted: %d", got)
	}
	// Preferred busy: falls back to another instance.
	if got := p.tryIssue(5, 1, true, 2); got == 2 || got < 0 {
		t.Fatalf("fallback pick = %d", got)
	}
}

// ---------------------------------------------------------------------
// Co-scheduling: redundant copies land on distinct physical units.

type recordingChecker struct{ distinct, same int }

func (rc *recordingChecker) Check(group []*Entry) Verdict {
	if len(group) == 2 && group[0].FUPool == isa.PoolIntALU {
		if group[0].FUUnit != group[1].FUUnit {
			rc.distinct++
		} else {
			rc.same++
		}
	}
	return Verdict{OK: true}
}

func TestCoSchedulePlacesCopiesOnDistinctUnits(t *testing.T) {
	// Serial adds so copies of the same group tend to issue together.
	b := prog.NewBuilder("cosched")
	b.Li(1, 400)
	b.Label("loop")
	for i := 0; i < 6; i++ {
		b.R(isa.OpAdd, 2, 2, 2)
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	p := b.MustBuild()

	measure := func(cosched bool) (distinct, same int) {
		rc := &recordingChecker{}
		cfg := Baseline()
		cfg.R = 2
		cfg.Checker = rc
		cfg.CoSchedule = cosched
		cfg.MaxCycles = 1_000_000
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return rc.distinct, rc.same
	}

	d1, s1 := measure(true)
	if d1 == 0 {
		t.Fatal("no ALU groups observed")
	}
	// With co-scheduling, the overwhelming majority of groups use
	// distinct physical units.
	if frac := float64(d1) / float64(d1+s1); frac < 0.9 {
		t.Errorf("co-scheduled distinct fraction = %.2f", frac)
	}
	// Without it, placement is first-free and collisions are common
	// enough to tell the modes apart.
	d0, s0 := measure(false)
	if float64(d0)/float64(d0+s0) > float64(d1)/float64(d1+s1) {
		t.Errorf("co-scheduling reduced distinct placement: %d/%d vs %d/%d", d1, s1, d0, s0)
	}
}

// ---------------------------------------------------------------------
// ECC recovery anchor.

func TestNextPCUpsetAbsorbed(t *testing.T) {
	b := prog.NewBuilder("upset")
	b.Li(1, 1000)
	b.Label("loop")
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(1)
	b.Halt()
	cfg := Baseline()
	cfg.R = 2
	cfg.Checker = testChecker{}
	cfg.Oracle = true
	m, err := New(cfg, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit of the committed next-PC before running: SECDED must
	// scrub it, or the very first PC-continuity check would rewind to a
	// corrupt address and the program would never recover.
	m.UpsetNextPC(7)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted || st.EscapedFaults != 0 || st.PCCheckFails != 0 {
		t.Fatalf("upset not absorbed: %s", st.Summary())
	}
	if st.Output[0] != 0 {
		t.Fatalf("output = %d", st.Output[0])
	}
}

// ---------------------------------------------------------------------
// Redundant loads: one access, value delivered to all copies.

func TestRedundantLoadSingleAccess(t *testing.T) {
	b := prog.NewBuilder("ldonce")
	addr := b.Word(1234)
	b.Li(1, int64(addr))
	b.Li(3, 500)
	b.Label("loop")
	b.Load(isa.OpLd, 2, 1, 0)
	b.I(isa.OpAddi, 3, 3, -1)
	b.Branch(isa.OpBne, 3, 0, "loop")
	b.Out(2)
	b.Halt()
	p := b.MustBuild()

	run := func(r int) (dl1Accesses uint64, out uint64) {
		cfg := Baseline()
		cfg.R = r
		if r > 1 {
			cfg.Checker = testChecker{}
		}
		cfg.MaxCycles = 1_000_000
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Halted {
			t.Fatal("did not halt")
		}
		return st.DL1.Accesses, st.Output[0]
	}

	a1, o1 := run(1)
	a2, o2 := run(2)
	if o1 != 1234 || o2 != 1234 {
		t.Fatalf("outputs: %d, %d", o1, o2)
	}
	// Section 5.1.2: only one memory access per load group, so the D-cache
	// sees the same (within noise from wrong-path fetches) traffic in
	// both modes — not twice as much.
	if float64(a2) > float64(a1)*1.3 {
		t.Errorf("SS-2 D-cache accesses %d vs SS-1 %d: loads are being duplicated", a2, a1)
	}
}

// ---------------------------------------------------------------------
// Pipeline tracing.

func TestPipelineTrace(t *testing.T) {
	b := prog.NewBuilder("traced")
	b.Li(1, 50)
	b.Label("loop")
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	buf := trace.NewBuffer(100_000)
	cfg := Baseline()
	cfg.R = 2
	cfg.Checker = testChecker{}
	cfg.Tracer = buf
	cfg.MaxCycles = 100_000
	m, err := New(cfg, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted {
		t.Fatal("did not halt")
	}
	// Every committed copy produced dispatch, issue, complete, commit.
	commits := buf.CountStage(trace.StageCommit)
	if uint64(commits) != st.Copies {
		t.Errorf("traced %d commits, stats say %d copies", commits, st.Copies)
	}
	if buf.CountStage(trace.StageDispatch) < commits {
		t.Error("fewer dispatches than commits")
	}
	// The loop's first bne mispredicts at least once, so squashes exist.
	if buf.CountStage(trace.StageSquash) == 0 {
		t.Error("no squash events despite branch rewinds")
	}
	// Per-copy event ordering: dispatch <= issue <= complete <= commit.
	type times struct{ d, i, c, r uint64 }
	byseq := map[uint64]*times{}
	for _, e := range buf.Events() {
		tt := byseq[e.Seq]
		if tt == nil {
			tt = &times{}
			byseq[e.Seq] = tt
		}
		switch e.Stage {
		case trace.StageDispatch:
			tt.d = e.Cycle
		case trace.StageIssue:
			tt.i = e.Cycle
		case trace.StageComplete:
			tt.c = e.Cycle
		case trace.StageCommit:
			tt.r = e.Cycle
		}
	}
	for seq, tt := range byseq {
		if tt.r == 0 {
			continue // squashed or truncated record
		}
		if !(tt.d <= tt.i && tt.i <= tt.c && tt.c <= tt.r) {
			t.Fatalf("seq %d: stage cycles out of order: %+v", seq, tt)
		}
	}
	// The timeline renders without error and mentions the loop branch.
	var sb strings.Builder
	buf.Timeline(&sb)
	if !strings.Contains(sb.String(), "bne") {
		t.Error("timeline missing the branch")
	}
}
