package cpu

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/trace"
)

// ErrDeadlock is returned when the machine stops committing instructions,
// which indicates a simulator bug rather than a program property.
var ErrDeadlock = errors.New("cpu: no commit progress (pipeline deadlock)")

// fetched is one slot of the fetch queue.
type fetchedInst struct {
	pc       uint64
	inst     isa.Inst
	oi       *isa.OpInfo // cached decode, carried into the RUU entry
	predNext uint64
	pred     bpred.Prediction
}

// Machine is one simulated processor core plus its committed
// architectural state.
type Machine struct {
	cfg Config

	// Committed (ECC-protected, outside the sphere of replication)
	// architectural state. The committed next-PC register is the one
	// structure Section 3.2 explicitly requires to be ECC protected —
	// it is the recovery anchor — so it really is stored under SECDED.
	regs   [isa.NumRegs]uint64
	nextPC ecc.Reg
	mem    *mem.Memory

	// Speculative machinery.
	ruu      *ruu
	lsq      *lsq
	fus      *fuSet
	bp       *bpred.Predictor
	caches   *cache.Hierarchy
	injector *fault.Injector

	mapTable [isa.NumRegs]mapRef

	// Event-driven scheduling state (see sched.go). eventSched gates the
	// feeding of these structures; the retained scan-based reference
	// scheduler (test files only) clears it and installs its own stage
	// functions via issueFn/writebackFn.
	eventSched  bool
	issueFn     func()
	writebackFn func()
	waitlists   [][]waiter // per-RUU-slot consumer lists
	ready       readyQueue
	retry       []readyRec // issue-stage scratch, reused across cycles
	cal         calendar
	dec         *decCache

	// Fetch state.
	fetchPC    uint64
	fetchQ     *fetchRing
	stallUntil uint64
	fetchHalt  bool

	cycle   uint64
	seq     uint64
	gid     uint64
	halted  bool
	stopped bool

	// Fault-recovery bookkeeping.
	pendingRecovery bool
	recoveryStart   uint64

	// Oracle co-simulation (Section 5.1.1).
	oracle     *funcsim.Machine
	oracleLive bool

	lastCommitCycle uint64

	// commitGroup is the commit stage's per-cycle scratch for the R
	// entries of the retiring group (see commit); capacity >= cfg.R.
	commitGroup []*Entry

	stats Stats
}

// New builds a machine for the given program. The program image is loaded
// into a fresh memory; the oracle, if enabled, gets an identical clone.
// New is Reset applied to an empty machine, which is what makes a
// recycled machine provably identical to a fresh one: both states are
// produced by the same code path.
func New(cfg Config, p *prog.Program) (*Machine, error) {
	m := &Machine{}
	if err := m.Reset(cfg, p); err != nil {
		return nil, err
	}
	return m, nil
}

// Stats returns the statistics gathered so far.
func (m *Machine) Stats() *Stats { return &m.stats }

// Injector returns the machine's fault injector (nil when injection is
// disabled). Machine recyclers use it to reseed the existing RNG state
// instead of allocating a new injector per trial.
func (m *Machine) Injector() *fault.Injector { return m.injector }

// emit records a pipeline event for one entry when tracing is enabled.
func (m *Machine) emit(stage trace.Stage, e *Entry) {
	if m.cfg.Tracer == nil {
		return
	}
	m.cfg.Tracer.Record(trace.Event{
		Cycle: m.cycle, Stage: stage,
		Seq: e.Seq, GID: e.GID, Copy: e.Copy, PC: e.PC, Inst: e.Inst,
	})
}

// emitSquashes records squash events for every valid entry younger than
// seq (or all entries when all is set) before they are discarded.
func (m *Machine) emitSquashes(seq uint64, all bool) {
	if m.cfg.Tracer == nil {
		return
	}
	m.ruu.forEach(func(_ int, e *Entry) bool {
		if all || e.Seq > seq {
			m.emit(trace.StageSquash, e)
		}
		return true
	})
}

// Reg returns committed architectural register r.
func (m *Machine) Reg(r uint8) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return m.regs[r]
}

// Memory exposes the committed memory image (for verification).
func (m *Machine) Memory() *mem.Memory { return m.mem }

// Halted reports whether the program's halt instruction committed.
func (m *Machine) Halted() bool { return m.halted }

// Run simulates until the program halts or a run limit is reached, and
// returns the final statistics.
func (m *Machine) Run() (*Stats, error) {
	return m.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context's Done
// channel is polled every cancelCheckPeriod cycles, so cancellation or a
// deadline stops the simulation promptly (well under a millisecond of
// simulated work) and returns ctx.Err() alongside the statistics
// gathered so far. A background context adds no per-cycle overhead
// beyond a nil check, and the simulated results are bit-identical for
// any context that never fires.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) {
	const deadlockWindow = 200_000
	const cancelCheckPeriod = 1024 // power of two: cheap mask test
	done := ctx.Done()
	for !m.halted && !m.stopped {
		if m.cfg.MaxCycles > 0 && m.cycle >= m.cfg.MaxCycles {
			break
		}
		if m.cfg.MaxInsts > 0 && m.stats.Committed >= m.cfg.MaxInsts {
			break
		}
		if done != nil && m.cycle&(cancelCheckPeriod-1) == 0 {
			select {
			case <-done:
				m.finishStats()
				return &m.stats, ctx.Err()
			default:
			}
		}
		m.cycle++
		m.stats.Cycles = m.cycle
		m.stats.RUUOccupancy += uint64(m.ruu.count)
		m.stats.LSQOccupancy += uint64(m.lsq.count)

		if err := m.commit(); err != nil {
			m.finishStats()
			return &m.stats, err
		}
		if m.halted || m.stopped {
			break
		}
		m.writebackFn()
		m.issueFn()
		m.dispatch()
		m.fetch()

		if m.cfg.ObserveEvery > 0 && m.cfg.Observe != nil && m.cycle%m.cfg.ObserveEvery == 0 {
			m.cfg.Observe(&m.stats)
		}

		if m.cycle-m.lastCommitCycle > deadlockWindow {
			m.finishStats()
			return &m.stats, fmt.Errorf("%w at cycle %d (pc %#x, ruu %d/%d)",
				ErrDeadlock, m.cycle, m.fetchPC, m.ruu.count, m.ruu.limit)
		}
	}
	m.finishStats()
	return &m.stats, nil
}

// finishStats folds the subsystem counters into the machine statistics.
func (m *Machine) finishStats() {
	m.stats.Halted = m.halted
	m.stats.Bpred = m.bp.Stats
	m.stats.IL1 = m.caches.IL1.Stats
	m.stats.DL1 = m.caches.DL1.Stats
	m.stats.L2 = m.caches.L2.Stats
	if m.injector != nil {
		m.stats.Fault = m.injector.Stats
	}
}

// ---------------------------------------------------------------------
// Fetch

func (m *Machine) fetch() {
	if m.fetchHalt || m.cycle < m.stallUntil {
		return
	}
	if m.fetchQ.full() {
		m.stats.FetchQueueFull++
		return
	}
	// One I-cache access per fetch group; a miss stalls the front end for
	// the full access time.
	lat := m.caches.IFetch(m.fetchPC)
	if lat > m.cfg.Hierarchy.IL1.HitLatency {
		m.stallUntil = m.cycle + uint64(lat)
		m.stats.FetchICacheStall += uint64(lat)
		return
	}
	lineMask := ^uint64(m.cfg.Hierarchy.IL1.LineBytes - 1)
	firstLine := m.fetchPC & lineMask
	secondLine := uint64(0)
	haveSecond := false
	for n := 0; n < m.cfg.FetchWidth && !m.fetchQ.full(); n++ {
		pc := m.fetchPC
		if pc&lineMask != firstLine {
			// Fetch may straddle one line boundary per cycle; the second
			// line costs another I-cache access, and a third ends the
			// group.
			if !haveSecond {
				haveSecond = true
				secondLine = pc & lineMask
				if l2 := m.caches.IFetch(pc); l2 > m.cfg.Hierarchy.IL1.HitLatency {
					m.stallUntil = m.cycle + uint64(l2)
					m.stats.FetchICacheStall += uint64(l2)
					return
				}
			} else if pc&lineMask != secondLine {
				break
			}
		}
		in, oi := m.decode(pc)
		fi := fetchedInst{pc: pc, inst: in, oi: oi}
		if oi.IsCtrl() {
			fi.pred = m.bp.Predict(pc, in)
			fi.predNext = fi.pred.NextPC
			m.fetchQ.push(fi)
			m.stats.Fetched++
			m.fetchPC = fi.predNext
			// Table 1: one branch prediction per cycle ends the group.
			return
		}
		fi.predNext = pc + isa.InstBytes
		m.fetchQ.push(fi)
		m.stats.Fetched++
		m.fetchPC = pc + isa.InstBytes
		if in.Op == isa.OpHalt {
			// Stop fetching past the end of the program until a squash
			// redirects the front end.
			m.fetchHalt = true
			return
		}
	}
}

// redirect clears the front end and restarts fetch at pc.
func (m *Machine) redirect(pc uint64) {
	m.fetchQ.reset()
	m.fetchPC = pc
	m.fetchHalt = false
	m.stallUntil = m.cycle + uint64(m.cfg.RedirectPenalty)
}

// ---------------------------------------------------------------------
// Dispatch: allocate R consecutive RUU entries per instruction, renaming
// copy 0 through the map table and deriving copy k's tags by offset
// (Section 3.2, "Instruction Injection").

func (m *Machine) dispatch() {
	budget := m.cfg.DispatchWidth
	for budget >= m.cfg.R && !m.fetchQ.empty() {
		fi := *m.fetchQ.front()
		oi := fi.oi
		if m.ruu.free() < m.cfg.R {
			m.stats.DispatchRUUFull++
			return
		}
		if oi.IsMem() && m.lsq.free() < 1 {
			m.stats.DispatchLSQFull++
			return
		}
		m.fetchQ.pop()
		m.gid++

		var lsqIdx = -1
		if oi.IsMem() {
			lsqIdx = m.lsq.alloc()
		}
		var copy0 *Entry
		for k := 0; k < m.cfg.R; k++ {
			idx := m.ruu.alloc()
			// The slot's previous occupant is gone (committed or
			// squashed); any wait-list it accumulated is dead.
			if wl := m.waitlists[idx]; len(wl) > 0 {
				m.waitlists[idx] = wl[:0]
			}
			e := m.ruu.at(idx)
			m.seq++
			*e = Entry{
				Valid:    true,
				Seq:      m.seq,
				GID:      m.gid,
				Copy:     k,
				PC:       fi.pc,
				Inst:     fi.inst,
				OI:       oi,
				PredNext: fi.predNext,
				LSQ:      -1,
				FUUnit:   -1,
			}
			if k == 0 {
				e.Pred = fi.pred
				e.LSQ = lsqIdx
				copy0 = e
				m.renameCopy0(idx, e)
				if lsqIdx >= 0 {
					*m.lsq.at(lsqIdx) = lsqEntry{
						valid:  true,
						seq:    e.Seq,
						gid:    e.GID,
						isLoad: oi.IsLoad,
					}
				}
				// Writers claim the map table; reads of r0 stay constant.
				if oi.WritesRd && fi.inst.Rd != isa.RegZero {
					m.mapTable[fi.inst.Rd] = mapRef{valid: true, idx: idx, seq: e.Seq}
				}
			} else {
				m.renameCopyK(idx, e, copy0, k)
			}
			if m.eventSched && e.ready() {
				m.ready.push(readyRec{idx: int32(idx), seq: e.Seq})
			}
			m.emit(trace.StageDispatch, e)
			m.stats.Dispatched++
			budget--
		}
	}
}

// renameCopy0 resolves copy 0's operands through the map table. idx is
// the entry's own ring index, used to register on producers' wait-lists.
func (m *Machine) renameCopy0(idx int, e *Entry) {
	oi := e.OI
	srcs := [2]struct {
		used bool
		reg  uint8
	}{
		{oi.ReadsRs1, e.Inst.Rs1},
		{oi.ReadsRs2, e.Inst.Rs2},
	}
	for i, s := range srcs {
		op := &e.Ops[i]
		op.Used = s.used
		op.Ready = true
		if !s.used {
			continue
		}
		op.Reg = s.reg
		if s.reg == isa.RegZero {
			op.Value = 0
			continue
		}
		ref := m.mapTable[s.reg]
		if !ref.valid {
			op.Value = m.regs[s.reg] // committed, ECC-protected value
			continue
		}
		producer := m.ruu.at(ref.idx)
		if !producer.Valid || producer.Seq != ref.seq {
			// Stale reference (producer committed); the committed
			// register file has the value.
			op.Value = m.regs[s.reg]
			continue
		}
		op.FromRUU = true
		op.Producer = ref.idx
		op.ProducerSeq = ref.seq
		if producer.Done {
			op.Value = producer.Result
			continue
		}
		op.Ready = false
		if m.eventSched {
			m.watch(ref.idx, idx, e.Seq, i)
		}
	}
}

// renameCopyK derives copy k's operand tags from copy 0's (the paper's
// offset rule): a producer at RUU index j becomes index j+k, keeping the
// k-th redundant thread's dataflow inside itself. Operands that copy 0
// read from committed state are read from the same ECC-protected source,
// which is how protected values enter all R threads identically.
func (m *Machine) renameCopyK(idx int, e *Entry, copy0 *Entry, k int) {
	for i := range e.Ops {
		src := &copy0.Ops[i]
		op := &e.Ops[i]
		op.Used = src.Used
		op.Reg = src.Reg
		op.Ready = true
		if !src.Used {
			continue
		}
		if !src.FromRUU {
			op.Value = src.Value
			continue
		}
		// This thread's producer copy completes on its own schedule,
		// independent of copy 0's.
		prodIdx := m.ruu.wrap(src.Producer + k)
		producer := m.ruu.at(prodIdx)
		op.FromRUU = true
		op.Producer = prodIdx
		op.ProducerSeq = producer.Seq
		if producer.Valid && producer.Done {
			op.Value = producer.Result
			continue
		}
		op.Ready = false
		if m.eventSched {
			m.watch(prodIdx, idx, e.Seq, i)
		}
	}
}
