// Package cpu implements the out-of-order superscalar performance
// simulator that the paper's fault-tolerance extensions attach to. It is
// the Go analogue of SimpleScalar's sim-outorder, with an execute-in-
// pipeline model: operand values really flow through the RUU, so
// redundant copies of an instruction can genuinely disagree when the
// fault injector corrupts one of them.
//
// The machine model follows the paper's Section 3.1 baseline: a Register
// Update Unit (RUU) holds all in-flight instructions in program order and
// doubles as reservation stations and reorder buffer; a separate load/
// store queue (LSQ) handles memory disambiguation and store-to-load
// forwarding; instructions issue out of order to the Table 1 functional
// unit mix and retire strictly in order.
//
// Redundant execution (R >= 2) implements Section 3.2: each fetched
// instruction dispatches into R consecutive RUU entries, renaming only
// the first copy and deriving copy k's operand tags by adding an offset
// of k; the commit stage checks the R copies against each other (via the
// Checker installed by package core) before a single instruction retires.
package cpu

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/trace"
)

// Config describes a simulated machine. Widths that count RUU entries
// (dispatch, issue, commit) are shared by the R copies of each
// instruction, which is exactly how the paper's scheme loses throughput:
// an R-redundant machine dispatches and retires R entries per
// architectural instruction.
type Config struct {
	Name string

	// Front end.
	FetchWidth      int // instructions fetched per cycle (one branch prediction per cycle)
	FetchQueue      int // fetch queue depth, in instructions
	RedirectPenalty int // extra front-end bubble cycles after any fetch redirect

	// RecoveryPenalty adds this many cycles to every fault-triggered
	// rewind, modelling coarser-grain recovery schemes (the paper's
	// Figure 4 evaluates r = 2000 for checkpoint-style recovery; the
	// fine-grain rewind design keeps this at 0 and pays only the
	// pipeline refill).
	RecoveryPenalty int

	// Window.
	DispatchWidth int // RUU entries allocated per cycle
	IssueWidth    int // RUU entries issued per cycle
	CommitWidth   int // RUU entries retired per cycle
	RUUSize       int
	LSQSize       int

	// Functional unit mix (Table 1).
	IntALU   int
	IntMult  int // integer multiply/divide units
	FPAdd    int
	FPMult   int // FP multiply/divide/sqrt units
	MemPorts int // D-cache read/write ports

	Hierarchy cache.HierarchyConfig
	Bpred     bpred.Config

	// R is the degree of redundancy: 1 disables replication.
	R int
	// CoSchedule makes copies of the same instruction prefer distinct
	// physical functional-unit instances (Section 3.5, "Multi-cycle and
	// Correlated Faults").
	CoSchedule bool
	// Checker cross-checks the R copies of each retiring group. It must
	// be non-nil when R >= 2. Package core provides the paper's rewind
	// and majority-election checkers.
	Checker Checker
	// Injector corrupts speculative per-copy values; nil disables
	// injection.
	Injector *fault.Injector
	// Persistent models a hard stuck-bit fault in one physical unit's
	// bitwise-logic slice (Section 2.2's indiscernible-error scenario).
	Persistent *fault.Persistent
	// TransformOperands enables the Patel & Fung defence the paper cites
	// for persistent faults under time redundancy: redundant copy k
	// executes bitwise operations with operands rotated left by k and
	// un-rotates the result, so identical hard faults corrupt different
	// result bits in different copies and the commit check exposes them.
	TransformOperands bool
	// Oracle enables the in-order co-simulation sanity check from
	// Section 5.1.1.
	Oracle bool
	// StrictOracle makes the first oracle divergence abort the run with
	// an *OracleError instead of only counting an escaped fault. It has
	// no effect unless Oracle is set.
	StrictOracle bool
	// Tracer, when non-nil, receives per-copy pipeline events
	// (dispatch, issue, complete, commit, squash).
	Tracer trace.Recorder

	// Observe, when non-nil, is called from the run loop every
	// ObserveEvery cycles with the live statistics. The callback must
	// treat the Stats as read-only and must not retain the pointer past
	// the call: observation is a pure tap and never perturbs simulation
	// results.
	Observe func(*Stats)
	// ObserveEvery is the observation period in cycles; 0 disables
	// periodic observation even when Observe is set.
	ObserveEvery uint64

	// Run limits. Zero means unlimited.
	MaxInsts  uint64 // committed (architectural) instructions
	MaxCycles uint64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.R < 1:
		return fmt.Errorf("cpu: redundancy R=%d < 1", c.R)
	case c.R > 1 && c.Checker == nil:
		return fmt.Errorf("cpu: R=%d requires a Checker", c.R)
	case c.RUUSize < c.R || c.RUUSize%c.R != 0:
		// Section 3.2 provisions the ROB as a multiple of R so a group's
		// R copies always fit together. (The implementation only relies
		// on copies occupying consecutive ring slots — the storage ring
		// is rounded up to a power of two independent of R — but the
		// architectural capacity keeps the paper's constraint.)
		return fmt.Errorf("cpu: RUU size %d is not a positive multiple of R=%d", c.RUUSize, c.R)
	case c.LSQSize < 1:
		return fmt.Errorf("cpu: LSQ size %d < 1", c.LSQSize)
	case c.FetchWidth < 1 || c.DispatchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("cpu: widths must be >= 1")
	case c.DispatchWidth < c.R || c.CommitWidth < c.R:
		return fmt.Errorf("cpu: dispatch/commit width must be >= R to make progress")
	case c.IntALU < 1 || c.IntMult < 1 || c.FPAdd < 1 || c.FPMult < 1 || c.MemPorts < 1:
		return fmt.Errorf("cpu: every functional unit pool needs at least one unit")
	case c.FetchQueue < c.FetchWidth:
		return fmt.Errorf("cpu: fetch queue %d smaller than fetch width %d", c.FetchQueue, c.FetchWidth)
	}
	return nil
}

// Baseline returns the paper's Table 1 machine: an 8-way out-of-order
// superscalar with a 128-entry RUU, 64-entry LSQ, 4 integer ALUs, 2
// integer multipliers, 2 FP adders, 1 FP multiplier/divider and 2 D-cache
// ports, with the combined branch predictor and the Table 1 cache
// hierarchy.
func Baseline() Config {
	return Config{
		Name:            "SS-1",
		FetchWidth:      8,
		FetchQueue:      16,
		RedirectPenalty: 2,
		DispatchWidth:   8,
		IssueWidth:      8,
		CommitWidth:     8,
		RUUSize:         128,
		LSQSize:         64,
		IntALU:          4,
		IntMult:         2,
		FPAdd:           2,
		FPMult:          1,
		MemPorts:        2,
		Hierarchy:       cache.DefaultHierarchy(),
		Bpred:           bpred.Default(),
		R:               1,
	}
}

// Halved returns the Static-2 pipeline of Section 5.1.2: one of the two
// statically partitioned lock-step pipelines, with half of every Table 1
// resource except the caches and branch predictor. Because FP multiply/
// divide cannot be split below one unit, each half keeps a full FPMult —
// the "extra FP Mult/Div unit" advantage the paper notes for Static-2.
func Halved() Config {
	c := Baseline()
	c.Name = "Static-2"
	c.FetchWidth = 4
	c.FetchQueue = 8
	c.DispatchWidth = 4
	c.IssueWidth = 4
	c.CommitWidth = 4
	c.RUUSize = 64
	c.LSQSize = 32
	c.IntALU = 2
	c.IntMult = 1
	c.FPAdd = 1
	c.FPMult = 1 // indivisible: Static-2's advantage
	c.MemPorts = 1
	return c
}
