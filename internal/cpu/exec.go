package cpu

import (
	"math/bits"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Issue: select ready entries oldest-first, allocate functional units,
// compute results (execute-in-pipeline) and schedule completion. The
// selection loop lives in sched.go (issueEvent); the per-entry issue
// attempt below is shared with the reference scan scheduler.

// issueResult classifies one issue attempt for the scheduler.
type issueResult uint8

const (
	// issueOK: the entry started executing and consumed issue width.
	issueOK issueResult = iota
	// issueStall: a structural hazard (busy functional unit, blocked
	// load) with no completion event tied to its resolution; the
	// scheduler retries next cycle.
	issueStall
	// issueParked: a redundant load copy gated on its group's single
	// memory access; copy 0's completion re-queues it, so the scheduler
	// need not retry in between.
	issueParked
)

// tryIssueEntry attempts to start execution of one entry this cycle.
func (m *Machine) tryIssueEntry(idx int, e *Entry) issueResult {
	oi := e.OI

	// Redundant copies of loads consume the single memory access's
	// result; they become eligible only once the group's access is done
	// (Section 5.1.2: addresses are computed redundantly, but only one
	// memory access is performed).
	if oi.IsLoad && e.Copy != 0 {
		c0 := m.groupCopy0(idx, e)
		if c0 == nil || !c0.Done {
			return issueParked
		}
		if c0.LSQ < 0 || !m.lsq.at(c0.LSQ).dataValid {
			return issueStall
		}
	}

	pool := m.fus.get(oi.Pool)
	unit := -1
	if pool != nil {
		prefer := -1
		if m.cfg.CoSchedule && m.cfg.R > 1 && e.Copy > 0 {
			if c0 := m.groupCopy0(idx, e); c0 != nil && c0.Issued && c0.FUUnit >= 0 {
				prefer = (c0.FUUnit + e.Copy) % pool.units()
			}
		}
		unit = pool.tryIssue(m.cycle, oi.Latency, oi.Pipelined, prefer)
		if unit < 0 {
			return issueStall
		}
	}

	// Loads must pass disambiguation before the port reservation is
	// real; compute the address first.
	a, b := e.Ops[0].Value, e.Ops[1].Value
	latency := oi.Latency

	// Decide fault injection for this executed copy.
	if tgt, hit := m.injector.Roll(); hit {
		e.Inject = true
		e.InjectTarget = m.mapInjectTarget(tgt, oi)
	}

	switch {
	case oi.IsLoad:
		e.EA = isa.EffAddr(e.Inst.Imm, a)
		if e.Inject && e.InjectTarget == fault.TargetAddress {
			e.EA = m.injector.FlipLowBit(e.EA, 32)
		}
		if e.Copy == 0 {
			lat, ok := m.issueLoad(e)
			if !ok {
				// Blocked on an older store: release nothing (the port
				// reservation for this cycle is wasted, as in a real
				// replay) and retry next cycle.
				e.Inject = false
				return issueStall
			}
			latency += lat
		} else {
			le := m.lsq.at(m.groupCopy0(idx, e).LSQ)
			e.Result = le.loadVal
			if e.Inject && e.InjectTarget == fault.TargetResult {
				e.Result = m.injector.FlipBit(e.Result)
			}
		}
		e.NextPC = e.PC + isa.InstBytes
	case oi.IsStore:
		e.EA = isa.EffAddr(e.Inst.Imm, a)
		if e.Inject && e.InjectTarget == fault.TargetAddress {
			e.EA = m.injector.FlipLowBit(e.EA, 32)
		}
		e.StoreVal = b
		if e.Inject && e.InjectTarget == fault.TargetResult {
			e.StoreVal = m.injector.FlipBit(e.StoreVal)
		}
		if e.Copy == 0 {
			le := m.lsq.at(e.LSQ)
			le.addrReady = true
			le.addr = e.EA
			size, _ := isa.LoadWidth(e.Inst.Op)
			le.size = size
			le.dataReady = true
			le.data = e.StoreVal
		}
		e.NextPC = e.PC + isa.InstBytes
	case oi.IsCtrl():
		taken, next, link := isa.EvalCtrl(e.Inst.Op, e.PC, e.Inst.Imm, a, b)
		e.Taken, e.NextPC, e.Result = taken, next, link
		if e.Inject && e.InjectTarget == fault.TargetBranch {
			e.NextPC = m.injector.FlipLowBit(e.NextPC, 32)
			e.Taken = true
		}
	default:
		e.Result = m.evalALU(e, a, b, unit)
		if e.Inject && e.InjectTarget == fault.TargetResult {
			e.Result = m.injector.FlipBit(e.Result)
		}
		e.NextPC = e.PC + isa.InstBytes
	}

	e.Issued = true
	e.InFlight = true
	e.FUPool = oi.Pool
	e.FUUnit = unit
	e.DoneAt = m.cycle + uint64(latency)
	if m.eventSched {
		m.cal.insert(m.cycle, e.DoneAt, int32(idx), e.Seq)
	}
	m.emit(trace.StageIssue, e)
	m.stats.Issued++
	return issueOK
}

// issueLoad performs disambiguation and, if clear, the single memory
// access for copy 0 of a load group. It returns the extra latency beyond
// address generation and whether the load could proceed.
func (m *Machine) issueLoad(e *Entry) (int, bool) {
	le := m.lsq.at(e.LSQ)
	le.addrReady = true
	le.addr = e.EA
	size, signExt := isa.LoadWidth(e.Inst.Op)
	le.size = size

	conflict, fwd := m.lsq.checkLoad(e.LSQ, e.EA, size)
	switch conflict {
	case loadBlocked:
		le.addrReady = false // recompute next attempt
		return 0, false
	case loadForward:
		val := fwd
		if signExt {
			val = isa.SignExtend(val, size)
		}
		le.dataValid = true
		le.loadVal = val
		le.performed = true
		e.Result = val
	default: // loadClear
		lat := m.caches.DAccess(e.EA, false)
		val := m.mem.Read(e.EA, size)
		if signExt {
			val = isa.SignExtend(val, size)
		}
		le.dataValid = true
		le.loadVal = val
		le.performed = true
		e.Result = val
		if e.Inject && e.InjectTarget == fault.TargetResult {
			e.Result = m.injector.FlipBit(e.Result)
		}
		return lat, true
	}
	if e.Inject && e.InjectTarget == fault.TargetResult {
		e.Result = m.injector.FlipBit(e.Result)
	}
	return 0, true
}

// evalALU computes a non-memory, non-control result, modelling the
// optional operand-rotation transform and any persistent stuck-bit fault
// in the executing unit. Rotation is applied only to register-register
// bitwise logic, for which it commutes exactly; the stuck bit corrupts
// the raw (rotated-domain) result, which is how a real damaged slice
// behaves and why the transform makes the corruption visible.
func (m *Machine) evalALU(e *Entry, a, b uint64, unit int) uint64 {
	op := e.Inst.Op
	rot := 0
	if m.cfg.TransformOperands && e.Copy > 0 && isBitwise(op) {
		rot = e.Copy
		a = bits.RotateLeft64(a, rot)
		b = bits.RotateLeft64(b, rot)
	}
	raw := isa.Eval(op, e.Inst.Imm, a, b)
	if m.cfg.Persistent.Affects(op, e.OI.Pool, unit) {
		raw = m.cfg.Persistent.Apply(raw)
	}
	if rot != 0 {
		raw = bits.RotateLeft64(raw, -rot)
	}
	return raw
}

func isBitwise(op isa.Op) bool {
	return op == isa.OpAnd || op == isa.OpOr || op == isa.OpXor
}

// mapInjectTarget narrows a rolled fault target to one that exists for
// this instruction class, so the configured rate applies uniformly.
func (m *Machine) mapInjectTarget(t fault.Target, oi *isa.OpInfo) fault.Target {
	switch t {
	case fault.TargetAddress:
		if !oi.IsMem() {
			return fault.TargetResult
		}
	case fault.TargetBranch:
		if !oi.IsCtrl() {
			return fault.TargetResult
		}
	}
	return t
}

// groupCopy0 returns copy 0 of the group containing entry e at ring
// index idx. Copies are allocated consecutively, so copy 0 sits e.Copy
// slots earlier in the ring.
func (m *Machine) groupCopy0(idx int, e *Entry) *Entry {
	c0 := m.ruu.at(m.ruu.wrap(idx - e.Copy))
	if !c0.Valid || c0.GID != e.GID {
		return nil
	}
	return c0
}

// ---------------------------------------------------------------------
// Writeback: publish completed results, wake up consumers, and resolve
// control flow (triggering branch rewinds on mispredictions). The
// event-driven drain lives in sched.go (writebackEvent); completion of
// one entry is handled by Machine.complete.

// branchRewind squashes every entry younger than the resolving branch's
// group and redirects fetch to the resolved target. All copies of the
// group adopt the new expected path so identical resolutions do not
// re-trigger. The event structures (wait-lists, ready queue, calendar)
// are repaired lazily: their records carry the squashed entries' seqs
// and are dropped when they next surface (see sched.go).
func (m *Machine) branchRewind(idx int, e *Entry) {
	// The group occupies copies 0..R-1; the boundary is the last copy.
	copy0Idx := m.ruu.wrap(idx - e.Copy)
	lastSeq := m.ruu.at(copy0Idx).Seq + uint64(m.cfg.R-1)

	m.emitSquashes(lastSeq, false)
	squashed := m.ruu.truncateAfter(lastSeq, false)
	m.stats.SquashedUops += uint64(squashed)
	m.lsq.truncateAfter(lastSeq, false)
	m.rebuildMapTable()
	m.redirect(e.NextPC)
	m.stats.BranchRewinds++

	for k := 0; k < m.cfg.R; k++ {
		ce := m.ruu.at(m.ruu.wrap(copy0Idx + k))
		if ce.Valid && ce.GID == e.GID {
			ce.PredNext = e.NextPC
		}
	}
}

// rebuildMapTable reconstructs the rename map from the surviving RUU
// contents after a squash (walk oldest to youngest; the youngest copy-0
// writer of each register wins).
func (m *Machine) rebuildMapTable() {
	for i := range m.mapTable {
		m.mapTable[i] = mapRef{}
	}
	m.ruu.forEach(func(idx int, e *Entry) bool {
		if e.Copy == 0 && e.OI.WritesRd && e.Inst.Rd != isa.RegZero {
			m.mapTable[e.Inst.Rd] = mapRef{valid: true, idx: idx, seq: e.Seq}
		}
		return true
	})
}
