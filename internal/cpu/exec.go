package cpu

import (
	"math/bits"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Issue: select ready entries oldest-first, allocate functional units,
// compute results (execute-in-pipeline) and schedule completion.

func (m *Machine) issue() {
	budget := m.cfg.IssueWidth
	m.ruu.forEach(func(idx int, e *Entry) bool {
		if budget == 0 {
			return false
		}
		if e.Issued || !e.ready() {
			return true
		}
		if m.tryIssueEntry(idx, e) {
			budget--
		}
		return true
	})
}

// tryIssueEntry attempts to start execution of one entry this cycle.
func (m *Machine) tryIssueEntry(idx int, e *Entry) bool {
	oi := e.Inst.Info()

	// Redundant copies of loads consume the single memory access's
	// result; they become eligible only once the group's access is done
	// (Section 5.1.2: addresses are computed redundantly, but only one
	// memory access is performed).
	if oi.IsLoad && e.Copy != 0 {
		c0 := m.groupCopy0(idx, e)
		if c0 == nil || !c0.Done || c0.LSQ < 0 || !m.lsq.at(c0.LSQ).dataValid {
			return false
		}
	}

	pool := m.fus.get(oi.Pool)
	unit := -1
	if pool != nil {
		prefer := -1
		if m.cfg.CoSchedule && m.cfg.R > 1 && e.Copy > 0 {
			if c0 := m.groupCopy0(idx, e); c0 != nil && c0.Issued && c0.FUUnit >= 0 {
				prefer = (c0.FUUnit + e.Copy) % pool.units()
			}
		}
		unit = pool.tryIssue(m.cycle, oi.Latency, oi.Pipelined, prefer)
		if unit < 0 {
			return false
		}
	}

	// Loads must pass disambiguation before the port reservation is
	// real; compute the address first.
	a, b := e.Ops[0].Value, e.Ops[1].Value
	latency := oi.Latency

	// Decide fault injection for this executed copy.
	if tgt, hit := m.injector.Roll(); hit {
		e.Inject = true
		e.InjectTarget = m.mapInjectTarget(tgt, oi)
	}

	switch {
	case oi.IsLoad:
		e.EA = isa.EffAddr(e.Inst.Imm, a)
		if e.Inject && e.InjectTarget == fault.TargetAddress {
			e.EA = m.injector.FlipLowBit(e.EA, 32)
		}
		if e.Copy == 0 {
			lat, ok := m.issueLoad(e)
			if !ok {
				// Blocked on an older store: release nothing (the port
				// reservation for this cycle is wasted, as in a real
				// replay) and retry next cycle.
				e.Inject = false
				return false
			}
			latency += lat
		} else {
			le := m.lsq.at(m.groupCopy0(idx, e).LSQ)
			e.Result = le.loadVal
			if e.Inject && e.InjectTarget == fault.TargetResult {
				e.Result = m.injector.FlipBit(e.Result)
			}
		}
		e.NextPC = e.PC + isa.InstBytes
	case oi.IsStore:
		e.EA = isa.EffAddr(e.Inst.Imm, a)
		if e.Inject && e.InjectTarget == fault.TargetAddress {
			e.EA = m.injector.FlipLowBit(e.EA, 32)
		}
		e.StoreVal = b
		if e.Inject && e.InjectTarget == fault.TargetResult {
			e.StoreVal = m.injector.FlipBit(e.StoreVal)
		}
		if e.Copy == 0 {
			le := m.lsq.at(e.LSQ)
			le.addrReady = true
			le.addr = e.EA
			size, _ := isa.LoadWidth(e.Inst.Op)
			le.size = size
			le.dataReady = true
			le.data = e.StoreVal
		}
		e.NextPC = e.PC + isa.InstBytes
	case oi.IsCtrl():
		taken, next, link := isa.EvalCtrl(e.Inst.Op, e.PC, e.Inst.Imm, a, b)
		e.Taken, e.NextPC, e.Result = taken, next, link
		if e.Inject && e.InjectTarget == fault.TargetBranch {
			e.NextPC = m.injector.FlipLowBit(e.NextPC, 32)
			e.Taken = true
		}
	default:
		e.Result = m.evalALU(e, a, b, unit)
		if e.Inject && e.InjectTarget == fault.TargetResult {
			e.Result = m.injector.FlipBit(e.Result)
		}
		e.NextPC = e.PC + isa.InstBytes
	}

	e.Issued = true
	e.InFlight = true
	e.FUPool = oi.Pool
	e.FUUnit = unit
	e.DoneAt = m.cycle + uint64(latency)
	m.emit(trace.StageIssue, e)
	m.stats.Issued++
	return true
}

// issueLoad performs disambiguation and, if clear, the single memory
// access for copy 0 of a load group. It returns the extra latency beyond
// address generation and whether the load could proceed.
func (m *Machine) issueLoad(e *Entry) (int, bool) {
	le := m.lsq.at(e.LSQ)
	le.addrReady = true
	le.addr = e.EA
	size, signExt := isa.LoadWidth(e.Inst.Op)
	le.size = size

	conflict, fwd := m.lsq.checkLoad(e.LSQ, e.EA, size)
	switch conflict {
	case loadBlocked:
		le.addrReady = false // recompute next attempt
		return 0, false
	case loadForward:
		val := fwd
		if signExt {
			val = isa.SignExtend(val, size)
		}
		le.dataValid = true
		le.loadVal = val
		le.performed = true
		e.Result = val
	default: // loadClear
		lat := m.caches.DAccess(e.EA, false)
		val := m.mem.Read(e.EA, size)
		if signExt {
			val = isa.SignExtend(val, size)
		}
		le.dataValid = true
		le.loadVal = val
		le.performed = true
		e.Result = val
		if e.Inject && e.InjectTarget == fault.TargetResult {
			e.Result = m.injector.FlipBit(e.Result)
		}
		return lat, true
	}
	if e.Inject && e.InjectTarget == fault.TargetResult {
		e.Result = m.injector.FlipBit(e.Result)
	}
	return 0, true
}

// evalALU computes a non-memory, non-control result, modelling the
// optional operand-rotation transform and any persistent stuck-bit fault
// in the executing unit. Rotation is applied only to register-register
// bitwise logic, for which it commutes exactly; the stuck bit corrupts
// the raw (rotated-domain) result, which is how a real damaged slice
// behaves and why the transform makes the corruption visible.
func (m *Machine) evalALU(e *Entry, a, b uint64, unit int) uint64 {
	op := e.Inst.Op
	rot := 0
	if m.cfg.TransformOperands && e.Copy > 0 && isBitwise(op) {
		rot = e.Copy
		a = bits.RotateLeft64(a, rot)
		b = bits.RotateLeft64(b, rot)
	}
	raw := isa.Eval(op, e.Inst.Imm, a, b)
	if m.cfg.Persistent.Affects(op, e.Inst.Info().Pool, unit) {
		raw = m.cfg.Persistent.Apply(raw)
	}
	if rot != 0 {
		raw = bits.RotateLeft64(raw, -rot)
	}
	return raw
}

func isBitwise(op isa.Op) bool {
	return op == isa.OpAnd || op == isa.OpOr || op == isa.OpXor
}

// mapInjectTarget narrows a rolled fault target to one that exists for
// this instruction class, so the configured rate applies uniformly.
func (m *Machine) mapInjectTarget(t fault.Target, oi *isa.OpInfo) fault.Target {
	switch t {
	case fault.TargetAddress:
		if !oi.IsMem() {
			return fault.TargetResult
		}
	case fault.TargetBranch:
		if !oi.IsCtrl() {
			return fault.TargetResult
		}
	}
	return t
}

// groupCopy0 returns copy 0 of the group containing entry e at ring
// index idx. Copies are allocated consecutively, so copy 0 sits e.Copy
// slots earlier in the ring.
func (m *Machine) groupCopy0(idx int, e *Entry) *Entry {
	c0 := m.ruu.at((idx - e.Copy + m.ruu.size()) % m.ruu.size())
	if !c0.Valid || c0.GID != e.GID {
		return nil
	}
	return c0
}

// ---------------------------------------------------------------------
// Writeback: publish completed results, wake up consumers, and resolve
// control flow (triggering branch rewinds on mispredictions).

func (m *Machine) writeback() {
	// Completions are processed oldest-first so the eldest mispredicted
	// branch squashes before younger completions are looked at.
	m.ruu.forEach(func(idx int, e *Entry) bool {
		if !e.InFlight || e.DoneAt > m.cycle {
			return true
		}
		e.InFlight = false
		e.Done = true
		m.emit(trace.StageComplete, e)

		// Wake up waiting consumers in all threads.
		m.broadcast(idx, e)

		// Branch resolution (Section 3.2, "Fault Detection"): as soon as
		// one copy of a control instruction disagrees with the current
		// predicted path, rewind immediately on that singular result.
		if e.Inst.Info().IsCtrl() && e.NextPC != e.PredNext {
			m.branchRewind(idx, e)
			// The squash may have invalidated everything younger;
			// continue the scan (younger entries are now invalid and
			// skipped by forEach's Valid check).
		}
		return true
	})
}

// broadcast delivers a completed result to every operand waiting on it.
func (m *Machine) broadcast(idx int, producer *Entry) {
	m.ruu.forEach(func(_ int, e *Entry) bool {
		for i := range e.Ops {
			op := &e.Ops[i]
			if op.Used && !op.Ready && op.Producer == idx && op.ProducerSeq == producer.Seq {
				op.Ready = true
				op.Value = producer.Result
			}
		}
		return true
	})
}

// branchRewind squashes every entry younger than the resolving branch's
// group and redirects fetch to the resolved target. All copies of the
// group adopt the new expected path so identical resolutions do not
// re-trigger.
func (m *Machine) branchRewind(idx int, e *Entry) {
	// The group occupies copies 0..R-1; the boundary is the last copy.
	copy0Idx := (idx - e.Copy + m.ruu.size()) % m.ruu.size()
	lastSeq := m.ruu.at(copy0Idx).Seq + uint64(m.cfg.R-1)

	m.emitSquashes(lastSeq, false)
	squashed := m.ruu.truncateAfter(lastSeq, false)
	m.stats.SquashedUops += uint64(squashed)
	m.lsq.truncateAfter(lastSeq, false)
	m.rebuildMapTable()
	m.redirect(e.NextPC)
	m.stats.BranchRewinds++

	for k := 0; k < m.cfg.R; k++ {
		ce := m.ruu.at((copy0Idx + k) % m.ruu.size())
		if ce.Valid && ce.GID == e.GID {
			ce.PredNext = e.NextPC
		}
	}
}

// rebuildMapTable reconstructs the rename map from the surviving RUU
// contents after a squash (walk oldest to youngest; the youngest copy-0
// writer of each register wins).
func (m *Machine) rebuildMapTable() {
	for i := range m.mapTable {
		m.mapTable[i] = mapRef{}
	}
	m.ruu.forEach(func(idx int, e *Entry) bool {
		if e.Copy == 0 && e.Inst.Info().WritesRd && e.Inst.Rd != isa.RegZero {
			m.mapTable[e.Inst.Rd] = mapRef{valid: true, idx: idx, seq: e.Seq}
		}
		return true
	})
}
