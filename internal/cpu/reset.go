package cpu

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ecc"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// watchCap pre-sizes each per-producer wait-list. Most producers have a
// handful of direct consumers in flight at once; a list that outgrows
// its slab section is re-homed by append once and keeps the larger
// capacity for the machine's lifetime.
const watchCap = 8

// Reset re-initialises the machine in place for a fresh run of program
// p under cfg, reusing every allocation whose geometry still fits:
// the RUU/LSQ entry slabs, wait-lists, ready queue, completion
// calendar, decode cache, fetch ring, functional units, cache line
// slabs, branch predictor tables and memory pages. Structures whose
// geometry changed (for example a different RUU size) are rebuilt.
//
// The reset invariant: a machine after Reset is indistinguishable from
// one just built by New with the same arguments — New itself is Reset
// applied to the zero Machine, so the two states come from one code
// path. The only differences are invisible ones: retained slice
// capacity, retained (zeroed) memory pages, and the fault injector's
// RNG object identity (reseeding reproduces the identical stream).
// TestResetMatchesFresh and the ftsim pooled-equivalence suite are the
// referees.
//
// Reset fully sanitises dirty state, so it is safe after a cancelled or
// deadlocked run that left instructions in flight. cfg.Injector, if
// reused from the previous run, must be reseeded by the caller (see
// fault.Renew); Reset takes cfg at face value.
func (m *Machine) Reset(cfg Config, p *prog.Program) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.resetHardware(cfg)

	// Program image and front end.
	entry := p.LoadInto(m.mem)
	m.regs[isa.RegSP] = prog.StackTop
	m.nextPC.Set(entry)
	m.fetchPC = entry

	if cfg.Oracle {
		m.oracle = funcsim.NewWithMemory(m.mem.Clone(), entry)
		m.oracleLive = true
	} else {
		m.oracle = nil
		m.oracleLive = false
	}
	return nil
}

// resetHardware re-initialises everything except the program image:
// committed state is zeroed, speculative machinery and run counters
// are reset, slabs are reused where the geometry fits. It is the part
// of Reset shared with Restore, which overwrites the zeroed committed
// state from a snapshot instead of loading a program. cfg must
// already be validated.
func (m *Machine) resetHardware(cfg Config) {
	m.cfg = cfg

	// Committed architectural state.
	m.regs = [isa.NumRegs]uint64{}
	m.nextPC = ecc.Reg{}
	if m.mem == nil {
		m.mem = mem.New()
	} else {
		m.mem.Reset()
	}

	// Speculative machinery: reuse slabs when the storage size matches
	// (the architectural limit may differ — e.g. RUU 126 for R=3 vs 128
	// for R=2 share one 128-slot ring).
	if m.ruu == nil || m.ruu.size() != nextPow2(cfg.RUUSize) {
		m.ruu = newRUU(cfg.RUUSize)
	} else {
		m.ruu.reset(cfg.RUUSize)
	}
	if m.lsq == nil || len(m.lsq.entries) != nextPow2(cfg.LSQSize) {
		m.lsq = newLSQ(cfg.LSQSize)
	} else {
		m.lsq.reset(cfg.LSQSize)
	}
	if m.fus == nil || !m.fus.matches(&m.cfg) {
		m.fus = newFUSet(&m.cfg)
	} else {
		m.fus.reset()
	}
	m.bp = bpred.Renew(m.bp, cfg.Bpred)
	m.caches = cache.Renew(m.caches, cfg.Hierarchy)
	m.injector = cfg.Injector
	m.mapTable = [isa.NumRegs]mapRef{}

	// Event-scheduling state, pre-sized so steady-state pushes never
	// allocate. A machine the scan-based reference scheduler was
	// installed on (test files only) comes back to the event kernel.
	storage := m.ruu.size()
	if m.issueFn == nil || !m.eventSched {
		m.eventSched = true
		m.issueFn = m.issueEvent
		m.writebackFn = m.writebackEvent
	}
	if len(m.waitlists) != storage {
		slab := make([]waiter, storage*watchCap)
		m.waitlists = make([][]waiter, storage)
		for i := range m.waitlists {
			m.waitlists[i] = slab[i*watchCap : i*watchCap : (i+1)*watchCap]
		}
	} else {
		for i := range m.waitlists {
			m.waitlists[i] = m.waitlists[i][:0]
		}
	}
	m.ready.init(storage)
	if cap(m.retry) < storage {
		m.retry = make([]readyRec, 0, storage)
	} else {
		m.retry = m.retry[:0]
	}
	m.cal.init()
	if m.dec == nil {
		m.dec = new(decCache)
	} else {
		m.dec.reset()
	}
	if cap(m.commitGroup) < cfg.R {
		m.commitGroup = make([]*Entry, 0, cfg.R)
	} else {
		// Zero stale entry pointers so the scratch cannot pin a
		// replaced RUU slab.
		cg := m.commitGroup[:cap(m.commitGroup)]
		clear(cg)
		m.commitGroup = cg[:0]
	}

	// Front end and run counters.
	m.fetchPC = 0
	m.fetchQ = m.fetchQ.renew(cfg.FetchQueue)
	m.stallUntil = 0
	m.fetchHalt = false

	m.cycle, m.seq, m.gid = 0, 0, 0
	m.halted, m.stopped = false, false
	m.pendingRecovery = false
	m.recoveryStart = 0
	m.lastCommitCycle = 0
	m.stats = Stats{}
	m.oracle = nil
	m.oracleLive = false
}
