package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/workload"
)

// TestScanVsEventEquivalence is the referee for the event-driven
// scheduling kernel: every Table 2 workload, at every redundancy degree
// the paper evaluates, with fault injection enabled, must produce a
// Stats struct deep-equal to the retained scan-based reference
// scheduler's — same cycle count, same rewinds, same injected-fault
// accounting, same outputs. Any divergence in wakeup order, completion
// order or issue selection shows up here as a stats mismatch.
func TestScanVsEventEquivalence(t *testing.T) {
	type variant struct {
		name    string
		r       int
		cosched bool
	}
	variants := []variant{
		{"R1", 1, false},
		{"R2", 2, false},
		{"R2-cosched", 2, true},
		{"R3", 3, false},
	}
	for _, p := range workload.Table2() {
		p := p
		program, err := p.Build(1 << 32)
		if err != nil {
			t.Fatalf("%s: build: %v", p.Name, err)
		}
		for _, v := range variants {
			v := v
			t.Run(fmt.Sprintf("%s/%s", p.Name, v.name), func(t *testing.T) {
				run := func(naive bool) (*Machine, *Stats, error) {
					cfg := Baseline()
					cfg.R = v.r
					cfg.CoSchedule = v.cosched
					if v.r > 1 {
						cfg.Checker = testChecker{}
						cfg.RUUSize -= cfg.RUUSize % v.r
					}
					// Each run needs its own injector: the RNG stream is
					// consumed during simulation, and its consumption
					// order is part of what equivalence checks.
					cfg.Injector = fault.New(fault.Config{
						Rate:    1e-3,
						Seed:    1234,
						Targets: fault.AllTargets,
					})
					cfg.MaxInsts = 3_000
					cfg.MaxCycles = 2_000_000
					m, err := New(cfg, program)
					if err != nil {
						t.Fatal(err)
					}
					if naive {
						useNaiveScheduler(m)
					}
					st, err := m.Run()
					return m, st, err
				}
				em, est, eerr := run(false)
				nm, nst, nerr := run(true)
				if (eerr == nil) != (nerr == nil) || (eerr != nil && eerr.Error() != nerr.Error()) {
					t.Fatalf("error divergence: event=%v naive=%v", eerr, nerr)
				}
				if !reflect.DeepEqual(est, nst) {
					t.Fatalf("stats diverge:\nevent: %+v\nnaive: %+v", est, nst)
				}
				if !mem.Equal(em.Memory(), nm.Memory()) {
					addr, _ := mem.FirstDiff(em.Memory(), nm.Memory())
					t.Fatalf("committed memory diverges at %#x", addr)
				}
				for r := uint8(1); r < 32; r++ {
					if em.Reg(r) != nm.Reg(r) {
						t.Fatalf("r%d = %#x (event) vs %#x (naive)", r, em.Reg(r), nm.Reg(r))
					}
				}
			})
		}
	}
}

// TestScanVsEventFaultFree pins the no-fault case too: with injection
// disabled the schedulers must also agree cycle-for-cycle, including on
// the window sizes that stress ring wrap-around.
func TestScanVsEventFaultFree(t *testing.T) {
	p, _ := workload.ByName("gcc")
	program, err := p.Build(1 << 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, ruu := range []int{16, 64, 128} {
		ruu := ruu
		t.Run(fmt.Sprintf("RUU%d", ruu), func(t *testing.T) {
			run := func(naive bool) *Stats {
				cfg := Baseline()
				cfg.RUUSize = ruu
				cfg.LSQSize = ruu / 2
				cfg.MaxInsts = 3_000
				cfg.MaxCycles = 2_000_000
				m, err := New(cfg, program)
				if err != nil {
					t.Fatal(err)
				}
				if naive {
					useNaiveScheduler(m)
				}
				st, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			est, nst := run(false), run(true)
			if !reflect.DeepEqual(est, nst) {
				t.Fatalf("stats diverge:\nevent: %+v\nnaive: %+v", est, nst)
			}
		})
	}
}
