package cpu

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/snap"
)

// ErrSnapshotMismatch reports a snapshot applied to a machine whose
// configuration fingerprint differs from the donor's: same-shaped
// hardware is a precondition for restoring table state in place.
var ErrSnapshotMismatch = errors.New("cpu: snapshot was taken under a different machine configuration")

// maxRestoreDraws bounds the injector RNG replay a snapshot may
// request. Real runs consume on the order of one draw per executed
// instruction copy; the cap (about 10^9) is far beyond any practical
// campaign trial while keeping a hostile snapshot from wedging
// Restore in an unbounded replay loop.
const maxRestoreDraws = 1 << 30

// Fingerprint hashes the configuration fields that determine machine
// behaviour — geometry, widths, penalties, hierarchy, predictor,
// redundancy policy, checker identity, fault programme — into one
// value. Two configurations with equal fingerprints build machines
// that execute identically, so a snapshot is portable between them.
// Run limits (MaxInsts/MaxCycles), the cosmetic Name, StrictOracle
// and the observation/trace hooks are excluded: they affect when a
// run stops or what a host sees, never what the machine computes, and
// excluding them is what lets a snapshot taken under one instruction
// budget resume under a larger one.
func (c *Config) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fw%d fq%d rp%d rcp%d dw%d iw%d cw%d ruu%d lsq%d",
		c.FetchWidth, c.FetchQueue, c.RedirectPenalty, c.RecoveryPenalty,
		c.DispatchWidth, c.IssueWidth, c.CommitWidth, c.RUUSize, c.LSQSize)
	fmt.Fprintf(h, " fu%d,%d,%d,%d,%d", c.IntALU, c.IntMult, c.FPAdd, c.FPMult, c.MemPorts)
	fmt.Fprintf(h, " mem%+v", c.Hierarchy)
	fmt.Fprintf(h, " bp%+v", c.Bpred.Canonical())
	fmt.Fprintf(h, " r%d cosched%v transform%v oracle%v", c.R, c.CoSchedule, c.TransformOperands, c.Oracle)
	switch ck := c.Checker.(type) {
	case nil:
		fmt.Fprint(h, " chk:nil")
	case interface{ CheckerFingerprint() uint64 }:
		fmt.Fprintf(h, " chk:%#x", ck.CheckerFingerprint())
	default:
		fmt.Fprintf(h, " chk:%T", ck)
	}
	ic := c.Injector.Config()
	fmt.Fprintf(h, " inj:%v/%d/%v", ic.Rate, ic.Seed, ic.Targets)
	if c.Persistent != nil {
		fmt.Fprintf(h, " pers:%+v", *c.Persistent)
	}
	return h.Sum64()
}

// quiesce drains all speculative state so the machine's behaviour is
// fully determined by its committed state plus timing scalars. It is
// the paper's own recovery action (faultRewind) re-purposed: discard
// the entire RUU and LSQ, clear the rename map, refetch from the
// ECC-protected committed next-PC — except that nothing is counted as
// a fault and no recovery penalty is charged, because no fault
// occurred. After quiesce, the wait-lists, ready queue, retry list,
// completion calendar and decode cache contain only records that the
// scheduler's (idx, seq) guards make behaviourally invisible, so a
// snapshot need not encode them; the machine that continues past the
// quiesce and a machine restored from the snapshot execute
// byte-identically from here on.
func (m *Machine) quiesce() {
	if m.ruu.count > 0 {
		m.emitSquashes(0, true)
	}
	m.ruu.truncateAfter(0, true)
	m.lsq.truncateAfter(0, true)
	for i := range m.mapTable {
		m.mapTable[i] = mapRef{}
	}
	// redirect imposes the front-end refill bubble; a longer stall
	// already in force (an I-cache miss in flight, an unfinished
	// recovery penalty) must survive it, or the quiesce would shorten
	// a stall the uninterrupted machine pays in full.
	stall := m.stallUntil
	m.redirect(m.committedNextPC())
	if stall > m.stallUntil {
		m.stallUntil = stall
	}
}

// Snapshot quiesces the machine (see quiesce) and returns a versioned
// binary encoding of its complete post-quiesce state: committed
// registers and memory, the ECC next-PC, front-end and run counters,
// functional-unit timing, branch predictor and cache contents, the
// fault injector's RNG position, and the accumulated statistics.
//
// Snapshot is deterministic and restartable: the machine remains
// usable and continues from exactly the encoded state, so a run
// interrupted by Snapshot + Restore on a fresh machine is
// byte-identical (same statistics, same output) to the donor
// continuing without the serialisation round-trip. The quiesce does
// perturb microarchitectural timing relative to a run that never
// snapshotted — it squashes in-flight work, exactly as the paper's
// recovery does — so snapshots cost a pipeline refill, not silent
// divergence.
func (m *Machine) Snapshot() []byte {
	m.quiesce()

	w := snap.NewWriter(4096)
	w.U64(m.cfg.Fingerprint())

	// Run counters and front end.
	w.U64(m.cycle)
	w.U64(m.seq)
	w.U64(m.gid)
	w.Bool(m.halted)
	w.Bool(m.pendingRecovery)
	w.U64(m.recoveryStart)
	w.U64(m.lastCommitCycle)
	w.U64(m.fetchPC)
	w.U64(m.stallUntil)
	w.Bool(m.fetchHalt)

	// Committed architectural state.
	w.U32(uint32(isa.NumRegs))
	for _, v := range m.regs {
		w.U64(v)
	}
	pc := m.committedNextPC()
	w.U64(pc)
	w.U64(m.nextPC.CorrectedCount)
	pages := m.mem.NonZeroPages()
	w.U32(uint32(len(pages)))
	for _, idx := range pages {
		w.U64(idx)
		w.Bytes(m.mem.PageData(idx))
	}

	// Functional-unit timing: units stay busy across the quiesce, as
	// pipelined hardware drains rather than resets. pools[PoolNone] is
	// nil and skipped on both sides.
	for _, p := range m.fus.pools {
		if p == nil {
			continue
		}
		w.U32(uint32(len(p.busyUntil)))
		for _, b := range p.busyUntil {
			w.U64(b)
		}
	}

	m.bp.EncodeSnapshot(w)
	m.caches.EncodeSnapshot(w)

	// Fault injector: seed lives in the config (fingerprinted); the
	// draw count pins the RNG's exact position in the fault schedule.
	w.Bool(m.injector != nil)
	if m.injector != nil {
		w.U64(m.injector.Draws())
		fs := &m.injector.Stats
		w.U64(fs.Injected)
		w.U32(uint32(len(fs.ByTarget)))
		for _, v := range fs.ByTarget {
			w.U64(v)
		}
		w.U64(fs.BitsFlips)
	}

	encodeStats(w, &m.stats)
	w.Bool(m.oracleLive)

	return w.Finish()
}

// Restore re-initialises the machine in place from a snapshot taken
// under a configuration with the same Fingerprint, reusing the Reset
// slab machinery. On success the machine continues exactly where the
// donor's Snapshot call left it. On error the machine may be left
// partially overwritten and must be Reset (or discarded) before use.
//
// cfg may differ from the donor's in the non-fingerprinted fields —
// notably MaxInsts/MaxCycles, so a workload snapshotted at one budget
// can resume under a larger one — and cfg.Injector must be a live
// injector when the fingerprint says fault injection is on (Restore
// rewinds it to the donor's RNG position).
func (m *Machine) Restore(cfg Config, data []byte) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r, err := snap.NewReader(data)
	if err != nil {
		return err
	}
	if fp := r.U64(); fp != cfg.Fingerprint() {
		return fmt.Errorf("%w (snapshot %#x, config %#x)", ErrSnapshotMismatch, fp, cfg.Fingerprint())
	}
	m.resetHardware(cfg)

	m.cycle = r.U64()
	m.seq = r.U64()
	m.gid = r.U64()
	m.halted = r.Bool()
	m.pendingRecovery = r.Bool()
	m.recoveryStart = r.U64()
	m.lastCommitCycle = r.U64()
	m.fetchPC = r.U64()
	m.stallUntil = r.U64()
	m.fetchHalt = r.Bool()

	if n := int(r.U32()); n == isa.NumRegs {
		for i := range m.regs {
			m.regs[i] = r.U64()
		}
	} else {
		r.Corruptf("register file size %d, want %d", n, isa.NumRegs)
	}
	committedPC := r.U64()
	m.nextPC.Set(committedPC)
	m.nextPC.CorrectedCount = r.U64()
	npages := int(r.U32())
	if npages > r.Len()/(8+4) {
		r.Corruptf("page count %d exceeds payload", npages)
	}
	prev, first := uint64(0), true
	for i := 0; i < npages && r.Err() == nil; i++ {
		idx := r.U64()
		if !first && idx <= prev {
			r.Corruptf("page indices not strictly increasing at %#x", idx)
			break
		}
		prev, first = idx, false
		data := r.Bytes()
		if len(data) != mem.PageSize {
			r.Corruptf("page %#x has %d bytes, want %d", idx, len(data), mem.PageSize)
			break
		}
		m.mem.LoadPage(idx, data)
	}

	for _, p := range m.fus.pools {
		if p == nil {
			continue
		}
		if n := int(r.U32()); n == len(p.busyUntil) {
			for i := range p.busyUntil {
				p.busyUntil[i] = r.U64()
			}
		} else {
			r.Corruptf("pool %v has %d units in snapshot, want %d", p.pool, n, len(p.busyUntil))
		}
	}

	m.bp.DecodeSnapshot(r)
	m.caches.DecodeSnapshot(r)

	if hasInjector := r.Bool(); hasInjector {
		if m.injector == nil {
			// Unreachable past a fingerprint match (the injector config
			// is hashed), but a decoder must not trust that.
			r.Corruptf("snapshot has injector state but config has no injector")
		} else {
			draws := r.U64()
			if draws > maxRestoreDraws {
				r.Corruptf("injector draw count %d exceeds restore limit", draws)
			}
			var fs struct {
				injected  uint64
				byTarget  []uint64
				bitsFlips uint64
			}
			fs.injected = r.U64()
			nt := int(r.U32())
			if nt != len(m.injector.Stats.ByTarget) {
				r.Corruptf("injector target count %d, want %d", nt, len(m.injector.Stats.ByTarget))
			} else {
				fs.byTarget = make([]uint64, nt)
				for i := range fs.byTarget {
					fs.byTarget[i] = r.U64()
				}
			}
			fs.bitsFlips = r.U64()
			if r.Err() == nil {
				stats := m.injector.Stats
				stats.Injected = fs.injected
				copy(stats.ByTarget[:], fs.byTarget)
				stats.BitsFlips = fs.bitsFlips
				m.injector.RestoreState(draws, stats)
			}
		}
	} else if m.injector != nil {
		r.Corruptf("config has an injector but snapshot has no injector state")
	}

	decodeStats(r, &m.stats)
	snapOracleLive := r.Bool()

	if err := r.Done(); err != nil {
		return err
	}

	// The oracle co-simulation tracks the committed state exactly while
	// it is live (a diverged oracle is abandoned), so it can be rebuilt
	// from the restored committed state instead of being serialised.
	if cfg.Oracle && snapOracleLive {
		m.oracle = &funcsim.Machine{
			Regs:   m.regs,
			PC:     committedPC,
			Mem:    m.mem.Clone(),
			Halted: m.halted,
			Insts:  m.stats.Committed,
		}
		m.oracleLive = true
	}
	return nil
}

// encodeStats writes every Stats field in declaration order. The
// subsystem aggregates (Bpred, caches, Fault) are included even
// though finishStats refreshes them from the live components, so a
// snapshot round-trips a finished run's Stats exactly.
func encodeStats(w *snap.Writer, s *Stats) {
	w.U64(s.Cycles)
	w.U64(s.Committed)
	w.U64(s.Copies)
	w.U64(s.Fetched)
	w.U64(s.Dispatched)
	w.U64(s.Issued)
	w.U64(s.FetchICacheStall)
	w.U64(s.FetchQueueFull)
	w.U64(s.DispatchRUUFull)
	w.U64(s.DispatchLSQFull)
	w.U64(s.BranchRewinds)
	w.U64(s.SquashedUops)
	w.U64(s.FaultsDetected)
	w.U64(s.PCCheckFails)
	w.U64(s.FaultRewinds)
	w.U64(s.MajorityCommits)
	w.U64(s.RecoveryCycles)
	w.U64(s.EscapedFaults)
	w.U64(s.RUUOccupancy)
	w.U64(s.LSQOccupancy)
	bp := &s.Bpred
	w.U64(bp.CondLookups)
	w.U64(bp.CondMispredict)
	w.U64(bp.IndirLookups)
	w.U64(bp.IndirMispred)
	w.U64(bp.RASPushes)
	w.U64(bp.RASPops)
	w.U64(bp.BTBHits)
	w.U64(bp.BTBMisses)
	for _, cs := range []*struct {
		a, m, wb uint64
	}{
		{s.IL1.Accesses, s.IL1.Misses, s.IL1.Writebacks},
		{s.DL1.Accesses, s.DL1.Misses, s.DL1.Writebacks},
		{s.L2.Accesses, s.L2.Misses, s.L2.Writebacks},
	} {
		w.U64(cs.a)
		w.U64(cs.m)
		w.U64(cs.wb)
	}
	w.U64(s.Fault.Injected)
	w.U32(uint32(len(s.Fault.ByTarget)))
	for _, v := range s.Fault.ByTarget {
		w.U64(v)
	}
	w.U64(s.Fault.BitsFlips)
	w.U32(uint32(len(s.Output)))
	for _, v := range s.Output {
		w.U64(v)
	}
	w.Bool(s.Halted)
}

// decodeStats is the inverse of encodeStats, into a zeroed Stats.
func decodeStats(r *snap.Reader, s *Stats) {
	s.Cycles = r.U64()
	s.Committed = r.U64()
	s.Copies = r.U64()
	s.Fetched = r.U64()
	s.Dispatched = r.U64()
	s.Issued = r.U64()
	s.FetchICacheStall = r.U64()
	s.FetchQueueFull = r.U64()
	s.DispatchRUUFull = r.U64()
	s.DispatchLSQFull = r.U64()
	s.BranchRewinds = r.U64()
	s.SquashedUops = r.U64()
	s.FaultsDetected = r.U64()
	s.PCCheckFails = r.U64()
	s.FaultRewinds = r.U64()
	s.MajorityCommits = r.U64()
	s.RecoveryCycles = r.U64()
	s.EscapedFaults = r.U64()
	s.RUUOccupancy = r.U64()
	s.LSQOccupancy = r.U64()
	bp := &s.Bpred
	bp.CondLookups = r.U64()
	bp.CondMispredict = r.U64()
	bp.IndirLookups = r.U64()
	bp.IndirMispred = r.U64()
	bp.RASPushes = r.U64()
	bp.RASPops = r.U64()
	bp.BTBHits = r.U64()
	bp.BTBMisses = r.U64()
	for _, cs := range []*struct {
		a, m, wb *uint64
	}{
		{&s.IL1.Accesses, &s.IL1.Misses, &s.IL1.Writebacks},
		{&s.DL1.Accesses, &s.DL1.Misses, &s.DL1.Writebacks},
		{&s.L2.Accesses, &s.L2.Misses, &s.L2.Writebacks},
	} {
		*cs.a = r.U64()
		*cs.m = r.U64()
		*cs.wb = r.U64()
	}
	s.Fault.Injected = r.U64()
	if n := int(r.U32()); n == len(s.Fault.ByTarget) {
		for i := range s.Fault.ByTarget {
			s.Fault.ByTarget[i] = r.U64()
		}
	} else {
		r.Corruptf("fault target count %d, want %d", n, len(s.Fault.ByTarget))
	}
	s.Fault.BitsFlips = r.U64()
	n := int(r.U32())
	if n > r.Len()/8 {
		r.Corruptf("output length %d exceeds payload", n)
		return
	}
	if n > 0 {
		s.Output = make([]uint64, n)
		for i := range s.Output {
			s.Output[i] = r.U64()
		}
	}
	s.Halted = r.Bool()
}
