package cpu

// lsqEntry tracks one memory instruction (copy 0 of its group) for
// address disambiguation and store-to-load forwarding. Redundant copies
// of memory instructions compute their addresses independently in their
// RUU entries, but — per the paper's Section 5.1.2 — only one memory
// access is performed, through this queue.
type lsqEntry struct {
	valid  bool
	seq    uint64 // copy-0 RUU seq, for age comparisons
	gid    uint64
	isLoad bool

	addrReady bool
	addr      uint64
	size      int

	// Stores: data captured at issue (agen) time.
	dataReady bool
	data      uint64

	// Loads: set once the single memory access (or forward) completes;
	// loadVal is delivered to every copy of the group.
	dataValid bool
	loadVal   uint64

	performed bool // load access in flight or done
}

// lsq is the circular load/store queue, ordered by program order. Like
// the RUU, its storage is rounded up to a power of two so ring stepping
// is mask arithmetic; the architectural capacity stays the configured
// size.
type lsq struct {
	entries []lsqEntry
	mask    int
	limit   int
	head    int
	tail    int
	count   int
}

func newLSQ(size int) *lsq {
	capacity := nextPow2(size)
	return &lsq{entries: make([]lsqEntry, capacity), mask: capacity - 1, limit: size}
}

// reset empties the queue in place under a possibly different
// architectural limit; storage must already fit.
func (q *lsq) reset(size int) {
	clear(q.entries)
	q.limit = size
	q.head, q.tail, q.count = 0, 0, 0
}

func (q *lsq) free() int { return q.limit - q.count }

func (q *lsq) alloc() int {
	if q.count == q.limit {
		panic("cpu: LSQ overflow")
	}
	idx := q.tail
	q.tail = (q.tail + 1) & q.mask
	q.count++
	return idx
}

// releaseHead frees the oldest entry; it must correspond to the
// committing group.
func (q *lsq) releaseHead(gid uint64) {
	if q.count == 0 || !q.entries[q.head].valid || q.entries[q.head].gid != gid {
		panic("cpu: LSQ head mismatch at commit")
	}
	q.entries[q.head] = lsqEntry{}
	q.head = (q.head + 1) & q.mask
	q.count--
}

func (q *lsq) at(idx int) *lsqEntry { return &q.entries[idx] }

// truncateAfter drops every entry younger than seq (strictly greater), or
// all entries when squashAll is set.
func (q *lsq) truncateAfter(seq uint64, squashAll bool) {
	for q.count > 0 {
		lastIdx := (q.tail - 1) & q.mask
		e := &q.entries[lastIdx]
		if !squashAll && e.seq <= seq {
			break
		}
		q.entries[lastIdx] = lsqEntry{}
		q.tail = lastIdx
		q.count--
	}
}

// loadConflict describes what stands between a load and memory.
type loadConflict int

const (
	loadClear   loadConflict = iota // no older store conflicts: access memory
	loadForward                     // exact-match older store with data: forward
	loadBlocked                     // unknown or partially overlapping older store
)

// checkLoad classifies the load at lsq index loadIdx against all older
// stores. On loadForward the forwarded value is returned.
func (q *lsq) checkLoad(loadIdx int, addr uint64, size int) (loadConflict, uint64) {
	le := &q.entries[loadIdx]
	// Walk older entries youngest-first so the nearest matching store
	// forwards.
	idx := loadIdx
	for {
		if idx == q.head {
			break
		}
		idx = (idx - 1) & q.mask
		se := &q.entries[idx]
		if !se.valid || se.isLoad {
			continue
		}
		if se.seq >= le.seq {
			continue
		}
		if !se.addrReady {
			return loadBlocked, 0
		}
		if !overlap(addr, size, se.addr, se.size) {
			continue
		}
		if se.addr == addr && se.size == size && se.dataReady {
			return loadForward, se.data
		}
		// Partial overlap, or data not yet available: wait.
		return loadBlocked, 0
	}
	return loadClear, 0
}

func overlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}
