package cpu

import "repro/internal/isa"

// fuPool models one class of functional units: a fixed number of physical
// instances, each either pipelined (accepts one issue per cycle) or
// unpipelined (busy for the whole operation latency, as Table 1 specifies
// for dividers).
type fuPool struct {
	pool isa.Pool
	// busyUntil[i] is the first cycle instance i can accept a new
	// operation.
	busyUntil []uint64
}

func newFUPool(pool isa.Pool, n int) *fuPool {
	return &fuPool{pool: pool, busyUntil: make([]uint64, n)}
}

// tryIssue reserves an instance for an operation issued at cycle now.
// prefer, when >= 0, asks for a specific instance first (co-scheduling of
// redundant copies on distinct hardware); if that instance is busy any
// free instance is used. It returns the instance index or -1 if the pool
// is fully busy this cycle. The issue stage calls this once per
// candidate per cycle, so the scan over instances (at most a handful,
// Table 1) is the whole cost; callers pass prefer already reduced into
// range.
func (p *fuPool) tryIssue(now uint64, latency int, pipelined bool, prefer int) int {
	pick := -1
	if prefer >= 0 && p.busyUntil[prefer] <= now {
		pick = prefer
	}
	if pick < 0 {
		for i := range p.busyUntil {
			if p.busyUntil[i] <= now {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return -1
	}
	if pipelined {
		// A pipelined unit accepts one new operation per cycle.
		p.busyUntil[pick] = now + 1
	} else {
		p.busyUntil[pick] = now + uint64(latency)
	}
	return pick
}

// units returns the number of physical instances.
func (p *fuPool) units() int { return len(p.busyUntil) }

// fuSet is the machine's full complement of functional units, indexed by
// pool.
type fuSet struct {
	pools [isa.NumPools]*fuPool
}

func newFUSet(cfg *Config) *fuSet {
	var s fuSet
	s.pools[isa.PoolIntALU] = newFUPool(isa.PoolIntALU, cfg.IntALU)
	s.pools[isa.PoolIntMult] = newFUPool(isa.PoolIntMult, cfg.IntMult)
	s.pools[isa.PoolFPAdd] = newFUPool(isa.PoolFPAdd, cfg.FPAdd)
	s.pools[isa.PoolFPMult] = newFUPool(isa.PoolFPMult, cfg.FPMult)
	s.pools[isa.PoolMemPort] = newFUPool(isa.PoolMemPort, cfg.MemPorts)
	return &s
}

// get returns the pool for p, or nil for PoolNone.
func (s *fuSet) get(p isa.Pool) *fuPool { return s.pools[p] }

// matches reports whether the set's unit counts equal cfg's, in which
// case reset can reuse it instead of rebuilding.
func (s *fuSet) matches(cfg *Config) bool {
	return s.pools[isa.PoolIntALU].units() == cfg.IntALU &&
		s.pools[isa.PoolIntMult].units() == cfg.IntMult &&
		s.pools[isa.PoolFPAdd].units() == cfg.FPAdd &&
		s.pools[isa.PoolFPMult].units() == cfg.FPMult &&
		s.pools[isa.PoolMemPort].units() == cfg.MemPorts
}

// reset frees every unit (as-new: nothing busy before cycle 0).
func (s *fuSet) reset() {
	for _, p := range s.pools {
		if p != nil {
			clear(p.busyUntil)
		}
	}
}
