package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/prog"
)

// randomProgram emits a random but well-formed program: straight-line
// ALU/memory work with occasional forward branches over small blocks, so
// control flow always reaches the trailing halt. It deliberately creates
// register collisions, zero-register writes, back-to-back load/store
// aliasing and mixed FP/integer traffic — the cases a hand-written test
// might miss.
func randomProgram(rng *rand.Rand, n int) *prog.Program {
	b := prog.NewBuilder("random")
	buf := b.Alloc(512)
	b.Li(1, int64(buf))
	for r := uint8(2); r < 12; r++ {
		b.Li(r, rng.Int63n(1<<32)-1<<31)
	}
	for f := uint8(isa.FPBase); f < isa.FPBase+4; f++ {
		b.R(isa.OpCvtIF, f, uint8(2+f%4), 0)
	}
	intReg := func() uint8 { return uint8(rng.Intn(12)) } // includes r0 and the base
	fpReg := func() uint8 { return uint8(isa.FPBase + rng.Intn(4)) }
	off := func() int32 { return int32(rng.Intn(64)) * 8 }

	skipID := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll, isa.OpSrl, isa.OpSlt}
			b.R(ops[rng.Intn(len(ops))], intReg(), intReg(), intReg())
		case 3:
			ops := []isa.Op{isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpSlli, isa.OpSrai, isa.OpSlti}
			b.I(ops[rng.Intn(len(ops))], intReg(), intReg(), int32(rng.Intn(61)))
		case 4:
			b.R(isa.OpMul, intReg(), intReg(), intReg())
		case 5:
			b.R(isa.OpDiv, intReg(), intReg(), intReg()) // divide-by-zero allowed
		case 6:
			b.Load(isa.OpLd, intReg(), 1, off())
		case 7:
			b.Store(isa.OpSd, intReg(), 1, off())
		case 8:
			ops := []isa.Op{isa.OpFadd, isa.OpFsub, isa.OpFmul}
			b.R(ops[rng.Intn(len(ops))], fpReg(), fpReg(), fpReg())
		case 9:
			// A data-dependent forward branch over one instruction.
			label := "skip" + string(rune('a'+skipID%26)) + string(rune('a'+(skipID/26)%26))
			skipID++
			b.Branch(isa.OpBlt, intReg(), intReg(), label)
			b.R(isa.OpXor, intReg(), intReg(), intReg())
			b.Label(label)
		}
	}
	// Make every register architecturally observable.
	for r := uint8(2); r < 12; r++ {
		b.Out(r)
	}
	b.Halt()
	return b.MustBuild()
}

// TestRandomProgramEquivalence runs randomly generated programs through
// the out-of-order pipeline (at R = 1 and R = 2) with the oracle enabled
// and requires instruction-exact architectural equivalence with the
// in-order functional simulator.
func TestRandomProgramEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20010612))
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		p := randomProgram(rng, 120)

		ref := funcsim.New(p)
		if err := ref.Run(1_000_000); err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}

		for _, r := range []int{1, 2} {
			cfg := Baseline()
			cfg.R = r
			if r > 1 {
				cfg.Checker = testChecker{}
			}
			cfg.Oracle = true
			cfg.MaxCycles = 2_000_000
			m, err := New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatalf("trial %d R=%d: %v", trial, r, err)
			}
			if !st.Halted {
				t.Fatalf("trial %d R=%d: did not halt: %s", trial, r, st.Summary())
			}
			if st.EscapedFaults != 0 {
				t.Fatalf("trial %d R=%d: oracle divergence: %s", trial, r, st.Summary())
			}
			if len(st.Output) != len(ref.Output) {
				t.Fatalf("trial %d R=%d: %d outputs, want %d", trial, r, len(st.Output), len(ref.Output))
			}
			for i := range ref.Output {
				if st.Output[i] != ref.Output[i] {
					t.Fatalf("trial %d R=%d: output[%d] = %#x, want %#x",
						trial, r, i, st.Output[i], ref.Output[i])
				}
			}
			if st.FaultsDetected != 0 {
				t.Fatalf("trial %d R=%d: spurious detection: %s", trial, r, st.Summary())
			}
			// Committed register state matches the reference machine.
			for reg := uint8(2); reg < 12; reg++ {
				if m.Reg(reg) != ref.Reg(reg) {
					t.Fatalf("trial %d R=%d: r%d = %#x, want %#x",
						trial, r, reg, m.Reg(reg), ref.Reg(reg))
				}
			}
		}
	}
}
