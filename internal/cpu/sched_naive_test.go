package cpu

import "repro/internal/trace"

// This file retains the original scan-based scheduler as a reference
// implementation, exactly as it ran before the event-driven kernel
// replaced it: issue scanned the whole RUU for ready entries, writeback
// scanned it for completions, and every completion broadcast to every
// entry. It exists only so TestScanVsEventEquivalence can prove the two
// kernels produce identical results; it is not built into the simulator.

// useNaiveScheduler switches a freshly built machine onto the reference
// scan scheduler. It must be called before Run.
func useNaiveScheduler(m *Machine) {
	m.eventSched = false
	m.ready.reset()
	m.cal.reset()
	m.issueFn = m.issueScanRef
	m.writebackFn = m.writebackScanRef
}

// issueScanRef is the original issue stage: scan all valid entries
// oldest to youngest, attempting each un-issued ready one until the
// issue width is spent.
func (m *Machine) issueScanRef() {
	budget := m.cfg.IssueWidth
	m.ruu.forEach(func(idx int, e *Entry) bool {
		if budget == 0 {
			return false
		}
		if e.Issued || !e.ready() {
			return true
		}
		if m.tryIssueEntry(idx, e) == issueOK {
			budget--
		}
		return true
	})
}

// writebackScanRef is the original writeback stage: scan for entries
// whose DoneAt has arrived, oldest first so the eldest mispredicted
// branch squashes before younger completions are looked at.
func (m *Machine) writebackScanRef() {
	m.ruu.forEach(func(idx int, e *Entry) bool {
		if !e.InFlight || e.DoneAt > m.cycle {
			return true
		}
		e.InFlight = false
		e.Done = true
		m.emit(trace.StageComplete, e)
		m.broadcastScanRef(idx, e)
		if e.OI.IsCtrl() && e.NextPC != e.PredNext {
			m.branchRewind(idx, e)
			// The squash may have invalidated everything younger;
			// continue the scan (they are skipped via the Valid check).
		}
		return true
	})
}

// broadcastScanRef delivers a completed result by scanning every entry
// for waiting operands, as the original kernel did.
func (m *Machine) broadcastScanRef(idx int, producer *Entry) {
	m.ruu.forEach(func(_ int, e *Entry) bool {
		for i := range e.Ops {
			op := &e.Ops[i]
			if op.Used && !op.Ready && op.Producer == idx && op.ProducerSeq == producer.Seq {
				op.Ready = true
				op.Value = producer.Result
			}
		}
		return true
	})
}
