package cpu

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/fault"
)

// Stats aggregates everything the simulator measures in one run.
type Stats struct {
	Cycles uint64
	// Committed counts architectural instructions (groups); Copies
	// counts retired RUU entries (Committed * R in redundant mode).
	Committed uint64
	Copies    uint64

	Fetched    uint64
	Dispatched uint64 // RUU entries allocated
	Issued     uint64 // RUU entries issued to functional units

	// Stall accounting (cycles or events).
	FetchICacheStall uint64 // cycles fetch waited on the I-cache
	FetchQueueFull   uint64 // cycles fetch found the queue full
	DispatchRUUFull  uint64 // dispatch attempts blocked by RUU space
	DispatchLSQFull  uint64 // dispatch attempts blocked by LSQ space

	// Control flow.
	BranchRewinds uint64 // mis-speculation squashes
	SquashedUops  uint64 // RUU entries discarded by all squashes

	// Fault tolerance (Section 3.2 / 5.3).
	FaultsDetected  uint64 // commit-stage cross-check mismatches
	PCCheckFails    uint64 // committed next-PC continuity failures
	FaultRewinds    uint64 // full rewinds triggered by detection
	MajorityCommits uint64 // groups committed by majority election
	RecoveryCycles  uint64 // cycles from each fault rewind to the next commit
	EscapedFaults   uint64 // oracle divergences (corrupt state committed)

	// Occupancy.
	RUUOccupancy uint64 // sum over cycles of valid entries
	LSQOccupancy uint64

	Bpred bpred.Stats
	IL1   cache.Stats
	DL1   cache.Stats
	L2    cache.Stats
	Fault fault.Stats

	// Output collects values written by the out instruction, in commit
	// order.
	Output []uint64
	// Halted reports whether the program ran to its halt instruction.
	Halted bool
}

// IPC returns committed architectural instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// CopyIPC returns retired RUU entries per cycle (the datapath's raw
// throughput, R times IPC in fault-free redundant runs).
func (s *Stats) CopyIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Copies) / float64(s.Cycles)
}

// AvgRecoveryPenalty returns the mean number of cycles between a
// fault-triggered rewind and the next commit — the paper's observed
// recovery cost r (about 30 cycles for fpppp in Section 5.3).
func (s *Stats) AvgRecoveryPenalty() float64 {
	if s.FaultRewinds == 0 {
		return 0
	}
	return float64(s.RecoveryCycles) / float64(s.FaultRewinds)
}

// AvgRUUOccupancy returns the mean number of valid RUU entries per cycle.
func (s *Stats) AvgRUUOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RUUOccupancy) / float64(s.Cycles)
}

// Summary renders the headline numbers.
func (s *Stats) Summary() string {
	return fmt.Sprintf(
		"cycles=%d insts=%d IPC=%.3f copyIPC=%.3f bpredMR=%.3f dl1MR=%.3f "+
			"branchRewinds=%d faultsDetected=%d faultRewinds=%d majority=%d escaped=%d avgRecovery=%.1f",
		s.Cycles, s.Committed, s.IPC(), s.CopyIPC(),
		s.Bpred.MispredictRate(), s.DL1.MissRate(),
		s.BranchRewinds, s.FaultsDetected, s.FaultRewinds,
		s.MajorityCommits, s.EscapedFaults, s.AvgRecoveryPenalty())
}
