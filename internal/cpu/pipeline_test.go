package cpu

import (
	"errors"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/prog"
)

// testChecker is a minimal R-way unanimity checker for cpu-level tests
// (the real policies live in package core).
type testChecker struct{}

func (testChecker) Check(group []*Entry) Verdict {
	for _, e := range group[1:] {
		if e.Result != group[0].Result || e.EA != group[0].EA ||
			e.StoreVal != group[0].StoreVal || e.NextPC != group[0].NextPC {
			return Verdict{OK: false, Mismatch: true}
		}
	}
	return Verdict{OK: true}
}

func sumProgram(n int64) *prog.Program {
	b := prog.NewBuilder("sum")
	b.Li(1, n)
	b.Li(3, 0)
	b.Label("loop")
	b.R(isa.OpAdd, 3, 3, 1)
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(3)
	b.Halt()
	return b.MustBuild()
}

func runProgram(t *testing.T, cfg Config, p *prog.Program) *Stats {
	t.Helper()
	cfg.Oracle = true
	cfg.MaxCycles = 10_000_000
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted {
		t.Fatalf("program did not halt: %s", st.Summary())
	}
	if st.EscapedFaults != 0 {
		t.Fatalf("oracle divergence: %s", st.Summary())
	}
	return st
}

func TestBaselineSumLoop(t *testing.T) {
	st := runProgram(t, Baseline(), sumProgram(500))
	if len(st.Output) != 1 || st.Output[0] != 125250 {
		t.Fatalf("output = %v, want [125250]", st.Output)
	}
	// 500 iterations x 3 + 4 overhead.
	if want := uint64(1504); st.Committed != want {
		t.Errorf("committed %d, want %d", st.Committed, want)
	}
	if st.IPC() <= 0.5 {
		t.Errorf("suspiciously low IPC %.3f: %s", st.IPC(), st.Summary())
	}
}

// TestILPThroughput checks that independent work actually issues in
// parallel: 8 independent add chains should run well above IPC 1.
func TestILPThroughput(t *testing.T) {
	b := prog.NewBuilder("ilp")
	b.Li(1, 2000)
	b.Label("loop")
	for r := uint8(2); r < 10; r++ {
		b.R(isa.OpAdd, r, r, 1)
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	st := runProgram(t, Baseline(), b.MustBuild())
	if ipc := st.IPC(); ipc < 3.0 {
		t.Errorf("ILP loop IPC = %.2f, want > 3: %s", ipc, st.Summary())
	}
}

// TestSerialDependencyChain: a chain of dependent adds cannot exceed
// IPC ~1 per chain op plus loop overhead.
func TestSerialDependencyChain(t *testing.T) {
	b := prog.NewBuilder("serial")
	b.Li(1, 1000)
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.R(isa.OpAdd, 2, 2, 2) // strictly serial
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	st := runProgram(t, Baseline(), b.MustBuild())
	// 10 instructions per iteration, ~8 serial cycles minimum.
	if ipc := st.IPC(); ipc > 1.6 {
		t.Errorf("serial chain IPC = %.2f, expected near 1.25: %s", ipc, st.Summary())
	}
}

func TestMemoryAndForwarding(t *testing.T) {
	b := prog.NewBuilder("memfwd")
	buf := b.Alloc(64)
	b.Li(1, int64(buf))
	b.Li(2, 1000)
	b.Li(5, 0)
	b.Label("loop")
	b.Store(isa.OpSd, 2, 1, 0) // store counter
	b.Load(isa.OpLd, 3, 1, 0)  // immediately load it back (forward)
	b.R(isa.OpAdd, 5, 5, 3)
	b.I(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "loop")
	b.Out(5)
	b.Halt()
	st := runProgram(t, Baseline(), b.MustBuild())
	if st.Output[0] != 500500 {
		t.Fatalf("sum via memory = %d, want 500500", st.Output[0])
	}
}

func TestBranchyCode(t *testing.T) {
	// Data-dependent branches on a pseudo-random sequence exercise
	// mispredict squash and map-table recovery.
	b := prog.NewBuilder("branchy")
	b.Li(1, 3000)  // iterations
	b.Li(2, 12345) // LCG state
	b.Li(6, 0)     // taken counter
	b.Label("loop")
	b.Li(3, 1103515245)
	b.R(isa.OpMul, 2, 2, 3)
	b.I(isa.OpAddi, 2, 2, 12345)
	b.I(isa.OpSrli, 4, 2, 16)
	b.I(isa.OpAndi, 4, 4, 1)
	b.Branch(isa.OpBeq, 4, 0, "skip")
	b.I(isa.OpAddi, 6, 6, 1)
	b.Label("skip")
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(6)
	b.Halt()

	p := b.MustBuild()
	ref := funcsim.New(p)
	if err := ref.Run(0); err != nil {
		t.Fatal(err)
	}
	st := runProgram(t, Baseline(), p)
	if st.Output[0] != ref.Output[0] {
		t.Fatalf("taken count = %d, want %d", st.Output[0], ref.Output[0])
	}
	if st.BranchRewinds == 0 {
		t.Error("no branch rewinds on random branches")
	}
}

func TestCallsAndReturns(t *testing.T) {
	b := prog.NewBuilder("calls")
	b.Li(1, 200)
	b.Li(5, 0)
	b.Label("loop")
	b.Jal(isa.RegLink, "fn")
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(5)
	b.Halt()
	b.Label("fn")
	b.I(isa.OpAddi, 5, 5, 3)
	b.Emit(isa.Inst{Op: isa.OpJr, Rs1: isa.RegLink})
	st := runProgram(t, Baseline(), b.MustBuild())
	if st.Output[0] != 600 {
		t.Fatalf("calls sum = %d, want 600", st.Output[0])
	}
}

func TestFloatingPointPipeline(t *testing.T) {
	b := prog.NewBuilder("fp")
	f0, f1, f2 := uint8(isa.FPBase), uint8(isa.FPBase+1), uint8(isa.FPBase+2)
	c := b.Float(1.0, 0.5)
	b.Li(1, int64(c))
	b.Load(isa.OpFld, f0, 1, 0)
	b.Load(isa.OpFld, f1, 1, 8)
	b.Li(2, 100)
	b.Label("loop")
	b.R(isa.OpFmul, f2, f0, f1)
	b.R(isa.OpFadd, f0, f2, f0)
	b.R(isa.OpFdiv, f2, f0, f0)
	b.I(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "loop")
	b.R(isa.OpCvtFI, 3, f2, 0)
	b.Out(3)
	b.Halt()
	st := runProgram(t, Baseline(), b.MustBuild())
	if st.Output[0] != 1 { // x/x = 1
		t.Fatalf("fp result = %d, want 1", st.Output[0])
	}
}

// TestRedundantMatchesBaseline: in the absence of faults, SS-2 and SS-3
// commit exactly the same architectural results as SS-1, only slower.
func TestRedundantMatchesBaseline(t *testing.T) {
	p := sumProgram(300)
	base := runProgram(t, Baseline(), p)
	for _, r := range []int{2, 4} {
		cfg := Baseline()
		cfg.R = r
		cfg.Checker = testChecker{}
		st := runProgram(t, cfg, p)
		if len(st.Output) != 1 || st.Output[0] != base.Output[0] {
			t.Fatalf("R=%d output %v differs from baseline %v", r, st.Output, base.Output)
		}
		if st.Committed != base.Committed {
			t.Errorf("R=%d committed %d vs baseline %d", r, st.Committed, base.Committed)
		}
		if st.Copies != st.Committed*uint64(r) {
			t.Errorf("R=%d copies %d, want %d", r, st.Copies, st.Committed*uint64(r))
		}
		if st.FaultsDetected != 0 || st.FaultRewinds != 0 {
			t.Errorf("R=%d spurious fault detections: %s", r, st.Summary())
		}
		if st.Cycles < base.Cycles {
			t.Errorf("R=%d ran faster (%d cycles) than baseline (%d)", r, st.Cycles, base.Cycles)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.R = 0 },
		func(c *Config) { c.R = 3; c.Checker = testChecker{} }, // 128 % 3 != 0
		func(c *Config) { c.R = 2 },                            // no checker
		func(c *Config) { c.RUUSize = 0 },
		func(c *Config) { c.LSQSize = 0 },
		func(c *Config) { c.CommitWidth = 0 },
		func(c *Config) { c.IntALU = 0 },
		func(c *Config) { c.FetchQueue = 1 },
		func(c *Config) { c.R = 2; c.Checker = testChecker{}; c.DispatchWidth = 1 },
	}
	for i, mutate := range cases {
		cfg := Baseline()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := Baseline()
	if err := good.Validate(); err != nil {
		t.Errorf("baseline rejected: %v", err)
	}
	halved := Halved()
	if err := halved.Validate(); err != nil {
		t.Errorf("halved rejected: %v", err)
	}
}

func TestMaxInstsLimit(t *testing.T) {
	cfg := Baseline()
	cfg.MaxInsts = 100
	cfg.Oracle = true
	m, err := New(cfg, sumProgram(100000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 100 {
		t.Errorf("committed %d, want 100", st.Committed)
	}
	if st.Halted {
		t.Error("reported halt without reaching halt")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A program that spins forever without committing cannot happen with
	// a correct pipeline, so synthesise the condition via MaxCycles=0 and
	// an empty-but-never-halting program: jump to self still commits.
	// Instead, verify the error path by exhausting MaxCycles.
	b := prog.NewBuilder("spin")
	b.Label("top")
	b.Jump("top")
	b.Halt()
	cfg := Baseline()
	cfg.MaxCycles = 5000
	m, err := New(cfg, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Halted || st.Cycles < 5000 {
		t.Errorf("spin loop: halted=%v cycles=%d", st.Halted, st.Cycles)
	}
	if st.Committed == 0 {
		t.Error("self-jump never committed")
	}
	_ = errors.Is // keep errors import if unused later
}

func TestHalvedSlowerThanBaseline(t *testing.T) {
	// The Static-2 pipeline (half resources) must not beat the full
	// machine on an ILP-rich workload.
	b := prog.NewBuilder("ilp2")
	b.Li(1, 2000)
	b.Label("loop")
	for r := uint8(2); r < 12; r++ {
		b.R(isa.OpAdd, r, r, 1)
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	p := b.MustBuild()
	full := runProgram(t, Baseline(), p)
	half := runProgram(t, Halved(), p)
	if half.IPC() >= full.IPC() {
		t.Errorf("halved IPC %.2f >= full IPC %.2f", half.IPC(), full.IPC())
	}
}

// TestStoreLoadDifferentSizes exercises partial-overlap conservatism.
func TestStoreLoadDifferentSizes(t *testing.T) {
	b := prog.NewBuilder("overlap")
	buf := b.Alloc(16)
	b.Li(1, int64(buf))
	b.Li(2, 0x1122334455667788)
	b.Store(isa.OpSd, 2, 1, 0)
	b.Load(isa.OpLb, 3, 1, 0) // partial overlap: must wait for the store
	b.Load(isa.OpLw, 4, 1, 4) // partial overlap at offset
	b.Out(3)
	b.Out(4)
	b.Halt()
	st := runProgram(t, Baseline(), b.MustBuild())
	if st.Output[0] != 0xFFFFFFFFFFFFFF88 {
		t.Errorf("lb = %#x", st.Output[0])
	}
	if st.Output[1] != 0x11223344 {
		t.Errorf("lw = %#x", st.Output[1])
	}
}

func TestOccupancyStats(t *testing.T) {
	st := runProgram(t, Baseline(), sumProgram(200))
	if st.AvgRUUOccupancy() <= 0 {
		t.Error("zero RUU occupancy")
	}
	if st.IPC() <= 0 || st.CopyIPC() != st.IPC() {
		t.Errorf("IPC bookkeeping: ipc=%.2f copyIPC=%.2f", st.IPC(), st.CopyIPC())
	}
	if st.Summary() == "" {
		t.Error("empty summary")
	}
}
