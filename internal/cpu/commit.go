package cpu

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/trace"
)

// commit retires instruction groups in order from the RUU head, up to
// CommitWidth entries per cycle. In redundant mode each group's R copies
// are cross-checked (Section 3.2, "Fault Detection") and a mismatch
// triggers rewind-based recovery; an "R = 1" machine commits unchecked.
func (m *Machine) commit() error {
	budget := m.cfg.CommitWidth
	// The group scratch is a machine field: a local make() here escapes
	// (the Checker interface call keeps it from being stack-allocated)
	// and was, at one allocation per simulated cycle, by far the largest
	// allocation source in the whole simulator. Its capacity is >= R, so
	// the appends below never grow it.
	group := m.commitGroup[:0]
	for budget >= m.cfg.R && !m.ruu.empty() {
		group = group[:0]
		headIdx := m.ruu.head
		c0 := m.ruu.at(headIdx)
		if !c0.Valid || c0.Copy != 0 {
			return fmt.Errorf("cpu: corrupt RUU head (valid=%v copy=%d)", c0.Valid, c0.Copy)
		}
		allDone := true
		for k := 0; k < m.cfg.R; k++ {
			e := m.ruu.at(m.ruu.wrap(headIdx + k))
			if !e.Valid || e.GID != c0.GID || e.Copy != k {
				return fmt.Errorf("cpu: group %d misaligned at commit", c0.GID)
			}
			if !e.Done {
				allDone = false
				break
			}
			group = append(group, e)
		}
		if !allDone {
			break
		}

		// Apply any pending ROB-resident corruption now, so the commit
		// stage's re-check is what catches it (Section 3.2: copies "must
		// still be rechecked at commit time in case a value becomes
		// corrupted while waiting to commit").
		for _, e := range group {
			if e.Inject && e.InjectTarget == fault.TargetResident && !e.ResidentDone {
				e.ResidentDone = true
				m.corruptResident(e)
			}
		}

		oi := c0.OI

		if m.cfg.R > 1 {
			// Control-flow continuity: every retiring instruction's PC is
			// checked against the ECC-protected committed next-PC.
			if c0.PC != m.committedNextPC() {
				m.stats.PCCheckFails++
				m.stats.FaultsDetected++
				m.faultRewind()
				return nil
			}
			verdict := m.cfg.Checker.Check(group)
			if verdict.Mismatch {
				m.stats.FaultsDetected++
			}
			if !verdict.OK {
				m.faultRewind()
				return nil
			}
			if verdict.Majority {
				m.stats.MajorityCommits++
			}
			if err := m.retire(c0, group[verdict.Copy], oi); err != nil {
				return err
			}
		} else {
			if err := m.retire(c0, c0, oi); err != nil {
				return err
			}
		}

		for _, e := range group {
			m.emit(trace.StageCommit, e)
		}
		// Free the group's resources. Note: release zeroes the ring
		// slots, so read everything needed from c0 first.
		isHalt := c0.Inst.Op == isa.OpHalt
		if c0.LSQ >= 0 {
			m.lsq.releaseHead(c0.GID)
		}
		for k := 0; k < m.cfg.R; k++ {
			m.ruu.release()
		}
		budget -= m.cfg.R
		m.stats.Committed++
		m.stats.Copies += uint64(m.cfg.R)
		m.lastCommitCycle = m.cycle
		if m.pendingRecovery {
			m.stats.RecoveryCycles += m.cycle - m.recoveryStart
			m.pendingRecovery = false
		}
		if isHalt {
			m.halted = true
			return nil
		}
		if m.cfg.MaxInsts > 0 && m.stats.Committed >= m.cfg.MaxInsts {
			m.stopped = true
			return nil
		}
	}
	return nil
}

// corruptResident flips a bit in the value the commit stage will check,
// modelling an upset of a completed result sitting in the RUU.
func (m *Machine) corruptResident(e *Entry) {
	oi := e.OI
	switch {
	case oi.IsCtrl():
		e.NextPC = m.injector.FlipLowBit(e.NextPC, 32)
	case oi.IsStore:
		e.StoreVal = m.injector.FlipBit(e.StoreVal)
	default:
		e.Result = m.injector.FlipBit(e.Result)
	}
}

// retire applies one instruction's architectural effects, using the
// values of the chosen (cross-checked or majority) copy, and steps the
// oracle. The returned error is non-nil only under StrictOracle, when
// the co-simulation diverges.
func (m *Machine) retire(c0, chosen *Entry, oi *isa.OpInfo) error {
	in := c0.Inst

	// Release the map table reference if this group is still the latest
	// producer; younger consumers will then read the committed value.
	if oi.WritesRd && in.Rd != isa.RegZero {
		ref := m.mapTable[in.Rd]
		if ref.valid && ref.seq == c0.Seq {
			m.mapTable[in.Rd] = mapRef{}
		}
		m.regs[in.Rd] = chosen.Result
	}

	size := 0
	if oi.IsMem() {
		size, _ = isa.LoadWidth(in.Op)
	}
	if oi.IsStore {
		// The single, checked memory write (write port traffic is
		// absorbed by the store buffer and does not stall commit).
		m.mem.Write(chosen.EA, size, chosen.StoreVal)
		m.caches.DAccess(chosen.EA, true)
		// Keep the decoded-instruction cache coherent with committed
		// memory in case the store landed on fetched code.
		m.decInvalidate(chosen.EA, size)
	}
	if in.Op == isa.OpOut {
		m.stats.Output = append(m.stats.Output, chosen.Result)
	}
	if oi.IsCtrl() {
		m.bp.Update(c0.PC, in, chosen.Taken, chosen.NextPC, c0.Pred)
	}
	m.nextPC.Set(chosen.NextPC)

	if m.oracleLive {
		return m.checkOracle(c0, chosen, oi, size)
	}
	return nil
}

// checkOracle steps the in-order co-simulation one instruction and
// compares every architectural effect, per Section 5.1.1. The first
// divergence marks an escaped fault; comparison stops afterwards because
// the two states can no longer agree. Under StrictOracle the divergence
// additionally aborts the run with an *OracleError.
func (m *Machine) checkOracle(c0, chosen *Entry, oi *isa.OpInfo, size int) error {
	got := funcsim.Effect{
		PC:     c0.PC,
		Inst:   c0.Inst,
		NextPC: chosen.NextPC,
		Halted: c0.Inst.Op == isa.OpHalt,
	}
	if oi.WritesRd && c0.Inst.Rd != isa.RegZero {
		got.WritesReg = true
		got.Reg = c0.Inst.Rd
		got.RegVal = chosen.Result
	}
	if oi.IsLoad {
		got.IsLoad = true
		got.MemAddr = chosen.EA
		got.MemSize = size
	}
	if oi.IsStore {
		got.IsStore = true
		got.MemAddr = chosen.EA
		got.MemSize = size
		got.StoreVal = chosen.StoreVal
	}
	if c0.Inst.Op == isa.OpOut {
		got.Out = true
		got.OutVal = chosen.Result
	}

	want, err := m.oracle.Step()
	if err != nil {
		m.stats.EscapedFaults++
		m.oracleLive = false
		if m.cfg.StrictOracle {
			return &OracleError{Cycle: m.cycle, PC: c0.PC, Diff: "oracle: " + err.Error()}
		}
		return nil
	}
	if diff := want.Mismatch(got); diff != "" {
		m.stats.EscapedFaults++
		m.oracleLive = false
		if m.cfg.StrictOracle {
			return &OracleError{Cycle: m.cycle, PC: c0.PC, Diff: diff}
		}
	}
	return nil
}

// ErrOracleMismatch is the sentinel every *OracleError unwraps to: the
// in-order co-simulation of Section 5.1.1 diverged from the pipeline's
// committed architectural state, meaning corrupted state escaped the
// commit-stage checks and was committed.
var ErrOracleMismatch = errors.New("cpu: oracle co-simulation diverged (corrupted state committed)")

// OracleError reports the first oracle divergence of a StrictOracle run.
type OracleError struct {
	Cycle uint64 // cycle of the diverging commit
	PC    uint64 // program counter of the diverging instruction
	Diff  string // which architectural effect disagreed
}

func (e *OracleError) Error() string {
	return fmt.Sprintf("%v at cycle %d (pc %#x): %s", ErrOracleMismatch, e.Cycle, e.PC, e.Diff)
}

// Unwrap makes errors.Is(err, ErrOracleMismatch) hold.
func (e *OracleError) Unwrap() error { return ErrOracleMismatch }

// faultRewind is the paper's recovery action: discard the entire RUU and
// restart execution by refetching from the committed next-PC register.
func (m *Machine) faultRewind() {
	m.stats.FaultRewinds++
	m.emitSquashes(0, true)
	m.stats.SquashedUops += uint64(m.ruu.count)
	m.ruu.truncateAfter(0, true)
	m.lsq.truncateAfter(0, true)
	for i := range m.mapTable {
		m.mapTable[i] = mapRef{}
	}
	m.redirect(m.committedNextPC())
	m.stallUntil += uint64(m.cfg.RecoveryPenalty)
	m.pendingRecovery = true
	m.recoveryStart = m.cycle
}

// committedNextPC reads the ECC-protected next-PC register, scrubbing a
// single-bit upset if one has occurred since the last read.
func (m *Machine) committedNextPC() uint64 {
	v, ok := m.nextPC.Get()
	if !ok {
		// A double-bit upset of the recovery anchor is outside the
		// paper's fault model (committed state is information-redundant);
		// reaching this line means the simulator itself is broken.
		panic("cpu: uncorrectable upset in the committed next-PC register")
	}
	return v
}

// UpsetNextPC flips one bit of the stored committed next-PC, for tests
// demonstrating that the ECC domain absorbs single-event upsets that
// would otherwise break recovery.
func (m *Machine) UpsetNextPC(bit uint) { m.nextPC.Upset(bit) }
