package cpu

import (
	"repro/internal/bpred"
	"repro/internal/fault"
	"repro/internal/isa"
)

// Entry is one RUU slot: a dispatched instruction copy with its operand
// state, execution results and bookkeeping. In redundant mode the R
// copies of one architectural instruction occupy R consecutive entries
// sharing a GID.
type Entry struct {
	Valid bool
	Seq   uint64 // global dispatch order, unique per copy
	GID   uint64 // instruction group id, shared by all copies
	Copy  int    // 0..R-1

	PC       uint64
	Inst     isa.Inst
	OI       *isa.OpInfo      // cached isa.Info(Inst.Op), set at dispatch
	PredNext uint64           // front-end predicted next PC
	Pred     bpred.Prediction // predictor state (copy 0 only)

	Ops [2]Operand

	Issued   bool
	InFlight bool // issued, completion pending
	Done     bool
	DoneAt   uint64 // cycle the result becomes available

	// Execution outputs. Result holds the ALU value, loaded value or
	// link address; EA the effective address of a memory access;
	// StoreVal the value a store will write; NextPC the resolved
	// next program counter (PC+8 for non-control instructions).
	Result   uint64
	EA       uint64
	StoreVal uint64
	Taken    bool
	NextPC   uint64

	LSQ    int // LSQ index for copy-0 memory operations, else -1
	FUPool isa.Pool
	FUUnit int // physical unit instance used (for co-scheduling)

	// Fault-injection state for this copy.
	InjectTarget fault.Target
	Inject       bool
	ResidentDone bool // resident flip already applied
}

// Operand is one source operand of an entry.
type Operand struct {
	Used  bool
	Reg   uint8
	Ready bool
	Value uint64
	// FromRUU records that the value comes from an in-flight RUU entry
	// (identified by Producer/ProducerSeq) rather than the committed
	// register file. Redundant copy k uses it to re-derive its own
	// producer at offset +k.
	FromRUU bool
	// Producer identifies the RUU entry that will broadcast this value;
	// ProducerSeq guards against slot reuse.
	Producer    int
	ProducerSeq uint64
}

// ready reports whether all used operands have values.
func (e *Entry) ready() bool {
	for i := range e.Ops {
		if e.Ops[i].Used && !e.Ops[i].Ready {
			return false
		}
	}
	return true
}

// mapRef is a register map table entry: the RUU index (and its seq, to
// guard slot reuse) of the latest copy-0 producer of a register.
type mapRef struct {
	valid bool
	idx   int
	seq   uint64
}

// ruu is the circular Register Update Unit. Storage is rounded up to a
// power of two so every ring-index step is a mask instead of a divide;
// the architectural capacity (how many entries may be live at once) stays
// the configured size, enforced by free()/alloc().
type ruu struct {
	entries []Entry
	mask    int // len(entries) - 1
	limit   int // architectural capacity (cfg.RUUSize)
	head    int // oldest valid entry
	tail    int // next free slot
	count   int
}

func newRUU(size int) *ruu {
	capacity := nextPow2(size)
	return &ruu{entries: make([]Entry, capacity), mask: capacity - 1, limit: size}
}

// reset empties the ring in place, zeroing every slot (a cancelled or
// budget-stopped run leaves live entries behind) and re-arming it under
// a possibly different architectural limit. Storage must already fit:
// callers reallocate when nextPow2 of the new size differs.
func (r *ruu) reset(size int) {
	clear(r.entries)
	r.limit = size
	r.head, r.tail, r.count = 0, 0, 0
}

func (r *ruu) size() int   { return len(r.entries) }
func (r *ruu) free() int   { return r.limit - r.count }
func (r *ruu) empty() bool { return r.count == 0 }

// wrap reduces a ring index offset into range. Because the storage size
// is a power of two, a two's-complement AND handles negative offsets
// (e.g. idx-copy) as well as overflowing ones (idx+k).
func (r *ruu) wrap(i int) int { return i & r.mask }

// alloc takes the next slot; the caller fills it.
func (r *ruu) alloc() int {
	if r.count == r.limit {
		panic("cpu: RUU overflow")
	}
	idx := r.tail
	r.tail = (r.tail + 1) & r.mask
	r.count++
	return idx
}

// release frees the head entry.
func (r *ruu) release() {
	if r.count == 0 {
		panic("cpu: RUU underflow")
	}
	r.entries[r.head] = Entry{}
	r.head = (r.head + 1) & r.mask
	r.count--
}

// at returns the entry at ring index idx.
func (r *ruu) at(idx int) *Entry { return &r.entries[idx] }

// forEach visits valid entries oldest to youngest. The callback returns
// false to stop early. The entry count is snapshotted so callbacks may
// squash younger entries mid-scan (they are skipped via the Valid check).
func (r *ruu) forEach(f func(idx int, e *Entry) bool) {
	idx := r.head
	n := r.count
	for i := 0; i < n; i++ {
		e := &r.entries[idx]
		if e.Valid && !f(idx, e) {
			return
		}
		idx = (idx + 1) & r.mask
	}
}

// truncateAfter invalidates every entry younger than seq (strictly
// greater) and rewinds the tail, returning how many entries were
// squashed. Passing seq 0 with squashAll squashes everything.
func (r *ruu) truncateAfter(seq uint64, squashAll bool) int {
	squashed := 0
	for r.count > 0 {
		lastIdx := (r.tail - 1) & r.mask
		e := &r.entries[lastIdx]
		if !squashAll && e.Seq <= seq {
			break
		}
		r.entries[lastIdx] = Entry{}
		r.tail = lastIdx
		r.count--
		squashed++
	}
	return squashed
}
