package cpu

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// nextPow2 returns the smallest power of two >= n (n >= 1); the ring
// buffers round their storage up with it so index stepping is mask
// arithmetic.
func nextPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// This file holds the event-driven scheduling kernel. The original
// implementation rescanned the whole RUU once per stage per cycle, which
// made every simulated cycle O(RUUSize) regardless of how many entries
// actually did anything. The structures below make each stage touch only
// the entries with an event this cycle:
//
//   - waitlists: per-producer consumer lists built at rename time, so a
//     completing entry wakes exactly its consumers (replaces the
//     broadcast scan);
//   - calendar: a completion time-wheel keyed on DoneAt (with a min-heap
//     fallback for latencies beyond the wheel), so writeback visits only
//     the entries finishing this cycle (replaces the writeback scan);
//   - readyQueue: a seq-ordered min-heap of issuable entries fed by
//     dispatch and wakeup, so issue considers only ready entries
//     (replaces the issue scan).
//
// Squash repair is lazy: every record carries the (ring index, seq) pair
// of the entry it refers to, and a record whose seq no longer matches the
// entry at its index is dropped when it surfaces. This is sound because
// seqs are never reused: a squashed entry's slot is either empty (Valid
// false) or re-allocated under a strictly larger seq, so stale records
// can never act on the wrong instruction. Producer wait-lists are
// additionally cleared when their slot is re-allocated, which bounds
// them without a scan. Determinism is preserved because every queue is
// drained in seq order — exactly the oldest-first order the scans
// enforced — so the sequence of functional-unit reservations, fault-
// injector rolls and branch rewinds is bit-identical to the scan-based
// kernel (TestScanVsEventEquivalence is the referee).

// readyRec identifies one entry awaiting issue.
type readyRec struct {
	idx int32
	seq uint64
}

// readyQueue holds the issuable entries in age order. `list` is the
// seq-sorted pending set carried across cycles; `in` collects the
// cycle's arrivals (dispatch and wakeup push here) and is merged into
// the pending set by the issue pass. A sorted list beats a heap here
// because every pending entry is reconsidered each cycle anyway — the
// merge walk is sequential memory traffic instead of O(log n) sift
// churn per record.
type readyQueue struct {
	list []readyRec // seq-sorted, carried across cycles
	in   []readyRec // unsorted arrivals since the last issue pass
}

func (q *readyQueue) push(r readyRec) { q.in = append(q.in, r) }

func (q *readyQueue) empty() bool { return len(q.list) == 0 && len(q.in) == 0 }

// sortIn orders the cycle's arrivals by seq. Arrivals are pushed in
// almost-increasing order (dispatch allocates seqs monotonically and
// wakeups fire oldest-producer-first), so insertion sort is exact and
// effectively linear.
func (q *readyQueue) sortIn() {
	for i := 1; i < len(q.in); i++ {
		r := q.in[i]
		j := i - 1
		for j >= 0 && q.in[j].seq > r.seq {
			q.in[j+1] = q.in[j]
			j--
		}
		q.in[j+1] = r
	}
}

func (q *readyQueue) reset() { q.list, q.in = q.list[:0], q.in[:0] }

// init empties the queue and pre-sizes both sides to hold n records, so
// steady-state pushes never grow the backing arrays. Reused queues keep
// whatever capacity they have already grown to.
func (q *readyQueue) init(n int) {
	if cap(q.list) < n {
		q.list = make([]readyRec, 0, n)
	}
	if cap(q.in) < n {
		q.in = make([]readyRec, 0, n)
	}
	q.reset()
}

// waiter records one operand of one consumer waiting on a producer.
type waiter struct {
	idx int32  // consumer ring index
	seq uint64 // consumer seq (slot-reuse guard)
	op  uint8  // which of the consumer's operands
}

// calendar schedules completions. Entries issued with DoneAt within
// wheelSize cycles go into the time-wheel bucket for that cycle; longer
// latencies (deep cache misses) fall back to a small min-heap. Both are
// drained together and sorted by seq so the writeback order — and with
// it the oldest-mispredicted-branch-squashes-first invariant — matches
// the age-ordered scan exactly.
const (
	wheelBits = 8
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

type calRec struct {
	idx int32
	seq uint64
}

type farRec struct {
	doneAt uint64
	idx    int32
	seq    uint64
}

type calendar struct {
	wheel [wheelSize][]calRec
	far   []farRec // min-heap on doneAt
	due   []calRec // drain scratch, reused across cycles
}

// insert schedules (idx, seq) to surface at cycle doneAt. now is the
// current cycle; doneAt is always strictly in the future, so a bucket
// can never hold records for two different cycles at once.
func (c *calendar) insert(now, doneAt uint64, idx int32, seq uint64) {
	if doneAt-now < wheelSize {
		b := int(doneAt & wheelMask)
		c.wheel[b] = append(c.wheel[b], calRec{idx: idx, seq: seq})
		return
	}
	c.far = append(c.far, farRec{doneAt: doneAt, idx: idx, seq: seq})
	i := len(c.far) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.far[parent].doneAt <= c.far[i].doneAt {
			break
		}
		c.far[parent], c.far[i] = c.far[i], c.far[parent]
		i = parent
	}
}

// drain returns every record due at cycle now, sorted by seq (oldest
// first). The returned slice is valid until the next drain call.
func (c *calendar) drain(now uint64) []calRec {
	c.due = c.due[:0]
	b := int(now & wheelMask)
	c.due = append(c.due, c.wheel[b]...)
	c.wheel[b] = c.wheel[b][:0]
	for len(c.far) > 0 && c.far[0].doneAt <= now {
		top := c.far[0]
		last := len(c.far) - 1
		c.far[0] = c.far[last]
		c.far = c.far[:last]
		c.farSiftDown(0)
		c.due = append(c.due, calRec{idx: top.idx, seq: top.seq})
	}
	// Records arrive in issue order, not age order (a long-latency old
	// entry and a short-latency young one can share a cycle), so sort.
	// The lists are tiny and nearly sorted; insertion sort is exact and
	// allocation-free.
	for i := 1; i < len(c.due); i++ {
		r := c.due[i]
		j := i - 1
		for j >= 0 && c.due[j].seq > r.seq {
			c.due[j+1] = c.due[j]
			j--
		}
		c.due[j+1] = r
	}
	return c.due
}

func (c *calendar) farSiftDown(i int) {
	n := len(c.far)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && c.far[l].doneAt < c.far[small].doneAt {
			small = l
		}
		if r < n && c.far[r].doneAt < c.far[small].doneAt {
			small = r
		}
		if small == i {
			return
		}
		c.far[i], c.far[small] = c.far[small], c.far[i]
		i = small
	}
}

func (c *calendar) reset() {
	for i := range c.wheel {
		c.wheel[i] = c.wheel[i][:0]
	}
	c.far = c.far[:0]
}

// calBucketCap pre-sizes each wheel bucket. A bucket holds at most one
// cycle's completions, which the issue stage bounds by IssueWidth
// (Table 1: 8), so 8 covers the steady state; a wider machine merely
// grows the odd bucket once and keeps it.
const calBucketCap = 8

// init makes the calendar empty and fully pre-sized: the first call
// carves all wheel buckets out of one slab (one allocation instead of
// 256) and pre-sizes the far heap and drain scratch; later calls just
// empty the structures, keeping any capacity they have grown.
func (c *calendar) init() {
	if c.wheel[0] == nil {
		slab := make([]calRec, wheelSize*calBucketCap)
		for i := range c.wheel {
			c.wheel[i] = slab[i*calBucketCap : i*calBucketCap : (i+1)*calBucketCap]
		}
		c.far = make([]farRec, 0, 64)
		c.due = make([]calRec, 0, 64)
		return
	}
	c.reset()
	c.due = c.due[:0]
}

// ---------------------------------------------------------------------
// Decoded-instruction cache: fetch used to re-read and re-decode the
// instruction word from memory for every fetched slot; a direct-mapped
// cache keyed on the (8-byte aligned) PC makes that work happen once per
// static instruction. Committed stores invalidate any overlapped slots,
// so self-modifying programs still see their writes.

const (
	decBits = 12
	decSize = 1 << decBits
	decMask = decSize - 1
)

type decCache struct {
	// tags holds pc+1 so the zero value means "empty" (PCs are 8-byte
	// aligned and can never equal ^uint64(0), so pc+1 never collides
	// with 0).
	tags [decSize]uint64
	inst [decSize]isa.Inst
	oi   [decSize]*isa.OpInfo
}

func (d *decCache) slot(pc uint64) int { return int((pc >> 3) & decMask) }

// reset invalidates every slot. Only the tags need clearing — stale
// inst/oi entries are unreachable once their tag is zero — so a machine
// reset costs one 32 KB memclr here, not a rebuild.
func (d *decCache) reset() { clear(d.tags[:]) }

// drop invalidates the slot covering the aligned address a, if cached.
func (d *decCache) drop(a uint64) {
	s := d.slot(a)
	if d.tags[s] == a+1 {
		d.tags[s] = 0
	}
}

// decode returns the instruction at pc, from cache when possible.
// Unaligned PCs — reachable only on wrong paths (a mis-speculated jr on
// a garbage register value, a fault-flipped branch target) — bypass the
// cache: they are rare, and store invalidation only tracks the aligned
// instruction words, so caching them could serve a stale decode.
func (m *Machine) decode(pc uint64) (isa.Inst, *isa.OpInfo) {
	if pc&(isa.InstBytes-1) != 0 {
		in := isa.Decode(m.mem.Read(pc, isa.InstBytes))
		return in, in.Info()
	}
	s := m.dec.slot(pc)
	if m.dec.tags[s] == pc+1 {
		return m.dec.inst[s], m.dec.oi[s]
	}
	in := isa.Decode(m.mem.Read(pc, isa.InstBytes))
	oi := in.Info()
	m.dec.tags[s] = pc + 1
	m.dec.inst[s] = in
	m.dec.oi[s] = oi
	return in, oi
}

// decInvalidate drops decode-cache slots overlapped by a committed store
// to [addr, addr+size). A store can overlap at most two aligned
// instruction words.
func (m *Machine) decInvalidate(addr uint64, size int) {
	a0 := addr &^ uint64(isa.InstBytes-1)
	a1 := (addr + uint64(size) - 1) &^ uint64(isa.InstBytes-1)
	m.dec.drop(a0)
	if a1 != a0 {
		m.dec.drop(a1)
	}
}

// ---------------------------------------------------------------------
// Fetch queue ring: the fetch queue used to be a slice trimmed with
// fetchQ = fetchQ[1:] per dispatched instruction, which marched the
// backing array forward and forced append to reallocate. A fixed ring
// keeps it allocation-free after New.

type fetchRing struct {
	buf   []fetchedInst
	mask  int
	limit int // architectural depth (cfg.FetchQueue)
	head  int
	count int
}

func newFetchRing(depth int) *fetchRing {
	capacity := nextPow2(depth)
	return &fetchRing{buf: make([]fetchedInst, capacity), mask: capacity - 1, limit: depth}
}

func (f *fetchRing) len() int    { return f.count }
func (f *fetchRing) full() bool  { return f.count >= f.limit }
func (f *fetchRing) empty() bool { return f.count == 0 }

func (f *fetchRing) push(fi fetchedInst) {
	if f.full() {
		panic("cpu: fetch queue overflow")
	}
	f.buf[(f.head+f.count)&f.mask] = fi
	f.count++
}

// front returns the oldest queued slot; it must not be empty.
func (f *fetchRing) front() *fetchedInst { return &f.buf[f.head] }

func (f *fetchRing) pop() {
	if f.count == 0 {
		panic("cpu: fetch queue underflow")
	}
	f.buf[f.head] = fetchedInst{}
	f.head = (f.head + 1) & f.mask
	f.count--
}

func (f *fetchRing) reset() {
	for f.count > 0 {
		f.pop()
	}
}

// renew returns a ring of the given depth, reusing f's buffer when the
// storage size matches; the result is as-new (empty, head at zero).
func (f *fetchRing) renew(depth int) *fetchRing {
	if f == nil || nextPow2(depth) != len(f.buf) {
		return newFetchRing(depth)
	}
	clear(f.buf)
	f.limit = depth
	f.head, f.count = 0, 0
	return f
}

// ---------------------------------------------------------------------
// Event-driven stage implementations. New installs these as the
// machine's issue/writeback stages; the retained scan-based reference
// scheduler (test files only) swaps itself in for equivalence testing.

// wakeup delivers a completed result to exactly the consumers registered
// on the producer's wait-list, and feeds newly ready consumers to the
// ready queue. It replaces the full-RUU broadcast scan.
func (m *Machine) wakeup(idx int, producer *Entry) {
	wl := m.waitlists[idx]
	for i := range wl {
		w := wl[i]
		c := m.ruu.at(int(w.idx))
		if !c.Valid || c.Seq != w.seq {
			continue // consumer squashed; slot empty or re-used
		}
		op := &c.Ops[w.op]
		if !op.Used || op.Ready || op.Producer != idx || op.ProducerSeq != producer.Seq {
			continue
		}
		op.Ready = true
		op.Value = producer.Result
		if !c.Issued && c.ready() {
			m.ready.push(readyRec{idx: w.idx, seq: c.Seq})
		}
	}
	// Every live waiter has been served (completion is broadcast once),
	// so the list empties; stale waiters died with their entries.
	m.waitlists[idx] = wl[:0]
}

// watch registers consumer (cidx, cseq)'s operand op on the producer at
// ring index pidx. Called at rename time when an operand is not ready.
func (m *Machine) watch(pidx int, cidx int, cseq uint64, op int) {
	m.waitlists[pidx] = append(m.waitlists[pidx], waiter{idx: int32(cidx), seq: cseq, op: uint8(op)})
}

// complete finishes one entry on the event path: publish the result,
// wake consumers, un-park gated redundant load copies, and resolve
// control flow.
func (m *Machine) complete(idx int, e *Entry) {
	e.InFlight = false
	e.Done = true
	m.emit(trace.StageComplete, e)
	m.wakeup(idx, e)

	// A load group's redundant copies are gated on copy 0's single
	// memory access (Section 5.1.2); they were parked by the issue stage
	// and become eligible exactly now. Duplicate records are harmless:
	// the issue pass drops any record whose entry has already issued.
	if e.Copy == 0 && e.OI.IsLoad {
		for k := 1; k < m.cfg.R; k++ {
			sidx := m.ruu.wrap(idx + k)
			s := m.ruu.at(sidx)
			if s.Valid && s.GID == e.GID && !s.Issued && s.ready() {
				m.ready.push(readyRec{idx: int32(sidx), seq: s.Seq})
			}
		}
	}

	// Branch resolution (Section 3.2, "Fault Detection"): as soon as one
	// copy of a control instruction disagrees with the current predicted
	// path, rewind immediately on that singular result.
	if e.OI.IsCtrl() && e.NextPC != e.PredNext {
		m.branchRewind(idx, e)
	}
}

// writebackEvent drains the completion calendar for this cycle in seq
// order: only entries finishing now are visited, oldest first, so the
// eldest mispredicted branch squashes before younger completions are
// looked at (squashed younger records fail their seq guard and drop).
func (m *Machine) writebackEvent() {
	due := m.cal.drain(m.cycle)
	for i := range due {
		rec := due[i]
		e := m.ruu.at(int(rec.idx))
		if !e.Valid || e.Seq != rec.seq || !e.InFlight {
			continue // squashed after issue; record is stale
		}
		m.complete(int(rec.idx), e)
	}
}

// issueEvent selects ready entries oldest-first, up to IssueWidth
// successful issues: the cycle's arrivals are merged (in seq order) with
// the pending set carried from previous cycles, which reproduces the
// age-ordered scan exactly. Structural stalls (busy functional unit,
// blocked load) stay pending and retry next cycle; gated redundant load
// copies are parked and re-queued by their copy 0's completion; stale
// records (squashes, slot reuse) drop on the floor.
func (m *Machine) issueEvent() {
	q := &m.ready
	q.sortIn()
	budget := m.cfg.IssueWidth
	out := m.retry[:0] // next cycle's pending set, built in merge order
	i, j := 0, 0
	for i < len(q.list) || j < len(q.in) {
		var rec readyRec
		if j >= len(q.in) || (i < len(q.list) && q.list[i].seq <= q.in[j].seq) {
			rec = q.list[i]
			i++
		} else {
			rec = q.in[j]
			j++
		}
		if budget == 0 {
			// Width exhausted: keep the rest pending, order intact.
			out = append(out, rec)
			continue
		}
		e := m.ruu.at(int(rec.idx))
		if !e.Valid || e.Seq != rec.seq || e.Issued || !e.ready() {
			continue // stale record (squash or slot reuse)
		}
		switch m.tryIssueEntry(int(rec.idx), e) {
		case issueOK:
			budget--
		case issueStall:
			out = append(out, rec)
		case issueParked:
			// Dropped; the gating completion re-queues it.
		}
	}
	q.in = q.in[:0]
	m.retry = q.list[:0] // old pending array becomes next cycle's scratch
	q.list = out
}
