package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// timingRun executes p on a baseline machine with warm caches (first run
// discarded) and returns steady-state stats.
func timingRun(t *testing.T, p *prog.Program, mutate func(*Config)) *Stats {
	t.Helper()
	cfg := Baseline()
	if mutate != nil {
		mutate(&cfg)
	}
	cfg.Oracle = true
	cfg.MaxCycles = 5_000_000
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted || st.EscapedFaults != 0 {
		t.Fatalf("timing run failed: %s", st.Summary())
	}
	return st
}

// TestMemPortLimit: independent cache-hitting loads cannot exceed the
// two D-cache ports per cycle (Table 1), regardless of issue width.
func TestMemPortLimit(t *testing.T) {
	b := prog.NewBuilder("ports")
	buf := b.Alloc(64)
	b.Li(1, int64(buf))
	b.Li(2, 3000)
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.Load(isa.OpLd, uint8(3+i), 1, int32(i*8)) // independent loads
	}
	b.I(isa.OpAddi, 2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "loop")
	b.Halt()
	p := b.MustBuild()

	st := timingRun(t, p, nil)
	// 10 instructions per iteration, 8 of which are loads needing 4
	// cycles on 2 ports: IPC can't beat 10/4 = 2.5.
	if ipc := st.IPC(); ipc > 2.6 {
		t.Errorf("IPC %.3f exceeds the 2-port bound 2.5", ipc)
	}
	// With 8 ports the same loop runs much faster.
	st8 := timingRun(t, p, func(c *Config) { c.MemPorts = 8 })
	if st8.IPC() < st.IPC()*1.5 {
		t.Errorf("8 ports did not relieve the bottleneck: %.3f vs %.3f", st8.IPC(), st.IPC())
	}
}

// TestUnpipelinedDividerOccupancy: independent divides still serialise on
// the two unpipelined IntMult units at 20 cycles each.
func TestUnpipelinedDividerOccupancy(t *testing.T) {
	b := prog.NewBuilder("divs")
	b.Li(1, 500)
	b.Li(2, 1000)
	b.Li(3, 7)
	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.R(isa.OpDiv, uint8(10+i), 2, 3) // independent divides
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	st := timingRun(t, b.MustBuild(), nil)
	// 4 divides per iteration on 2 unpipelined 20-cycle units: >= 40
	// cycles per iteration, 6 instructions -> IPC <= 0.15.
	if ipc := st.IPC(); ipc > 0.16 {
		t.Errorf("IPC %.3f beats the divider occupancy bound", ipc)
	}
}

// TestPipelinedMultiplierThroughput: multiplies are pipelined, so the
// same structure with muls sustains two per cycle.
func TestPipelinedMultiplierThroughput(t *testing.T) {
	b := prog.NewBuilder("muls")
	b.Li(1, 2000)
	b.Li(2, 3)
	b.Li(3, 5)
	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.R(isa.OpMul, uint8(10+i), 2, 3)
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	st := timingRun(t, b.MustBuild(), nil)
	// 4 muls on 2 pipelined units = 2 cycles; 6 insts per iteration over
	// >= 2 cycles, but the addi/bne overlap: expect IPC near 3.
	if ipc := st.IPC(); ipc < 2.0 {
		t.Errorf("pipelined multiplier IPC %.3f, want near 3", ipc)
	}
}

// TestFPAddLatency: a serial fadd chain pays the 2-cycle latency per
// element.
func TestFPAddLatency(t *testing.T) {
	b := prog.NewBuilder("fplat")
	f1, f2 := uint8(isa.FPBase+1), uint8(isa.FPBase+2)
	b.Li(2, 1)
	b.R(isa.OpCvtIF, f1, 2, 0)
	b.R(isa.OpCvtIF, f2, 2, 0)
	b.Li(1, 2000)
	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.R(isa.OpFadd, f1, f1, f2) // strictly serial: 2 cycles each
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	st := timingRun(t, b.MustBuild(), nil)
	// 8+ cycles per 6-instruction iteration: IPC <= 0.8 (plus overlap
	// slack for the loop overhead).
	if ipc := st.IPC(); ipc > 0.85 {
		t.Errorf("serial fadd chain IPC %.3f ignores the 2-cycle latency", ipc)
	}
}

// TestColdCacheSlowdown: a footprint far beyond the L2 runs slower than
// an L1-resident one.
func TestCacheSensitivity(t *testing.T) {
	build := func(footprint int) *prog.Program {
		b := prog.NewBuilder("cache")
		buf := b.Alloc(footprint)
		b.Li(1, int64(buf))
		b.Li(2, 4000)
		b.Li(4, 0)
		b.Li(5, int64(footprint-64))
		b.Label("loop")
		b.R(isa.OpAdd, 6, 1, 4)
		b.Load(isa.OpLd, 3, 6, 0)
		b.I(isa.OpAddi, 4, 4, 4096+64) // jump pages to defeat locality
		b.R(isa.OpAnd, 4, 4, 5)
		b.I(isa.OpAddi, 2, 2, -1)
		b.Branch(isa.OpBne, 2, 0, "loop")
		b.Halt()
		return b.MustBuild()
	}
	small := timingRun(t, build(8<<10), nil) // L1-resident
	large := timingRun(t, build(4<<20), nil) // far beyond L2
	if large.DL1.MissRate() < 0.5 {
		t.Errorf("large footprint miss rate %.2f, expected streaming misses", large.DL1.MissRate())
	}
	if small.DL1.MissRate() > 0.2 {
		t.Errorf("small footprint miss rate %.2f, expected hits", small.DL1.MissRate())
	}
	if large.IPC() >= small.IPC() {
		t.Errorf("cache misses did not slow execution: %.3f vs %.3f", large.IPC(), small.IPC())
	}
}

// TestRedundantDispatchHalved: in SS-2 mode the architectural dispatch
// rate is width/R; a dispatch-bound loop shows the factor-of-two.
func TestRedundantDispatchHalved(t *testing.T) {
	// Independent single-cycle ops: bound purely by width.
	b := prog.NewBuilder("width")
	b.Li(1, 3000)
	b.Label("loop")
	for i := 0; i < 14; i++ {
		b.R(isa.OpAdd, uint8(2+i%12), 1, 1)
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	p := b.MustBuild()
	ss1 := timingRun(t, p, nil)
	ss2 := timingRun(t, p, func(c *Config) { c.R = 2; c.Checker = testChecker{} })
	ratio := ss2.IPC() / ss1.IPC()
	if ratio < 0.4 || ratio > 0.62 {
		t.Errorf("SS-2/SS-1 = %.2f on a width-bound loop, want ~0.5", ratio)
	}
}
