package cpu

// Verdict is the commit-stage decision for one instruction group.
type Verdict struct {
	// OK permits the group to retire; false triggers a full rewind
	// (discard the RUU, refetch from the committed next-PC).
	OK bool
	// Copy selects whose values to commit (relevant when a majority
	// election accepted the group despite a disagreeing copy).
	Copy int
	// Mismatch records that at least one field disagreed between copies
	// (set both for rewinds and for majority-accepted commits).
	Mismatch bool
	// Majority marks a group committed by majority election.
	Majority bool
}

// Checker cross-checks the R completed copies of a retiring instruction.
// Implementations live in package core (rewind-only for R=2, majority
// election for R>=3). The checker sees entries in copy order.
type Checker interface {
	Check(group []*Entry) Verdict
}
