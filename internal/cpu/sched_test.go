package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// ---------------------------------------------------------------------
// Completion calendar.

func TestCalendarWheelAndFar(t *testing.T) {
	var c calendar
	// Near events go to the wheel, far ones to the heap; both surface at
	// the right cycle, sorted by seq.
	c.insert(100, 102, 7, 50)
	c.insert(100, 102, 3, 10)
	c.insert(100, 100+wheelSize+5, 1, 30) // far
	c.insert(100, 100+wheelSize+5, 2, 20) // far

	if got := c.drain(101); len(got) != 0 {
		t.Fatalf("cycle 101: drained %v, want none", got)
	}
	got := c.drain(102)
	if len(got) != 2 || got[0].seq != 10 || got[1].seq != 50 {
		t.Fatalf("cycle 102: drained %v, want seqs [10 50]", got)
	}
	far := c.drain(100 + wheelSize + 5)
	if len(far) != 2 || far[0].seq != 20 || far[1].seq != 30 {
		t.Fatalf("far cycle: drained %v, want seqs [20 30]", far)
	}
	if len(c.far) != 0 {
		t.Fatalf("far heap not drained: %v", c.far)
	}
}

func TestCalendarSeqSortMixedLatency(t *testing.T) {
	var c calendar
	// A long-latency old entry and short-latency young entries land on
	// the same cycle out of insertion order; drain must return seq order.
	c.insert(10, 30, 1, 100) // issued early, 20-cycle op
	c.insert(29, 30, 2, 900) // issued late, 1-cycle op
	c.insert(29, 30, 3, 500)
	got := c.drain(30)
	if len(got) != 3 || got[0].seq != 100 || got[1].seq != 500 || got[2].seq != 900 {
		t.Fatalf("drained %v, want seqs [100 500 900]", got)
	}
}

// ---------------------------------------------------------------------
// Ready queue.

func TestReadyQueueMergeOrder(t *testing.T) {
	var q readyQueue
	q.list = append(q.list, readyRec{seq: 2}, readyRec{seq: 9})
	q.push(readyRec{seq: 7})
	q.push(readyRec{seq: 4}) // out of order arrival
	q.sortIn()
	if q.in[0].seq != 4 || q.in[1].seq != 7 {
		t.Fatalf("sortIn gave %v", q.in)
	}
	// Merge as issueEvent does.
	var merged []uint64
	i, j := 0, 0
	for i < len(q.list) || j < len(q.in) {
		if j >= len(q.in) || (i < len(q.list) && q.list[i].seq <= q.in[j].seq) {
			merged = append(merged, q.list[i].seq)
			i++
		} else {
			merged = append(merged, q.in[j].seq)
			j++
		}
	}
	want := []uint64{2, 4, 7, 9}
	for k := range want {
		if merged[k] != want[k] {
			t.Fatalf("merge order %v, want %v", merged, want)
		}
	}
}

// ---------------------------------------------------------------------
// Fetch ring.

func TestFetchRingWrapAndReset(t *testing.T) {
	f := newFetchRing(3) // storage rounds to 4, depth stays 3
	if f.limit != 3 || len(f.buf) != 4 {
		t.Fatalf("depth=%d storage=%d", f.limit, len(f.buf))
	}
	for i := 0; i < 3; i++ {
		f.push(fetchedInst{pc: uint64(i)})
	}
	if !f.full() || f.len() != 3 {
		t.Fatal("ring should be full at its architectural depth")
	}
	if f.front().pc != 0 {
		t.Fatalf("front pc = %d", f.front().pc)
	}
	f.pop()
	f.push(fetchedInst{pc: 3}) // wraps storage
	var pcs []uint64
	for !f.empty() {
		pcs = append(pcs, f.front().pc)
		f.pop()
	}
	want := []uint64{1, 2, 3}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("drained %v, want %v", pcs, want)
		}
	}
	f.push(fetchedInst{pc: 9})
	f.reset()
	if !f.empty() {
		t.Fatal("reset left entries")
	}
}

func TestFetchRingOverflowPanics(t *testing.T) {
	f := newFetchRing(2)
	f.push(fetchedInst{})
	f.push(fetchedInst{})
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	f.push(fetchedInst{})
}

// ---------------------------------------------------------------------
// Decoded-instruction cache.

func testMachine(t *testing.T) *Machine {
	t.Helper()
	b := prog.NewBuilder("dec")
	b.Halt()
	m, err := New(Baseline(), b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDecodeCacheHitAndInvalidate(t *testing.T) {
	m := testMachine(t)
	pc := uint64(0x10000)
	w1 := isa.Encode(isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: 1})
	w2 := isa.Encode(isa.Inst{Op: isa.OpXor, Rd: 3, Rs1: 3, Rs2: 3})
	m.mem.Write(pc, 8, w1)

	in, oi := m.decode(pc)
	if in.Op != isa.OpAddi || oi != isa.Info(isa.OpAddi) {
		t.Fatalf("decoded %v", in)
	}
	// Behind the cache's back the word changes; the cache must keep
	// serving the old decode until an invalidation lands.
	m.mem.Write(pc, 8, w2)
	if in, _ := m.decode(pc); in.Op != isa.OpAddi {
		t.Fatalf("expected cached decode, got %v", in)
	}
	// A committed store overlapping the word invalidates the slot.
	m.decInvalidate(pc+4, 4)
	if in, _ := m.decode(pc); in.Op != isa.OpXor {
		t.Fatalf("stale decode after invalidation: %v", in)
	}
}

func TestDecodeCacheStraddlingInvalidate(t *testing.T) {
	m := testMachine(t)
	a, b := uint64(0x20000), uint64(0x20008)
	m.mem.Write(a, 8, isa.Encode(isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: 5}))
	m.mem.Write(b, 8, isa.Encode(isa.Inst{Op: isa.OpAddi, Rd: 3, Rs1: 3, Imm: 6}))
	m.decode(a)
	m.decode(b)
	// An 8-byte store at a+4 overlaps both instruction words: it zeroes
	// the first word's opcode bytes and the second word's immediate.
	m.mem.Write(a+4, 8, 0)
	m.decInvalidate(a+4, 8)
	for _, pc := range []uint64{a, b} {
		want := isa.Decode(m.mem.Read(pc, isa.InstBytes))
		if in, _ := m.decode(pc); in != want {
			t.Fatalf("stale decode at %#x: got %v, want %v", pc, in, want)
		}
	}
	if in, _ := m.decode(a); in.Op != isa.OpNop {
		t.Fatalf("first word's zeroed opcode should decode to nop, got %v", in)
	}
}

// TestCommitStoreInvalidatesDecode runs a real program whose store
// lands on one of its own (already fetched and decode-cached)
// instructions, and checks the commit path's invalidation hook keeps
// the decode cache coherent with committed memory afterwards.
func TestCommitStoreInvalidatesDecode(t *testing.T) {
	patch := isa.Inst{Op: isa.OpAddi, Rd: 5, Rs1: 0, Imm: 77}
	b := prog.NewBuilder("smc")
	b.La(7, "victim")                 // 1 instruction
	b.Li(6, int64(isa.Encode(patch))) // 2 instructions (lih+ori)
	b.Label("victim")
	b.Li(5, 11) // executes unpatched this run
	b.Out(5)
	b.Store(isa.OpSd, 6, 7, 0) // overwrite the victim in memory
	b.Halt()
	victimPC := uint64(prog.TextBase) + 3*isa.InstBytes

	m, err := New(Baseline(), b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted || len(st.Output) != 1 || st.Output[0] != 11 {
		t.Fatalf("run: halted=%v output=%v", st.Halted, st.Output)
	}
	// The victim was fetched (so cached) before the store committed; a
	// fresh decode must now see the patched word, not the cached one.
	if in, _ := m.decode(victimPC); in != patch {
		t.Fatalf("decode after store = %v, want %v", in, patch)
	}
}
