// Package fault implements the transient-fault injection module from the
// paper's Section 5.1.1: "a fault injection module that can randomly
// corrupt some instructions based on a user-specified probability
// distribution function ... at any stage of the pipeline".
//
// Faults are single-event upsets: one bit flip in one speculative value
// belonging to one dynamically executed instruction copy. The injector
// never touches committed state (register file, memory, caches, rename
// table, committed next-PC), which the paper assumes is ECC-protected.
//
// The rate is expressed in faults per executed instruction copy, matching
// the analytical model's definition of f ("we expect 1 instruction
// execution to produce an incorrect result in 1/f instructions"), so an
// R-redundant machine sees group-level corruption at roughly R·f per
// retired instruction.
package fault

import "math/rand"

// Target selects which speculative value a fault corrupts.
type Target uint8

const (
	// TargetResult flips a bit in an instruction copy's computed result
	// as it is written back.
	TargetResult Target = iota
	// TargetAddress flips a bit in a memory instruction copy's computed
	// effective address.
	TargetAddress
	// TargetResident flips a bit in a completed result while it waits in
	// the ROB to commit (the paper's "value becomes corrupted while
	// waiting to commit" case, which forces re-checking at commit time).
	TargetResident
	// TargetBranch flips the computed outcome of a control-flow
	// instruction copy (its next-PC).
	TargetBranch

	numTargets
)

func (t Target) String() string {
	switch t {
	case TargetResult:
		return "result"
	case TargetAddress:
		return "address"
	case TargetResident:
		return "rob-resident"
	case TargetBranch:
		return "branch"
	}
	return "unknown"
}

// AllTargets lists every injection point.
var AllTargets = []Target{TargetResult, TargetAddress, TargetResident, TargetBranch}

// Config parameterises an Injector.
type Config struct {
	// Rate is the probability that a given executed instruction copy is
	// corrupted. Zero disables injection.
	Rate float64
	// Seed makes runs reproducible.
	Seed int64
	// Targets are the enabled injection points; empty means
	// {TargetResult}.
	Targets []Target
}

// Enabled reports whether the configuration injects any faults.
func (c Config) Enabled() bool { return c.Rate > 0 }

// Stats counts injected faults by target.
type Stats struct {
	Injected  uint64
	ByTarget  [numTargets]uint64
	BitsFlips uint64
}

// Count returns the number of faults injected into the given target.
func (s *Stats) Count(t Target) uint64 { return s.ByTarget[t] }

// countedSource wraps a rand.Source and counts raw Int63 draws. It
// deliberately implements only rand.Source (not Source64): every
// generator method the injector uses — Float64, Intn — routes through
// src.Int63() exactly once per draw, so the count plus the seed is a
// complete, replayable description of the RNG state. That is what
// makes a machine snapshot able to capture "where the fault schedule
// is" without access to math/rand's unexported generator state.
type countedSource struct {
	src   rand.Source
	draws uint64
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countedSource) Seed(seed int64) {
	c.draws = 0
	c.src.Seed(seed)
}

// Injector decides, per executed instruction copy, whether to corrupt it
// and how. It is deterministic for a fixed seed.
type Injector struct {
	cfg     Config
	rng     *rand.Rand
	src     *countedSource
	targets []Target

	Stats Stats
}

// New builds an injector; a nil return means injection is disabled.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = []Target{TargetResult}
	}
	src := &countedSource{src: rand.NewSource(cfg.Seed)}
	return &Injector{
		cfg:     cfg,
		rng:     rand.New(src),
		src:     src,
		targets: targets,
	}
}

// Renew returns an injector for cfg, reusing old's RNG storage when
// possible; like New it returns nil when injection is disabled.
// Reseeding a rand.Rand reproduces exactly the stream a fresh
// rand.New(rand.NewSource(seed)) would draw, so a recycled injector's
// fault schedule is bit-identical to a fresh injector's — the property
// the pooled-machine equivalence tests assert. The alternative, a new
// injector per trial, costs a ~5 KB generator state allocation each
// time.
func Renew(old *Injector, cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if old == nil {
		return New(cfg)
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = []Target{TargetResult}
	}
	old.cfg = cfg
	old.rng.Seed(cfg.Seed)
	old.targets = targets
	old.Stats = Stats{}
	return old
}

// Config returns the injector's configuration; nil-safe (a nil
// injector reports the zero, disabled Config).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Draws reports how many raw RNG values the injector has consumed
// since its last (re)seed; nil-safe. Together with Config().Seed it
// pins the injector's exact position in the fault schedule.
func (in *Injector) Draws() uint64 {
	if in == nil {
		return 0
	}
	return in.src.draws
}

// RestoreState rewinds the injector to "seeded with cfg.Seed, then
// draws raw values consumed, with the given statistics". Replaying
// the counted draws against a fresh seed reproduces the generator
// state exactly, because every injector decision consumes whole
// Int63 draws (see countedSource).
func (in *Injector) RestoreState(draws uint64, stats Stats) {
	in.rng.Seed(in.cfg.Seed)
	for i := uint64(0); i < draws; i++ {
		in.src.src.Int63()
	}
	in.src.draws = draws
	in.Stats = stats
}

// Roll decides whether the current instruction copy suffers an upset and,
// if so, at which target. The injector is nil-safe: a nil injector never
// injects.
func (in *Injector) Roll() (Target, bool) {
	if in == nil || in.rng.Float64() >= in.cfg.Rate {
		return 0, false
	}
	t := in.targets[in.rng.Intn(len(in.targets))]
	in.Stats.Injected++
	in.Stats.ByTarget[t]++
	return t, true
}

// FlipBit returns v with one uniformly random bit inverted.
func (in *Injector) FlipBit(v uint64) uint64 {
	in.Stats.BitsFlips++
	return v ^ (1 << uint(in.rng.Intn(64)))
}

// FlipLowBit returns v with one random bit among the low n bits inverted;
// used for values like next-PC where high-bit flips would be
// indistinguishable from address wrap.
func (in *Injector) FlipLowBit(v uint64, n int) uint64 {
	in.Stats.BitsFlips++
	return v ^ (1 << uint(in.rng.Intn(n)))
}
