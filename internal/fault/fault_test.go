package fault

import (
	"math"
	"math/bits"
	"testing"
)

func TestDisabled(t *testing.T) {
	if in := New(Config{Rate: 0}); in != nil {
		t.Error("zero rate returned a non-nil injector")
	}
	var nilInj *Injector
	if _, hit := nilInj.Roll(); hit {
		t.Error("nil injector injected")
	}
}

func TestRateStatistics(t *testing.T) {
	const n = 200_000
	const rate = 0.01
	in := New(Config{Rate: rate, Seed: 7})
	hits := 0
	for i := 0; i < n; i++ {
		if _, hit := in.Roll(); hit {
			hits++
		}
	}
	got := float64(hits) / n
	// Binomial std dev ~ sqrt(p(1-p)/n) ~ 2.2e-4; allow 5 sigma.
	if math.Abs(got-rate) > 5*math.Sqrt(rate*(1-rate)/n) {
		t.Errorf("observed rate %.5f, want ~%.5f", got, rate)
	}
	if in.Stats.Injected != uint64(hits) {
		t.Errorf("stats injected = %d, want %d", in.Stats.Injected, hits)
	}
}

func TestDeterminism(t *testing.T) {
	roll := func() []uint64 {
		in := New(Config{Rate: 0.05, Seed: 99, Targets: AllTargets})
		var seq []uint64
		for i := 0; i < 1000; i++ {
			if tgt, hit := in.Roll(); hit {
				seq = append(seq, uint64(i)<<8|uint64(tgt))
			}
		}
		return seq
	}
	a, b := roll(), roll()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d", i)
		}
	}
}

func TestTargetSelection(t *testing.T) {
	in := New(Config{Rate: 1.0, Seed: 3, Targets: AllTargets})
	var seen [numTargets]bool
	for i := 0; i < 200; i++ {
		tgt, hit := in.Roll()
		if !hit {
			t.Fatal("rate-1.0 injector did not inject")
		}
		seen[tgt] = true
	}
	for _, tgt := range AllTargets {
		if !seen[tgt] {
			t.Errorf("target %v never selected", tgt)
		}
		if in.Stats.Count(tgt) == 0 {
			t.Errorf("target %v has zero count", tgt)
		}
	}
}

func TestDefaultTargetIsResult(t *testing.T) {
	in := New(Config{Rate: 1.0, Seed: 1})
	for i := 0; i < 50; i++ {
		tgt, _ := in.Roll()
		if tgt != TargetResult {
			t.Fatalf("default target = %v, want result", tgt)
		}
	}
}

func TestFlipBit(t *testing.T) {
	in := New(Config{Rate: 1, Seed: 11})
	for i := 0; i < 100; i++ {
		v := uint64(0xAAAA_5555_AAAA_5555)
		got := in.FlipBit(v)
		if bits.OnesCount64(got^v) != 1 {
			t.Fatalf("FlipBit changed %d bits", bits.OnesCount64(got^v))
		}
	}
	if in.Stats.BitsFlips != 100 {
		t.Errorf("flip count = %d", in.Stats.BitsFlips)
	}
}

func TestFlipLowBit(t *testing.T) {
	in := New(Config{Rate: 1, Seed: 13})
	for i := 0; i < 100; i++ {
		got := in.FlipLowBit(0, 16)
		if got == 0 || got >= 1<<16 {
			t.Fatalf("FlipLowBit(0, 16) = %#x outside low 16 bits", got)
		}
	}
}

func TestTargetStrings(t *testing.T) {
	for _, tgt := range AllTargets {
		if tgt.String() == "unknown" || tgt.String() == "" {
			t.Errorf("target %d has no name", tgt)
		}
	}
	if Target(99).String() != "unknown" {
		t.Error("invalid target string")
	}
}
