package fault

import "repro/internal/isa"

// Persistent models a hard (non-transient) fault: a stuck-at-1 bit in
// the bitwise-logic slice of one physical functional unit. Unlike the
// transient injector, it corrupts *every* logical operation executed on
// that unit, in the same way — the failure mode Section 2.2 warns makes
// errors "indiscernible" to space- or time-redundant execution unless
// the redundant computations are made non-identical.
//
// The paper's cited workaround (Patel & Fung: recomputing with shifted/
// rotated operands) is implemented by the datapath's TransformOperands
// option: redundant copy k of a bitwise operation executes with both
// operands rotated left by k and its result rotated back, so a stuck bit
// in the shared unit lands on different result bits in different copies
// and the commit-stage cross-check exposes it.
type Persistent struct {
	// Pool and Unit name the damaged physical unit instance.
	Pool isa.Pool
	Unit int
	// Bit is the stuck-at-1 position in the unit's result.
	Bit uint
}

// Affects reports whether the fault corrupts an operation of the given
// opcode executed on the given pool/unit. Only register-register bitwise
// logic flows through the damaged slice.
func (p *Persistent) Affects(op isa.Op, pool isa.Pool, unit int) bool {
	if p == nil || pool != p.Pool || unit != p.Unit {
		return false
	}
	switch op {
	case isa.OpAnd, isa.OpOr, isa.OpXor:
		return true
	}
	return false
}

// Apply forces the stuck bit in a raw result value.
func (p *Persistent) Apply(v uint64) uint64 {
	return v | 1<<(p.Bit&63)
}
