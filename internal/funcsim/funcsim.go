// Package funcsim implements the in-order functional SRISC simulator.
//
// It serves two roles, both taken from the paper's Section 5.1.1:
//
//   - the reference semantics for the ISA, used by unit tests; and
//   - the "sanity check" oracle: a second committed architectural state,
//     advanced in-order and non-speculatively, that the out-of-order
//     simulator's committed stream is compared against instruction by
//     instruction to prove that error detection caught every injected
//     fault and that recovery restored a good state.
package funcsim

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrLimit = errors.New("funcsim: instruction limit reached")

// Effect records the complete architectural effect of one instruction.
// The out-of-order simulator produces the same structure at commit time so
// the two streams can be compared field by field.
type Effect struct {
	PC     uint64
	Inst   isa.Inst
	NextPC uint64

	WritesReg bool
	Reg       uint8
	RegVal    uint64

	IsLoad   bool
	IsStore  bool
	MemAddr  uint64
	MemSize  int
	StoreVal uint64

	Out    bool
	OutVal uint64

	Halted bool
}

// Mismatch describes the first field in which two effects differ; empty
// string means they agree.
func (e Effect) Mismatch(o Effect) string {
	switch {
	case e.PC != o.PC:
		return fmt.Sprintf("pc %#x vs %#x", e.PC, o.PC)
	case e.Inst != o.Inst:
		return fmt.Sprintf("inst %v vs %v", e.Inst, o.Inst)
	case e.NextPC != o.NextPC:
		return fmt.Sprintf("next-pc %#x vs %#x", e.NextPC, o.NextPC)
	case e.WritesReg != o.WritesReg || (e.WritesReg && (e.Reg != o.Reg || e.RegVal != o.RegVal)):
		return fmt.Sprintf("reg write %v/%s=%#x vs %v/%s=%#x",
			e.WritesReg, isa.RegName(e.Reg), e.RegVal, o.WritesReg, isa.RegName(o.Reg), o.RegVal)
	case e.IsStore != o.IsStore || (e.IsStore && (e.MemAddr != o.MemAddr || e.MemSize != o.MemSize || e.StoreVal != o.StoreVal)):
		return fmt.Sprintf("store %v@%#x=%#x vs %v@%#x=%#x",
			e.IsStore, e.MemAddr, e.StoreVal, o.IsStore, o.MemAddr, o.StoreVal)
	case e.IsLoad != o.IsLoad || (e.IsLoad && e.MemAddr != o.MemAddr):
		return fmt.Sprintf("load %v@%#x vs %v@%#x", e.IsLoad, e.MemAddr, o.IsLoad, o.MemAddr)
	case e.Out != o.Out || (e.Out && e.OutVal != o.OutVal):
		return fmt.Sprintf("out %v=%#x vs %v=%#x", e.Out, e.OutVal, o.Out, o.OutVal)
	case e.Halted != o.Halted:
		return fmt.Sprintf("halted %v vs %v", e.Halted, o.Halted)
	}
	return ""
}

// Machine is an in-order functional SRISC machine.
type Machine struct {
	Regs [isa.NumRegs]uint64
	PC   uint64
	Mem  *mem.Memory

	Halted bool
	// Output collects values written by the out instruction.
	Output []uint64
	// Insts is the number of instructions executed.
	Insts uint64

	opCounts [isa.NumOps]uint64
}

// New loads the program into a fresh memory and returns a machine ready to
// run, with the stack pointer initialised.
func New(p *prog.Program) *Machine {
	m := mem.New()
	entry := p.LoadInto(m)
	return NewWithMemory(m, entry)
}

// NewWithMemory wraps an already-loaded memory image.
func NewWithMemory(m *mem.Memory, entry uint64) *Machine {
	fm := &Machine{Mem: m, PC: entry}
	fm.Regs[isa.RegSP] = prog.StackTop
	return fm
}

// Reg returns the value of architectural register r, applying the
// hardwired-zero rule for r0.
func (m *Machine) Reg(r uint8) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) setReg(r uint8, v uint64) {
	if r != isa.RegZero {
		m.Regs[r] = v
	}
}

// Step executes a single instruction and returns its architectural effect.
// Stepping a halted machine is an error.
func (m *Machine) Step() (Effect, error) {
	if m.Halted {
		return Effect{}, errors.New("funcsim: step after halt")
	}
	word := m.Mem.Read(m.PC, isa.InstBytes)
	in, ok := isa.DecodeStrict(word)
	if !ok {
		return Effect{}, fmt.Errorf("funcsim: illegal instruction %#016x at pc %#x", word, m.PC)
	}
	eff := Effect{PC: m.PC, Inst: in, NextPC: m.PC + isa.InstBytes}
	oi := in.Info()
	a, b := m.Reg(in.Rs1), m.Reg(in.Rs2)

	switch {
	case in.Op == isa.OpHalt:
		eff.Halted = true
		m.Halted = true
	case in.Op == isa.OpOut:
		eff.Out, eff.OutVal = true, a
		m.Output = append(m.Output, a)
	case oi.IsLoad:
		size, signExt := isa.LoadWidth(in.Op)
		addr := isa.EffAddr(in.Imm, a)
		val := m.Mem.Read(addr, size)
		if signExt {
			val = isa.SignExtend(val, size)
		}
		eff.IsLoad, eff.MemAddr, eff.MemSize = true, addr, size
		eff.WritesReg, eff.Reg, eff.RegVal = true, in.Rd, val
		m.setReg(in.Rd, val)
	case oi.IsStore:
		size, _ := isa.LoadWidth(in.Op)
		addr := isa.EffAddr(in.Imm, a)
		eff.IsStore, eff.MemAddr, eff.MemSize, eff.StoreVal = true, addr, size, b
		m.Mem.Write(addr, size, b)
	case oi.IsCtrl():
		_, next, link := isa.EvalCtrl(in.Op, m.PC, in.Imm, a, b)
		eff.NextPC = next
		if oi.WritesRd {
			eff.WritesReg, eff.Reg, eff.RegVal = true, in.Rd, link
			m.setReg(in.Rd, link)
		}
	case oi.WritesRd:
		val := isa.Eval(in.Op, in.Imm, a, b)
		eff.WritesReg, eff.Reg, eff.RegVal = true, in.Rd, val
		m.setReg(in.Rd, val)
	}
	// The hardwired zero register absorbs writes; report the architectural
	// truth (no visible write) so oracle comparison is exact.
	if eff.WritesReg && eff.Reg == isa.RegZero {
		eff.WritesReg, eff.RegVal = false, 0
	}
	m.PC = eff.NextPC
	m.Insts++
	m.opCounts[in.Op]++
	return eff, nil
}

// Run executes until the program halts or limit instructions have been
// executed (limit 0 means no limit). It returns ErrLimit if the budget was
// exhausted first.
func (m *Machine) Run(limit uint64) error {
	for !m.Halted {
		if limit > 0 && m.Insts >= limit {
			return ErrLimit
		}
		if _, err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Mix summarises the dynamic instruction mix in the categories of the
// paper's Table 2. Percentages are of all executed instructions.
type Mix struct {
	Insts  uint64
	MemPct float64 // loads + stores
	IntPct float64 // integer ALU/mult/div, branches, jumps, nop/halt/out
	FAdd   float64 // FP add/sub/compare/convert
	FMul   float64 // FP multiply
	FDiv   float64 // FP divide and sqrt
}

// Mix returns the dynamic instruction mix observed so far.
func (m *Machine) Mix() Mix {
	var mix Mix
	var mem, intg, fadd, fmul, fdiv uint64
	for op := isa.Op(0); op < isa.NumOps; op++ {
		n := m.opCounts[op]
		if n == 0 {
			continue
		}
		oi := isa.Info(op)
		switch {
		case oi.IsMem():
			mem += n
		case op == isa.OpFdiv || op == isa.OpFsqrt:
			fdiv += n
		case oi.Pool == isa.PoolFPMult:
			fmul += n
		case oi.Pool == isa.PoolFPAdd:
			fadd += n
		default:
			intg += n
		}
	}
	total := mem + intg + fadd + fmul + fdiv
	mix.Insts = total
	if total == 0 {
		return mix
	}
	pct := func(n uint64) float64 { return 100 * float64(n) / float64(total) }
	mix.MemPct, mix.IntPct, mix.FAdd, mix.FMul, mix.FDiv =
		pct(mem), pct(intg), pct(fadd), pct(fmul), pct(fdiv)
	return mix
}
