package funcsim

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

// TestALUSemanticsAgainstEval cross-checks the machine's execution of
// single ALU instructions against the pure isa.Eval reference, over
// random operands and opcodes (property-based).
func TestALUSemanticsAgainstEval(t *testing.T) {
	aluOps := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpAddi, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSll, isa.OpSrl, isa.OpSra,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlt, isa.OpSltu, isa.OpSlti,
		isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv,
	}
	f := func(opIdx uint8, a, b uint64, imm int32) bool {
		op := aluOps[int(opIdx)%len(aluOps)]
		bld := prog.NewBuilder("prop")
		// Materialise operands without touching the op under test.
		bld.Li(1, int64(a))
		bld.Li(2, int64(b))
		in := isa.Inst{Op: op, Rd: 3, Rs1: 1, Rs2: 2, Imm: imm}
		if isa.Info(op).IsFP {
			// FP ops read FP registers; move the bit patterns over.
			bld.R(isa.OpMovIF, isa.FPBase+1, 1, 0)
			bld.R(isa.OpMovIF, isa.FPBase+2, 2, 0)
			in.Rd, in.Rs1, in.Rs2 = isa.FPBase+3, isa.FPBase+1, isa.FPBase+2
		}
		bld.Emit(in)
		bld.Halt()
		m := New(bld.MustBuild())
		if err := m.Run(0); err != nil {
			return false
		}
		want := isa.Eval(op, imm, a, b)
		return m.Reg(in.Rd) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryRoundTripProperty: a store followed by a load of the same
// size at the same address returns the stored value (width-masked and
// sign-extended per opcode).
func TestMemoryRoundTripProperty(t *testing.T) {
	pairs := []struct {
		st, ld isa.Op
	}{
		{isa.OpSd, isa.OpLd},
		{isa.OpSw, isa.OpLw},
		{isa.OpSb, isa.OpLb},
	}
	f := func(pairIdx uint8, val uint64, offRaw uint16) bool {
		pair := pairs[int(pairIdx)%len(pairs)]
		off := int32(offRaw % 256)
		bld := prog.NewBuilder("memprop")
		base := bld.Alloc(1024)
		bld.Li(1, int64(base))
		bld.Li(2, int64(val))
		bld.Store(pair.st, 2, 1, off)
		bld.Load(pair.ld, 3, 1, off)
		bld.Halt()
		m := New(bld.MustBuild())
		if err := m.Run(0); err != nil {
			return false
		}
		size, signExt := isa.LoadWidth(pair.ld)
		want := val
		if size < 8 {
			want &= (1 << (8 * uint(size))) - 1
		}
		if signExt {
			want = isa.SignExtend(want, size)
		}
		return m.Reg(3) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBranchSemanticsProperty: conditional branches take exactly when
// EvalCtrl says so, for random operand pairs.
func TestBranchSemanticsProperty(t *testing.T) {
	branches := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge}
	f := func(opIdx uint8, a, b int32) bool {
		op := branches[int(opIdx)%len(branches)]
		bld := prog.NewBuilder("brprop")
		bld.Li(1, int64(a))
		bld.Li(2, int64(b))
		bld.Li(3, 0)
		bld.Branch(op, 1, 2, "taken")
		bld.Li(3, 1) // executed only on fall-through
		bld.Label("taken")
		bld.Halt()
		m := New(bld.MustBuild())
		if err := m.Run(0); err != nil {
			return false
		}
		taken, _, _ := isa.EvalCtrl(op, 0x1000, 8, uint64(int64(a)), uint64(int64(b)))
		fellThrough := m.Reg(3) == 1
		return taken != fellThrough
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
