package funcsim

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// sumProgram computes sum(1..n) in r3 and outputs it.
func sumProgram(n int64) *prog.Program {
	b := prog.NewBuilder("sum")
	b.Li(1, n) // r1 = n (counter)
	b.Li(3, 0) // r3 = acc
	b.Label("loop")
	b.R(isa.OpAdd, 3, 3, 1)   // acc += counter
	b.I(isa.OpAddi, 1, 1, -1) // counter--
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Out(3)
	b.Halt()
	return b.MustBuild()
}

func TestSumLoop(t *testing.T) {
	m := New(sumProgram(100))
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(m.Output) != 1 || m.Output[0] != 5050 {
		t.Fatalf("output = %v, want [5050]", m.Output)
	}
	if !m.Halted {
		t.Error("machine not halted")
	}
	// 2 setup + 100 iterations * 3 + out + halt.
	if want := uint64(2 + 300 + 2); m.Insts != want {
		t.Errorf("executed %d instructions, want %d", m.Insts, want)
	}
}

func TestFibonacci(t *testing.T) {
	b := prog.NewBuilder("fib")
	b.Li(1, 0) // fib(0)
	b.Li(2, 1) // fib(1)
	b.Li(4, 20)
	b.Label("loop")
	b.R(isa.OpAdd, 3, 1, 2)
	b.R(isa.OpAdd, 1, 2, 0) // r1 = r2
	b.R(isa.OpAdd, 2, 3, 0) // r2 = r3
	b.I(isa.OpAddi, 4, 4, -1)
	b.Branch(isa.OpBne, 4, 0, "loop")
	b.Out(2)
	b.Halt()
	m := New(b.MustBuild())
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != 10946 { // fib(21)
		t.Errorf("fib = %d, want 10946", m.Output[0])
	}
}

func TestMemoryOps(t *testing.T) {
	b := prog.NewBuilder("mem")
	arr := b.Word(10, 20, 30, 40)
	b.Li(1, int64(arr))
	b.Load(isa.OpLd, 2, 1, 8)  // r2 = arr[1] = 20
	b.Load(isa.OpLd, 3, 1, 24) // r3 = arr[3] = 40
	b.R(isa.OpAdd, 4, 2, 3)    // 60
	b.Store(isa.OpSd, 4, 1, 0) // arr[0] = 60
	b.Load(isa.OpLd, 5, 1, 0)  // read back
	b.Out(5)
	// Sub-word accesses.
	b.Li(6, -2)
	b.Store(isa.OpSb, 6, 1, 32) // one byte 0xFE
	b.Load(isa.OpLb, 7, 1, 32)  // sign-extends to -2
	b.Out(7)
	b.Load(isa.OpLw, 8, 1, 32) // 32-bit load of 0x000000FE
	b.Out(8)
	b.Halt()
	m := New(b.MustBuild())
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []uint64{60, negU64(2), 0xFE}
	if len(m.Output) != len(want) {
		t.Fatalf("output %v, want %v", m.Output, want)
	}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %#x, want %#x", i, m.Output[i], want[i])
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	b := prog.NewBuilder("fp")
	vals := b.Float(3.0, 4.0)
	b.Li(1, int64(vals))
	f0, f1, f2 := uint8(isa.FPBase), uint8(isa.FPBase+1), uint8(isa.FPBase+2)
	b.Load(isa.OpFld, f0, 1, 0)
	b.Load(isa.OpFld, f1, 1, 8)
	b.R(isa.OpFmul, f2, f0, f0) // 9
	b.R(isa.OpFmul, f1, f1, f1) // 16
	b.R(isa.OpFadd, f2, f2, f1) // 25
	b.R(isa.OpFsqrt, f2, f2, 0) // 5
	b.R(isa.OpCvtFI, 2, f2, 0)  // r2 = 5
	b.Out(2)
	b.Halt()
	m := New(b.MustBuild())
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != 5 {
		t.Errorf("hypot = %d, want 5", m.Output[0])
	}
}

func TestCallReturn(t *testing.T) {
	b := prog.NewBuilder("call")
	b.Li(1, 5)
	b.Jal(isa.RegLink, "double")
	b.Out(1)
	b.Halt()
	b.Label("double")
	b.R(isa.OpAdd, 1, 1, 1)
	b.Emit(isa.Inst{Op: isa.OpJr, Rs1: isa.RegLink})
	m := New(b.MustBuild())
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != 10 {
		t.Errorf("double(5) = %d", m.Output[0])
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	b := prog.NewBuilder("zero")
	b.Li(0, 99) // write to r0 is discarded
	b.R(isa.OpAdd, 1, 0, 0)
	b.Out(1)
	b.Halt()
	m := New(b.MustBuild())
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != 0 {
		t.Errorf("r0 = %d after write, want 0", m.Output[0])
	}
}

func TestEffects(t *testing.T) {
	b := prog.NewBuilder("eff")
	b.Li(1, 7)                      // reg write
	b.Store(isa.OpSd, 1, 0, 0x2000) // store
	b.Load(isa.OpLd, 2, 0, 0x2000)  // load
	b.Halt()
	m := New(b.MustBuild())

	e, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !e.WritesReg || e.Reg != 1 || e.RegVal != 7 {
		t.Errorf("li effect = %+v", e)
	}
	if e.PC != prog.TextBase || e.NextPC != prog.TextBase+8 {
		t.Errorf("li pcs = %#x -> %#x", e.PC, e.NextPC)
	}

	e, _ = m.Step()
	if !e.IsStore || e.MemAddr != 0x2000 || e.StoreVal != 7 || e.MemSize != 8 {
		t.Errorf("store effect = %+v", e)
	}

	e, _ = m.Step()
	if !e.IsLoad || e.MemAddr != 0x2000 || !e.WritesReg || e.RegVal != 7 {
		t.Errorf("load effect = %+v", e)
	}

	e, _ = m.Step()
	if !e.Halted {
		t.Errorf("halt effect = %+v", e)
	}
	if _, err := m.Step(); err == nil {
		t.Error("step after halt did not error")
	}
}

func TestEffectMismatch(t *testing.T) {
	base := Effect{PC: 0x1000, NextPC: 0x1008, WritesReg: true, Reg: 1, RegVal: 5}
	if s := base.Mismatch(base); s != "" {
		t.Errorf("identical effects mismatch: %s", s)
	}
	cases := []Effect{
		{PC: 0x1008, NextPC: 0x1008, WritesReg: true, Reg: 1, RegVal: 5},
		{PC: 0x1000, NextPC: 0x1010, WritesReg: true, Reg: 1, RegVal: 5},
		{PC: 0x1000, NextPC: 0x1008, WritesReg: true, Reg: 2, RegVal: 5},
		{PC: 0x1000, NextPC: 0x1008, WritesReg: true, Reg: 1, RegVal: 6},
		{PC: 0x1000, NextPC: 0x1008},
	}
	for i, c := range cases {
		if s := base.Mismatch(c); s == "" {
			t.Errorf("case %d: differing effects compare equal", i)
		}
	}
}

func TestRunLimit(t *testing.T) {
	b := prog.NewBuilder("spin")
	b.Label("top")
	b.Jump("top")
	m := New(b.MustBuild())
	if err := m.Run(100); !errors.Is(err, ErrLimit) {
		t.Errorf("Run = %v, want ErrLimit", err)
	}
	if m.Insts != 100 {
		t.Errorf("executed %d, want 100", m.Insts)
	}
}

func TestIllegalInstruction(t *testing.T) {
	b := prog.NewBuilder("ill")
	b.Nop()
	p := b.MustBuild()
	m := New(p)
	// Overwrite the nop with an invalid opcode.
	m.Mem.Write(prog.TextBase, 8, uint64(255)<<56)
	if _, err := m.Step(); err == nil {
		t.Error("illegal instruction not reported")
	}
}

func TestMix(t *testing.T) {
	b := prog.NewBuilder("mix")
	f0, f1 := uint8(isa.FPBase), uint8(isa.FPBase+1)
	addr := b.Float(1.0)
	b.Li(1, int64(addr))         // int
	b.Load(isa.OpFld, f0, 1, 0)  // mem
	b.R(isa.OpFadd, f1, f0, f0)  // fp add
	b.R(isa.OpFmul, f1, f1, f0)  // fp mult
	b.R(isa.OpFdiv, f1, f1, f0)  // fp div
	b.Store(isa.OpFsd, f1, 1, 0) // mem
	b.Halt()                     // int
	m := New(b.MustBuild())
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	mix := m.Mix()
	if mix.Insts != 7 {
		t.Fatalf("mix counted %d insts", mix.Insts)
	}
	check := func(name string, got, want float64) {
		if got != want {
			t.Errorf("%s = %.2f%%, want %.2f%%", name, got, want)
		}
	}
	check("mem", mix.MemPct, 200.0/7)
	check("int", mix.IntPct, 200.0/7)
	check("fadd", mix.FAdd, 100.0/7)
	check("fmul", mix.FMul, 100.0/7)
	check("fdiv", mix.FDiv, 100.0/7)
}

// negU64 returns the two's-complement representation of -v.
func negU64(v uint64) uint64 { return ^v + 1 }
