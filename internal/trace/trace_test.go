package trace

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func ev(cycle uint64, st Stage, seq uint64) Event {
	return Event{Cycle: cycle, Stage: st, Seq: seq, GID: seq, PC: 0x1000 + seq*8,
		Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3}}
}

func TestBufferRetention(t *testing.T) {
	b := NewBuffer(3)
	for i := uint64(1); i <= 5; i++ {
		b.Record(ev(i, StageDispatch, i))
	}
	got := b.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, got[i].Seq, want)
		}
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestBufferPartialFill(t *testing.T) {
	b := NewBuffer(10)
	b.Record(ev(1, StageDispatch, 1))
	b.Record(ev(2, StageIssue, 1))
	got := b.Events()
	if len(got) != 2 || got[0].Stage != StageDispatch || got[1].Stage != StageIssue {
		t.Fatalf("events = %+v", got)
	}
}

func TestBufferMinCapacity(t *testing.T) {
	b := NewBuffer(0) // clamps to 1
	b.Record(ev(1, StageDispatch, 1))
	b.Record(ev(2, StageDispatch, 2))
	if got := b.Events(); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("events = %+v", got)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageDispatch: "D", StageIssue: "I", StageComplete: "C",
		StageCommit: "R", StageSquash: "X", Stage(99): "?",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("Stage(%d).String() = %q, want %q", st, st.String(), s)
		}
	}
}

func TestTimeline(t *testing.T) {
	b := NewBuffer(100)
	// Instruction 1: full life cycle.
	b.Record(ev(10, StageDispatch, 1))
	b.Record(ev(11, StageIssue, 1))
	b.Record(ev(12, StageComplete, 1))
	b.Record(ev(13, StageCommit, 1))
	// Instruction 2: squashed after issue.
	b.Record(ev(10, StageDispatch, 2))
	b.Record(ev(11, StageIssue, 2))
	b.Record(ev(12, StageSquash, 2))
	var sb strings.Builder
	b.Timeline(&sb)
	out := sb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 instructions
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "13") {
		t.Errorf("committed instruction missing retire cycle: %q", lines[1])
	}
	if !strings.Contains(lines[2], "X12") {
		t.Errorf("squashed instruction not marked: %q", lines[2])
	}
	if !strings.Contains(out, "add r1, r2, r3") {
		t.Error("disassembly missing from timeline")
	}
}

func TestCountStage(t *testing.T) {
	b := NewBuffer(10)
	b.Record(ev(1, StageDispatch, 1))
	b.Record(ev(2, StageDispatch, 2))
	b.Record(ev(3, StageCommit, 1))
	if b.CountStage(StageDispatch) != 2 || b.CountStage(StageCommit) != 1 || b.CountStage(StageSquash) != 0 {
		t.Error("stage counts wrong")
	}
}
