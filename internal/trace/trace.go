// Package trace records per-instruction pipeline events from the
// out-of-order simulator and renders them as textual timelines, in the
// spirit of SimpleScalar's ptrace. It exists for debugging the datapath
// and for teaching: the timeline makes replication, cross-checking and
// rewind recovery visible instruction by instruction.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// Stage is a pipeline milestone.
type Stage uint8

const (
	// StageDispatch: the copy was allocated an RUU entry and renamed.
	StageDispatch Stage = iota
	// StageIssue: operands ready, functional unit granted.
	StageIssue
	// StageComplete: result written back.
	StageComplete
	// StageCommit: the copy's group retired (architectural effect).
	StageCommit
	// StageSquash: the copy was discarded by a branch rewind or a fault
	// recovery rewind.
	StageSquash
	numStages
)

// String returns the single-letter timeline code for the stage.
func (s Stage) String() string {
	switch s {
	case StageDispatch:
		return "D"
	case StageIssue:
		return "I"
	case StageComplete:
		return "C"
	case StageCommit:
		return "R" // retire
	case StageSquash:
		return "X"
	}
	return "?"
}

// Event is one milestone of one instruction copy.
type Event struct {
	Cycle uint64
	Stage Stage
	Seq   uint64
	GID   uint64
	Copy  int
	PC    uint64
	Inst  isa.Inst
}

// Recorder consumes pipeline events. Implementations must be cheap; the
// simulator calls Record in its main loop.
type Recorder interface {
	Record(Event)
}

// Buffer is a bounded in-memory Recorder keeping the most recent events.
type Buffer struct {
	cap    int
	events []Event
	start  int // ring start when full
	full   bool
}

// NewBuffer returns a Recorder retaining the last capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{cap: capacity, events: make([]Event, 0, capacity)}
}

// Record implements Recorder.
func (b *Buffer) Record(e Event) {
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
		return
	}
	b.full = true
	b.events[b.start] = e
	b.start = (b.start + 1) % b.cap
}

// Events returns the retained events in arrival order.
func (b *Buffer) Events() []Event {
	if !b.full {
		return append([]Event(nil), b.events...)
	}
	out := make([]Event, 0, b.cap)
	out = append(out, b.events[b.start:]...)
	out = append(out, b.events[:b.start]...)
	return out
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// line is one instruction copy's row in the timeline.
type line struct {
	seq    uint64
	gid    uint64
	copyID int
	pc     uint64
	inst   isa.Inst
	cycles [numStages]uint64
	seen   [numStages]bool
}

// Timeline renders the retained events as one row per instruction copy
// with the cycle of each milestone:
//
//	seq   gid  cp  pc        instruction          D      I      C      R/X
//
// Copies of the same instruction share a gid, making the R-way
// replication and the per-copy completion times directly visible.
func (b *Buffer) Timeline(w io.Writer) {
	bynum := make(map[uint64]*line)
	for _, e := range b.Events() {
		l := bynum[e.Seq]
		if l == nil {
			l = &line{seq: e.Seq, gid: e.GID, copyID: e.Copy, pc: e.PC, inst: e.Inst}
			bynum[e.Seq] = l
		}
		l.cycles[e.Stage] = e.Cycle
		l.seen[e.Stage] = true
	}
	lines := make([]*line, 0, len(bynum))
	for _, l := range bynum {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].seq < lines[j].seq })

	fmt.Fprintf(w, "%6s %6s %3s %-10s %-22s %7s %7s %7s %7s\n",
		"seq", "gid", "cp", "pc", "instruction", "D", "I", "C", "R/X")
	cell := func(l *line, s Stage) string {
		if !l.seen[s] {
			return "."
		}
		return fmt.Sprintf("%d", l.cycles[s])
	}
	for _, l := range lines {
		final := "."
		switch {
		case l.seen[StageSquash]:
			final = fmt.Sprintf("X%d", l.cycles[StageSquash])
		case l.seen[StageCommit]:
			final = fmt.Sprintf("%d", l.cycles[StageCommit])
		}
		fmt.Fprintf(w, "%6d %6d %3d %#-10x %-22s %7s %7s %7s %7s\n",
			l.seq, l.gid, l.copyID, l.pc, l.inst.String(),
			cell(l, StageDispatch), cell(l, StageIssue), cell(l, StageComplete), final)
	}
}

// CountStage returns how many retained events have the given stage.
func (b *Buffer) CountStage(s Stage) int {
	n := 0
	for _, e := range b.Events() {
		if e.Stage == s {
			n++
		}
	}
	return n
}
