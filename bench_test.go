package repro

// One benchmark per table/figure of the paper's evaluation section. The
// custom metrics (IPC, penalty%, ...) are the reproduced quantities; the
// time/op numbers measure the simulator itself.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/funcsim"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

// benchInsts is the committed-instruction budget per simulated run.
const benchInsts = 20_000

func runOnce(b *testing.B, p workload.Profile, cfg core.Config) *cpu.Stats {
	b.Helper()
	program, err := p.Build(1 << 32)
	if err != nil {
		b.Fatal(err)
	}
	cfg.MaxInsts = benchInsts
	cfg.MaxCycles = benchInsts * 200
	st, err := core.Run(program, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkTable2Mix regenerates Table 2: the dynamic instruction mix of
// each synthetic benchmark, measured on the functional simulator.
func BenchmarkTable2Mix(b *testing.B) {
	for _, p := range workload.Table2() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			program, err := p.Build(1 << 32)
			if err != nil {
				b.Fatal(err)
			}
			var mix funcsim.Mix
			for i := 0; i < b.N; i++ {
				m := funcsim.New(program)
				if err := m.Run(benchInsts); err != nil && err != funcsim.ErrLimit {
					b.Fatal(err)
				}
				mix = m.Mix()
			}
			b.ReportMetric(mix.MemPct, "mem%")
			b.ReportMetric(mix.IntPct, "int%")
			b.ReportMetric(mix.FAdd+mix.FMul+mix.FDiv, "fp%")
		})
	}
}

// BenchmarkFig3Model and BenchmarkFig4Model regenerate the analytic
// curves of Figures 3 and 4 (IPC vs fault frequency, rewind penalty 20
// and 2000 cycles).
func BenchmarkFig3Model(b *testing.B) { benchAnalytic(b, 20) }
func BenchmarkFig4Model(b *testing.B) { benchAnalytic(b, 2000) }

func benchAnalytic(b *testing.B, rw float64) {
	freqs := model.LogSpace(1e-8, 1e-1, 64)
	var last float64
	for i := 0; i < b.N; i++ {
		for _, r := range []int{2, 3} {
			pts := model.Curve(model.CurveConfig{IPC1: 1, B: 1, R: r, Rewind: rw}, freqs)
			last = pts[len(pts)-1].IPC
		}
		pts := model.Curve(model.CurveConfig{IPC1: 1, B: 1, R: 3, Majority: true, Rewind: rw}, freqs)
		last += pts[0].IPC
	}
	b.ReportMetric(last, "ipc-at-extremes")
}

// BenchmarkFig5SteadyState regenerates Figure 5: steady-state IPC of
// SS-1, Static-2 and SS-2 for each of the 11 benchmarks. The reported
// "ipc" metric is the reproduced bar height.
func BenchmarkFig5SteadyState(b *testing.B) {
	models := []struct {
		name string
		cfg  func() core.Config
	}{
		{"SS-1", core.SS1},
		{"Static-2", core.Static2},
		{"SS-2", core.SS2},
	}
	for _, p := range workload.Table2() {
		for _, m := range models {
			p, m := p, m
			b.Run(p.Name+"/"+m.name, func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					st := runOnce(b, p, m.cfg())
					ipc = st.IPC()
				}
				b.ReportMetric(ipc, "ipc")
			})
		}
	}
}

// BenchmarkFig6FaultSweep regenerates Figure 6: simulated IPC of the R=2
// and R=3-majority designs under increasing fault frequency (fpppp).
func BenchmarkFig6FaultSweep(b *testing.B) {
	p, _ := workload.ByName("fpppp")
	rates := []float64{0, 100, 1000, 10_000, 50_000} // faults per M copies
	for _, rate := range rates {
		rate := rate
		for _, mk := range []struct {
			name string
			cfg  func() core.Config
		}{{"R2", core.SS2}, {"R3maj", core.SS3}} {
			mk := mk
			b.Run(fmt.Sprintf("%s/faultsPerM=%.0f", mk.name, rate), func(b *testing.B) {
				var ipc, rewinds float64
				for i := 0; i < b.N; i++ {
					cfg := mk.cfg()
					cfg.Fault = fault.Config{Rate: rate / 1e6, Seed: 9, Targets: fault.AllTargets}
					st := runOnce(b, p, cfg)
					ipc = st.IPC()
					rewinds = float64(st.FaultRewinds)
				}
				b.ReportMetric(ipc, "ipc")
				b.ReportMetric(rewinds, "rewinds")
			})
		}
	}
}

// BenchmarkSensitivity regenerates the Section 5.2 resource-sensitivity
// observations for three representative benchmarks: an FU-limited one
// (fpppp), an ILP-limited one (go) and the divide-bound ammp.
func BenchmarkSensitivity(b *testing.B) {
	for _, name := range []string{"fpppp", "go", "ammp"} {
		p, _ := workload.ByName(name)
		b.Run(name, func(b *testing.B) {
			var base, fu2 float64
			for i := 0; i < b.N; i++ {
				base = runOnce(b, p, core.SS1()).IPC()
				cfg := core.SS1()
				cfg.CPU.IntALU *= 2
				cfg.CPU.IntMult *= 2
				cfg.CPU.FPAdd *= 2
				cfg.CPU.FPMult *= 2
				cfg.CPU.MemPorts *= 2
				fu2 = runOnce(b, p, cfg).IPC()
			}
			b.ReportMetric(base, "ipc-base")
			b.ReportMetric(100*(fu2/base-1), "fu2x-gain%")
		})
	}
}

// BenchmarkAblateCoSchedule measures the Section 3.5 co-scheduling
// option's throughput effect on SS-2.
func BenchmarkAblateCoSchedule(b *testing.B) {
	p, _ := workload.ByName("gcc")
	for _, cosched := range []bool{false, true} {
		cosched := cosched
		b.Run(fmt.Sprintf("cosched=%v", cosched), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.SS2()
				cfg.CoSchedule = cosched
				ipc = runOnce(b, p, cfg).IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblateCommitWidth measures the commit-bandwidth tax of
// replication (Section 3.2) as the provisioned width varies.
func BenchmarkAblateCommitWidth(b *testing.B) {
	p, _ := workload.ByName("gcc")
	for _, w := range []int{4, 8, 16} {
		w := w
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				c1 := core.SS1()
				c1.CPU.CommitWidth = w
				c2 := core.SS2()
				c2.CPU.CommitWidth = w
				ipc1 := runOnce(b, p, c1).IPC()
				ipc2 := runOnce(b, p, c2).IPC()
				ratio = ipc2 / ipc1
			}
			b.ReportMetric(ratio, "ss2/ss1")
		})
	}
}

// BenchmarkCampaign measures the evaluation-campaign engine on the
// Figure 5 grid (11 benchmarks x 3 machine models): the same spec run
// with one worker versus GOMAXPROCS workers. The reported
// "gridTrials/s" metric is the campaign throughput; on a multi-core
// host the parallel case scales with the core count while producing
// identical rows. The metrics sink is attached, so the recorded
// trajectory numbers carry the cost of a fully instrumented engine —
// the configuration the daemon actually runs.
func BenchmarkCampaign(b *testing.B) {
	// The parallel case is named without the worker count so recorded
	// trajectories stay comparable across hosts (the bench-diff gate
	// matches benchmarks by name).
	cases := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			m := campaign.NewMetrics(obs.NewRegistry())
			trials := 0
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig5(experiments.Options{MaxInsts: 4_000, Parallel: c.workers, Metrics: m})
				if err != nil {
					b.Fatal(err)
				}
				trials += 3 * len(rows)
			}
			b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "gridTrials/s")
		})
	}
}

// BenchmarkPipelineHot measures the scheduler's inner loop in isolation:
// one pipeline simulated end to end, across the redundancy degrees and
// window sizes that stress the issue/wakeup/writeback machinery. The
// "simCycles/s" metric is the one a scheduling regression moves; it is
// independent of campaign-engine overhead.
func BenchmarkPipelineHot(b *testing.B) {
	p, _ := workload.ByName("gcc")
	program, err := p.Build(1 << 32)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		r    int
		ruu  int
	}{
		{"R1/RUU64", 1, 64},
		{"R1/RUU256", 1, 256},
		{"R3/RUU64", 3, 64},
		{"R3/RUU256", 3, 256},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := core.SS1()
				if c.r == 3 {
					cfg = core.SS3()
				}
				cfg.CPU.RUUSize = c.ruu
				cfg.CPU.LSQSize = c.ruu / 2
				cfg.MaxInsts = benchInsts
				cfg.MaxCycles = benchInsts * 200
				st, err := core.Run(program, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simCycles/s")
		})
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// instructions per second of wall time (not a paper artifact, but the
// number that bounds experiment turnaround).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, _ := workload.ByName("bzip")
	program, err := p.Build(1 << 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		cfg := core.SS1()
		cfg.MaxInsts = benchInsts
		cfg.MaxCycles = benchInsts * 200
		st, err := core.Run(program, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += st.Committed
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simInsts/s")
}
