// Command ftsim runs one program on a simulated fault-tolerant
// superscalar machine and prints its statistics.
//
// The program is either a built-in synthetic benchmark (-bench, see the
// paper's Table 2) or an SRISC assembly file (-asm). The machine model
// (-model) is one of the paper's four designs; fault injection is
// controlled by -fault-rate (faults per executed instruction copy).
//
// Examples:
//
//	ftsim -bench fpppp -model ss2 -insts 200000
//	ftsim -bench gcc -model ss3 -fault-rate 1e-4 -oracle
//	ftsim -asm prog.s -model ss1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftsim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", "", "built-in benchmark name ("+strings.Join(workload.Names(), ", ")+")")
	asmFile := flag.String("asm", "", "SRISC assembly file to run instead of a benchmark")
	modelName := flag.String("model", "ss1", "machine model: ss1|ss2|ss3|ss3rewind|static2")
	insts := flag.Uint64("insts", 200_000, "maximum committed instructions (0 = run to halt)")
	cycles := flag.Uint64("cycles", 50_000_000, "maximum cycles")
	faultRate := flag.Float64("fault-rate", 0, "faults per executed instruction copy")
	faultSeed := flag.Int64("fault-seed", 1, "fault injection seed")
	oracle := flag.Bool("oracle", false, "co-simulate an in-order oracle and compare committed state")
	cosched := flag.Bool("cosched", false, "co-schedule redundant copies on distinct functional units")
	showOutput := flag.Bool("output", false, "print values written by the out instruction")
	traceN := flag.Int("trace", 0, "print a pipeline timeline of the last N instruction copies")
	flag.Parse()

	var program *prog.Program
	switch {
	case *bench != "" && *asmFile != "":
		return fmt.Errorf("-bench and -asm are mutually exclusive")
	case *bench != "":
		p, ok := workload.ByName(*bench)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", *bench)
		}
		var err error
		program, err = p.Build(1 << 32)
		if err != nil {
			return err
		}
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			return err
		}
		program, err = asm.Assemble(*asmFile, string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -bench or -asm is required")
	}

	var cfg core.Config
	switch *modelName {
	case "ss1":
		cfg = core.SS1()
	case "ss2":
		cfg = core.SS2()
	case "ss3":
		cfg = core.SS3()
	case "ss3rewind":
		cfg = core.SS3Rewind()
	case "static2":
		cfg = core.Static2()
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	cfg.Fault = fault.Config{Rate: *faultRate, Seed: *faultSeed, Targets: fault.AllTargets}
	cfg.Oracle = *oracle
	cfg.CoSchedule = *cosched
	cfg.MaxInsts = *insts
	cfg.MaxCycles = *cycles

	var buf *trace.Buffer
	if *traceN > 0 {
		// Each instruction copy generates up to four events.
		buf = trace.NewBuffer(*traceN * 4)
		cfg.CPU.Tracer = buf
	}

	st, err := core.Run(program, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("model        %s (R=%d)\n", cfg.CPU.Name, cfg.R)
	fmt.Printf("program      %s\n", program.Name)
	fmt.Printf("cycles       %d\n", st.Cycles)
	fmt.Printf("instructions %d (copies %d)\n", st.Committed, st.Copies)
	fmt.Printf("IPC          %.4f (copy IPC %.4f)\n", st.IPC(), st.CopyIPC())
	fmt.Printf("halted       %v\n", st.Halted)
	fmt.Printf("branch       %d cond lookups, %.2f%% mispredict, %d rewinds\n",
		st.Bpred.CondLookups, 100*st.Bpred.MispredictRate(), st.BranchRewinds)
	fmt.Printf("caches       il1 %.2f%% dl1 %.2f%% l2 %.2f%% miss\n",
		100*st.IL1.MissRate(), 100*st.DL1.MissRate(), 100*st.L2.MissRate())
	if *faultRate > 0 || cfg.R > 1 {
		fmt.Printf("faults       injected %d, detected %d, pc-check %d\n",
			st.Fault.Injected, st.FaultsDetected, st.PCCheckFails)
		fmt.Printf("recovery     %d rewinds, avg penalty %.1f cycles, %d majority commits\n",
			st.FaultRewinds, st.AvgRecoveryPenalty(), st.MajorityCommits)
	}
	if *oracle {
		fmt.Printf("oracle       %d escaped faults\n", st.EscapedFaults)
	}
	if *showOutput {
		for _, v := range st.Output {
			fmt.Printf("out          %d (%#x)\n", int64(v), v)
		}
	}
	if buf != nil {
		fmt.Println()
		buf.Timeline(os.Stdout)
	}
	return nil
}
