// Command ftsim runs one program on a simulated fault-tolerant
// superscalar machine and prints its statistics. It is a thin shell
// over the public repro/ftsim API.
//
// The program is either a built-in synthetic benchmark (-bench, see the
// paper's Table 2) or an SRISC assembly file (-asm). The machine is one
// of the paper's designs (-model) or a serialized machine description
// (-config); -dump-config prints the exact JSON the run would use, so a
// tweaked command line can be persisted and replayed. Fault injection
// is controlled by -fault-rate (faults per executed instruction copy).
// Interrupting a run (Ctrl-C) cancels the simulation cleanly.
//
// Examples:
//
//	ftsim -bench fpppp -model ss2 -insts 200000
//	ftsim -bench gcc -model ss3 -fault-rate 1e-4 -oracle
//	ftsim -asm prog.s -model ss1
//	ftsim -bench swim -model ss2 -dump-config > ss2.json
//	ftsim -bench swim -config ss2.json -progress 100000
//
// A long run can be made durable with snapshots: -snapshot-save writes
// the complete machine state when the run stops (including on Ctrl-C),
// and -snapshot-load resumes it — under the same machine flags, with a
// possibly larger -insts/-cycles budget:
//
//	ftsim -bench gcc -model ss2 -insts 5000000 -snapshot-save run.ftsn
//	ftsim -model ss2 -insts 10000000 -snapshot-load run.ftsn
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/ftsim"
	"repro/internal/buildinfo"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ftsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "ftsim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", "", "built-in benchmark name ("+strings.Join(ftsim.Benchmarks(), ", ")+")")
	asmFile := flag.String("asm", "", "SRISC assembly file to run instead of a benchmark")
	modelName := flag.String("model", "ss1", "machine model: ss1|ss2|ss3|ss3rewind|static2")
	configFile := flag.String("config", "", "JSON machine description to run (overrides -model)")
	dumpConfig := flag.Bool("dump-config", false, "print the machine description as JSON and exit")
	insts := flag.Uint64("insts", 200_000, "maximum committed instructions (0 = run to halt)")
	cycles := flag.Uint64("cycles", 50_000_000, "maximum cycles")
	faultRate := flag.Float64("fault-rate", 0, "faults per executed instruction copy")
	faultSeed := flag.Int64("fault-seed", 1, "fault injection seed")
	oracle := flag.Bool("oracle", false, "co-simulate an in-order oracle and compare committed state")
	strict := flag.Bool("strict", false, "abort on the first oracle divergence instead of counting it (implies -oracle)")
	cosched := flag.Bool("cosched", false, "co-schedule redundant copies on distinct functional units")
	showOutput := flag.Bool("output", false, "print values written by the out instruction")
	traceN := flag.Int("trace", 0, "print a pipeline timeline of the last N instruction copies")
	progressEvery := flag.Uint64("progress", 0, "stream IPC/fault progress to stderr every N cycles")
	snapSave := flag.String("snapshot-save", "", "write a resumable machine snapshot to this file when the run stops (including on Ctrl-C)")
	snapLoad := flag.String("snapshot-load", "", "resume a snapshotted run from this file instead of loading a program")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print(os.Stdout, "ftsim")
		return nil
	}

	var program *ftsim.Program
	var err error
	switch {
	case *bench != "" && *asmFile != "":
		return fmt.Errorf("-bench and -asm are mutually exclusive")
	case *snapLoad != "" && (*bench != "" || *asmFile != ""):
		return fmt.Errorf("-snapshot-load resumes the snapshotted workload; drop -bench/-asm")
	case *bench != "":
		program, err = ftsim.Benchmark(*bench)
	case *asmFile != "":
		program, err = ftsim.AssembleFile(*asmFile)
	case *snapLoad != "":
		// Resuming: the workload image (memory, PC, program text) lives
		// in the snapshot; the flags only describe the machine.
	default:
		return fmt.Errorf("one of -bench, -asm or -snapshot-load is required")
	}
	if err != nil {
		return err
	}

	// With -config, a flag's default must not silently override the
	// persisted machine description: only explicitly set flags win
	// (including explicit -oracle=false style disables).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	overrides := *configFile == ""
	set := func(name string) bool { return overrides || explicit[name] }

	cfg := ftsim.Model(*modelName).Config()
	if *configFile != "" {
		if explicit["model"] {
			return fmt.Errorf("-config and -model are mutually exclusive")
		}
		data, err := os.ReadFile(*configFile)
		if err != nil {
			return err
		}
		cfg, err = ftsim.ParseConfig(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *configFile, err)
		}
	}
	if set("fault-seed") {
		cfg.Fault.Seed = *faultSeed
	}
	if set("insts") {
		cfg.MaxInsts = *insts
	}
	if set("cycles") {
		cfg.MaxCycles = *cycles
	}
	if set("fault-rate") {
		cfg.Fault.Rate = *faultRate
		// All injection points by default, matching the -model path; a
		// config file's persisted target list is preserved.
		if *faultRate > 0 && len(cfg.Fault.Targets) == 0 {
			cfg.Fault.Targets = ftsim.AllFaultTargets()
		}
	}
	if set("oracle") {
		cfg.Oracle = *oracle
	}
	if set("cosched") {
		cfg.CoSchedule = *cosched
	}

	var opts []ftsim.Option
	if *strict {
		opts = append(opts, ftsim.WithStrictOracle())
	}
	if *traceN > 0 {
		// Each instruction copy generates up to four events.
		opts = append(opts, ftsim.WithTraceBuffer(*traceN*4))
	}
	if *progressEvery > 0 {
		opts = append(opts,
			ftsim.WithObserveEvery(*progressEvery),
			ftsim.WithObserver(ftsim.ObserverFunc(func(iv ftsim.Interval) {
				if iv.Final {
					return
				}
				fmt.Fprintf(os.Stderr, "  cycle %-10d insts %-10d IPC %6.3f (interval %6.3f)  detected %d  rewinds %d\n",
					iv.Cycles, iv.Committed, iv.IPC, iv.IntervalIPC, iv.FaultsDetected, iv.FaultRewinds)
			})))
	}

	m, err := ftsim.NewFromConfig(cfg, opts...)
	if err != nil {
		return err
	}
	cfg = m.Config()

	if *dumpConfig {
		data, err := cfg.JSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var session *ftsim.Session
	workload := ""
	if *snapLoad != "" {
		data, err := os.ReadFile(*snapLoad)
		if err != nil {
			return err
		}
		session, err = m.Restore(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *snapLoad, err)
		}
		workload = fmt.Sprintf("resumed from %s (cycle %d)", *snapLoad, session.Stats().Cycles)
	} else {
		session, err = m.Load(program)
		if err != nil {
			return err
		}
		workload = program.Name()
	}
	st, runErr := session.Run(ctx)
	if *snapSave != "" {
		// Saved even when the run was interrupted or failed — capturing
		// an in-flight workload mid-run is the point of snapshotting.
		blob := session.Snapshot()
		if err := os.WriteFile(*snapSave, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ftsim: snapshot at cycle %d (%d bytes) written to %s\n",
			st.Cycles, len(blob), *snapSave)
	}
	if runErr != nil {
		return runErr
	}

	fmt.Printf("model        %s (R=%d)\n", cfg.Name, cfg.R)
	fmt.Printf("program      %s\n", workload)
	fmt.Printf("cycles       %d\n", st.Cycles)
	fmt.Printf("instructions %d (copies %d)\n", st.Committed, st.Copies)
	fmt.Printf("IPC          %.4f (copy IPC %.4f)\n", st.IPC(), st.CopyIPC())
	fmt.Printf("halted       %v\n", st.Halted)
	fmt.Printf("branch       %d cond lookups, %.2f%% mispredict, %d rewinds\n",
		st.Bpred.CondLookups, 100*st.Bpred.MispredictRate(), st.BranchRewinds)
	fmt.Printf("caches       il1 %.2f%% dl1 %.2f%% l2 %.2f%% miss\n",
		100*st.IL1.MissRate(), 100*st.DL1.MissRate(), 100*st.L2.MissRate())
	if cfg.Fault.Enabled() || cfg.R > 1 {
		fmt.Printf("faults       injected %d, detected %d, pc-check %d\n",
			st.Fault.Injected, st.FaultsDetected, st.PCCheckFails)
		fmt.Printf("recovery     %d rewinds, avg penalty %.1f cycles, %d majority commits\n",
			st.FaultRewinds, st.AvgRecoveryPenalty(), st.MajorityCommits)
	}
	if cfg.Oracle {
		fmt.Printf("oracle       %d escaped faults\n", st.EscapedFaults)
	}
	if *showOutput {
		for _, v := range st.Output {
			fmt.Printf("out          %d (%#x)\n", int64(v), v)
		}
	}
	if *traceN > 0 {
		fmt.Println()
		session.WriteTimeline(os.Stdout)
	}
	return nil
}
