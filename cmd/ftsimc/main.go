// Command ftsimc is the ftsimd client CLI.
//
//	ftsimc -addr http://127.0.0.1:8080 submit config.json
//	ftsimc submit -bench swim -seed 7 -max-insts 50000 ftsim/testdata/*.json
//	ftsimc status <job-id>          # one-line summary
//	ftsimc status -stats <job-id>   # raw aggregate stats JSON
//	ftsimc watch <job-id>           # live SSE progress to completion
//	ftsimc cancel <job-id>
//	ftsimc list
//
// submit builds one trial per config file (or wraps a full campaign
// request file unchanged when it already contains a "trials" array)
// and prints the job ID. watch exits 0 on done, 1 on failed/cancelled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/ftsim"
	"repro/ftsim/api"
	"repro/ftsim/client"
	"repro/internal/buildinfo"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ftsimc [-addr URL] [-token ID] [-auth-token T] <command> [args]

commands:
  submit [-name N] [-bench B] [-seed S] [-workers W] [-max-insts I] [-shards K] <config.json>...
  status [-stats] [-o json] <job-id>
  watch  <job-id>
  cancel <job-id>
  list   [-o json]
  version`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", envOr("FTSIMD_ADDR", "http://127.0.0.1:8080"), "ftsimd base URL (env FTSIMD_ADDR)")
	token := flag.String("token", "", "client identity for quota accounting")
	authToken := flag.String("auth-token", os.Getenv("FTSIMD_AUTH_TOKEN"), "daemon bearer token (env FTSIMD_AUTH_TOKEN)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "ftsimc")
		return
	}
	if flag.NArg() == 0 {
		usage()
	}

	c := &client.Client{BaseURL: strings.TrimRight(*addr, "/"), Token: *token, AuthToken: *authToken}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = runSubmit(ctx, c, args)
	case "status":
		err = runStatus(ctx, c, args)
	case "watch":
		err = runWatch(ctx, c, args)
	case "cancel":
		err = runCancel(ctx, c, args)
	case "list":
		err = runList(ctx, c, args)
	case "version":
		buildinfo.Print(os.Stdout, "ftsimc")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftsimc: %v\n", err)
		os.Exit(1)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// runSubmit builds a campaign from config files — one trial each —
// and submits it. A single file that already holds a full campaign
// request (a "trials" array) is forwarded unchanged.
func runSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	name := fs.String("name", "", "campaign name (default: first config's basename)")
	bench := fs.String("bench", "", "benchmark for every trial (default: server's)")
	seed := fs.Int64("seed", 0, "campaign master seed (0 = server default)")
	workers := fs.Int("workers", 0, "worker goroutines for this campaign (0 = server default)")
	maxInsts := fs.Uint64("max-insts", 0, "override each config's instruction budget")
	shards := fs.Int("shards", 0, "shard count hint for coordinator daemons (0 = coordinator default)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("submit: no config files")
	}

	req := &api.CampaignRequest{Name: *name, Seed: *seed, Workers: *workers, Shards: *shards}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		base := strings.TrimSuffix(filepath.Base(path), ".json")
		if fs.NArg() == 1 && hasTrials(data) {
			// A full request file: forward as-is.
			st, err := c.SubmitRaw(ctx, data)
			if err != nil {
				return err
			}
			fmt.Println(st.ID)
			return nil
		}
		var cfg ftsim.Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if *maxInsts > 0 {
			cfg.MaxInsts = *maxInsts
		}
		if req.Name == "" {
			req.Name = base
		}
		req.Trials = append(req.Trials, api.TrialSpec{
			Label: base, Benchmark: *bench, Config: cfg,
		})
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	fmt.Println(st.ID)
	return nil
}

func hasTrials(data []byte) bool {
	var probe map[string]json.RawMessage
	return json.Unmarshal(data, &probe) == nil && probe["trials"] != nil
}

func summarize(st *api.JobStatus) string {
	s := fmt.Sprintf("%s  %-9s  %-16s  %d/%d trials", st.ID, st.State, st.Name, st.Done, st.Trials)
	if st.Failed > 0 {
		s += fmt.Sprintf("  %d failed", st.Failed)
	}
	if st.Resumed > 0 {
		s += fmt.Sprintf("  %d resumed", st.Resumed)
	}
	if st.Error != "" {
		s += "  (" + st.Error + ")"
	}
	return s
}

// printJSON writes v to stdout as indented JSON, for -o json output
// that scripts pipe into jq.
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// checkOutput validates an -o flag value.
func checkOutput(o string) error {
	if o != "" && o != "json" {
		return fmt.Errorf("bad -o %q (want json)", o)
	}
	return nil
}

func runStatus(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	stats := fs.Bool("stats", false, "print the raw aggregate stats JSON instead of a summary")
	output := fs.String("o", "", `output format: "json" prints the full JobStatus record`)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("status: want one job ID")
	}
	if err := checkOutput(*output); err != nil {
		return fmt.Errorf("status: %w", err)
	}
	st, err := c.Status(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	if *stats {
		if len(st.Stats) == 0 {
			return fmt.Errorf("job %s (%s) has no stats", st.ID, st.State)
		}
		fmt.Println(string(st.Stats))
		return nil
	}
	if *output == "json" {
		return printJSON(st)
	}
	fmt.Println(summarize(st))
	return nil
}

func runWatch(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("watch: want one job ID")
	}
	var final *api.JobStatus
	err := c.Watch(ctx, args[0], 0, func(ev api.Event) error {
		switch ev.Type {
		case api.EventState:
			fmt.Printf("state: %s\n", ev.State)
		case api.EventInterval:
			if ev.Interval != nil {
				fmt.Printf("  trial %d (%s): %d cycles, IPC %.3f, %d faults detected\n",
					ev.Trial, ev.Label, ev.Interval.Cycles, ev.Interval.IPC, ev.Interval.FaultsDetected)
			}
		case api.EventTrial:
			line := fmt.Sprintf("trial %d (%s): done %d/%d in %.3fs", ev.Trial, ev.Label, ev.Done, ev.Total, ev.Seconds)
			if ev.Err != "" {
				line += "  ERROR: " + ev.Err
			}
			fmt.Println(line)
		case api.EventDone:
			final = ev.Status
		}
		return nil
	})
	if err != nil {
		return err
	}
	if final != nil {
		fmt.Println(summarize(final))
		if final.State != api.StateDone {
			os.Exit(1)
		}
	}
	return nil
}

func runCancel(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel: want one job ID")
	}
	st, err := c.Cancel(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Println(summarize(st))
	return nil
}

func runList(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	output := fs.String("o", "", `output format: "json" prints the full JobStatus records`)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("list: no arguments")
	}
	if err := checkOutput(*output); err != nil {
		return fmt.Errorf("list: %w", err)
	}
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	if *output == "json" {
		return printJSON(jobs)
	}
	for _, st := range jobs {
		fmt.Println(summarize(st))
	}
	return nil
}
