// Command ftsimd serves fault-injection campaigns over HTTP.
//
// Clients POST campaign grids as JSON — either a full campaign request
// or a bare machine config (the ftsim/testdata golden files are valid
// bodies as-is) — and the daemon queues them onto the campaign engine,
// streams per-interval samples and per-trial completions as SSE, and
// journals completed trials under -data-dir so a killed or restarted
// daemon resumes unfinished campaigns where they stopped.
//
//	ftsimd -addr :8080 -data-dir /var/lib/ftsimd
//	ftsimd -addr 127.0.0.1:0 -jobs 2 -workers 4
//
// Coordinator mode shards campaigns across a fleet of worker ftsimd
// daemons instead of simulating locally — same API, same results,
// byte for byte:
//
//	ftsimd -coordinator -worker-urls http://w1:8080,http://w2:8080
//
// -auth-token locks the daemon's campaign API behind a shared bearer
// token (probe endpoints stay open); -worker-auth-token is the
// credential a coordinator presents to its workers.
//
// Observability: GET /metrics serves the Prometheus text exposition
// (queue, job lifecycle, SSE hub, HTTP serving, campaign-engine and —
// in coordinator mode — shard-dispatch families), -pprof mounts
// net/http/pprof under /debug/pprof/, and operational logs are
// structured (-log-format text|json, -log-level).
//
// SIGINT/SIGTERM drain gracefully: admission stops, running campaigns
// flush their checkpoint journals and return, queued jobs stay queued
// for the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/server"
)

// newLogger builds the daemon logger from the -log-format and
// -log-level flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// splitURLs parses the -worker-urls list, trimming blanks so trailing
// commas and stray spaces don't become phantom workers.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	dataDir := flag.String("data-dir", "", "persistence root for job envelopes and checkpoint journals (empty = ephemeral)")
	queue := flag.Int("queue", 64, "max queued jobs across all clients")
	jobs := flag.Int("jobs", 1, "campaigns running concurrently")
	workers := flag.Int("workers", 0, "default worker goroutines per campaign (0 = GOMAXPROCS)")
	maxQueuedPerClient := flag.Int("max-queued-per-client", 16, "max active (queued+running) jobs per client token")
	maxTrialsPerClient := flag.Int("max-trials-per-client", 1_000_000, "max trials in flight per client token")
	defaultBench := flag.String("default-bench", "gcc", "benchmark for trials that name none")
	defaultMaxInsts := flag.Uint64("default-max-insts", 200_000, "instruction budget applied to configs with no run limits")
	observeEvery := flag.Uint64("observe-every", 0, "SSE interval-sample period in cycles (0 = library default)")
	flushEvery := flag.Int("flush-every", 1, "checkpoint fsync batch size (1 = every completed trial is durable)")
	trialTimeout := flag.Duration("trial-timeout", 0, "per-trial deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before the process gives up waiting")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	authToken := flag.String("auth-token", os.Getenv("FTSIMD_AUTH_TOKEN"), "shared bearer token required on the campaign API (env FTSIMD_AUTH_TOKEN; empty = open)")
	coordinator := flag.Bool("coordinator", false, "shard campaigns across -worker-urls instead of simulating locally")
	workerURLs := flag.String("worker-urls", "", "comma-separated worker ftsimd base URLs (coordinator mode)")
	shards := flag.Int("shards", 0, "default shards per campaign in coordinator mode (0 = one per worker)")
	workerAuthToken := flag.String("worker-auth-token", os.Getenv("FTSIMD_WORKER_AUTH_TOKEN"), "bearer token presented to workers (env FTSIMD_WORKER_AUTH_TOKEN)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print(os.Stdout, "ftsimd")
		return
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftsimd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	cfg := server.Config{
		DataDir:            *dataDir,
		MaxQueue:           *queue,
		Concurrency:        *jobs,
		WorkersPerJob:      *workers,
		MaxQueuedPerClient: *maxQueuedPerClient,
		MaxTrialsPerClient: *maxTrialsPerClient,
		DefaultBenchmark:   *defaultBench,
		DefaultMaxInsts:    *defaultMaxInsts,
		ObserveEvery:       *observeEvery,
		FlushEvery:         *flushEvery,
		TrialTimeout:       *trialTimeout,
		AuthToken:          *authToken,
		Logger:             logger,
	}
	if *coordinator {
		// One registry for the whole process so /metrics carries the
		// ftsimd_coord_* families next to the server's own.
		cfg.Registry = obs.NewRegistry()
		co, err := coord.New(coord.Config{
			Workers:   splitURLs(*workerURLs),
			AuthToken: *workerAuthToken,
			Shards:    *shards,
			Logger:    logger,
			Registry:  cfg.Registry,
		})
		if err != nil {
			fatal(err)
		}
		defer co.Close()
		cfg.Backend = co
	} else if *workerURLs != "" {
		fatal(fmt.Errorf("-worker-urls requires -coordinator"))
	}

	s, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Print the resolved address on stdout so scripts using port 0 can
	// discover where the daemon landed.
	fmt.Println(ln.Addr().String())
	logger.Info("listening", "addr", ln.Addr().String(), "data_dir", *dataDir, "slots", *jobs, "pprof", *pprofOn)

	// The service handler carries its own middleware (request IDs,
	// /metrics); pprof mounts outside it so profile downloads don't
	// skew the request histograms.
	root := http.NewServeMux()
	root.Handle("/", s.Handler())
	if *pprofOn {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	httpSrv := &http.Server{Handler: root}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		logger.Info("shutdown signal; draining", "budget", *drainTimeout)
	case err := <-errc:
		fatal(err)
	}

	// Stop accepting connections, then drain the job engine: running
	// campaigns are cancelled and flush their journals before we exit.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := s.Drain(dctx); err != nil {
		logger.Error("drain failed", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
