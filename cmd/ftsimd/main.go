// Command ftsimd serves fault-injection campaigns over HTTP.
//
// Clients POST campaign grids as JSON — either a full campaign request
// or a bare machine config (the ftsim/testdata golden files are valid
// bodies as-is) — and the daemon queues them onto the campaign engine,
// streams per-interval samples and per-trial completions as SSE, and
// journals completed trials under -data-dir so a killed or restarted
// daemon resumes unfinished campaigns where they stopped.
//
//	ftsimd -addr :8080 -data-dir /var/lib/ftsimd
//	ftsimd -addr 127.0.0.1:0 -jobs 2 -workers 4
//
// SIGINT/SIGTERM drain gracefully: admission stops, running campaigns
// flush their checkpoint journals and return, queued jobs stay queued
// for the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	dataDir := flag.String("data-dir", "", "persistence root for job envelopes and checkpoint journals (empty = ephemeral)")
	queue := flag.Int("queue", 64, "max queued jobs across all clients")
	jobs := flag.Int("jobs", 1, "campaigns running concurrently")
	workers := flag.Int("workers", 0, "default worker goroutines per campaign (0 = GOMAXPROCS)")
	maxQueuedPerClient := flag.Int("max-queued-per-client", 16, "max active (queued+running) jobs per client token")
	maxTrialsPerClient := flag.Int("max-trials-per-client", 1_000_000, "max trials in flight per client token")
	defaultBench := flag.String("default-bench", "gcc", "benchmark for trials that name none")
	defaultMaxInsts := flag.Uint64("default-max-insts", 200_000, "instruction budget applied to configs with no run limits")
	observeEvery := flag.Uint64("observe-every", 0, "SSE interval-sample period in cycles (0 = library default)")
	flushEvery := flag.Int("flush-every", 1, "checkpoint fsync batch size (1 = every completed trial is durable)")
	trialTimeout := flag.Duration("trial-timeout", 0, "per-trial deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before the process gives up waiting")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print(os.Stdout, "ftsimd")
		return
	}
	logger := log.New(os.Stderr, "ftsimd: ", log.LstdFlags)

	s, err := server.New(server.Config{
		DataDir:            *dataDir,
		MaxQueue:           *queue,
		Concurrency:        *jobs,
		WorkersPerJob:      *workers,
		MaxQueuedPerClient: *maxQueuedPerClient,
		MaxTrialsPerClient: *maxTrialsPerClient,
		DefaultBenchmark:   *defaultBench,
		DefaultMaxInsts:    *defaultMaxInsts,
		ObserveEvery:       *observeEvery,
		FlushEvery:         *flushEvery,
		TrialTimeout:       *trialTimeout,
		Logf:               logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// Print the resolved address on stdout so scripts using port 0 can
	// discover where the daemon landed.
	fmt.Println(ln.Addr().String())
	logger.Printf("listening on %s (data-dir %q, %d job slot(s))", ln.Addr(), *dataDir, *jobs)

	httpSrv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		logger.Printf("shutdown signal; draining (budget %s)", *drainTimeout)
	case err := <-errc:
		logger.Fatal(err)
	}

	// Stop accepting connections, then drain the job engine: running
	// campaigns are cancelled and flush their journals before we exit.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(dctx); err != nil {
		logger.Printf("%v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
