// Command ftexp regenerates the paper's tables and figures.
//
// Every simulation-backed experiment is an embarrassingly parallel grid
// of trials; ftexp runs them through the campaign engine
// (internal/campaign), sharding trials across -parallel workers with
// per-trial seeds derived from -seed. Output tables are byte-identical
// for any -parallel value.
//
//	ftexp                       # the whole evaluation, all cores
//	ftexp -exp fig5 -parallel 1 # one figure, serially
//	ftexp -seed 7 -quiet        # different fault seeds, no progress
//
// Interrupting a run (Ctrl-C) cancels the campaign: dispatch stops and
// in-flight simulations abort mid-pipeline-loop.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|fig3|fig4|fig5|fig6|sensitivity|ablate-cosched|ablate-commit|ablate-recovery|all")
	insts := flag.Uint64("insts", 200_000, "committed instructions per simulation")
	bench := flag.String("bench", "fpppp", "benchmark for fig6 / ablate-commit / ablate-recovery")
	parallel := flag.Int("parallel", 0, "campaign worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	seed := flag.Int64("seed", 1, "campaign master seed; per-trial fault seeds derive from it (0 is reserved and maps to 1)")
	quiet := flag.Bool("quiet", false, "suppress per-trial progress on stderr")
	checkpoint := flag.String("checkpoint", "", "directory for per-experiment checkpoint journals; completed trials survive a killed run")
	resume := flag.Bool("resume", false, "resume existing checkpoint journals, re-running only unfinished trials")
	trialTimeout := flag.Duration("trial-timeout", 0, "per-trial deadline (0 = none); timed-out trials fail without aborting the grid when -contain is set")
	retries := flag.Int("retries", 0, "retry attempts for transient/timed-out trials")
	contain := flag.Bool("contain", false, "keep a campaign running past trial failures; failed trials are listed in an error manifest")
	metricsDump := flag.Bool("metrics-dump", false, "print campaign-engine metrics (Prometheus text) on stderr at exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "ftexp: -resume requires -checkpoint")
		os.Exit(2)
	}

	if *version {
		buildinfo.Print(os.Stdout, "ftexp")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Per-trial progress reporting plus a per-experiment summary of how
	// the campaign parallelised, both on stderr so stdout stays clean
	// table output.
	var lastReport *campaign.Report
	opt := experiments.Options{
		MaxInsts:      *insts,
		FaultSeed:     *seed,
		Parallel:      *parallel,
		Context:       ctx,
		Report:        func(rep *campaign.Report) { lastReport = rep },
		CheckpointDir: *checkpoint,
		Resume:        *resume,
		TrialTimeout:  *trialTimeout,
		Retries:       *retries,
		Contain:       *contain,
	}
	var metricsReg *obs.Registry
	if *metricsDump {
		metricsReg = obs.NewRegistry()
		opt.Metrics = campaign.NewMetrics(metricsReg)
	}
	if !*quiet {
		opt.Progress = func(done, total int, r campaign.Result) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-32s %7.3fs\n", done, total, r.Label, r.Elapsed.Seconds())
		}
	}

	w := os.Stdout
	run := func(name string) error {
		lastReport = nil
		err := func() error {
			switch name {
			case "table1":
				experiments.PrintTable1(w)
			case "table2":
				rows, err := experiments.Table2(opt)
				if err != nil {
					return err
				}
				experiments.PrintTable2(w, rows)
			case "fig3":
				experiments.PrintCurves(w, "Figure 3: analytic IPC vs fault frequency (rewind = 20 cycles)", experiments.Fig3())
			case "fig4":
				experiments.PrintCurves(w, "Figure 4: analytic IPC vs fault frequency (rewind = 2000 cycles)", experiments.Fig4())
			case "fig5":
				rows, err := experiments.Fig5(opt)
				if err != nil {
					return err
				}
				experiments.PrintFig5(w, rows)
			case "fig6":
				rows, err := experiments.Fig6(*bench, opt)
				if err != nil {
					return err
				}
				experiments.PrintFig6(w, *bench, rows)
			case "sensitivity":
				rows, err := experiments.Sensitivity(opt)
				if err != nil {
					return err
				}
				experiments.PrintSensitivity(w, rows)
			case "ablate-cosched":
				rows, err := experiments.AblateCoSchedule([]string{"gcc", "fpppp", "swim"}, opt)
				if err != nil {
					return err
				}
				experiments.PrintCoSchedule(w, rows)
			case "ablate-recovery":
				rows, err := experiments.AblateRecoveryGrain(*bench, 1000, []int{0, 200, 2000}, opt)
				if err != nil {
					return err
				}
				experiments.PrintRecoveryGrain(w, *bench, 1000, rows)
			case "ablate-commit":
				rows, err := experiments.AblateCommitWidth(*bench, []int{4, 8, 16, 32}, opt)
				if err != nil {
					return err
				}
				experiments.PrintCommitWidth(w, *bench, rows)
			default:
				return fmt.Errorf("unknown experiment %q", name)
			}
			return nil
		}()
		// The error manifest and resume summary come from the campaign
		// report, which arrives via opt.Report even when the experiment
		// itself returns an error (contained trial failures make the
		// result table unrenderable, but the completed trials are safe in
		// the checkpoint journal).
		if lastReport != nil {
			if !*quiet && lastReport.Resumed > 0 {
				fmt.Fprintf(os.Stderr, "%s: resumed %d completed trial(s) from checkpoint\n", name, lastReport.Resumed)
			}
			if fails := lastReport.Failures(); len(fails) > 0 {
				fmt.Fprintf(os.Stderr, "%s: %d trial(s) failed:\n", name, len(fails))
				for _, f := range fails {
					fmt.Fprintf(os.Stderr, "  #%-3d %-32s seed %-20d attempts %d: %v\n",
						f.Index, f.Label, f.Seed, f.Attempts, f.Err)
				}
			}
		}
		if err != nil {
			return err
		}
		if !*quiet && lastReport != nil && lastReport.TrialSeconds.N() > 0 {
			rep := lastReport
			fmt.Fprintf(os.Stderr, "%s: %d trials on %d workers, wall %.2fs, work %.2fs, speedup %.2fx (trial %s)\n",
				name, rep.TrialSeconds.N(), rep.Workers, rep.Wall.Seconds(),
				rep.TrialSeconds.Sum(), rep.Speedup(), rep.TrialSeconds.String())
		}
		fmt.Fprintln(w)
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "sensitivity", "ablate-cosched", "ablate-commit", "ablate-recovery"}
	}
	total := time.Now()
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "ftexp: %v\n", err)
			os.Exit(1)
		}
	}
	if !*quiet && *exp == "all" {
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "full evaluation in %.2fs with -parallel %d\n", time.Since(total).Seconds(), workers)
	}
	if metricsReg != nil {
		fmt.Fprintln(os.Stderr, "# ftexp campaign metrics")
		if err := metricsReg.WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "ftexp: writing metrics: %v\n", err)
		}
	}
}
