// Command ftexp regenerates the paper's tables and figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|fig3|fig4|fig5|fig6|sensitivity|ablate-cosched|ablate-commit|ablate-recovery|all")
	insts := flag.Uint64("insts", 200_000, "committed instructions per simulation")
	bench := flag.String("bench", "fpppp", "benchmark for fig6 / ablate-commit")
	flag.Parse()

	opt := experiments.Options{MaxInsts: *insts}
	w := os.Stdout
	run := func(name string) error {
		switch name {
		case "table1":
			experiments.PrintTable1(w)
		case "table2":
			rows, err := experiments.Table2(opt)
			if err != nil {
				return err
			}
			experiments.PrintTable2(w, rows)
		case "fig3":
			experiments.PrintCurves(w, "Figure 3: analytic IPC vs fault frequency (rewind = 20 cycles)", experiments.Fig3())
		case "fig4":
			experiments.PrintCurves(w, "Figure 4: analytic IPC vs fault frequency (rewind = 2000 cycles)", experiments.Fig4())
		case "fig5":
			rows, err := experiments.Fig5(opt)
			if err != nil {
				return err
			}
			experiments.PrintFig5(w, rows)
		case "fig6":
			rows, err := experiments.Fig6(*bench, opt)
			if err != nil {
				return err
			}
			experiments.PrintFig6(w, *bench, rows)
		case "sensitivity":
			rows, err := experiments.Sensitivity(opt)
			if err != nil {
				return err
			}
			experiments.PrintSensitivity(w, rows)
		case "ablate-cosched":
			rows, err := experiments.AblateCoSchedule([]string{"gcc", "fpppp", "swim"}, opt)
			if err != nil {
				return err
			}
			experiments.PrintCoSchedule(w, rows)
		case "ablate-recovery":
			rows, err := experiments.AblateRecoveryGrain(*bench, 1000, []int{0, 200, 2000}, opt)
			if err != nil {
				return err
			}
			experiments.PrintRecoveryGrain(w, *bench, 1000, rows)
		case "ablate-commit":
			rows, err := experiments.AblateCommitWidth(*bench, []int{4, 8, 16, 32}, opt)
			if err != nil {
				return err
			}
			experiments.PrintCommitWidth(w, *bench, rows)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintln(w)
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "sensitivity", "ablate-cosched", "ablate-commit", "ablate-recovery"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "ftexp: %v\n", err)
			os.Exit(1)
		}
	}
}
