// Command ftasm assembles SRISC assembly and either disassembles the
// result (default) or runs it on the in-order functional simulator.
//
//	ftasm prog.s            # assemble and list
//	ftasm -run prog.s       # assemble and execute, printing out values
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/buildinfo"
	"repro/internal/funcsim"
	"repro/internal/isa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ftasm: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	execute := flag.Bool("run", false, "execute on the functional simulator")
	limit := flag.Uint64("limit", 100_000_000, "instruction budget when running")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "ftasm")
		return nil
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: ftasm [-run] file.s")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	p, err := asm.Assemble(flag.Arg(0), string(src))
	if err != nil {
		return err
	}
	if !*execute {
		for i, in := range p.Text {
			fmt.Printf("%#08x  %v\n", p.Entry()+uint64(i)*isa.InstBytes, in)
		}
		fmt.Printf("; %d instructions, %d data bytes, %d symbols\n",
			len(p.Text), len(p.Data), len(p.Symbols))
		return nil
	}
	m := funcsim.New(p)
	if err := m.Run(*limit); err != nil {
		return err
	}
	for _, v := range m.Output {
		fmt.Printf("%d\n", int64(v))
	}
	fmt.Printf("; executed %d instructions\n", m.Insts)
	return nil
}
