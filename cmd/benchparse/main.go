// Command benchparse converts `go test -bench` output into a JSON
// benchmark record so the repository can track simulator performance
// across PRs (BENCH_PR2.json and successors).
//
// It reads benchmark output on stdin and writes (or merges into) a JSON
// file mapping a label — e.g. "before" / "after" — to the parsed
// results, so one file can carry a comparison:
//
//	go test -run='^$' -bench=Campaign -benchmem . | benchparse -label after -out BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_op,omitempty"`
	BytesPerOp float64            `json:"bytes_op,omitempty"`
	AllocsOp   float64            `json:"allocs_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk schema: environment header plus per-label results.
type File struct {
	Note   string              `json:"note,omitempty"`
	Goos   string              `json:"goos,omitempty"`
	Goarch string              `json:"goarch,omitempty"`
	CPU    string              `json:"cpu,omitempty"`
	Labels map[string][]Result `json:"labels"`
}

func main() {
	label := flag.String("label", "after", "label for this result set (e.g. before, after)")
	out := flag.String("out", "BENCH_PR2.json", "output JSON file (merged if it exists)")
	note := flag.String("note", "", "optional note stored in the file header")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "benchparse")
		return
	}

	f := &File{Labels: map[string][]Result{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, f); err != nil {
			fmt.Fprintf(os.Stderr, "benchparse: %s: %v\n", *out, err)
			os.Exit(1)
		}
		if f.Labels == nil {
			f.Labels = map[string][]Result{}
		}
	}
	if *note != "" {
		f.Note = *note
	}

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			f.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchparse: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchparse: no benchmark lines on stdin")
		os.Exit(1)
	}
	f.Labels[*label] = results

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchparse: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchparse: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchparse: wrote %d results under label %q to %s\n", len(results), *label, *out)
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op   2.5 widget/s
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix goified onto the name.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsOp = val
		default:
			r.Metrics[unit] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
