// Command benchparse converts `go test -bench` output into a JSON
// benchmark record so the repository can track simulator performance
// across PRs (BENCH_PR2.json and successors).
//
// It reads benchmark output on stdin and writes (or merges into) a JSON
// file mapping a label — e.g. "before" / "after" — to the parsed
// results, so one file can carry a comparison:
//
//	go test -run='^$' -bench=Campaign -benchmem . | benchparse -label after -out BENCH_PR2.json
//
// With -gate it additionally acts as a regression gate: the freshly
// parsed results are compared against a recorded baseline file and the
// command exits non-zero when any benchmark regressed beyond the
// thresholds —
//
//	... | benchparse -label ci -out bench-ci.json \
//	        -gate BENCH_PR6.json -gate-label after \
//	        -alloc-threshold 0.10 -speed-threshold 0.10
//
// Allocations per op are gated upward (more is a regression) and
// throughput metrics — those whose unit ends in "/s" — downward (less
// is a regression). Benchmarks present on only one side are reported
// but do not fail the gate, so adding or retiring a benchmark does not
// require a lock-step baseline update. Time per op is deliberately not
// gated: it is the reciprocal of the throughput metrics but noisier to
// compare across hosts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_op,omitempty"`
	BytesPerOp float64            `json:"bytes_op,omitempty"`
	AllocsOp   float64            `json:"allocs_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk schema: environment header plus per-label results.
type File struct {
	Note   string              `json:"note,omitempty"`
	Goos   string              `json:"goos,omitempty"`
	Goarch string              `json:"goarch,omitempty"`
	CPU    string              `json:"cpu,omitempty"`
	Labels map[string][]Result `json:"labels"`
}

func main() {
	label := flag.String("label", "after", "label for this result set (e.g. before, after)")
	out := flag.String("out", "BENCH_PR2.json", "output JSON file (merged if it exists)")
	note := flag.String("note", "", "optional note stored in the file header")
	gateFile := flag.String("gate", "", "baseline JSON file to gate against (empty = no gate)")
	gateLabel := flag.String("gate-label", "after", "label inside the baseline file to compare with")
	allocThreshold := flag.Float64("alloc-threshold", 0.10, "max fractional allocs/op increase before the gate fails")
	speedThreshold := flag.Float64("speed-threshold", 0.10, "max fractional throughput (*/s metric) decrease before the gate fails")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "benchparse")
		return
	}

	f := &File{Labels: map[string][]Result{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, f); err != nil {
			fmt.Fprintf(os.Stderr, "benchparse: %s: %v\n", *out, err)
			os.Exit(1)
		}
		if f.Labels == nil {
			f.Labels = map[string][]Result{}
		}
	}
	if *note != "" {
		f.Note = *note
	}

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			f.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchparse: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchparse: no benchmark lines on stdin")
		os.Exit(1)
	}
	f.Labels[*label] = results

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchparse: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchparse: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchparse: wrote %d results under label %q to %s\n", len(results), *label, *out)

	if *gateFile != "" {
		base := &File{}
		data, err := os.ReadFile(*gateFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchparse: gate baseline: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchparse: gate baseline %s: %v\n", *gateFile, err)
			os.Exit(1)
		}
		baseline, ok := base.Labels[*gateLabel]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchparse: gate baseline %s has no label %q\n", *gateFile, *gateLabel)
			os.Exit(1)
		}
		regressions, skipped, compared := gate(results, baseline, *allocThreshold, *speedThreshold)
		for _, s := range skipped {
			fmt.Printf("benchparse: gate: skipping %s (not in baseline)\n", s)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "benchparse: REGRESSION: %s\n", r)
			}
			fmt.Fprintf(os.Stderr, "benchparse: gate FAILED against %s label %q (%d regressions)\n",
				*gateFile, *gateLabel, len(regressions))
			os.Exit(1)
		}
		fmt.Printf("benchparse: gate passed against %s label %q (%d comparisons)\n",
			*gateFile, *gateLabel, compared)
	}
}

// gate compares the current results against a recorded baseline and
// returns the regression descriptions, the names skipped for having no
// baseline entry, and the number of individual comparisons made.
// Allocations may grow by at most allocT fractionally (plus an absolute
// slack of 2 allocations, so tiny counts don't flap on rounding);
// metrics whose unit ends in "/s" may shrink by at most speedT.
func gate(cur, baseline []Result, allocT, speedT float64) (regressions, skipped []string, compared int) {
	baseByName := make(map[string]Result, len(baseline))
	for _, b := range baseline {
		baseByName[b.Name] = b
	}
	for _, c := range cur {
		b, ok := baseByName[c.Name]
		if !ok {
			skipped = append(skipped, c.Name)
			continue
		}
		if b.AllocsOp > 0 || c.AllocsOp > 0 {
			compared++
			if limit := b.AllocsOp*(1+allocT) + 2; c.AllocsOp > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s: allocs/op %.0f -> %.0f (limit %.0f, +%.0f%%)",
						c.Name, b.AllocsOp, c.AllocsOp, limit, 100*(c.AllocsOp/b.AllocsOp-1)))
			}
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := b.Metrics[unit]
			if !strings.HasSuffix(unit, "/s") || bv <= 0 {
				continue
			}
			cv, ok := c.Metrics[unit]
			if !ok {
				continue
			}
			compared++
			if floor := bv * (1 - speedT); cv < floor {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4g -> %.4g (floor %.4g, %.0f%%)",
						c.Name, unit, bv, cv, floor, 100*(cv/bv-1)))
			}
		}
	}
	return regressions, skipped, compared
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op   2.5 widget/s
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix goified onto the name.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsOp = val
		default:
			r.Metrics[unit] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
