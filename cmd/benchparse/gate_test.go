package main

import (
	"strings"
	"testing"
)

func res(name string, allocs float64, metrics map[string]float64) Result {
	return Result{Name: name, Iterations: 1, AllocsOp: allocs, Metrics: metrics}
}

func TestGatePasses(t *testing.T) {
	base := []Result{
		res("BenchmarkCampaign/serial", 2781, map[string]float64{"gridTrials/s": 328}),
		res("BenchmarkPipelineHot/R1/RUU64", 124, map[string]float64{"simCycles/s": 1.2e6}),
	}
	cur := []Result{
		res("BenchmarkCampaign/serial", 2800, map[string]float64{"gridTrials/s": 310}), // within 10%
		res("BenchmarkPipelineHot/R1/RUU64", 124, map[string]float64{"simCycles/s": 1.3e6}),
	}
	regs, skipped, compared := gate(cur, base, 0.10, 0.10)
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}
	if len(skipped) != 0 {
		t.Errorf("unexpected skips: %v", skipped)
	}
	if compared != 4 {
		t.Errorf("compared %d, want 4", compared)
	}
}

func TestGateCatchesAllocRegression(t *testing.T) {
	base := []Result{res("BenchmarkPipelineHot/R1/RUU64", 124, nil)}
	cur := []Result{res("BenchmarkPipelineHot/R1/RUU64", 1500, nil)}
	regs, _, _ := gate(cur, base, 0.10, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Errorf("alloc regression not caught: %v", regs)
	}
}

func TestGateCatchesThroughputRegression(t *testing.T) {
	base := []Result{res("BenchmarkCampaign/serial", 0, map[string]float64{"gridTrials/s": 328})}
	cur := []Result{res("BenchmarkCampaign/serial", 0, map[string]float64{"gridTrials/s": 175})}
	regs, _, _ := gate(cur, base, 0.10, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "gridTrials/s") {
		t.Errorf("throughput regression not caught: %v", regs)
	}
	// A looser threshold admits the same drop.
	regs, _, _ = gate(cur, base, 0.10, 0.60)
	if len(regs) != 0 {
		t.Errorf("60%% threshold should admit a 47%% drop: %v", regs)
	}
}

func TestGateIgnoresNonThroughputMetricsAndNewBenchmarks(t *testing.T) {
	base := []Result{res("BenchmarkFig5/gcc", 0, map[string]float64{"ipc": 2.5})}
	cur := []Result{
		res("BenchmarkFig5/gcc", 0, map[string]float64{"ipc": 0.1}), // paper metric, not perf
		res("BenchmarkBrandNew", 9999, nil),
	}
	regs, skipped, compared := gate(cur, base, 0.10, 0.10)
	if len(regs) != 0 {
		t.Errorf("gated a non-throughput metric or a new benchmark: %v", regs)
	}
	if len(skipped) != 1 || skipped[0] != "BenchmarkBrandNew" {
		t.Errorf("skipped = %v, want [BenchmarkBrandNew]", skipped)
	}
	if compared != 0 {
		t.Errorf("compared %d, want 0", compared)
	}
}

func TestGateAllocSlackForTinyCounts(t *testing.T) {
	// 3 -> 5 allocs is +67% but within the +2 absolute slack; tiny
	// counts must not flap the gate.
	base := []Result{res("BenchmarkX", 3, nil)}
	cur := []Result{res("BenchmarkX", 5, nil)}
	if regs, _, _ := gate(cur, base, 0.10, 0.10); len(regs) != 0 {
		t.Errorf("tiny alloc delta tripped the gate: %v", regs)
	}
	cur = []Result{res("BenchmarkX", 6, nil)}
	if regs, _, _ := gate(cur, base, 0.10, 0.10); len(regs) != 1 {
		t.Errorf("6 allocs vs baseline 3 should trip the gate: %v", regs)
	}
}

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkCampaign/parallel-8   12   196372755 ns/op   170359959 B/op   331577 allocs/op   168.0 gridTrials/s")
	if !ok {
		t.Fatal("parseLine rejected a valid line")
	}
	if r.Name != "BenchmarkCampaign/parallel" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", r.Name)
	}
	if r.AllocsOp != 331577 || r.NsPerOp != 196372755 || r.BytesPerOp != 170359959 {
		t.Errorf("parsed fields wrong: %+v", r)
	}
	if r.Metrics["gridTrials/s"] != 168.0 {
		t.Errorf("custom metric wrong: %+v", r.Metrics)
	}
	if _, ok := parseLine("not a benchmark line"); ok {
		t.Error("parseLine accepted garbage")
	}
}
