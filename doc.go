// Package repro is a from-scratch Go reproduction of "Dual Use of
// Superscalar Datapath for Transient-Fault Detection and Recovery"
// (Ray, Hoe, Falsafi; MICRO 2001).
//
// The supported programmatic surface is the top-level package ftsim: a
// functional-options builder over serializable machine configs,
// context-aware sessions, streaming progress observers and a typed
// error taxonomy. The implementation lives under internal/: package
// core implements the paper's fault-tolerant superscalar (redundant
// instruction injection, commit-stage cross-checking, rewind recovery
// and majority election) on top of the out-of-order datapath in
// package cpu; packages isa, asm, mem, prog, cache, bpred, ecc,
// funcsim, fault, model, workload, stats, campaign and experiments
// provide the ISA, tooling, substrates and evaluation drivers. See
// README.md, DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in this directory (bench_test.go) regenerate every
// table and figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem .
package repro
